"""Testcase-generator checks: validity, grid, metadata contracts."""

import pytest

from repro.circuits import GRID, PAPER_TESTCASES, iter_testcases, make, \
    snap_even
from repro.perf import PerformanceSpec


def test_registry_covers_paper_table():
    assert PAPER_TESTCASES == (
        "Adder", "CC-OTA", "Comp1", "Comp2", "CM-OTA1", "CM-OTA2",
        "SCF", "VGA", "VCO1", "VCO2",
    )


def test_make_unknown_raises():
    with pytest.raises(KeyError, match="unknown testcase"):
        make("NotACircuit")


def test_make_returns_fresh_instances():
    a = make("Adder")
    b = make("Adder")
    assert a is not b
    a.devices.popitem()
    assert make("Adder").num_devices == b.num_devices


@pytest.mark.parametrize("name", PAPER_TESTCASES)
class TestEveryCircuit:
    def test_validates(self, name):
        make(name).validate()

    def test_even_grid_dimensions(self, name):
        """ILP centres need w/2 and h/2 integral in grid steps."""
        circuit = make(name)
        for device in circuit.devices.values():
            w_steps = round(device.width / GRID)
            h_steps = round(device.height / GRID)
            assert abs(device.width - w_steps * GRID) < 1e-9
            assert abs(device.height - h_steps * GRID) < 1e-9
            assert w_steps % 2 == 0
            assert h_steps % 2 == 0

    def test_metadata_contract(self, name):
        circuit = make(name)
        assert isinstance(circuit.metadata["spec"], PerformanceSpec)
        model = circuit.metadata["model"]
        assert "critical_nets" in model
        net_names = {net.name for net in circuit.nets}
        for crit in model["critical_nets"]:
            assert crit in net_names

    def test_has_symmetry_constraints(self, name):
        circuit = make(name)
        assert circuit.constraints.symmetry_groups

    def test_no_dangling_pins_in_critical_nets(self, name):
        circuit = make(name)
        crit = set(circuit.metadata["model"]["critical_nets"])
        for net in circuit.nets:
            if net.name in crit:
                assert net.degree >= 2

    def test_device_count_scale(self, name):
        """The paper says each circuit has 'dozens of devices'."""
        circuit = make(name)
        assert 8 <= circuit.num_devices <= 60


def test_scf_is_largest():
    """The paper's SCF is by far the largest testcase (Table III)."""
    areas = {c.name: c.total_device_area() for c in iter_testcases()}
    scf = areas.pop("SCF")
    assert scf > 3 * max(areas.values())


def test_snap_even():
    assert snap_even(2.0) == pytest.approx(2.0)
    assert snap_even(2.05) == pytest.approx(2.0)
    assert snap_even(2.11) == pytest.approx(2.2)
    assert snap_even(0.01) == pytest.approx(0.2)  # minimum 2 steps
    # result is always an even number of grid steps
    for value in (0.37, 1.93, 5.01):
        steps = round(snap_even(value) / GRID)
        assert steps % 2 == 0
