"""Lockstep batched global placement: sequential-equivalence tests.

The contract of :mod:`repro.eplace.batch`: each instance in a batch
replays exactly the evaluation sequence a sequential
:class:`EPlaceGlobalPlacer` run performs, with only the density term
grouped into shared spectral solves — so batched trajectories must
match sequential ones to numerical round-off, event streams included.
"""

import numpy as np
import pytest

from repro.eplace import (
    EPlaceParams,
    batch_params,
    eplace_global,
    eplace_global_batch,
)
from repro.obs import live
from repro.parallel import CancelledTask

#: batched kernels are bit-identical to the sequential ones on this
#: platform, so trajectories agree far below this
POS_TOL = 1e-9


def _params(**overrides):
    base = dict(max_iters=60, min_iters=15, bins=16, eta=0.3)
    base.update(overrides)
    return EPlaceParams(**base)


class TestParamValidation:
    def test_empty_batch(self, cc_ota_circuit):
        with pytest.raises(ValueError, match="at least one"):
            eplace_global_batch(cc_ota_circuit, [])

    def test_mismatched_params(self, cc_ota_circuit):
        mixed = [_params(seed=1), _params(seed=2, bins=24)]
        with pytest.raises(ValueError, match="bins"):
            eplace_global_batch(cc_ota_circuit, mixed)

    def test_hard_symmetry_rejected(self, cc_ota_circuit):
        with pytest.raises(ValueError, match="soft"):
            eplace_global_batch(
                cc_ota_circuit,
                [_params(symmetry_mode="hard")],
            )

    def test_batch_params_builder(self):
        out = batch_params(_params(), [5, 9])
        assert [p.seed for p in out] == [5, 9]
        assert all(p.bins == 16 for p in out)


class TestSequentialEquivalence:
    def test_matches_sequential_runs(self, cc_ota_circuit):
        params = batch_params(_params(), [1, 2, 3])
        batched = eplace_global_batch(cc_ota_circuit, params)
        for p, got in zip(params, batched):
            ref = eplace_global(cc_ota_circuit, p)
            assert np.abs(
                got.placement.x - ref.placement.x).max() < POS_TOL
            assert np.abs(
                got.placement.y - ref.placement.y).max() < POS_TOL
            assert got.stats["iterations"] == ref.stats["iterations"]
            assert got.stats["final_overflow"] == pytest.approx(
                ref.stats["final_overflow"], abs=1e-9)
            hist = np.asarray(got.stats["history"])
            ref_hist = np.asarray(ref.stats["history"])
            assert hist.shape == ref_hist.shape
            assert np.abs(hist - ref_hist).max() < 1e-6

    def test_singleton_batch(self, cc_ota_circuit):
        p = _params(seed=7)
        got = eplace_global_batch(cc_ota_circuit, [p])[0]
        ref = eplace_global(cc_ota_circuit, p)
        assert np.abs(
            got.placement.x - ref.placement.x).max() < POS_TOL
        assert got.stats["batch_index"] == 0

    def test_independent_early_stopping(self, cc_ota_circuit):
        """Instances converge on their own schedule, not the batch's."""
        params = batch_params(_params(max_iters=120), [1, 2, 3, 4])
        batched = eplace_global_batch(cc_ota_circuit, params)
        iters = [r.stats["iterations"] for r in batched]
        for p, got in zip(params, batched):
            ref = eplace_global(cc_ota_circuit, p)
            assert got.stats["iterations"] == ref.stats["iterations"]
        # the point of per-instance stopping: seeds differ
        assert len(set(iters)) >= 1


class TestLiveStream:
    def test_stream_matches_sequential(self, cc_ota_circuit):
        """Each instance's event stream equals its sequential run's."""
        params = batch_params(_params(), [1, 2])

        sink = live.CollectingSubscriber()
        bus = live.EventBus()
        bus.subscribe(sink)
        eplace_global_batch(cc_ota_circuit, params, bus=bus)

        for index, p in enumerate(params):
            ref_sink = live.CollectingSubscriber()
            with live.session(live.EventBus()) as ref_bus:
                ref_bus.subscribe(ref_sink)
                eplace_global(cc_ota_circuit, p)
            # task start/end markers come from the fan-out wrapper,
            # not the engine — drop them to compare engine streams
            got = [e for e in sink.events
                   if getattr(e, "source", None) == index
                   and not (isinstance(e, live.PhaseEvent)
                            and e.phase == "task")]
            assert len(got) == len(ref_sink.events)
            for g, r in zip(got, ref_sink.events):
                assert type(g) is type(r)
                if isinstance(g, live.ProgressEvent):
                    assert g.phase == r.phase
                    assert g.iteration == r.iteration
                    assert set(g.values) == set(r.values)
                    for key, val in r.values.items():
                        assert g.values[key] == pytest.approx(
                            val, rel=1e-9, abs=1e-9), key

    def test_task_markers_bracket_each_instance(self, cc_ota_circuit):
        params = batch_params(_params(), [1, 2, 3])
        sink = live.CollectingSubscriber()
        bus = live.EventBus()
        bus.subscribe(sink)
        eplace_global_batch(cc_ota_circuit, params, bus=bus)
        for index in range(3):
            events = [e for e in sink.events
                      if getattr(e, "source", None) == index]
            phases = [e for e in events
                      if isinstance(e, live.PhaseEvent)
                      and e.phase == "task"]
            assert [p.status for p in phases] == ["start", "end"]
            assert isinstance(events[0], live.PhaseEvent)
            assert events[0].status == "start"
            assert events[-1].status == "end"


class TestCancellation:
    def test_cancelled_instance_yields_marker(self, cc_ota_circuit):
        params = batch_params(_params(max_iters=40, min_iters=40), [1, 2])
        captured = {}

        def on_ready(handle):
            captured["handle"] = handle

        def watcher(event):
            if (isinstance(event, live.ProgressEvent)
                    and event.source == 1
                    and event.iteration >= 3):
                captured["handle"].cancel(1)

        bus = live.EventBus()
        bus.subscribe(watcher)
        results = eplace_global_batch(
            cc_ota_circuit, params, bus=bus, handle_ready=on_ready,
        )
        assert not isinstance(results[0], CancelledTask)
        assert isinstance(results[1], CancelledTask)
        assert results[1].index == 1
        assert results[1].iteration >= 3

    def test_survivor_unaffected_by_kill(self, cc_ota_circuit):
        """Cancelling one instance never perturbs the others."""
        params = batch_params(_params(), [1, 2])
        captured = {}

        def on_ready(handle):
            captured["handle"] = handle

        def watcher(event):
            if (isinstance(event, live.ProgressEvent)
                    and event.source == 0
                    and event.iteration >= 2):
                captured["handle"].cancel(0)

        bus = live.EventBus()
        bus.subscribe(watcher)
        results = eplace_global_batch(
            cc_ota_circuit, params, bus=bus, handle_ready=on_ready,
        )
        assert isinstance(results[0], CancelledTask)
        survivor = results[1]
        ref = eplace_global(cc_ota_circuit, params[1])
        assert np.abs(
            survivor.placement.x - ref.placement.x).max() < POS_TOL


class TestMultiseedBatch:
    def test_matches_sequential_multiseed(self, cc_ota_circuit,
                                          fast_dp_params):
        from repro.api import place_multiseed

        kwargs = dict(
            gp_params=_params(), dp_params=fast_dp_params,
        )
        seq = place_multiseed(
            cc_ota_circuit, "eplace-a", seeds=(1, 2), **kwargs)
        got = place_multiseed(
            cc_ota_circuit, "eplace-a", seeds=(1, 2), batch=True,
            **kwargs)
        for s, g in zip(seq, got):
            assert g.method == "eplace-a"
            assert np.abs(
                g.placement.x - s.placement.x).max() < POS_TOL
            assert np.abs(
                g.placement.y - s.placement.y).max() < POS_TOL
            assert g.metrics()["hpwl"] == pytest.approx(
                s.metrics()["hpwl"], rel=1e-9)

    def test_batch_requires_eplace_a(self, cc_ota_circuit):
        from repro.api import place_multiseed

        with pytest.raises(ValueError, match="eplace-a"):
            place_multiseed(
                cc_ota_circuit, "annealing", seeds=(1, 2), batch=True)

    def test_racing_over_batch(self, cc_ota_circuit, fast_dp_params):
        from repro.api import place_multiseed
        from repro.obs.racing import RaceResult, RacingParams

        out = place_multiseed(
            cc_ota_circuit, "eplace-a", seeds=(1, 2, 3), batch=True,
            racing=RacingParams(
                warmup_frac=0.2, rel_tol=0.0, metric="hpwl",
                min_survivors=1,
            ),
            gp_params=_params(max_iters=40, min_iters=40),
            dp_params=fast_dp_params,
        )
        assert isinstance(out, RaceResult)
        assert out.winner is not None
        assert out.progress_events > 0
        # killed seeds resolve to None slots, winner survives
        for index, result in enumerate(out.results):
            if result is not None:
                assert result.method == "eplace-a"
