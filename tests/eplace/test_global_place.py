"""ePlace-A global placement tests."""

import numpy as np
import pytest

from repro.eplace import EPlaceGlobalPlacer, EPlaceParams, eplace_global
from repro.placement import total_overlap, utilization


class TestParams:
    def test_bad_utilization(self):
        with pytest.raises(ValueError, match="utilization"):
            EPlaceParams(utilization=0.0)

    def test_bad_symmetry_mode(self):
        with pytest.raises(ValueError, match="symmetry_mode"):
            EPlaceParams(symmetry_mode="loose")


class TestGlobalPlacement:
    def test_devices_inside_region(self, cc_ota_circuit,
                                   fast_gp_params):
        placer = EPlaceGlobalPlacer(cc_ota_circuit, fast_gp_params)
        result = placer.place()
        w, h = cc_ota_circuit.sizes()
        assert np.all(result.placement.x - w / 2 >= -1e-9)
        assert np.all(result.placement.x + w / 2 <= placer.region + 1e-9)
        assert np.all(result.placement.y - h / 2 >= -1e-9)
        assert np.all(result.placement.y + h / 2 <= placer.region + 1e-9)

    def test_spreads_from_clustered_start(self, cc_ota_circuit,
                                          fast_gp_params):
        placer = EPlaceGlobalPlacer(cc_ota_circuit, fast_gp_params)
        x0, y0 = placer.initial_positions()
        from repro.placement import Placement

        start_overlap = total_overlap(
            Placement(cc_ota_circuit, x0, y0))
        result = placer.place()
        assert total_overlap(result.placement) < 0.35 * start_overlap
        assert result.stats["final_overflow"] < 0.35

    def test_deterministic(self, cc_ota_circuit, fast_gp_params):
        from repro.circuits import cc_ota

        a = eplace_global(cc_ota(), fast_gp_params)
        b = eplace_global(cc_ota(), fast_gp_params)
        assert np.allclose(a.placement.x, b.placement.x)

    def test_area_term_shrinks_layout(self):
        """Fig. 2's mechanism: eta=0 spreads over the whole region."""
        from repro.circuits import cc_ota
        from repro.legalize import DetailedParams, detailed_place

        dp = DetailedParams(iterate_rounds=1, refine_rounds=0)
        with_area = detailed_place(eplace_global(
            cc_ota(), EPlaceParams(max_iters=200, min_iters=40,
                                   bins=16, eta=0.3)).placement, dp)
        without = detailed_place(eplace_global(
            cc_ota(), EPlaceParams(max_iters=200, min_iters=40,
                                   bins=16, eta=0.0)).placement, dp)
        assert with_area.metrics()["area"] <= \
            without.metrics()["area"] + 1e-9

    def test_hard_symmetry_exact_in_gp(self):
        from repro.circuits import cc_ota
        from repro.placement import audit_constraints

        result = eplace_global(
            cc_ota(), EPlaceParams(max_iters=120, min_iters=20,
                                   bins=16, symmetry_mode="hard"))
        audit = audit_constraints(result.placement)
        assert audit.symmetry == pytest.approx(0.0, abs=1e-6)

    def test_soft_symmetry_small_residual(self, cc_ota_circuit,
                                          fast_gp_params):
        from repro.placement import audit_constraints

        result = eplace_global(cc_ota_circuit, fast_gp_params)
        audit = audit_constraints(result.placement)
        # soft: not exact, but within a fraction of a device size
        assert audit.symmetry < 1.0


class TestHardSymmetryMap:
    def test_roundtrip(self, cc_ota_circuit, rng):
        from repro.eplace import HardSymmetryMap

        hard = HardSymmetryMap(cc_ota_circuit)
        n = cc_ota_circuit.num_devices
        x = rng.uniform(0, 10, n)
        y = rng.uniform(0, 10, n)
        v = hard.reduce(x, y)
        fx, fy = hard.expand(v)
        v2 = hard.reduce(fx, fy)
        assert np.allclose(v, v2)

    def test_expansion_is_symmetric(self, cc_ota_circuit, rng):
        from repro.eplace import HardSymmetryMap
        from repro.placement import Placement, audit_constraints

        hard = HardSymmetryMap(cc_ota_circuit)
        v = rng.uniform(0, 10, hard.size)
        x, y = hard.expand(v)
        audit = audit_constraints(Placement(cc_ota_circuit, x, y))
        assert audit.symmetry == pytest.approx(0.0, abs=1e-9)

    def test_pullback_matches_fd(self, cc_ota_circuit, rng):
        """Chain rule through the reparameterisation is exact."""
        from repro.eplace import HardSymmetryMap

        hard = HardSymmetryMap(cc_ota_circuit)
        v = rng.uniform(0, 10, hard.size)
        n = cc_ota_circuit.num_devices
        # arbitrary smooth function of full coordinates
        coeff_x = rng.normal(0, 1, n)
        coeff_y = rng.normal(0, 1, n)

        def full_fun(x, y):
            return float(np.sin(x) @ coeff_x + np.cos(y) @ coeff_y)

        x, y = hard.expand(v)
        gx = np.cos(x) * coeff_x
        gy = -np.sin(y) * coeff_y
        reduced_grad = hard.pullback(gx, gy)
        eps = 1e-6
        for i in range(0, hard.size, max(hard.size // 6, 1)):
            bump = np.zeros(hard.size)
            bump[i] = eps
            xp, yp = hard.expand(v + bump)
            xm, ym = hard.expand(v - bump)
            num = (full_fun(xp, yp) - full_fun(xm, ym)) / (2 * eps)
            assert reduced_grad[i] == pytest.approx(num, rel=1e-5,
                                                    abs=1e-8)
