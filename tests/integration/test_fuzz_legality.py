"""Property-based end-to-end legality fuzzing on random circuits.

The ten paper testcases are hand-built; these properties check the
placers' *contracts* — legal, constraint-exact layouts — on randomly
generated constrained circuits, the strongest guard against
formulation bugs in the ILP/LP/SA machinery.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.annealing import SAParams, anneal_place
from repro.circuits import random_circuit
from repro.eplace import EPlaceParams, eplace_global
from repro.legalize import (
    DetailedParams,
    ilp_detailed_placement,
    lp_two_stage_detailed_placement,
)
from repro.placement import audit_constraints, total_overlap

_FAST_GP = EPlaceParams(max_iters=60, min_iters=15, bins=12)
_FAST_DP = DetailedParams(iterate_rounds=1, refine_rounds=0,
                          time_limit_s=30.0)

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_slow
@given(seed=st.integers(0, 10_000))
def test_property_ilp_flow_always_legal(seed):
    """GP + ILP detailed placement is legal and constraint-exact on any
    random constrained circuit."""
    circuit = random_circuit(seed, max_devices=16)
    gp = eplace_global(circuit, _FAST_GP)
    dp = ilp_detailed_placement(gp.placement, _FAST_DP)
    assert total_overlap(dp.placement) == pytest.approx(0.0, abs=1e-9)
    audit = audit_constraints(dp.placement)
    assert audit.ok, audit.violations


@_slow
@given(seed=st.integers(0, 10_000))
def test_property_lp_flow_always_legal(seed):
    """The two-stage LP detailed placement holds the same contract."""
    circuit = random_circuit(seed, max_devices=16)
    gp = eplace_global(circuit, _FAST_GP)
    dp = lp_two_stage_detailed_placement(
        gp.placement, DetailedParams(allow_flipping=False))
    assert total_overlap(dp.placement) == pytest.approx(0.0, abs=1e-6)
    audit = audit_constraints(dp.placement, tolerance=1e-5)
    assert audit.ok, audit.violations


@_slow
@given(seed=st.integers(0, 10_000))
def test_property_sa_always_legal(seed):
    """SA (islands + fusion + chain filtering) holds the contract."""
    circuit = random_circuit(seed, max_devices=16)
    result = anneal_place(circuit, SAParams(iterations=400, seed=1))
    assert total_overlap(result.placement) == pytest.approx(0.0,
                                                            abs=1e-9)
    audit = audit_constraints(result.placement)
    assert audit.ok, audit.violations


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_random_circuits_valid(seed):
    """The generator itself always yields validating circuits."""
    circuit = random_circuit(seed)
    circuit.validate()
    assert circuit.num_devices >= 6
    assert all(net.degree >= 2 for net in circuit.nets)
