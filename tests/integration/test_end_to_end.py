"""End-to-end integration tests across the whole library."""

import pytest

from repro import METHODS, place
from repro.annealing import SAParams
from repro.circuits import PAPER_TESTCASES, make
from repro.eplace import EPlaceParams
from repro.legalize import DetailedParams
from repro.placement import audit_constraints, total_overlap
from repro.simulate import fom, simulate


QUICK_GP = EPlaceParams(max_iters=120, min_iters=20, bins=16)
QUICK_DP = DetailedParams(iterate_rounds=1, refine_rounds=0)


@pytest.mark.parametrize("name", PAPER_TESTCASES)
def test_eplace_a_on_every_testcase(name):
    """ePlace-A produces a legal, constraint-exact, simulatable layout
    on all ten paper circuits."""
    result = place(make(name), "eplace-a", gp_params=QUICK_GP,
                   dp_params=QUICK_DP)
    assert total_overlap(result.placement) == pytest.approx(0.0)
    assert audit_constraints(result.placement).ok
    value = fom(result.placement)
    assert 0.3 < value <= 1.0
    assert result.runtime_s < 120.0


@pytest.mark.parametrize("method", METHODS)
def test_every_method_runs_cc_ota(method):
    kwargs = {}
    if method == "eplace-a":
        kwargs = {"gp_params": QUICK_GP, "dp_params": QUICK_DP}
    elif method == "annealing":
        kwargs = {"params": SAParams(iterations=1500, seed=2)}
    result = place(make("CC-OTA"), method, **kwargs)
    assert total_overlap(result.placement) == pytest.approx(0.0,
                                                            abs=1e-6)
    assert audit_constraints(result.placement, tolerance=1e-5).ok


def test_unknown_method_rejected():
    with pytest.raises(ValueError, match="unknown method"):
        place(make("Adder"), "quantum")


def test_results_reproducible_across_calls():
    a = place(make("Comp1"), "eplace-a", gp_params=QUICK_GP,
              dp_params=QUICK_DP)
    b = place(make("Comp1"), "eplace-a", gp_params=QUICK_GP,
              dp_params=QUICK_DP)
    assert a.metrics()["hpwl"] == pytest.approx(b.metrics()["hpwl"])
    assert a.metrics()["area"] == pytest.approx(b.metrics()["area"])


def test_adder_methods_agree():
    """Paper Table III: the trivial Adder converges to (nearly) the
    same solution under every method."""
    sa = place(make("Adder"), "annealing",
               params=SAParams(iterations=6000, seed=3))
    ep = place(make("Adder"), "eplace-a")
    assert ep.metrics()["area"] == pytest.approx(
        sa.metrics()["area"], rel=0.25)


def test_simulation_consistent_with_fom():
    result = place(make("VGA"), "eplace-a", gp_params=QUICK_GP,
                   dp_params=QUICK_DP)
    metrics = simulate(result.placement)
    spec = result.placement.circuit.metadata["spec"]
    assert fom(result.placement) == pytest.approx(spec.fom(metrics))


def test_experiment_drivers_quick_smoke():
    """Table I / Fig. 2 / Table IV drivers run end to end in quick mode."""
    from repro.experiments import (
        run_fig2,
        run_table1,
        run_table4,
    )

    t1 = run_table1(quick=True)
    assert len(t1) == 3
    f2 = run_fig2(quick=True)
    assert all("area_with" in row for row in f2)
    t4 = run_table4(quick=True)
    assert all(row["hpwl_ilp"] <= row["hpwl_lp"] + 1e-6 for row in t4)
