"""Seeded runs are bit-reproducible — placements *and* traces.

Convergence records deliberately carry no wall-clock values, so two
seeded runs of the same engine must produce identical iteration
trajectories; any divergence means hidden nondeterminism crept into a
solver (unseeded RNG, set iteration order, ...).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.api import place


def _run(circuit, method, **kwargs):
    with obs.tracing() as tracer:
        result = place(circuit, method, **kwargs)
    if not result.trace:
        result.trace = tracer.to_trace()
    return result


def _convergence_key(trace):
    return [
        (r.phase, r.iteration, sorted(r.values.items()))
        for r in trace.convergence
    ]


def _method_kwargs(method, fast_gp_params, fast_dp_params,
                   fast_sa_params):
    if method == "eplace-a":
        return {"gp_params": fast_gp_params, "dp_params": fast_dp_params}
    if method == "xu-ispd19":
        return {}
    return {"params": fast_sa_params}


@pytest.mark.parametrize("method", ["eplace-a", "xu-ispd19",
                                    "annealing"])
def test_seeded_runs_identical(method, comp1_circuit, fast_gp_params,
                               fast_dp_params, fast_sa_params):
    kwargs = _method_kwargs(method, fast_gp_params, fast_dp_params,
                            fast_sa_params)
    first = _run(comp1_circuit, method, **kwargs)
    second = _run(comp1_circuit, method, **kwargs)

    assert np.array_equal(first.placement.x, second.placement.x)
    assert np.array_equal(first.placement.y, second.placement.y)
    assert np.array_equal(first.placement.flip_x,
                          second.placement.flip_x)
    assert np.array_equal(first.placement.flip_y,
                          second.placement.flip_y)

    key_a = _convergence_key(first.trace)
    key_b = _convergence_key(second.trace)
    assert key_a, f"{method} recorded no convergence trajectory"
    assert key_a == key_b
