"""Shared-memory array transport (repro.parallel shm channel).

Covers the transport contract: value bit-identity with the transport
on and off, the size threshold, and — the part that matters
operationally — segment lifecycle: every path (success, failure,
cancellation racing a result hand-off) leaves ``/dev/shm`` exactly as
it found it, asserted through :func:`repro.parallel.shm_segments`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import live
from repro.parallel import (
    CancelledTask,
    ShmBlob,
    discard_blob,
    parallel_map,
    parallel_map_live,
    shm_dumps,
    shm_loads,
    shm_segments,
)


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test must leave the host's segment registry unchanged."""
    before = shm_segments()
    yield
    assert shm_segments() == before


def _array_worker(item: int) -> dict:
    """Returns a payload mixing large and small arrays."""
    rng = np.random.default_rng(item)
    return {
        "big": rng.normal(size=32768),          # 256 KiB: shm path
        "small": rng.normal(size=8),            # stays inline
        "scalar": float(item),
    }


def _emit_array_worker(item: int) -> dict:
    """Publishes progress, then returns a large-array payload."""
    for i in range(1, 6):
        live.progress("w.loop", i, value=float(item * 10 + i))
    return _array_worker(item)


def _slow_emit_worker(item: int) -> dict:
    """Like :func:`_emit_array_worker` but slow enough to cancel."""
    import time

    for i in range(1, 50):
        live.progress("w.loop", i, value=float(item * 10 + i))
        time.sleep(0.05)
    return _array_worker(item)


def _boom_worker(item: int) -> dict:
    if item == 1:
        raise ValueError("boom on item 1")
    return _array_worker(item)


class TestDumpsLoads:
    def test_roundtrip_bit_identical(self):
        payload = _array_worker(3)
        blob = shm_dumps(payload, threshold=1024)
        assert isinstance(blob, ShmBlob)
        assert len(blob.segments) == 1  # only the big array hoisted
        restored = shm_loads(blob)
        assert np.array_equal(restored["big"], payload["big"])
        assert restored["big"].dtype == payload["big"].dtype
        assert np.array_equal(restored["small"], payload["small"])
        assert restored["scalar"] == payload["scalar"]

    def test_small_arrays_stay_inline(self):
        blob = shm_dumps(np.arange(16.0))
        assert blob.segments == ()
        assert np.array_equal(shm_loads(blob), np.arange(16.0))

    def test_segments_visible_until_loaded(self):
        blob = shm_dumps(np.zeros(65536), threshold=1024)
        assert set(blob.segments) <= set(shm_segments())
        shm_loads(blob)
        assert not set(blob.segments) & set(shm_segments())

    def test_fortran_order_preserved(self):
        arr = np.asfortranarray(np.arange(65536.0).reshape(256, 256))
        restored = shm_loads(shm_dumps(arr, threshold=1024))
        assert restored.flags.f_contiguous
        assert np.array_equal(restored, arr)

    def test_non_contiguous_input(self):
        base = np.arange(131072.0).reshape(256, 512)
        view = base[::2, ::3]
        restored = shm_loads(shm_dumps(view, threshold=1024))
        assert np.array_equal(restored, view)

    def test_object_dtype_stays_on_pickle_path(self):
        arr = np.array([{"a": 1}] * 100, dtype=object)
        blob = shm_dumps(arr, threshold=1)
        assert blob.segments == ()
        assert shm_loads(blob)[0] == {"a": 1}

    def test_discard_blob_without_loading(self):
        blob = shm_dumps(np.zeros(65536), threshold=1024)
        assert blob.segments
        discard_blob(blob)
        assert not set(blob.segments) & set(shm_segments())
        discard_blob(blob)  # idempotent

    def test_failed_dump_cleans_its_segments(self):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        with pytest.raises(RuntimeError, match="nope"):
            shm_dumps(
                {"big": np.zeros(65536), "bad": Unpicklable()},
                threshold=1024,
            )


class TestParallelMapTransport:
    ITEMS = [1, 2, 3, 4]

    def test_on_off_value_identical(self):
        on = parallel_map(_array_worker, self.ITEMS, jobs=2, shm=True,
                          shm_threshold=1024)
        off = parallel_map(_array_worker, self.ITEMS, jobs=2,
                          shm=False)
        inline = [_array_worker(i) for i in self.ITEMS]
        for a, b, c in zip(on, off, inline):
            assert np.array_equal(a["big"], b["big"])
            assert np.array_equal(a["big"], c["big"])
            assert np.array_equal(a["small"], b["small"])
            assert a["scalar"] == b["scalar"] == c["scalar"]

    def test_worker_failure_leaves_no_segments(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom_worker, self.ITEMS, jobs=2,
                         shm_threshold=1024)
        # leak check is the autouse fixture


class TestParallelMapLiveTransport:
    ITEMS = [1, 2, 3]

    def test_on_off_streams_and_results_identical(self):
        outcomes = []
        for shm in (True, False):
            sub = live.CollectingSubscriber()
            bus = live.EventBus()
            bus.subscribe(sub)
            out = parallel_map_live(
                _emit_array_worker, self.ITEMS, jobs=3, bus=bus,
                shm=shm, shm_threshold=1024,
            )
            outcomes.append((out, sub.canonical()))
        (on_out, on_stream), (off_out, off_stream) = outcomes
        assert on_stream == off_stream
        for a, b in zip(on_out, off_out):
            assert np.array_equal(a["big"], b["big"])
            assert a["scalar"] == b["scalar"]

    def test_cancellation_unlinks_segments(self):
        """A cancelled task's cleanup races the transport: no leaks."""

        def on_ready(handle):
            handle.cancel(1)

        out = parallel_map_live(
            _emit_array_worker, self.ITEMS, jobs=2,
            handle_ready=on_ready, shm_threshold=1024,
        )
        assert isinstance(out[1], CancelledTask)
        assert not isinstance(out[0], CancelledTask)
        assert np.array_equal(out[0]["big"], _array_worker(1)["big"])
        # leak check is the autouse fixture

    def test_mid_run_cancellation_forked(self):
        captured = {}

        def on_ready(handle):
            captured["handle"] = handle

        def watcher(event):
            if (isinstance(event, live.ProgressEvent)
                    and event.source == 0 and event.iteration >= 2):
                captured["handle"].cancel(0)

        bus = live.EventBus()
        bus.subscribe(watcher)
        out = parallel_map_live(
            _slow_emit_worker, [7], jobs=1, bus=bus,
            handle_ready=on_ready, always_fork=True,
            shm_threshold=1024,
        )
        assert isinstance(out[0], CancelledTask)
        assert out[0].iteration >= 2

    def test_worker_error_drains_queued_blobs(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map_live(
                _boom_worker, [0, 1, 2, 3], jobs=2, always_fork=True,
                shm_threshold=1024,
            )
        # leak check is the autouse fixture


class TestMultiseedBitIdentity:
    def test_shm_on_off_and_sequential_identical(self, tiny_circuit):
        """The ISSUE acceptance bar: multiseed results bit-identical
        sequentially, with the transport on, and with it off."""
        from repro.api import _seed_worker

        seeds = (1, 2)
        payloads = [
            (tiny_circuit, "annealing", seed, {}, False)
            for seed in seeds
        ]
        sequential = [_seed_worker(p) for p in payloads]
        shm_on = parallel_map(_seed_worker, payloads, jobs=2,
                              shm=True, shm_threshold=64)
        shm_off = parallel_map(_seed_worker, payloads, jobs=2,
                               shm=False)
        for ref, on, off in zip(sequential, shm_on, shm_off):
            for got in (on, off):
                assert np.array_equal(got.placement.x,
                                      ref.placement.x)
                assert np.array_equal(got.placement.y,
                                      ref.placement.y)
                assert got.metrics()["hpwl"] == \
                    ref.metrics()["hpwl"]
