"""The documented CLI ``--help`` blocks must match the live parsers."""

from __future__ import annotations

import os

import pytest

from repro.docs_sync import (
    DEFAULT_FILES,
    REPO_ROOT,
    DocsSyncError,
    main,
    render_cli_help,
    sync_file,
    sync_text,
)


class TestRenderCliHelp:
    def test_known_specs_render(self):
        assert "--seeds" in render_cli_help("repro place")
        assert "--jobs" in render_cli_help("repro.bench run")
        assert "--warn-only" in render_cli_help("repro.bench compare")

    def test_width_pinned_against_terminal(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "200")
        wide = render_cli_help("repro place")
        monkeypatch.setenv("COLUMNS", "20")
        narrow = render_cli_help("repro place")
        assert wide == narrow

    def test_unknown_program_rejected(self):
        with pytest.raises(DocsSyncError, match="unknown program"):
            render_cli_help("nosuchtool")

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(DocsSyncError, match="unknown subcommand"):
            render_cli_help("repro frobnicate")


class TestSyncText:
    _TEMPLATE = (
        "# doc\n\n"
        "<!-- cli-help: repro simulate -->\n```text\n"
        "{body}"
        "```\n<!-- /cli-help -->\n"
    )

    def test_stale_block_regenerated(self):
        stale_doc = self._TEMPLATE.format(body="old stale text\n")
        updated, stale = sync_text(stale_doc)
        assert stale == ["repro simulate"]
        assert "old stale text" not in updated
        assert "usage: repro simulate" in updated
        # regenerating the regenerated text is a fixpoint
        assert sync_text(updated) == (updated, [])

    def test_markerless_file_rejected(self):
        with pytest.raises(DocsSyncError, match="no .* markers"):
            sync_text("# a doc with no generated blocks\n")


class TestCommittedDocs:
    def test_committed_blocks_are_in_sync(self):
        """CI gate: docs/CLI.md must match the current parsers."""
        for name in DEFAULT_FILES:
            assert sync_file(REPO_ROOT / name, write=False) == []

    def test_main_check_and_write_roundtrip(self, tmp_path):
        doc = tmp_path / "cli.md"
        doc.write_text(TestSyncText._TEMPLATE.format(body="stale\n"))
        assert main(["--check", os.fspath(doc)]) == 1
        assert main(["--write", os.fspath(doc)]) == 0
        assert main(["--check", os.fspath(doc)]) == 0
        assert "usage: repro simulate" in doc.read_text()

    def test_main_missing_file(self, tmp_path):
        assert main(["--check", os.fspath(tmp_path / "nope.md")]) == 2
