"""Worker→parent live-event bridge (repro.parallel.parallel_map_live)."""

from __future__ import annotations

import pytest

from repro.obs import live
from repro.parallel import CancelledTask, parallel_map_live


def _emit_worker(item: int) -> int:
    """Publishes a deterministic per-item stream, returns item * 2."""
    for i in range(1, item + 1):
        live.progress("w.loop", i, value=float(item * 100 + i))
    return item * 2


def _boom_worker(item: int) -> int:
    if item == 2:
        raise ValueError("boom on item 2")
    return item


def _run(items, jobs, handle_ready=None):
    sub = live.CollectingSubscriber()
    bus = live.EventBus()
    bus.subscribe(sub)
    out = parallel_map_live(
        _emit_worker, items, jobs=jobs, bus=bus,
        handle_ready=handle_ready,
    )
    return out, sub


class TestBridgeBitIdentity:
    ITEMS = [3, 5, 2, 4]

    def test_jobs1_vs_jobs4_identical_canonical_stream(self):
        streams = []
        results = []
        for jobs in (1, 4):
            out, sub = _run(self.ITEMS, jobs)
            streams.append(sub.canonical())
            results.append(out)
        # results in input order, identical across job counts
        assert results[0] == results[1] == [6, 10, 4, 8]
        # the canonical merged stream is bit-identical: same events,
        # same per-source order, same payloads
        assert streams[0] == streams[1]

    def test_stream_content_and_task_markers(self):
        out, sub = _run(self.ITEMS, 1)
        for index, item in enumerate(self.ITEMS):
            mine = [e for e in sub.events
                    if getattr(e, "source", None) == index]
            assert isinstance(mine[0], live.PhaseEvent)
            assert (mine[0].phase, mine[0].status) == ("task", "start")
            assert isinstance(mine[-1], live.PhaseEvent)
            assert (mine[-1].phase, mine[-1].status) == ("task", "end")
            progress = [e for e in mine
                        if isinstance(e, live.ProgressEvent)]
            assert [e.iteration for e in progress] == \
                list(range(1, item + 1))
            assert progress[0].values == {"value": float(item * 100 + 1)}


class TestCancellation:
    def test_pre_cancelled_task_resolves_to_marker(self):
        for jobs in (1, 2):
            out, sub = _run(
                [3, 4], jobs,
                handle_ready=lambda handle: handle.cancel(1),
            )
            assert out[0] == 6
            marker = out[1]
            assert isinstance(marker, CancelledTask)
            assert marker.index == 1
            assert marker.phase == "w.loop"
            # cancelled at its very first progress publication
            assert marker.iteration == 1
            # a cancelled task ends with its last progress event, not
            # a task-end marker
            task1 = [e for e in sub.events
                     if getattr(e, "source", None) == 1]
            assert not any(
                isinstance(e, live.PhaseEvent) and e.status == "end"
                for e in task1
            )

    def test_handle_reports_cancelled_state(self):
        seen = {}

        def ready(handle):
            seen["handle"] = handle
            handle.cancel(0)

        out, _ = _run([2, 3], 1, handle_ready=ready)
        handle = seen["handle"]
        assert handle.cancelled(0) and not handle.cancelled(1)
        assert isinstance(out[0], CancelledTask)
        assert out[1] == 6


class TestFailure:
    def test_worker_exception_propagates(self):
        for jobs in (1, 2):
            with pytest.raises((ValueError, RuntimeError),
                               match="boom on item 2"):
                parallel_map_live(_boom_worker, [1, 2, 3], jobs=jobs)
