"""Experiment-driver tests (quick budgets)."""

import numpy as np
import pytest

from repro.experiments import (
    Budgets,
    format_fig2,
    format_fig5,
    format_table,
    format_table1,
    format_table3,
    format_table4,
    geometric_mean_ratio,
    pareto_front,
    quick_mode_default,
    run_table3,
    table3_ratios,
)


class TestCommon:
    def test_budget_profiles(self):
        full = Budgets.full()
        quick = Budgets.quick()
        assert quick.sa_iterations < full.sa_iterations
        assert quick.model_samples < full.model_samples

    def test_budget_select_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert quick_mode_default()
        assert Budgets.select().sa_iterations == \
            Budgets.quick().sa_iterations
        monkeypatch.setenv("REPRO_QUICK", "0")
        assert not quick_mode_default()

    def test_sa_params_override(self):
        budgets = Budgets.quick()
        params = budgets.sa_params(area_weight=2.5)
        assert params.area_weight == 2.5
        assert params.iterations == budgets.sa_iterations

    def test_geometric_mean_ratio(self):
        rows = [{"a": 2.0, "b": 1.0}, {"a": 4.0, "b": 2.0}]
        assert geometric_mean_ratio(rows, "a", "b") == pytest.approx(2.0)

    def test_format_table_renders(self):
        text = format_table(["x", "y"], [["a", 1.234]], title="T")
        assert "T" in text
        assert "1.23" in text

    def test_pareto_front(self):
        points = [
            {"area": 1.0, "hpwl": 5.0},
            {"area": 2.0, "hpwl": 3.0},
            {"area": 3.0, "hpwl": 4.0},  # dominated
            {"area": 4.0, "hpwl": 1.0},
        ]
        front = pareto_front(points)
        assert [(p["area"], p["hpwl"]) for p in front] == [
            (1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]


class TestDrivers:
    def test_table3_quick_subset(self):
        rows = run_table3(quick=True, circuits=("Adder", "CC-OTA"))
        assert len(rows) == 2
        ratios = table3_ratios(rows)
        assert all(np.isfinite(v) for v in ratios.values())
        text = format_table3(rows)
        assert "Adder" in text
        assert "Avg.(X)" in text

    def test_formatters_handle_driver_rows(self):
        rows1 = [{"design": "X", "area_soft": 1.0, "area_hard": 2.0,
                  "hpwl_soft": 3.0, "hpwl_hard": 4.0,
                  "runtime_soft": 0.1, "runtime_hard": 0.2}]
        assert "X" in format_table1(rows1)
        rows2 = [{"design": "X", "gp_area_with": 10.0,
                  "gp_area_without": 12.0, "area_with": 9.0,
                  "area_without": 9.5, "hpwl_with": 5.0,
                  "hpwl_without": 6.0}]
        assert "20.0" in format_fig2(rows2)  # 20% GP growth column
        rows4 = [{"design": "X", "area_lp": 1.0, "hpwl_lp": 2.0,
                  "runtime_lp": 0.1, "area_ilp": 1.0,
                  "hpwl_ilp": 1.5, "runtime_ilp": 0.2}]
        assert "X" in format_table4(rows4)
        pts = [{"method": "m", "area": 1.0, "hpwl": 2.0}]
        assert "m" in format_fig5(pts)
