"""Performance-driver fan-out: jobs > 1 must be bit-identical.

Uses a deliberately tiny training budget (monkeypatched into
``Budgets.select``) so the parallel/sequential comparison stays fast;
determinism does not depend on the budget sizes.
"""

from __future__ import annotations

import numpy as np
import pytest
from dataclasses import replace

from repro.experiments import Budgets, train_models
from repro.experiments.performance import run_table5


@pytest.fixture
def tiny_budgets(monkeypatch):
    tiny = replace(
        Budgets.quick(),
        sa_iterations=400,
        model_samples=48,
        model_epochs=4,
        model_sweep_runs=2,
        model_adversarial_rounds=0,
        perf_sa_iterations=400,
    )
    monkeypatch.setattr(Budgets, "select",
                        classmethod(lambda cls, quick=None: tiny))
    return tiny


class TestTrainModelsJobs:
    def test_parallel_models_bit_identical(self, tiny_budgets):
        circuits = ("Adder", "CC-OTA")
        seq = train_models(circuits, quick=True)
        par = train_models(circuits, quick=True, jobs=4)
        assert set(seq) == set(par) == set(circuits)
        for name in circuits:
            assert seq[name].validation_corr == \
                par[name].validation_corr
            for ms, mp in zip(seq[name].members, par[name].members):
                for k, v in ms.parameters().items():
                    assert np.array_equal(v, mp.parameters()[k])

    def test_table5_rows_identical_across_jobs(self, tiny_budgets):
        circuits = ("Adder",)
        models = train_models(circuits, quick=True)
        seq = run_table5(models, quick=True, circuits=circuits)
        par = run_table5(models, quick=True, circuits=circuits, jobs=2)
        assert seq == par
