"""Closed-form performance model tests: monotonicity and calibration."""

import numpy as np
import pytest

from repro.api import place
from repro.circuits import PAPER_TESTCASES, make
from repro.simulate import fom, simulate, spec_of
from repro.simulate.helpers import aggressor_coupling, coupling_pairs


@pytest.fixture(scope="module")
def conv_placements():
    return {name: place(make(name), "eplace-a").placement
            for name in ("CC-OTA", "Comp1", "VCO1", "SCF", "VGA",
                         "Adder")}


class TestDispatch:
    @pytest.mark.parametrize("name", PAPER_TESTCASES)
    def test_all_circuits_simulate(self, name):
        placement = place(make(name), "annealing",
                          params=__import__(
                              "repro.annealing",
                              fromlist=["SAParams"]).SAParams(
                              iterations=400, seed=1)).placement
        metrics = simulate(placement)
        spec = spec_of(placement)
        assert set(metrics) == set(spec.names)
        assert all(np.isfinite(v) for v in metrics.values())
        assert 0.0 <= spec.fom(metrics) <= 1.0

    def test_unknown_family_raises(self, tiny_circuit):
        from repro.placement import Placement

        tiny_circuit.metadata["family"] = "mystery"
        with pytest.raises(KeyError, match="unknown family"):
            simulate(Placement.zeros(tiny_circuit))


class TestMonotonicity:
    def test_spreading_critical_devices_degrades(self, conv_placements):
        """Scaling the whole layout up lengthens critical nets and
        must not improve any circuit's FOM by much."""
        for name, placement in conv_placements.items():
            scaled = placement.copy()
            cx, cy = scaled.x.mean(), scaled.y.mean()
            scaled.x = cx + 3.0 * (scaled.x - cx)
            scaled.y = cy + 3.0 * (scaled.y - cy)
            assert fom(scaled) < fom(placement) + 1e-9, name

    def test_asymmetry_degrades(self, conv_placements):
        for name, placement in conv_placements.items():
            broken = placement.copy()
            group = placement.circuit.constraints.symmetry_groups[0]
            i = placement.circuit.index_of(group.pairs[0][0])
            broken.y[i] += 2.0
            assert fom(broken) < fom(placement), name

    def test_coupling_isolation_helps(self, conv_placements):
        """Separating aggressors from victims reduces the coupling
        penalty on the targeted metric — the mechanism behind the
        paper's perf-driven area growth."""
        placement = conv_placements["Comp1"]
        victims, aggressors = coupling_pairs(placement.circuit)
        spread = placement.copy()
        spread.y[aggressors] -= 3.0  # modest isolation move
        assert aggressor_coupling(spread) < aggressor_coupling(
            placement)
        assert simulate(spread)["offset_mv"] < \
            simulate(placement)["offset_mv"]


class TestCalibration:
    def test_ccota_matches_paper_table6(self, conv_placements):
        """Conventional ePlace-A on CC-OTA reproduces Table VI's row."""
        metrics = simulate(conv_placements["CC-OTA"])
        assert metrics["gain_db"] == pytest.approx(26.2, abs=0.6)
        assert metrics["ugf_mhz"] == pytest.approx(975, rel=0.06)
        assert metrics["bw_mhz"] == pytest.approx(48.2, rel=0.08)
        assert metrics["pm_deg"] == pytest.approx(84.4, abs=2.5)

    def test_conventional_fom_near_paper(self, conv_placements):
        paper = {"CC-OTA": 0.86, "Comp1": 0.77, "VCO1": 0.76,
                 "SCF": 0.83, "VGA": 0.77, "Adder": 0.85}
        for name, placement in conv_placements.items():
            assert fom(placement) == pytest.approx(paper[name],
                                                   abs=0.03), name
