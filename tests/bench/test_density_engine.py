"""The ``density`` bench pseudo-engine and its scale suites.

The engine's contract: the case seed is the batch width, the wrapped
placement (and therefore all quality metrics) never depends on the
kernel choice, and both kernels compute the same physics — so the
before/after evidence artifacts can only differ in ``runtime_s``.
"""

import pytest

from repro.bench.runner import _execute_density, run_case
from repro.bench.spec import BENCH_ENGINES, CaseSpec, get_suite


class TestSuites:
    def test_density_engine_registered(self):
        assert "density" in BENCH_ENGINES

    def test_builtin_scale_suites(self):
        full = get_suite("density-scale")
        assert full.engines == ["density"]
        assert full.seeds == [1, 2, 4, 8]  # the batch-width axis
        quick = get_suite("density-quick")
        assert set(quick.circuits) <= set(full.circuits)
        assert quick.params["density"]["kernel"] == "batched"


class TestEngine:
    OPTS = {"iters": 3, "bins": 16}

    def test_kernels_agree_and_metrics_identical(self):
        case = CaseSpec("density", "Adder", 4)
        results = {}
        for kernel in ("batched", "sequential"):
            result, trace = _execute_density(
                case, {**self.OPTS, "kernel": kernel})
            assert result.method == "density"
            assert result.stats["batch"] == 4
            assert result.stats["kernel"] == kernel
            results[kernel] = result
        batched, sequential = (
            results["batched"], results["sequential"])
        # metrics come from kernel-independent positions: exact match
        assert batched.metrics()["hpwl"] == \
            sequential.metrics()["hpwl"]
        assert batched.metrics()["area"] == \
            sequential.metrics()["area"]
        # physics checksums agree to round-off
        assert batched.stats["energy"] == pytest.approx(
            sequential.stats["energy"], rel=1e-9)
        assert batched.stats["overflow"] == pytest.approx(
            sequential.stats["overflow"], rel=1e-9)

    def test_seed_is_batch_width(self):
        one = _execute_density(
            CaseSpec("density", "Adder", 1), dict(self.OPTS))[0]
        four = _execute_density(
            CaseSpec("density", "Adder", 4), dict(self.OPTS))[0]
        assert one.stats["batch"] == 1
        assert four.stats["batch"] == 4
        # instance 0 positions are shared, so metrics match across B
        assert one.metrics()["hpwl"] == four.metrics()["hpwl"]

    def test_rejects_unknown_kernel_and_overrides(self):
        case = CaseSpec("density", "Adder", 2)
        with pytest.raises(ValueError, match="kernel"):
            _execute_density(case, {**self.OPTS, "kernel": "nope"})
        with pytest.raises(ValueError, match="unknown density"):
            _execute_density(case, {**self.OPTS, "wat": 1})
        with pytest.raises(ValueError, match=">= 1"):
            _execute_density(CaseSpec("density", "Adder", 0),
                             dict(self.OPTS))

    def test_run_case_produces_records(self):
        records = run_case(
            CaseSpec("density", "Adder", 2),
            {**self.OPTS, "kernel": "batched"},
            repeats=1, warmup=0,
        )
        assert len(records) == 1
        assert records[0]["metrics"]["hpwl"] > 0
        assert records[0]["runtime_s"] > 0
