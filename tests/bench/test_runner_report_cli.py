"""End-to-end runner, report and CLI tests on a CI-speed tiny suite."""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.bench import (
    load_artifact,
    render_html,
    render_markdown,
    run_suite,
    runs_by_case,
    sparkline,
)
from repro.bench.cli import main
from repro.bench.runner import build_kwargs, downsample
from .conftest import synthetic_artifact


# conftest's tiny_suite is function-scoped; rebuild it once here so the
# real engine executions are shared by every test in this module
@pytest.fixture(scope="module")
def unit_artifact():
    from .conftest import SuiteSpec

    tiny = SuiteSpec(
        name="unit",
        engines=["eplace-a", "annealing"],
        circuits=["Adder", "CC-OTA"],
        seeds=[1],
        repeats=1,
        warmup=0,
        params={
            "eplace-a": {
                "gp": {"max_iters": 40, "min_iters": 10, "bins": 8},
                "dp": {"iterate_rounds": 1, "refine_rounds": 0,
                       "time_limit_s": 10.0},
            },
            "annealing": {"iterations": 500},
        },
    )
    return run_suite(tiny)


def test_artifact_has_fingerprint_timings_memory_quality(
    unit_artifact,
):
    doc = unit_artifact
    assert doc["schema"] == "repro.bench/1"
    fp = doc["fingerprint"]
    for key in ("git_sha", "python", "numpy", "platform", "cpu_count"):
        assert key in fp
    grouped = runs_by_case(doc)
    # 2 engines x 2 circuits
    assert len(grouped) == 4
    for runs in grouped.values():
        run = runs[0]
        assert run["runtime_s"] > 0
        assert run["metrics"]["hpwl"] > 0
        assert run["phases"]  # span-derived per-phase timings
        assert run["mem"]["overall_peak_kib"] > 0
        assert run["mem"]["phases"]  # per-engine peak phases
        assert run["convergence"]  # recorded trajectories
    eplace_run = grouped["eplace-a:Adder:1"][0]
    assert "eplace.gp" in eplace_run["mem"]["phases"]
    assert any(
        conv["phase"] == "eplace.nesterov"
        for conv in eplace_run["convergence"]
    )


def test_seed_flows_into_engine_kwargs():
    kwargs = build_kwargs("eplace-a", 7, {"gp": {"max_iters": 9}})
    assert kwargs["gp_params"].seed == 7
    assert kwargs["gp_params"].max_iters == 9
    kwargs = build_kwargs("annealing", 5, {"iterations": 10})
    assert kwargs["params"].seed == 5
    # the case seed beats a stray override seed
    kwargs = build_kwargs("xu-ispd19", 3, {"gp": {"seed": 99}})
    assert kwargs["gp_params"].seed == 3
    with pytest.raises(ValueError, match="no kwargs mapping"):
        build_kwargs("mystery", 1, {})


def test_downsample_keeps_endpoints():
    series = [float(i) for i in range(100)]
    thin = downsample(series, 10)
    assert len(thin) == 10
    assert thin[0] == 0.0 and thin[-1] == 99.0
    assert downsample([1.0, 2.0], 10) == [1.0, 2.0]


def test_sparkline_shape():
    assert sparkline([]) == ""
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([2.0, 2.0]) == "██"  # flat series renders high


def test_runs_carry_repeat0_diagnosis(unit_artifact):
    from repro.obs.diagnose import VERDICTS

    for runs in runs_by_case(unit_artifact).values():
        doc = runs[0]["diagnosis"]
        assert isinstance(doc, dict)
        assert doc["verdict"] in VERDICTS
        assert doc["phases"]


def test_repeats_after_first_skip_diagnosis():
    from .conftest import SuiteSpec

    doc = run_suite(SuiteSpec(
        name="repeat",
        engines=["annealing"],
        circuits=["Adder"],
        seeds=[1],
        repeats=2,
        warmup=0,
        params={"annealing": {"iterations": 300}},
    ))
    (runs,) = runs_by_case(doc).values()
    assert isinstance(runs[0]["diagnosis"], dict)
    assert runs[1]["diagnosis"] is None


def test_summary_table_has_health_column(unit_artifact):
    from repro.obs.diagnose import VERDICTS

    text = render_markdown(unit_artifact)
    lines = text.splitlines()
    start = next(
        i for i, line in enumerate(lines)
        if line.startswith("| case |")
    )
    assert lines[start].endswith("| peak mem KiB | health |")
    verdicts = []
    for row in lines[start + 2:]:  # skip the |---| separator
        if not row.startswith("|"):
            break
        verdicts.append(row.rsplit("|", 2)[-2].strip())
    assert verdicts and all(v in VERDICTS for v in verdicts)
    # the health column flows into the HTML rendering too
    assert "<th>health</th>" in render_html(unit_artifact)


def test_markdown_report_contents(unit_artifact):
    text = render_markdown(unit_artifact)
    assert "# Benchmark report — suite `unit`" in text
    assert "`eplace-a:Adder:1`" in text
    assert "| phase | calls | total s | self s |" in text
    assert "Peak memory per phase" in text
    assert "Convergence `eplace.nesterov`" in text
    assert any(ch in text for ch in "▁▂▃▄▅▆▇█")


def test_html_report_contents(unit_artifact):
    html = render_html(unit_artifact)
    assert html.startswith("<!DOCTYPE html>")
    assert "eplace-a:Adder:1" in html
    assert "class='spark'" in html


def test_cli_run_compare_report_round_trip(tmp_path, capsys):
    suite_file = tmp_path / "unit.json"
    suite_file.write_text(json.dumps({
        "name": "unit-cli",
        "engines": ["annealing"],
        "circuits": ["Adder", "CC-OTA"],
        "seeds": [1],
        "repeats": 1,
        "warmup": 0,
        "params": {"annealing": {"iterations": 400}},
    }))
    out_dir = tmp_path / "artifacts"
    rc = main(["run", "--suite", str(suite_file),
               "--out", str(out_dir)])
    assert rc == 0
    paths = glob.glob(os.path.join(str(out_dir), "BENCH_*.json"))
    assert len(paths) == 1
    artifact = load_artifact(paths[0])
    assert artifact["suite"] == "unit-cli"

    # identical artifacts compare clean with exit 0
    rc = main(["compare", paths[0], paths[0]])
    assert rc == 0
    assert "no significant regressions" in capsys.readouterr().out

    # a 2x-regressed HEAD exits nonzero ...
    slow = json.loads(open(paths[0]).read())
    for run in slow["runs"]:
        run["runtime_s"] *= 2.0
    slow_path = tmp_path / "BENCH_slow.json"
    slow_path.write_text(json.dumps(slow))
    rc = main(["compare", paths[0], str(slow_path)])
    assert rc == 1
    assert "REGRESSED" in capsys.readouterr().out

    # ... unless --warn-only soft-launches the gate
    rc = main(["compare", paths[0], str(slow_path), "--warn-only"])
    assert rc == 0

    # report renders to a file in both formats
    report_md = tmp_path / "report.md"
    rc = main(["report", paths[0], "--out", str(report_md)])
    assert rc == 0
    assert "# Benchmark report" in report_md.read_text()
    report_html = tmp_path / "report.html"
    rc = main(["report", paths[0], "--format", "html",
               "--out", str(report_html)])
    assert rc == 0
    assert report_html.read_text().startswith("<!DOCTYPE html>")


def test_cli_suites_lists_builtins(capsys):
    assert main(["suites"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out and "paper" in out


def test_cli_errors_exit_2(tmp_path, capsys):
    assert main(["run", "--suite", "no-such-suite",
                 "--out", str(tmp_path)]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    good = synthetic_artifact({"annealing:Adder:1": [0.1]})
    good_path = tmp_path / "good.json"
    good_path.write_text(json.dumps(good))
    assert main(["compare", str(bad), str(good_path)]) == 2
    assert main(["report", str(bad)]) == 2
