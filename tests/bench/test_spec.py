"""Suite definitions: matrices, validation, JSON files."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BUILTIN_SUITES,
    SuiteError,
    SuiteSpec,
    get_suite,
    load_suite_file,
)


def test_case_matrix_order_is_deterministic():
    suite = SuiteSpec(
        name="t", engines=["eplace-a", "annealing"],
        circuits=["Adder", "CC-OTA"], seeds=[1, 2],
    )
    keys = [case.key for case in suite.cases()]
    assert keys == [
        "eplace-a:Adder:1", "eplace-a:Adder:2",
        "eplace-a:CC-OTA:1", "eplace-a:CC-OTA:2",
        "annealing:Adder:1", "annealing:Adder:2",
        "annealing:CC-OTA:1", "annealing:CC-OTA:2",
    ]


def test_unknown_engine_and_circuit_rejected():
    with pytest.raises(SuiteError, match="unknown engines"):
        SuiteSpec(name="t", engines=["fancy"], circuits=["Adder"])
    with pytest.raises(SuiteError, match="unknown circuits"):
        SuiteSpec(name="t", engines=["eplace-a"], circuits=["Nope"])
    with pytest.raises(SuiteError, match="repeats"):
        SuiteSpec(name="t", engines=["eplace-a"],
                  circuits=["Adder"], repeats=0)


def test_builtin_suites_are_valid_and_fresh():
    for name in sorted(BUILTIN_SUITES):
        first = get_suite(name)
        second = get_suite(name)
        assert first is not second  # mutable specs are never shared
        assert first.cases()
    smoke = get_suite("smoke")
    # the acceptance floor: at least 2 engines x 2 circuits
    assert len(smoke.engines) >= 2 and len(smoke.circuits) >= 2


def test_suite_file_round_trip(tmp_path):
    path = tmp_path / "mine.json"
    path.write_text(json.dumps({
        "name": "mine",
        "engines": ["annealing"],
        "circuits": ["Comp1"],
        "seeds": [7],
        "repeats": 2,
        "warmup": 0,
        "params": {"annealing": {"iterations": 100}},
    }))
    suite = load_suite_file(path)
    assert suite.name == "mine"
    assert [c.key for c in suite.cases()] == ["annealing:Comp1:7"]
    assert get_suite(str(path)).name == "mine"  # path form resolves


def test_suite_file_errors(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SuiteError, match="JSON"):
        load_suite_file(bad)
    extra = tmp_path / "extra.json"
    extra.write_text(json.dumps({
        "engines": ["annealing"], "circuits": ["Comp1"],
        "typo_field": 1,
    }))
    with pytest.raises(SuiteError, match="typo_field"):
        load_suite_file(extra)
    missing = tmp_path / "missing.json"
    missing.write_text(json.dumps({"engines": ["annealing"]}))
    with pytest.raises(SuiteError, match="circuits"):
        load_suite_file(missing)
    with pytest.raises(SuiteError, match="unknown suite"):
        get_suite("no-such-suite")
