"""gnnsmoke suite: spec validity and the two GNN bench engines."""

from __future__ import annotations

import pytest

from repro.bench import SuiteSpec, get_suite, run_suite, runs_by_case
from repro.bench.spec import BENCH_ENGINES, SuiteError


def test_bench_engines_extend_placement_methods():
    assert "gnn-train" in BENCH_ENGINES
    assert "eplace-ap" in BENCH_ENGINES
    suite = SuiteSpec(name="t", engines=["gnn-train", "eplace-ap"],
                      circuits=["Adder"])
    assert [c.key for c in suite.cases()] == [
        "gnn-train:Adder:1", "eplace-ap:Adder:1"]
    with pytest.raises(SuiteError, match="unknown engines"):
        SuiteSpec(name="t", engines=["gnn-infer"], circuits=["Adder"])


def test_gnnsmoke_builtin_shape():
    suite = get_suite("gnnsmoke")
    assert set(suite.engines) == {"gnn-train", "eplace-ap"}
    assert len(suite.circuits) == 2
    assert "samples" in suite.params["gnn-train"]


@pytest.fixture(scope="module")
def gnn_artifact():
    """One tiny run of both GNN engines (shared across tests)."""
    tiny = SuiteSpec(
        name="gnn-unit",
        engines=["gnn-train", "eplace-ap"],
        circuits=["Adder"],
        seeds=[1],
        repeats=1,
        warmup=0,
        params={
            "gnn-train": {"samples": 32, "epochs": 3},
            "eplace-ap": {
                "samples": 32, "epochs": 3, "alpha": 1.0,
                "gp": {"max_iters": 40, "min_iters": 10, "bins": 8},
            },
        },
    )
    return run_suite(tiny)


def test_gnn_train_case_records_training_only(gnn_artifact):
    run = runs_by_case(gnn_artifact)["gnn-train:Adder:1"][0]
    assert run["runtime_s"] > 0
    assert run["metrics"]["hpwl"] > 0  # seed placement metrics
    assert "gnn.train" in run["phases"]
    # dataset generation happens outside the timed region
    assert "gnn.dataset" not in run["phases"]


def test_eplace_ap_case_places_with_model(gnn_artifact):
    run = runs_by_case(gnn_artifact)["eplace-ap:Adder:1"][0]
    assert run["metrics"]["hpwl"] > 0
    assert run["metrics"]["overlap"] == pytest.approx(0.0, abs=1e-9)
    assert "eplace.gp" in run["phases"]


def test_gnn_engine_rejects_unknown_override():
    tiny = SuiteSpec(
        name="bad", engines=["gnn-train"], circuits=["Adder"],
        repeats=1, warmup=0,
        params={"gnn-train": {"samples": 8, "epochs": 1, "typo": 1}},
    )
    with pytest.raises(Exception, match="typo"):
        run_suite(tiny)
