"""Shared fixtures: synthetic artifacts and a CI-speed tiny suite."""

from __future__ import annotations

import pytest

from repro.bench import SuiteSpec, validate_artifact


def synthetic_artifact(
    runtimes: dict[str, list[float]],
    hpwl: float = 100.0,
    area: float = 50.0,
    overlap: float = 0.0,
    suite: str = "synthetic",
) -> dict:
    """Build a valid artifact from ``case key -> runtime samples``."""
    runs = []
    for key, samples in runtimes.items():
        engine, circuit, seed = key.split(":")
        for repeat, runtime in enumerate(samples):
            runs.append({
                "engine": engine,
                "circuit": circuit,
                "seed": int(seed),
                "repeat": repeat,
                "runtime_s": float(runtime),
                "metrics": {
                    "hpwl": hpwl,
                    "area": area,
                    "overlap": overlap,
                    "utilization": 0.6,
                },
                "phases": {
                    "flow": {"calls": 1, "total_s": runtime,
                             "self_s": runtime},
                },
                "mem": (
                    {"overall_peak_kib": 100.0,
                     "phases": {"flow": 100.0}}
                    if repeat == 0 else None
                ),
                "convergence": [
                    {"phase": "iter", "iterations": 4,
                     "series": {"hpwl": [4.0, 3.0, 2.0, 1.0]},
                     "final": {"hpwl": 1.0}}
                ] if repeat == 0 else [],
            })
    return validate_artifact({
        "schema": "repro.bench/1",
        "created_utc": "2026-08-05T00:00:00Z",
        "suite": suite,
        "config": {"repeats": 2, "warmup": 1, "engines": [],
                   "circuits": [], "seeds": []},
        "fingerprint": {"git_sha": "deadbeef", "git_dirty": False,
                        "python": "3.11", "numpy": "2.0",
                        "platform": "test", "machine": "x",
                        "processor": None, "cpu_count": 1},
        "runs": runs,
    })


@pytest.fixture
def base_artifact():
    return synthetic_artifact({
        "eplace-a:Adder:1": [0.50, 0.52, 0.48],
        "annealing:Adder:1": [0.30, 0.31, 0.29],
    })


@pytest.fixture
def tiny_suite():
    """Smallest meaningful 2-engine x 2-circuit matrix for CI tests."""
    return SuiteSpec(
        name="unit",
        engines=["eplace-a", "annealing"],
        circuits=["Adder", "CC-OTA"],
        seeds=[1],
        repeats=1,
        warmup=0,
        params={
            "eplace-a": {
                "gp": {"max_iters": 40, "min_iters": 10, "bins": 8},
                "dp": {"iterate_rounds": 1, "refine_rounds": 0,
                       "time_limit_s": 10.0},
            },
            "annealing": {"iterations": 500},
        },
    )
