"""Regression detection on synthetic fixtures, including a
deliberately 2x-regressed HEAD (the acceptance-criteria case)."""

from __future__ import annotations

import pytest

from repro.bench import (
    bootstrap_ratio_ci,
    compare_artifacts,
    format_comparison,
)
from .conftest import synthetic_artifact


def test_identical_artifacts_pass(base_artifact):
    comparison = compare_artifacts(base_artifact, base_artifact)
    assert comparison.ok
    assert not comparison.regressions()
    assert "no significant regressions" in format_comparison(comparison)


def test_two_x_slowdown_flags_runtime_regression(base_artifact):
    regressed = synthetic_artifact({
        "eplace-a:Adder:1": [1.00, 1.04, 0.96],  # 2x the base
        "annealing:Adder:1": [0.30, 0.31, 0.29],
    })
    comparison = compare_artifacts(base_artifact, regressed)
    assert not comparison.ok
    keys = [key for key, _ in comparison.regressions()]
    assert keys == ["eplace-a:Adder:1"]
    verdict = comparison.regressions()[0][1]
    assert verdict.metric == "runtime_s"
    assert verdict.ratio == pytest.approx(2.0, rel=0.05)
    assert verdict.ci_low > 1.10  # significant, not just slower
    assert "REGRESSED" in format_comparison(comparison)


def test_noise_within_tolerance_passes(base_artifact):
    wobbly = synthetic_artifact({
        "eplace-a:Adder:1": [0.51, 0.53, 0.49],  # ~2% drift
        "annealing:Adder:1": [0.31, 0.30, 0.30],
    })
    comparison = compare_artifacts(base_artifact, wobbly)
    assert comparison.ok


def test_quality_regression_flags_hpwl(base_artifact):
    worse = synthetic_artifact(
        {
            "eplace-a:Adder:1": [0.50, 0.52, 0.48],
            "annealing:Adder:1": [0.30, 0.31, 0.29],
        },
        hpwl=110.0,  # +10% over the base's 100.0
    )
    comparison = compare_artifacts(base_artifact, worse)
    metrics = [v.metric for _, v in comparison.regressions()]
    assert "hpwl" in metrics and "runtime_s" not in metrics


def test_new_overlap_is_absolute_regression(base_artifact):
    leaky = synthetic_artifact(
        {
            "eplace-a:Adder:1": [0.50, 0.52, 0.48],
            "annealing:Adder:1": [0.30, 0.31, 0.29],
        },
        overlap=0.5,  # base had 0.0
    )
    comparison = compare_artifacts(base_artifact, leaky)
    metrics = [v.metric for _, v in comparison.regressions()]
    assert "overlap" in metrics


def test_improvement_reported_but_passing(base_artifact):
    faster = synthetic_artifact({
        "eplace-a:Adder:1": [0.25, 0.26, 0.24],
        "annealing:Adder:1": [0.30, 0.31, 0.29],
    })
    comparison = compare_artifacts(base_artifact, faster)
    assert comparison.ok
    assert "improved" in format_comparison(comparison)


def test_disjoint_cases_reported_not_failed(base_artifact):
    other = synthetic_artifact({
        "eplace-a:Adder:1": [0.50, 0.52, 0.48],
        "xu-ispd19:Adder:1": [0.40, 0.41, 0.39],
    })
    comparison = compare_artifacts(base_artifact, other)
    assert comparison.only_base == ["annealing:Adder:1"]
    assert comparison.only_head == ["xu-ispd19:Adder:1"]
    assert comparison.ok  # membership changes are not perf signals


def test_single_repeat_degenerates_to_point_ratio():
    base = synthetic_artifact({"annealing:Adder:1": [0.30]})
    slow = synthetic_artifact({"annealing:Adder:1": [0.60]})
    comparison = compare_artifacts(base, slow)
    assert not comparison.ok
    verdict = comparison.regressions()[0][1]
    assert verdict.ci_low == verdict.ci_high == pytest.approx(2.0)


def test_bootstrap_ci_is_seeded_and_covers_ratio():
    base = [1.00, 1.05, 0.95, 1.02]
    head = [1.50, 1.55, 1.45, 1.52]
    first = bootstrap_ratio_ci(base, head, seed=0)
    second = bootstrap_ratio_ci(base, head, seed=0)
    assert first == second  # reproducible reports
    low, high = first
    assert low < 1.5 < high or low <= 1.55  # CI brackets ~1.5
    assert low > 1.2  # clearly regressed
