"""``bench compare --update-baseline``: baseline escalation workflow."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main
from .conftest import synthetic_artifact


@pytest.fixture
def artifacts(tmp_path):
    def write(name: str, runtimes) -> str:
        path = tmp_path / name
        with open(path, "w") as handle:
            json.dump(synthetic_artifact(runtimes), handle)
        return str(path)

    base = write("base.json", {"annealing:Comp1:1": [1.0, 1.0, 1.0]})
    good = write("good.json", {"annealing:Comp1:1": [1.0, 1.0, 1.0]})
    slow = write("slow.json", {"annealing:Comp1:1": [9.0, 9.0, 9.0]})
    return base, good, slow, tmp_path


def test_passing_compare_promotes_head(artifacts, capsys):
    base, good, _, tmp_path = artifacts
    target = tmp_path / "baselines" / "smoke-ci.json"
    target.parent.mkdir()
    rc = main(["compare", base, good,
               "--update-baseline", str(target)])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"baseline : {target} updated" in out
    # byte-for-byte the HEAD artifact, ready to commit
    assert target.read_bytes() == open(good, "rb").read()


def test_failing_compare_never_touches_baseline(artifacts, capsys):
    base, _, slow, tmp_path = artifacts
    target = tmp_path / "smoke-ci.json"
    rc = main(["compare", base, slow,
               "--update-baseline", str(target)])
    assert rc == 1
    assert not target.exists()
    assert "NOT updated" in capsys.readouterr().err


def test_warn_only_failing_compare_still_skips_update(artifacts):
    base, _, slow, tmp_path = artifacts
    target = tmp_path / "smoke-ci.json"
    rc = main(["compare", base, slow, "--warn-only",
               "--update-baseline", str(target)])
    assert rc == 0  # warn-only keeps CI green
    assert not target.exists()  # but never promotes a regression
