"""Artifact schema: validation, save/load, grouping."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    ArtifactError,
    artifact_filename,
    load_artifact,
    runs_by_case,
    save_artifact,
)
from .conftest import synthetic_artifact


def test_save_load_round_trip(tmp_path, base_artifact):
    path = tmp_path / artifact_filename("20260805T000000Z")
    assert path.name == "BENCH_20260805T000000Z.json"
    save_artifact(base_artifact, path)
    reloaded = load_artifact(path)
    assert reloaded == base_artifact


def test_runs_by_case_groups_and_orders(base_artifact):
    grouped = runs_by_case(base_artifact)
    assert sorted(grouped) == [
        "annealing:Adder:1", "eplace-a:Adder:1",
    ]
    repeats = [r["repeat"] for r in grouped["eplace-a:Adder:1"]]
    assert repeats == [0, 1, 2]


def test_wrong_schema_rejected(tmp_path):
    doc = synthetic_artifact({"annealing:Adder:1": [0.1]})
    doc["schema"] = "repro.bench/99"
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="schema"):
        load_artifact(path)


def test_missing_keys_rejected(tmp_path):
    doc = synthetic_artifact({"annealing:Adder:1": [0.1]})
    del doc["fingerprint"]
    with pytest.raises(ArtifactError, match="fingerprint"):
        save_artifact(doc, tmp_path / "x.json")

    doc = synthetic_artifact({"annealing:Adder:1": [0.1]})
    del doc["runs"][0]["metrics"]
    with pytest.raises(ArtifactError, match="missing keys"):
        save_artifact(doc, tmp_path / "y.json")


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{broken")
    with pytest.raises(ArtifactError, match="JSON"):
        load_artifact(path)
