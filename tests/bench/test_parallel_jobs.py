"""``bench run --jobs N`` must match ``--jobs 1`` except for timings."""

from __future__ import annotations

from repro.bench import run_suite
from repro.bench.spec import SuiteSpec


def _tiny_suite() -> SuiteSpec:
    return SuiteSpec(
        name="unit-jobs",
        engines=["annealing"],
        circuits=["Adder", "CC-OTA"],
        seeds=[1, 2],
        repeats=1,
        warmup=0,
        params={
            "annealing": {"iterations": 400, "polish_evals": 50},
        },
    )


def _comparable(doc: dict) -> list[dict]:
    """Everything deterministic in an artifact's runs: identity,
    quality metrics and convergence series — not wall-clock."""
    return [
        {
            "key": (r["engine"], r["circuit"], r["seed"], r["repeat"]),
            "metrics": r["metrics"],
            "convergence": r["convergence"],
        }
        for r in doc["runs"]
    ]


def test_jobs_output_identical_to_sequential():
    sequential = run_suite(_tiny_suite(), jobs=1)
    parallel = run_suite(_tiny_suite(), jobs=4)
    assert _comparable(sequential) == _comparable(parallel)


def test_jobs_keeps_memory_and_phases():
    doc = run_suite(_tiny_suite(), jobs=2)
    for run in doc["runs"]:
        assert run["phases"]
        assert run["mem"]["overall_peak_kib"] > 0
