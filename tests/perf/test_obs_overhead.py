"""Disabled-tracer observability overhead stays within budget.

The instrumentation contract (ISSUE: <1% design target, 5% test gate)
is that with no tracer active, every ``trace.span``/``trace.timer``
call is one thread-local lookup returning a shared no-op context
manager.  The guard compares ePlace-A on CM-OTA1 against the same run
with the obs entry points monkeypatched to raw no-ops — the closest
thing to "instrumentation deleted" without a second checkout.

Timing interleaves the two configurations (A/B per round) so clock
drift and thermal throttling hit both equally, and compares min-of-N:
the minimum is the least noise-contaminated estimate of the true cost,
unlike the mean.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from unittest import mock

from repro.circuits import make
from repro.eplace import EPlaceParams, eplace_global
from repro.obs import trace

_PARAMS = EPlaceParams(max_iters=120, min_iters=120, bins=16)
_ROUNDS = 4
#: 5% relative gate plus a small absolute floor so sub-100ms runs do
#: not fail on scheduler jitter alone
_REL_BUDGET = 0.05
_ABS_SLACK_S = 0.010


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_disabled_tracer_overhead_within_budget():
    circuit = make("CM-OTA1")
    assert not trace.active()

    def run():
        eplace_global(circuit, _PARAMS)

    # strip the instrumentation: spans/timers become bare nullcontexts,
    # records vanish — approximating the pre-obs code path
    null = nullcontext()
    stripped = mock.patch.multiple(
        trace,
        span=lambda name, **attrs: null,
        timer=lambda name: null,
        record=lambda phase, iteration, **values: None,
        active=lambda: False,
    )

    run()  # warm caches (numpy, FFT plans) before either measurement

    instrumented = baseline = float("inf")
    for _ in range(_ROUNDS):
        instrumented = min(instrumented, _timed(run))
        with stripped:
            baseline = min(baseline, _timed(run))

    budget = baseline * (1.0 + _REL_BUDGET) + _ABS_SLACK_S
    assert instrumented <= budget, (
        f"disabled-tracer run took {instrumented:.4f}s vs "
        f"no-obs baseline {baseline:.4f}s "
        f"(budget {budget:.4f}s)"
    )


def test_disabled_path_allocates_no_span_objects():
    """The no-tracer fast path returns the shared singletons."""
    assert trace.span("x") is trace.span("y")
    assert trace.timer("x") is trace.span("x")
    before = trace.NULL_TRACER.to_trace()
    assert not before
