"""Observability overhead guard, asserted on *bookkeeping counts*.

The instrumentation contract is structural, not temporal: with no
tracer active, ``trace.span``/``trace.timer`` must return the shared
no-op singleton without constructing any live span or timer object,
and ``trace.record`` must not touch any buffer.  Asserting on object
construction counts (instead of wall-clock A/B ratios, which flake on
loaded CI runners) pins exactly the property that makes the disabled
path cheap — zero allocations, zero lock acquisitions — independent
of machine speed.
"""

from __future__ import annotations

from unittest import mock

from repro.circuits import make
from repro.eplace import EPlaceParams, eplace_global
from repro.obs import trace

_PARAMS = EPlaceParams(max_iters=40, min_iters=10, bins=8)


class _Counting:
    """Wrap a live span/timer class, counting constructions."""

    def __init__(self, wrapped):
        self.wrapped = wrapped
        self.constructed = 0

    def __call__(self, *args, **kwargs):
        self.constructed += 1
        return self.wrapped(*args, **kwargs)


def _run_counted():
    """Run ePlace-A GP with construction-counting span/timer classes."""
    spans = _Counting(trace._Span)
    timers = _Counting(trace._Timer)
    with mock.patch.object(trace, "_Span", spans), \
            mock.patch.object(trace, "_Timer", timers):
        result = eplace_global(make("CM-OTA1"), _PARAMS)
    return spans, timers, result


def test_disabled_run_constructs_no_span_objects():
    """No tracer active: the engine's instrumentation allocates
    nothing — every span/timer call resolves to the shared no-op."""
    assert not trace.active()
    spans, timers, result = _run_counted()
    assert spans.constructed == 0
    assert timers.constructed == 0
    # and nothing leaked into the shared disabled tracer
    assert not trace.NULL_TRACER.to_trace()
    # the untraced result carries an empty (falsy) trace
    assert not result.trace


def test_enabled_run_accounting_is_consistent():
    """Tracer active: every constructed span is accounted for — the
    recorded span list plus the drop counter equals the number of
    live span objects that were created."""
    with trace.tracing() as tracer:
        spans, timers, result = _run_counted()
    snapshot = tracer.to_trace()
    assert spans.constructed > 0
    assert len(snapshot.spans) + snapshot.dropped_spans == (
        spans.constructed
    )
    assert snapshot.dropped_spans == 0
    # timers aggregate: constructions >= named aggregates, and the
    # call counts sum back to the constructed total
    total_timer_calls = sum(
        agg["calls"] for agg in snapshot.timers.values()
    )
    assert total_timer_calls == timers.constructed
    # the engine's own result snapshot saw the same spans
    assert result.trace.spans


def test_span_capacity_drops_are_counted():
    """Past ``max_spans`` every extra span increments the drop
    counter instead of growing the list."""
    with trace.tracing(max_spans=5) as tracer:
        for index in range(8):
            with trace.span(f"s{index}"):
                pass
    snapshot = tracer.to_trace()
    assert len(snapshot.spans) == 5
    assert snapshot.dropped_spans == 3


def test_record_capacity_drops_are_counted():
    """The convergence ring buffer drops oldest records and counts
    them."""
    with trace.tracing(convergence_capacity=4) as tracer:
        for index in range(7):
            trace.record("phase", index, value=float(index))
    snapshot = tracer.to_trace()
    assert len(snapshot.convergence) == 4
    assert snapshot.dropped_records == 3
    assert [r.iteration for r in snapshot.convergence] == [3, 4, 5, 6]


def test_disabled_path_allocates_no_span_objects():
    """The no-tracer fast path returns the shared singletons."""
    assert trace.span("x") is trace.span("y")
    assert trace.timer("x") is trace.span("x")
    before = trace.NULL_TRACER.to_trace()
    assert not before
