"""Performance-spec and FOM unit + property tests (paper eq. 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf import MetricSpec, PerformanceSpec


class TestMetricSpec:
    def test_higher_is_better_normalisation(self):
        m = MetricSpec("gain", 25.0, "+")
        assert m.normalize(25.0) == 1.0
        assert m.normalize(30.0) == 1.0  # capped
        assert m.normalize(12.5) == pytest.approx(0.5)
        assert m.normalize(0.0) == 0.0
        assert m.normalize(-3.0) == 0.0

    def test_lower_is_better_normalisation(self):
        m = MetricSpec("delay", 100.0, "-")
        assert m.normalize(100.0) == 1.0
        assert m.normalize(50.0) == 1.0  # capped
        assert m.normalize(200.0) == pytest.approx(0.5)
        assert m.normalize(0.0) == 1.0  # zero delay is perfect

    def test_invalid_sense(self):
        with pytest.raises(ValueError, match="sense"):
            MetricSpec("m", 1.0, "x")

    def test_nonpositive_target(self):
        with pytest.raises(ValueError, match="positive"):
            MetricSpec("m", 0.0, "+")


class TestPerformanceSpec:
    def _spec(self):
        return PerformanceSpec(metrics=(
            MetricSpec("a", 10.0, "+", weight=3.0),
            MetricSpec("b", 2.0, "-", weight=1.0),
        ))

    def test_weights_normalised(self):
        w = self._spec().weights()
        assert w["a"] == pytest.approx(0.75)
        assert w["b"] == pytest.approx(0.25)

    def test_fom_weighted_sum(self):
        spec = self._spec()
        # a: 5/10=0.5 ; b: 2/4=0.5
        assert spec.fom({"a": 5.0, "b": 4.0}) == pytest.approx(0.5)

    def test_fom_perfect(self):
        spec = self._spec()
        assert spec.fom({"a": 100.0, "b": 0.1}) == pytest.approx(1.0)

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError, match="missing"):
            self._spec().fom({"a": 5.0})

    def test_satisfied(self):
        spec = self._spec()
        sat = spec.satisfied({"a": 11.0, "b": 3.0})
        assert sat == {"a": True, "b": False}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PerformanceSpec(metrics=(
                MetricSpec("a", 1.0), MetricSpec("a", 2.0),
            ))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PerformanceSpec(metrics=())


@given(st.floats(0.01, 1e6), st.floats(0.01, 1e6))
def test_property_normalisation_in_unit_interval(target, value):
    for sense in ("+", "-"):
        z = MetricSpec("m", target, sense).normalize(value)
        assert 0.0 <= z <= 1.0


@given(
    st.floats(0.1, 100.0),
    st.floats(0.1, 100.0),
    st.floats(min_value=1.001, max_value=4.0),
)
def test_property_monotone_improvement(target, value, factor):
    """Improving a metric never lowers its normalised score."""
    plus = MetricSpec("m", target, "+")
    assert plus.normalize(value * factor) >= plus.normalize(value)
    minus = MetricSpec("m", target, "-")
    assert minus.normalize(value / factor) >= minus.normalize(value)
