"""Symmetry-island and block-fusion tests."""

import numpy as np
import pytest

from repro.annealing import build_blocks, fuse_alignment_blocks, \
    reorder_island
from repro.netlist import (
    AlignmentPair,
    Axis,
    Circuit,
    Device,
    DeviceType,
    SymmetryGroup,
)


def _sym_circuit():
    c = Circuit("c")
    for name in ("A", "B", "S", "F"):
        c.add_device(Device(name, DeviceType.NMOS, 2.0, 1.0))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g", pairs=(("A", "B"),), self_symmetric=("S",))
    )
    return c


class TestIslandConstruction:
    def test_block_count(self):
        blocks = build_blocks(_sym_circuit())
        assert len(blocks) == 2  # island + free device F
        island = blocks[0]
        assert island.group is not None
        assert sorted(island.device_indices) == [0, 1, 2]

    def test_island_internal_symmetry(self):
        island = build_blocks(_sym_circuit())[0]
        # pair members mirror about the island centreline
        rel = dict(zip(island.device_indices, zip(island.rel_x,
                                                  island.rel_y)))
        ax = island.width / 2.0
        assert rel[0][0] + rel[1][0] == pytest.approx(2 * ax)
        assert rel[0][1] == pytest.approx(rel[1][1])
        assert rel[2][0] == pytest.approx(ax)  # self-symmetric centred

    def test_right_member_flipped(self):
        island = build_blocks(_sym_circuit())[0]
        flips = dict(zip(island.device_indices, island.flip_x))
        assert not flips[0]
        assert flips[1]

    def test_island_dimensions(self):
        island = build_blocks(_sym_circuit())[0]
        # two rows: pair row (w=2 each side -> 4 wide) and self row
        assert island.width == pytest.approx(4.0)
        assert island.height == pytest.approx(2.0)

    def test_reorder_island_changes_rows(self):
        circuit = _sym_circuit()
        island = build_blocks(circuit)[0]
        swapped = reorder_island(circuit, island, [1, 0])
        # self-symmetric device now in the bottom row
        rel_y = dict(zip(swapped.device_indices, swapped.rel_y))
        assert rel_y[2] < rel_y[0]

    def test_reorder_free_block_rejected(self):
        circuit = _sym_circuit()
        free = build_blocks(circuit)[1]
        with pytest.raises(ValueError, match="free-device"):
            reorder_island(circuit, free, [0])

    def test_horizontal_axis_island_transposed(self):
        c = Circuit("c")
        for name in ("A", "B"):
            c.add_device(Device(name, DeviceType.NMOS, 2.0, 1.0))
        c.constraints.symmetry_groups.append(
            SymmetryGroup("g", pairs=(("A", "B"),),
                          axis=Axis.HORIZONTAL))
        island = build_blocks(c)[0]
        assert island.height == pytest.approx(2.0)  # stacked
        assert island.width == pytest.approx(2.0)
        assert island.flip_y.any()


class TestFusion:
    def _circuit_with_alignment(self, kind):
        c = Circuit("c")
        c.add_device(Device("L", DeviceType.RESISTOR, 2.0, 4.0))
        c.add_device(Device("R", DeviceType.RESISTOR, 2.0, 2.0))
        c.constraints.alignments.append(AlignmentPair("L", "R", kind))
        return c

    def test_bottom_fuse_aligns_bottoms(self):
        c = self._circuit_with_alignment("bottom")
        blocks = fuse_alignment_blocks(c, build_blocks(c))
        assert len(blocks) == 1
        block = blocks[0]
        bottoms = block.rel_y - np.array([4.0, 2.0]) / 2.0
        assert bottoms[0] == pytest.approx(bottoms[1])

    def test_vcenter_fuse_aligns_x(self):
        c = self._circuit_with_alignment("vcenter")
        block = fuse_alignment_blocks(c, build_blocks(c))[0]
        assert block.rel_x[0] == pytest.approx(block.rel_x[1])

    def test_symmetry_pair_alignment_skipped(self):
        c = Circuit("c")
        for name in ("A", "B"):
            c.add_device(Device(name, DeviceType.NMOS, 2.0, 2.0))
        c.constraints.symmetry_groups.append(
            SymmetryGroup("g", pairs=(("A", "B"),)))
        c.constraints.alignments.append(
            AlignmentPair("A", "B", "bottom"))
        blocks = fuse_alignment_blocks(c, build_blocks(c))
        assert len(blocks) == 1  # still just the island

    def test_fusing_island_member_rejected(self):
        c = Circuit("c")
        for name in ("A", "B", "C"):
            c.add_device(Device(name, DeviceType.NMOS, 2.0, 2.0))
        c.constraints.symmetry_groups.append(
            SymmetryGroup("g", pairs=(("A", "B"),)))
        c.constraints.alignments.append(
            AlignmentPair("A", "C", "bottom"))
        with pytest.raises(ValueError, match="non-trivial"):
            fuse_alignment_blocks(c, build_blocks(c))
