"""Sequence-pair representation and packing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import SequencePair


class TestConstruction:
    def test_identity(self):
        sp = SequencePair.identity(4)
        assert sp.plus == [0, 1, 2, 3]
        assert sp.minus == [0, 1, 2, 3]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutations"):
            SequencePair([0, 0, 1], [0, 1, 2])

    def test_copy_independent(self):
        sp = SequencePair.identity(3)
        other = sp.copy()
        other.plus[0], other.plus[1] = other.plus[1], other.plus[0]
        assert sp.plus == [0, 1, 2]


class TestPacking:
    def test_identity_is_horizontal_row(self):
        sp = SequencePair.identity(3)
        widths = np.array([2.0, 3.0, 1.0])
        heights = np.array([1.0, 1.0, 1.0])
        x, y = sp.pack(widths, heights)
        assert x.tolist() == [0.0, 2.0, 5.0]
        assert y.tolist() == [0.0, 0.0, 0.0]

    def test_reversed_plus_is_vertical_stack(self):
        sp = SequencePair([2, 1, 0], [0, 1, 2])
        widths = np.array([2.0, 2.0, 2.0])
        heights = np.array([1.0, 2.0, 3.0])
        x, y = sp.pack(widths, heights)
        assert x.tolist() == [0.0, 0.0, 0.0]
        assert y.tolist() == [0.0, 1.0, 3.0]

    def test_bounding_box(self):
        sp = SequencePair.identity(2)
        w, h = sp.bounding_box(np.array([2.0, 3.0]),
                               np.array([4.0, 1.0]))
        assert w == pytest.approx(5.0)
        assert h == pytest.approx(4.0)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 8).flatmap(lambda n: st.tuples(
        st.permutations(range(n)),
        st.permutations(range(n)),
        st.lists(st.floats(0.5, 5.0), min_size=n, max_size=n),
        st.lists(st.floats(0.5, 5.0), min_size=n, max_size=n),
    ))
)
def test_property_packing_is_overlap_free(data):
    """Any sequence pair packs without overlaps (core invariant)."""
    plus, minus, widths, heights = data
    sp = SequencePair(plus, minus)
    w = np.asarray(widths)
    h = np.asarray(heights)
    x, y = sp.pack(w, h)
    n = len(plus)
    for i in range(n):
        for j in range(i + 1, n):
            dx = min(x[i] + w[i], x[j] + w[j]) - max(x[i], x[j])
            dy = min(y[i] + h[i], y[j] + h[j]) - max(y[i], y[j])
            assert dx <= 1e-9 or dy <= 1e-9, (i, j, dx, dy)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 7).flatmap(lambda n: st.tuples(
        st.permutations(range(n)),
        st.permutations(range(n)),
        st.lists(st.floats(0.5, 4.0), min_size=n, max_size=n),
    ))
)
def test_property_relations_respected(data):
    """a before b in both sequences implies a is left of b."""
    plus, minus, widths = data
    n = len(plus)
    sp = SequencePair(plus, minus)
    w = np.asarray(widths)
    h = np.ones(n)
    x, y = sp.pack(w, h)
    pos_plus = {b: i for i, b in enumerate(plus)}
    pos_minus = {b: i for i, b in enumerate(minus)}
    for a in range(n):
        for b in range(n):
            if a == b:
                continue
            if pos_plus[a] < pos_plus[b] and pos_minus[a] < pos_minus[b]:
                assert x[a] + w[a] <= x[b] + 1e-9
