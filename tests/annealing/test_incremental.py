"""Incremental cost evaluator vs full recomputation.

The SA hot path trusts :class:`IncrementalCostEvaluator` to track the
cost across thousands of moves without ever rebuilding the placement;
these tests hammer it with long random move sequences on real
testcases and assert the cache never drifts from a from-scratch
evaluation (the module's core invariant: spans are recomputed, never
delta-accumulated, so there is no floating-point drift channel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealing import SAParams, anneal_place
from repro.annealing.annealer import SimulatedAnnealingPlacer, _State
from repro.annealing.incremental import realize_placement
from repro.annealing.islands import build_blocks, fuse_alignment_blocks
from repro.circuits import make


def _prepared_placer(name: str) -> tuple:
    """A placer with the move-loop structures `_place` would build."""
    circuit = make(name)
    placer = SimulatedAnnealingPlacer(circuit, SAParams(iterations=10))
    blocks = fuse_alignment_blocks(circuit, build_blocks(circuit))
    placer._chains = placer._compile_chains(blocks)
    placer._islands = [
        k for k, b in enumerate(blocks)
        if b.group is not None and len(b.row_order) >= 2
    ]
    placer._reorder_cache = {}
    state = _State(circuit, blocks, placer._initial_pair(len(blocks)))
    return placer, state


@pytest.mark.parametrize("name", ["Adder", "CC-OTA"])
def test_incremental_equals_full_after_1k_random_moves(name):
    """1000 random moves: every accepted state audits clean and the
    final incremental cost equals the from-scratch reference cost."""
    placer, state = _prepared_placer(name)
    evaluator = placer._evaluator()
    cost = evaluator.reset(state.blocks, state.pair, state.free_flips)

    rng = np.random.default_rng(42)
    applied = 0
    for u in rng.random((1000, 5)).tolist():
        candidate, touched = placer._propose(state, u)
        if placer._chains and not placer._chains_ok(
                candidate.pair, placer._chains):
            continue
        cost = evaluator.propose(
            candidate.blocks, candidate.pair,
            candidate.free_flips, touched,
        )
        evaluator.commit()
        state = candidate
        applied += 1
        # audit() fully recomputes and raises CostDriftError on any
        # disagreement beyond 1e-9; a healthy cache returns ~0.0
        deviation = evaluator.audit(
            state.blocks, state.pair, state.free_flips
        )
        assert deviation <= 1e-12

    assert applied > 100  # the chain filter must not starve the walk
    placement = realize_placement(
        state.circuit, state.blocks, state.pair, state.free_flips
    )
    # independent reference: the annealer's from-scratch cost function
    assert placer._cost(placement) == pytest.approx(cost, abs=1e-9)


@pytest.mark.parametrize("name", ["Adder", "CC-OTA"])
def test_geometry_moves_leave_packing_shared(name):
    """Flip / reorder proposals must not re-pack the sequence pair."""
    placer, state = _prepared_placer(name)
    evaluator = placer._evaluator()
    evaluator.reset(state.blocks, state.pair, state.free_flips)
    cur = evaluator._cur
    # a flip move on block 0 keeps dims, so bx/by must be shared
    cand = state.copy()
    cand.free_flips[0] = (True, False)
    evaluator.propose(cand.blocks, cand.pair, cand.free_flips, 0)
    assert evaluator._pending.bx is cur.bx
    assert evaluator._pending.by is cur.by


def test_audit_runs_inside_annealing():
    """An end-to-end run with audits after every accepted move."""
    result = anneal_place(
        make("Adder"),
        SAParams(iterations=600, seed=5, audit_interval=1,
                 polish_evals=200),
    )
    assert result.stats["audits"] > 0
    assert result.metrics()["overlap"] == pytest.approx(0.0, abs=1e-9)
