"""Simulated-annealing placer tests."""

import pytest

from repro.annealing import SAParams, anneal_place
from repro.placement import audit_constraints, total_overlap
from repro.simulate import fom


class TestSAParams:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            SAParams(iterations=0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            SAParams(area_weight=-1.0)


class TestPlacement:
    def test_legal_result(self, cc_ota_circuit, fast_sa_params):
        result = anneal_place(cc_ota_circuit, fast_sa_params)
        assert total_overlap(result.placement) == pytest.approx(0.0)
        assert audit_constraints(result.placement).ok

    def test_ordering_chains_respected(self, vco1_circuit,
                                       fast_sa_params):
        result = anneal_place(vco1_circuit, fast_sa_params)
        audit = audit_constraints(result.placement)
        assert audit.ordering == pytest.approx(0.0)
        assert audit.ok

    def test_deterministic_given_seed(self, adder_circuit):
        from repro.circuits import adder

        a = anneal_place(adder(), SAParams(iterations=800, seed=5))
        b = anneal_place(adder(), SAParams(iterations=800, seed=5))
        assert a.metrics()["hpwl"] == pytest.approx(b.metrics()["hpwl"])
        assert a.metrics()["area"] == pytest.approx(b.metrics()["area"])

    def test_more_iterations_not_worse(self, comp1_circuit):
        from repro.circuits import comp1

        short = anneal_place(comp1(), SAParams(iterations=300, seed=7))
        long = anneal_place(comp1(), SAParams(iterations=6000, seed=7))

        def cost(result):
            m = result.metrics()
            return m["hpwl"], m["area"]

        # the longer run keeps the best-seen state, so its combined
        # normalised cost cannot exceed the short run's
        assert long.stats["best_cost"] <= short.stats["best_cost"] + 1e-9

    def test_stats_telemetry(self, adder_circuit, fast_sa_params):
        result = anneal_place(adder_circuit, fast_sa_params)
        assert 0.0 < result.stats["accept_rate"] <= 1.0
        assert result.stats["blocks"] >= 1
        assert result.stats["t0"] > 0

    def test_area_weight_tradeoff(self):
        """Higher area weight buys smaller area (Fig. 5 mechanics)."""
        from repro.circuits import cm_ota1

        light = anneal_place(cm_ota1(),
                             SAParams(iterations=6000, seed=3,
                                      area_weight=0.2))
        heavy = anneal_place(cm_ota1(),
                             SAParams(iterations=6000, seed=3,
                                      area_weight=3.0))
        assert heavy.metrics()["area"] <= light.metrics()["area"] + 1e-9

    def test_cost_hook_changes_result(self, cc_ota_circuit):
        """A performance hook steers the SA (Table V's Perf arm)."""
        from repro.circuits import cc_ota

        plain = anneal_place(cc_ota(), SAParams(iterations=4000, seed=3))
        hooked = anneal_place(
            cc_ota(),
            SAParams(iterations=4000, seed=3, perf_weight=50.0),
            cost_hook=lambda p: -fom(p),
        )
        assert fom(hooked.placement) >= fom(plain.placement) - 1e-9
