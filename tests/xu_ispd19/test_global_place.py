"""[11]-style global placement tests."""

import numpy as np
import pytest

from repro.xu_ispd19 import XuGlobalPlacer, XuParams, xu_global


class TestParams:
    def test_bad_utilization(self):
        with pytest.raises(ValueError, match="utilization"):
            XuParams(utilization=1.5)

    def test_bad_stages(self):
        with pytest.raises(ValueError, match="stages"):
            XuParams(stages=0)


class TestGlobalPlacement:
    @pytest.fixture
    def quick_params(self):
        return XuParams(stages=4, cg_iterations=30)

    def test_reduces_overlap(self, cc_ota_circuit, quick_params):
        placer = XuGlobalPlacer(cc_ota_circuit, quick_params)
        x0, y0 = placer.initial_positions()
        from repro.placement import Placement, total_overlap

        start = total_overlap(Placement(cc_ota_circuit, x0, y0))
        result = placer.place()
        assert total_overlap(result.placement) < 0.5 * start

    def test_deterministic(self, quick_params):
        from repro.circuits import cc_ota

        a = xu_global(cc_ota(), quick_params)
        b = xu_global(cc_ota(), quick_params)
        assert np.allclose(a.placement.x, b.placement.x)

    def test_lambda_schedule_recorded(self, cc_ota_circuit,
                                      quick_params):
        result = xu_global(cc_ota_circuit, quick_params)
        history = result.stats["history"]
        assert len(history) == quick_params.stages
        lambdas = [entry[2] for entry in history]
        assert all(b > a for a, b in zip(lambdas, lambdas[1:]))

    def test_devices_near_region(self, cc_ota_circuit, quick_params):
        """The quadratic fence keeps devices around the region."""
        placer = XuGlobalPlacer(cc_ota_circuit, quick_params)
        result = placer.place()
        margin = placer.region * 0.25
        assert np.all(result.placement.x > -margin)
        assert np.all(result.placement.x < placer.region + margin)

    def test_flow_trails_eplace_a_on_area(self):
        """The Table III claim at small scale: over a few circuits the
        [11]-style flow averages more area than end-to-end ePlace-A."""
        from repro.api import place_eplace_a, place_xu_ispd19
        from repro.circuits import cc_ota, cm_ota1, comp2
        from repro.eplace import EPlaceParams
        from repro.legalize import DetailedParams

        gp = EPlaceParams(max_iters=150, min_iters=30, bins=16,
                          utilization=0.8, eta=0.3)
        dp = DetailedParams(iterate_rounds=2, refine_rounds=2)
        ratio = 0.0
        circuits = (cc_ota, cm_ota1, comp2)
        for make in circuits:
            xu = place_xu_ispd19(make())
            ep = place_eplace_a(make(), gp_params=gp, dp_params=dp)
            ratio += xu.metrics()["area"] / ep.metrics()["area"]
        assert ratio / len(circuits) > 1.0
