"""Batched-kernel agreement, feature cache and fan-out determinism.

The batched kernels in ``repro.gnn.batched`` are held to the loop
reference implementations within 1e-10 (the same contract as
``density.rasterize_loop``), and every ``jobs`` fan-out must be
bit-identical to its sequential run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import (
    NUM_FEATURES,
    FeatureEncoder,
    GNNModel,
    PerformanceModel,
    generate_dataset,
)
from repro.gnn.batched import (
    EnsembleKernels,
    FeatureCache,
    batch_input_grads,
    batch_loss_grads,
    encode_dataset,
)
from repro.gnn.dataset import (
    _random_packing,
    augment_dataset,
    sa_parameter_sweep_samples,
)

TOL = 1e-10


@pytest.fixture(scope="module")
def seed_placement():
    from repro.api import place
    from repro.circuits import cc_ota

    return place(cc_ota(), "eplace-a").placement


@pytest.fixture(scope="module")
def encoder(seed_placement):
    return FeatureEncoder(seed_placement.circuit)


def _random_batch(encoder, batch, seed):
    rng = np.random.default_rng(seed)
    n = encoder.a_hat.shape[0]
    return rng.standard_normal((batch, n, NUM_FEATURES))


class TestBatchedVsLoop:
    @pytest.mark.parametrize("batch", [1, 3, 7])
    def test_loss_and_param_grads_agree(self, encoder, batch):
        """Summed batched grads equal per-sample loop grads (any B)."""
        a_hat = encoder.a_hat
        x = _random_batch(encoder, batch, seed=5)
        rng = np.random.default_rng(1)
        labels = rng.uniform(0, 1, batch)
        model = GNNModel(NUM_FEATURES, hidden=12, seed=3)

        losses, grads = batch_loss_grads(model, a_hat, x, labels)
        ref_sum: dict[str, np.ndarray] = {}
        for b in range(batch):
            cache = model.forward(a_hat, x[b])
            ref_loss, ref_grads = model.loss_gradients(cache, labels[b])
            assert losses[b] == pytest.approx(ref_loss, abs=TOL)
            for k, g in ref_grads.items():
                ref_sum[k] = ref_sum.get(k, 0.0) + g
        assert set(grads) == set(ref_sum)
        for k in grads:
            assert np.abs(grads[k] - ref_sum[k]).max() < TOL

    @pytest.mark.parametrize("batch", [1, 4])
    def test_input_grads_agree(self, encoder, batch):
        a_hat = encoder.a_hat
        x = _random_batch(encoder, batch, seed=9)
        model = GNNModel(NUM_FEATURES, hidden=12, seed=2)
        phis, d_x = batch_input_grads(model, a_hat, x)
        for b in range(batch):
            fwd = model.forward(a_hat, x[b])
            assert phis[b] == pytest.approx(fwd.phi, abs=TOL)
            ref = model.input_gradient(fwd)
            assert np.abs(d_x[b] - ref).max() < TOL

    def test_ragged_final_minibatch(self, encoder):
        """Training must agree even when B doesn't divide the dataset."""
        a_hat = encoder.a_hat
        x = _random_batch(encoder, 5, seed=11)
        model = GNNModel(NUM_FEATURES, hidden=8, seed=0)
        labels = np.array([1.0, 0.0, 1.0, 0.5, 0.0])
        full, _ = batch_loss_grads(model, a_hat, x, labels)
        head, _ = batch_loss_grads(model, a_hat, x[:3], labels[:3])
        tail, _ = batch_loss_grads(model, a_hat, x[3:], labels[3:])
        assert np.abs(np.concatenate([head, tail]) - full).max() < TOL


class TestEnsembleKernels:
    def test_phi_and_input_grad_agree(self, encoder):
        a_hat = encoder.a_hat
        members = [GNNModel(NUM_FEATURES, hidden=10, seed=s)
                   for s in range(4)]
        kern = EnsembleKernels(members)
        feats = _random_batch(encoder, 1, seed=3)[0]

        phis = kern.phi(a_hat, feats)
        phis2, d_feats = kern.phi_and_input_grad(a_hat, feats)
        ref_d = np.zeros_like(feats)
        for i, m in enumerate(members):
            fwd = m.forward(a_hat, feats)
            assert phis[i] == pytest.approx(fwd.phi, abs=TOL)
            assert phis2[i] == pytest.approx(fwd.phi, abs=TOL)
            ref_d += m.input_gradient(fwd)
        assert np.abs(d_feats - ref_d).max() < TOL

    def test_phi_batch_is_ensemble_mean(self, encoder):
        a_hat = encoder.a_hat
        members = [GNNModel(NUM_FEATURES, hidden=10, seed=s)
                   for s in range(3)]
        kern = EnsembleKernels(members)
        x = _random_batch(encoder, 6, seed=21)
        out = kern.phi_batch(a_hat, x)
        for b in range(6):
            ref = np.mean([m.forward(a_hat, x[b]).phi for m in members])
            assert out[b] == pytest.approx(ref, abs=TOL)

    def test_matches_detects_parameter_replacement(self, encoder):
        members = [GNNModel(NUM_FEATURES, hidden=8, seed=s)
                   for s in range(2)]
        kern = EnsembleKernels(members)
        assert kern.matches(members)
        members[1].set_parameters(
            GNNModel(NUM_FEATURES, hidden=8, seed=9).parameters()
        )
        assert not kern.matches(members)

    def test_model_kernel_modes_agree(self, seed_placement):
        """PerformanceModel phi/phi_and_grad: batched == loop."""
        circuit = seed_placement.circuit
        model = PerformanceModel(circuit, hidden=8, seed=1, ensemble=3)
        rng = np.random.default_rng(4)
        n = circuit.num_devices
        x = rng.uniform(0, 8, n)
        y = rng.uniform(0, 8, n)
        phi_b, gx_b, gy_b = model.phi_and_grad(x, y)
        model.inference_kernel = "loop"
        phi_l, gx_l, gy_l = model.phi_and_grad(x, y)
        assert phi_b == pytest.approx(phi_l, abs=TOL)
        assert np.abs(gx_b - gx_l).max() < TOL
        assert np.abs(gy_b - gy_l).max() < TOL


class TestFeatureCache:
    def test_incremental_encode_appends_only(self, encoder,
                                             seed_placement):
        ds = generate_dataset(seed_placement, samples=12, seed=1)
        cache = FeatureCache()
        first = cache.features(encoder, ds)
        assert first.shape[0] == 12

        calls = []
        orig = FeatureCache._encode_rows

        def counting(enc, dataset, lo, hi):
            calls.append((lo, hi))
            return orig(enc, dataset, lo, hi)

        rng = np.random.default_rng(0)
        extras = [_random_packing(seed_placement.circuit, rng)
                  for _ in range(3)]
        bigger = augment_dataset(ds, extras)
        cache._encode_rows = counting  # type: ignore[method-assign]
        second = cache.features(encoder, bigger)
        assert second.shape[0] == 15
        assert calls == [(12, 15)]  # only the new rows were encoded
        assert np.array_equal(second, encode_dataset(encoder, bigger))

    def test_prefix_mutation_invalidates(self, encoder,
                                         seed_placement):
        ds = generate_dataset(seed_placement, samples=8, seed=1)
        cache = FeatureCache()
        cache.features(encoder, ds)
        ds.positions[0, 0, 0] += 0.5  # corrupt the encoded prefix
        refreshed = cache.features(encoder, ds)
        assert np.array_equal(refreshed,
                              encode_dataset(encoder, ds))


class TestTrainingKernels:
    def test_train_kernels_agree_and_report_members(
        self, seed_placement
    ):
        ds = generate_dataset(seed_placement, samples=40, seed=3)
        kwargs = dict(epochs=6, seed=0)
        a = PerformanceModel(seed_placement.circuit, hidden=8, seed=0,
                             ensemble=2)
        rep_a = a.train(ds, kernel="batched", **kwargs)
        b = PerformanceModel(seed_placement.circuit, hidden=8, seed=0,
                             ensemble=2)
        rep_b = b.train(ds, kernel="loop", **kwargs)

        assert rep_a.final_loss == pytest.approx(rep_b.final_loss,
                                                 abs=1e-8)
        for ma, mb in zip(a.members, b.members):
            for k, v in ma.parameters().items():
                assert np.abs(v - mb.parameters()[k]).max() < 1e-8

        # report shape: per-member curves + ensemble-mean history
        assert len(rep_a.member_histories) == 2
        assert all(len(h) == 6 for h in rep_a.member_histories)
        assert len(rep_a.history) == 6
        mean0 = float(np.mean([h[0] for h in rep_a.member_histories]))
        assert rep_a.history[0] == pytest.approx(mean0, abs=TOL)
        assert rep_a.final_loss == pytest.approx(rep_a.history[-1],
                                                 abs=TOL)

    def test_unknown_kernel_rejected(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=8, seed=1)
        model = PerformanceModel(seed_placement.circuit, ensemble=1)
        with pytest.raises(ValueError, match="kernel"):
            model.train(ds, epochs=1, kernel="gpu")


class TestFanOutDeterminism:
    def test_generate_dataset_jobs_bit_identical(self, seed_placement):
        seq = generate_dataset(seed_placement, samples=30, seed=5)
        par = generate_dataset(seed_placement, samples=30, seed=5,
                               jobs=3)
        assert np.array_equal(seq.positions, par.positions)
        assert np.array_equal(seq.flips, par.flips)
        assert np.array_equal(seq.foms, par.foms)
        assert seq.threshold == par.threshold

    def test_sweep_jobs_bit_identical(self, seed_placement):
        circuit = seed_placement.circuit
        seq = sa_parameter_sweep_samples(
            circuit, np.random.default_rng(7), runs=4,
            iterations=120, perturbations=2)
        par = sa_parameter_sweep_samples(
            circuit, np.random.default_rng(7), runs=4,
            iterations=120, perturbations=2, jobs=2)
        assert len(seq) == len(par) > 0
        for a, b in zip(seq, par):
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.y, b.y)

    def test_augment_jobs_bit_identical(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=10, seed=1)
        rng = np.random.default_rng(0)
        extras = [_random_packing(seed_placement.circuit, rng)
                  for _ in range(6)]
        seq = augment_dataset(ds, list(extras))
        par = augment_dataset(ds, list(extras), jobs=3)
        assert np.array_equal(seq.foms, par.foms)
        assert np.array_equal(seq.positions, par.positions)
