"""GNN model, features, dataset and training tests."""

import numpy as np
import pytest

from repro.gnn import (
    NUM_FEATURES,
    FeatureEncoder,
    GNNModel,
    PerformanceModel,
    generate_dataset,
)
from repro.gnn.dataset import _random_packing, augment_dataset


@pytest.fixture(scope="module")
def seed_placement():
    from repro.api import place
    from repro.circuits import cc_ota

    return place(cc_ota(), "eplace-a").placement


class TestFeatureEncoder:
    def test_shapes(self, cc_ota_circuit, rng):
        enc = FeatureEncoder(cc_ota_circuit)
        n = cc_ota_circuit.num_devices
        feats = enc.encode_xy(rng.uniform(0, 8, n), rng.uniform(0, 8, n))
        assert feats.shape == (n, NUM_FEATURES)
        assert enc.a_hat.shape == (n, n)

    def test_a_hat_symmetric(self, cc_ota_circuit):
        enc = FeatureEncoder(cc_ota_circuit)
        assert np.allclose(enc.a_hat, enc.a_hat.T)

    def test_flip_awareness(self, cc_ota_circuit, rng):
        enc = FeatureEncoder(cc_ota_circuit)
        n = cc_ota_circuit.num_devices
        x = rng.uniform(0, 8, n)
        y = rng.uniform(0, 8, n)
        flips = np.zeros(n, dtype=bool)
        flips[0] = True
        plain = enc.encode_xy(x, y)
        flipped = enc.encode_xy(x, y, flips, np.zeros(n, dtype=bool))
        assert not np.allclose(plain, flipped)

    def test_position_gradient_exact(self, cc_ota_circuit, rng):
        model = PerformanceModel(cc_ota_circuit, hidden=8, seed=1,
                                 ensemble=1)
        n = cc_ota_circuit.num_devices
        x = rng.uniform(0, 8, n)
        y = rng.uniform(0, 8, n)
        _, gx, gy = model.phi_and_grad(x, y)
        eps = 1e-6
        for i in (0, n // 2, n - 1):
            bump = np.zeros(n)
            bump[i] = eps
            num_x = (model.phi(x + bump, y) - model.phi(x - bump, y)) \
                / (2 * eps)
            num_y = (model.phi(x, y + bump) - model.phi(x, y - bump)) \
                / (2 * eps)
            assert gx[i] == pytest.approx(num_x, rel=1e-4, abs=1e-10)
            assert gy[i] == pytest.approx(num_y, rel=1e-4, abs=1e-10)


class TestGNNModel:
    def test_forward_in_unit_interval(self, cc_ota_circuit, rng):
        enc = FeatureEncoder(cc_ota_circuit)
        model = GNNModel(NUM_FEATURES, hidden=8, seed=0)
        n = cc_ota_circuit.num_devices
        feats = enc.encode_xy(rng.uniform(0, 8, n),
                              rng.uniform(0, 8, n))
        phi = model.predict(enc.a_hat, feats)
        assert 0.0 < phi < 1.0

    def test_parameter_roundtrip(self):
        a = GNNModel(NUM_FEATURES, hidden=8, seed=0)
        b = GNNModel(NUM_FEATURES, hidden=8, seed=99)
        b.set_parameters(a.parameters())
        assert np.allclose(a.w1, b.w1)
        assert a.b3 == b.b3

    def test_loss_gradient_descends(self, cc_ota_circuit, rng):
        """A few SGD steps on one sample reduce its loss."""
        enc = FeatureEncoder(cc_ota_circuit)
        model = GNNModel(NUM_FEATURES, hidden=8, seed=0)
        n = cc_ota_circuit.num_devices
        feats = enc.encode_xy(rng.uniform(0, 8, n),
                              rng.uniform(0, 8, n))
        first_loss = None
        for _ in range(30):
            cache = model.forward(enc.a_hat, feats)
            loss, grads = model.loss_gradients(cache, 1.0)
            if first_loss is None:
                first_loss = loss
            params = model.parameters()
            model.set_parameters({
                k: params[k] - 0.05 * grads[k] for k in params
            })
        cache = model.forward(enc.a_hat, feats)
        final_loss, _ = model.loss_gradients(cache, 1.0)
        assert final_loss < first_loss


class TestDataset:
    def test_generate_shapes_and_labels(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=48, seed=1)
        assert len(ds) == 48
        n = seed_placement.circuit.num_devices
        assert ds.positions.shape == (48, n, 2)
        assert ds.flips.shape == (48, n, 2)
        assert np.all((0.0 <= ds.labels) & (ds.labels <= 1.0))
        assert set(np.unique(ds.labels_hard)) <= {0, 1}

    def test_soft_labels_monotone_in_fom(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=48, seed=1)
        order = np.argsort(ds.foms)
        assert np.all(np.diff(ds.labels[order]) <= 1e-12)

    def test_threshold_quantile(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=64, seed=2,
                              threshold_quantile=0.5)
        below = (ds.foms < ds.threshold).mean()
        assert 0.3 < below < 0.7

    def test_augment_appends(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=24, seed=1)
        rng = np.random.default_rng(0)
        extras = [_random_packing(seed_placement.circuit, rng)
                  for _ in range(5)]
        bigger = augment_dataset(ds, extras)
        assert len(bigger) == 29
        assert bigger.threshold == ds.threshold

    def test_random_packing_is_legal(self, seed_placement, rng):
        from repro.placement import total_overlap

        p = _random_packing(seed_placement.circuit, rng)
        assert total_overlap(p) == pytest.approx(0.0, abs=1e-9)


class TestTraining:
    def test_training_learns(self, seed_placement):
        ds = generate_dataset(seed_placement, samples=120, seed=3)
        model = PerformanceModel(seed_placement.circuit, hidden=8,
                                 seed=0, ensemble=1)
        report = model.train(ds, epochs=25, seed=0)
        assert report.train_accuracy > 0.7
        assert report.final_loss < report.history[0]

    def test_trust_mapping(self, cc_ota_circuit):
        model = PerformanceModel(cc_ota_circuit, ensemble=1)
        model.validation_corr = -0.95
        assert model.trust == 1.0
        model.validation_corr = -0.6
        assert model.trust == 0.0
        model.validation_corr = -0.75
        assert 0.0 < model.trust < 1.0

    def test_rejects_foreign_dataset(self, seed_placement,
                                     comp1_circuit):
        ds = generate_dataset(seed_placement, samples=16, seed=1)
        model = PerformanceModel(comp1_circuit, ensemble=1)
        with pytest.raises(ValueError, match="different circuit"):
            model.train(ds, epochs=1)
