"""Rectilinear Steiner tree tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parasitics import steiner_tree
from repro.parasitics.steiner import _prim_tree, _tree_length


class TestBasics:
    def test_single_point(self):
        tree = steiner_tree(np.array([[1.0, 2.0]]))
        assert tree.length == 0.0
        assert tree.edges == ()

    def test_two_points_manhattan(self):
        tree = steiner_tree(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert tree.length == pytest.approx(7.0)

    def test_cross_uses_steiner_point(self):
        """4 arms of a cross: MST needs 30, RSMT needs 20."""
        pts = np.array([[0, 5], [10, 5], [5, 0], [5, 10]], dtype=float)
        mst_len = _tree_length(pts, _prim_tree(pts))
        tree = steiner_tree(pts)
        assert mst_len == pytest.approx(30.0)
        assert tree.length == pytest.approx(20.0)
        assert len(tree.points) > tree.num_terminals

    def test_collinear_no_steiner_gain(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        tree = steiner_tree(pts)
        assert tree.length == pytest.approx(9.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 30), st.floats(0, 30)),
    min_size=2, max_size=7,
))
def test_property_steiner_never_longer_than_mst(points):
    pts = np.asarray(points, dtype=float)
    mst_len = _tree_length(pts, _prim_tree(pts))
    tree = steiner_tree(pts)
    assert tree.length <= mst_len + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 30), st.floats(0, 30)),
    min_size=2, max_size=7,
))
def test_property_steiner_at_least_half_perimeter(points):
    """HPWL is a lower bound for any rectilinear connection."""
    pts = np.asarray(points, dtype=float)
    hpwl = (pts[:, 0].max() - pts[:, 0].min()
            + pts[:, 1].max() - pts[:, 1].min())
    tree = steiner_tree(pts)
    assert tree.length >= hpwl - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 20), st.floats(0, 20)),
    min_size=2, max_size=6,
), st.floats(-15, 15), st.floats(-15, 15))
def test_property_translation_invariant(points, dx, dy):
    pts = np.asarray(points, dtype=float)
    moved = pts + np.array([dx, dy])
    assert steiner_tree(moved).length == pytest.approx(
        steiner_tree(pts).length, rel=1e-9, abs=1e-9)


class TestTranslationRegressions:
    """Concrete point sets where ulp noise used to flip the topology.

    Before canonicalization, translating these sets perturbed the
    Hanan-candidate comparisons enough to pick a different (and up to
    ~1.2 units longer) tree.  Found by random search against the
    pre-fix implementation; kept as fixed regressions because the
    derandomized hypothesis profile cannot rediscover them.
    """

    CASES = (
        ([[6.3, 14.3], [18.0, 6.8], [4.8, 16.4], [11.7, 9.5],
          [5.1, 1.5], [0.4, 11.6]],
         (-9.266691796197755, 14.265989352804613)),
        ([[14.44439978654, 6.791134191775],
          [18.377494324687, 14.247817495461],
          [6.662490879199, 18.587690109166],
          [6.486837469014, 6.399220469006],
          [0.594493917784, 14.018161857333],
          [2.160031539004, 0.973444932775]],
         (4.682032688473402, 14.0506562067199)),
        ([[16.02, 13.81], [12.0, 0.31], [8.45, 11.04], [15.28, 6.82],
          [18.71, 8.93], [1.72, 8.72]],
         (10.23390952274628, -9.357163721641376)),
    )

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_shifted_length_matches(self, case):
        pts, shift = self.CASES[case]
        pts = np.asarray(pts, dtype=float)
        moved = pts + np.asarray(shift)
        assert steiner_tree(moved).length == pytest.approx(
            steiner_tree(pts).length, rel=1e-12, abs=1e-9)

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_topology_identical_under_shift(self, case):
        """Same edge set, not merely the same length."""
        pts, shift = self.CASES[case]
        pts = np.asarray(pts, dtype=float)
        base = steiner_tree(pts)
        moved = steiner_tree(pts + np.asarray(shift))
        assert base.edges == moved.edges
        assert len(base.points) == len(moved.points)

    def test_terminals_round_trip_within_quantum(self):
        """Returned terminal rows stay within one quantum of input."""
        pts = np.asarray(self.CASES[1][0], dtype=float)
        tree = steiner_tree(pts)
        assert np.allclose(tree.points[:len(pts)], pts, atol=1e-7)
