"""Rectilinear Steiner tree tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parasitics import steiner_tree
from repro.parasitics.steiner import _prim_tree, _tree_length


class TestBasics:
    def test_single_point(self):
        tree = steiner_tree(np.array([[1.0, 2.0]]))
        assert tree.length == 0.0
        assert tree.edges == ()

    def test_two_points_manhattan(self):
        tree = steiner_tree(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert tree.length == pytest.approx(7.0)

    def test_cross_uses_steiner_point(self):
        """4 arms of a cross: MST needs 30, RSMT needs 20."""
        pts = np.array([[0, 5], [10, 5], [5, 0], [5, 10]], dtype=float)
        mst_len = _tree_length(pts, _prim_tree(pts))
        tree = steiner_tree(pts)
        assert mst_len == pytest.approx(30.0)
        assert tree.length == pytest.approx(20.0)
        assert len(tree.points) > tree.num_terminals

    def test_collinear_no_steiner_gain(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        tree = steiner_tree(pts)
        assert tree.length == pytest.approx(9.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 30), st.floats(0, 30)),
    min_size=2, max_size=7,
))
def test_property_steiner_never_longer_than_mst(points):
    pts = np.asarray(points, dtype=float)
    mst_len = _tree_length(pts, _prim_tree(pts))
    tree = steiner_tree(pts)
    assert tree.length <= mst_len + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 30), st.floats(0, 30)),
    min_size=2, max_size=7,
))
def test_property_steiner_at_least_half_perimeter(points):
    """HPWL is a lower bound for any rectilinear connection."""
    pts = np.asarray(points, dtype=float)
    hpwl = (pts[:, 0].max() - pts[:, 0].min()
            + pts[:, 1].max() - pts[:, 1].min())
    tree = steiner_tree(pts)
    assert tree.length >= hpwl - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 20), st.floats(0, 20)),
    min_size=2, max_size=6,
), st.floats(-15, 15), st.floats(-15, 15))
def test_property_translation_invariant(points, dx, dy):
    pts = np.asarray(points, dtype=float)
    moved = pts + np.array([dx, dy])
    assert steiner_tree(moved).length == pytest.approx(
        steiner_tree(pts).length, rel=1e-9, abs=1e-9)
