"""RC extraction tests."""

import pytest

from repro.api import place
from repro.parasitics import (
    C_PER_PIN,
    C_PER_UM,
    R_PER_UM,
    extract,
    extract_net,
    critical_length,
    mismatch_distance,
)


@pytest.fixture(scope="module")
def placed_ccota():
    from repro.circuits import cc_ota

    return place(cc_ota(), "eplace-a").placement


def test_extract_covers_all_nets(placed_ccota):
    parasitics = extract(placed_ccota)
    expected = {n.name for n in placed_ccota.circuit.nets}
    assert set(parasitics) == expected


def test_rc_proportional_to_length(placed_ccota):
    for net in placed_ccota.circuit.nets:
        if net.degree < 2:
            continue
        p = extract_net(placed_ccota, net)
        assert p.resistance_ohm == pytest.approx(
            R_PER_UM * p.length_um)
        assert p.capacitance_ff == pytest.approx(
            C_PER_UM * p.length_um + C_PER_PIN * net.degree)
        assert p.elmore_ps >= 0.0


def test_single_pin_net_zero_length(placed_ccota):
    circuit = placed_ccota.circuit
    vinp = next(n for n in circuit.nets if n.name == "vinp")
    p = extract_net(placed_ccota, vinp)
    assert p.length_um == 0.0
    assert p.capacitance_ff == pytest.approx(C_PER_PIN)


def test_critical_length_subset(placed_ccota):
    total = sum(
        extract_net(placed_ccota, n).length_um
        for n in placed_ccota.circuit.nets if n.degree >= 2
    )
    crit = critical_length(placed_ccota)
    assert 0.0 < crit < total


def test_mismatch_zero_for_legal(placed_ccota):
    assert mismatch_distance(placed_ccota) == pytest.approx(0.0,
                                                            abs=1e-9)


def test_mismatch_positive_for_asymmetric(placed_ccota):
    broken = placed_ccota.copy()
    i = broken.circuit.index_of("M1")
    broken.y[i] += 1.0
    assert mismatch_distance(broken) > 0.5
