"""Unit tests for the whole-program symbol table and call graph."""

from __future__ import annotations

import textwrap

from repro.lint.core import ModuleInfo
from repro.lint.graph import (
    ModuleSummary,
    build_graph,
    extract_module,
    module_name_for_rel,
)


def _summaries(sources: dict[str, str]) -> list:
    return [
        extract_module(ModuleInfo(rel, textwrap.dedent(src), rel=rel))
        for rel, src in sorted(sources.items())
    ]


def _graph(sources: dict[str, str]):
    return build_graph(_summaries(sources))


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for_rel("src/repro/obs/live.py") == (
            "repro.obs.live"
        )

    def test_package_init(self):
        assert module_name_for_rel("src/repro/obs/__init__.py") == (
            "repro.obs"
        )

    def test_bare_repro_prefix(self):
        assert module_name_for_rel("repro/api.py") == "repro.api"

    def test_outside_project_is_none(self):
        assert module_name_for_rel("tools/script.py") is None


class TestExtraction:
    def test_relative_import_resolution(self):
        sources = {
            "repro/pkg/__init__.py": "",
            "repro/pkg/a.py": """
                from . import b
                from .b import helper
                from ..other import thing

                def entry():
                    b.helper()
                    helper()
            """,
        }
        summary = _summaries(sources)[1]
        assert summary.aliases["b"] == "repro.pkg.b"
        assert summary.aliases["helper"] == "repro.pkg.b.helper"
        assert summary.aliases["thing"] == "repro.other.thing"

    def test_nested_functions_get_parent_qualified_quals(self):
        sources = {
            "repro/m.py": """
                def outer():
                    def inner():
                        return 1
                    return inner()
            """,
        }
        summary = _summaries(sources)[0]
        quals = {fn.qual for fn in summary.functions}
        assert quals == {"repro.m.outer", "repro.m.outer.inner"}

    def test_summary_roundtrips_through_json_dict(self):
        sources = {
            "repro/m.py": """
                import time

                def tick():
                    return time.perf_counter()
            """,
        }
        summary = _summaries(sources)[0]
        clone = ModuleSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert clone.functions[0].clock_calls == [
            ("wall-clock read time.perf_counter()", 5)
        ]


class TestBinding:
    def test_dotted_cross_module_call_binds(self):
        graph = _graph({
            "repro/a.py": """
                from repro import b

                def entry():
                    return b.helper()
            """,
            "repro/b.py": """
                def helper():
                    return 1
            """,
        })
        assert graph.callees_of("repro.a.entry") == [
            ("repro.b.helper", 5)
        ]

    def test_reexport_alias_chased_through_init(self):
        graph = _graph({
            "repro/pkg/__init__.py": """
                from .impl import helper
            """,
            "repro/pkg/impl.py": """
                def helper():
                    return 1
            """,
            "repro/a.py": """
                from repro import pkg

                def entry():
                    return pkg.helper()
            """,
        })
        assert graph.callees_of("repro.a.entry") == [
            ("repro.pkg.impl.helper", 5)
        ]

    def test_self_call_binds_within_class(self):
        graph = _graph({
            "repro/m.py": """
                class Engine:
                    def run(self):
                        return self._step()

                    def _step(self):
                        return 1
            """,
        })
        assert graph.callees_of("repro.m.Engine.run") == [
            ("repro.m.Engine._step", 4)
        ]

    def test_name_call_binds_nested_then_module(self):
        graph = _graph({
            "repro/m.py": """
                def entry():
                    def inner():
                        return helper()
                    return inner()

                def helper():
                    return 1
            """,
        })
        assert graph.callees_of("repro.m.entry") == [
            ("repro.m.entry.inner", 5)
        ]
        assert graph.callees_of("repro.m.entry.inner") == [
            ("repro.m.helper", 4)
        ]

    def test_dynamic_receiver_falls_back_to_attr_name(self):
        # obj comes from a container: the call cannot be resolved, so
        # it conservatively binds to every project function named run
        graph = _graph({
            "repro/a.py": """
                def entry(objs):
                    return [o.run() for o in objs]
            """,
            "repro/b.py": """
                class EngineB:
                    def run(self):
                        return 2
            """,
            "repro/c.py": """
                class EngineC:
                    def run(self):
                        return 3
            """,
        })
        callees = {q for q, _ in graph.callees_of("repro.a.entry")}
        assert callees == {
            "repro.b.EngineB.run", "repro.c.EngineC.run"
        }

    def test_class_constructor_binds_to_init(self):
        graph = _graph({
            "repro/a.py": """
                from repro.b import Engine

                def entry():
                    return Engine()
            """,
            "repro/b.py": """
                class Engine:
                    def __init__(self):
                        self.x = 1
            """,
        })
        assert graph.callees_of("repro.a.entry") == [
            ("repro.b.Engine.__init__", 5)
        ]

    def test_external_library_calls_have_no_edges(self):
        graph = _graph({
            "repro/a.py": """
                import numpy as np

                def entry(x):
                    return np.asarray(x)
            """,
        })
        assert graph.callees_of("repro.a.entry") == []


class TestReachability:
    SOURCES = {
        "repro/a.py": """
            from repro import b

            def public_entry():
                return b.middle()
        """,
        "repro/b.py": """
            from repro import c

            def middle():
                return c.sink()
        """,
        "repro/c.py": """
            import time

            def sink():
                return time.time()
        """,
    }

    def test_transitive_closure_and_chain(self):
        graph = _graph(self.SOURCES)
        fn = graph.functions["repro.c.sink"]
        assert fn.clock_calls
        reach = graph.reach({
            "repro.c.sink": fn.clock_calls[0],
        })
        assert reach.covers("repro.a.public_entry")
        assert reach.covers("repro.b.middle")
        chain = reach.chain("repro.a.public_entry")
        assert chain[0].startswith("repro.a.public_entry")
        assert chain[-1] == "wall-clock read time.time()"
        assert reach.path("repro.a.public_entry") == [
            "repro.a.public_entry", "repro.b.middle", "repro.c.sink",
        ]

    def test_unrelated_function_not_covered(self):
        graph = _graph(self.SOURCES)
        fn = graph.functions["repro.c.sink"]
        reach = graph.reach({"repro.c.sink": fn.clock_calls[0]})
        assert not reach.covers("repro.c.sink") is False  # source
        assert "repro.c.sink" in reach.covered


class TestLockFacts:
    def test_nested_with_locks_produce_edges(self):
        sources = {
            "repro/m.py": """
                import threading

                A_LOCK = threading.Lock()
                B_LOCK = threading.Lock()

                def nested():
                    with A_LOCK:
                        with B_LOCK:
                            return 1
            """,
        }
        summary = _summaries(sources)[0]
        fn = summary.functions[0]
        assert ("repro.m.A_LOCK", "repro.m.B_LOCK", 9) in fn.lock_edges

    def test_transitive_lock_acquisition(self):
        graph = _graph({
            "repro/a.py": """
                import threading

                A_LOCK = threading.Lock()

                def outer():
                    with A_LOCK:
                        return 1
            """,
            "repro/b.py": """
                from repro import a

                def entry():
                    return a.outer()
            """,
        })
        assert graph.locks_acquired("repro.b.entry") == frozenset(
            {"repro.a.A_LOCK"}
        )


class TestForkFacts:
    def test_guarded_fork_marked(self):
        sources = {
            "repro/m.py": """
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor
                from repro.obs import live

                def guarded(n):
                    with live.suspend_samplers():
                        with ProcessPoolExecutor(max_workers=n) as p:
                            return p

                def bare(n):
                    return ProcessPoolExecutor(max_workers=n)
            """,
        }
        summary = _summaries(sources)[0]
        by_name = {fn.name: fn for fn in summary.functions}
        assert by_name["guarded"].forks[0][2] is True
        assert by_name["bare"].forks[0][2] is False
