"""CLI behaviour, suppression comments, and the self-check.

The self-check is the satellite's acceptance criterion: the linter run
over the repository's own ``src`` tree must exit 0, i.e. the codebase
satisfies its own static-analysis contract.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.lint.cli import main
from repro.lint.core import lint_paths, lint_source

#: repository root (tests/lint/test_cli.py -> repo)
_REPO = pathlib.Path(__file__).resolve().parents[2]

_BAD_ENGINE = textwrap.dedent(
    """
    import time

    def run():
        print("starting")
        return time.perf_counter()
    """
)


@pytest.fixture
def bad_tree(tmp_path):
    """A throwaway tree whose one module violates RPR001 and RPR202."""
    pkg = tmp_path / "repro" / "eplace"
    pkg.mkdir(parents=True)
    target = pkg / "fake.py"
    target.write_text(_BAD_ENGINE)
    return tmp_path


class TestCli:
    def test_findings_exit_code_and_format(self, bad_tree, capsys):
        assert main([str(bad_tree)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR202" in out
        # canonical path:line:col: RULE message lines
        assert "fake.py:6:12: RPR001" in out
        assert "2 findings" in out

    def test_select_restricts_rules(self, bad_tree, capsys):
        assert main([str(bad_tree), "--select", "RPR202"]) == 1
        out = capsys.readouterr().out
        assert "RPR202" in out
        assert "RPR001" not in out

    def test_ignore_drops_rules(self, bad_tree, capsys):
        assert main(
            [str(bad_tree), "--ignore", "RPR001,RPR202"]
        ) == 0
        assert "RPR" not in capsys.readouterr().out.replace(
            "repro.lint", ""
        )

    def test_unknown_rule_id_rejected(self, bad_tree):
        with pytest.raises(SystemExit, match="unknown rule id"):
            main([str(bad_tree), "--select", "RPR999"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR101", "RPR201", "RPR301"):
            assert rule_id in out

    def test_quiet_suppresses_summary(self, bad_tree, capsys):
        main([str(bad_tree), "--quiet"])
        assert "findings" not in capsys.readouterr().out

    def test_syntax_error_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def oops(:\n")
        assert main([str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_document_schema(self, bad_tree, capsys):
        assert main(
            [str(bad_tree), "--format", "json", "--no-cache"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint.findings/1"
        assert doc["errors"] == []
        assert {f["rule"] for f in doc["findings"]} == {
            "RPR001", "RPR202"
        }
        for finding in doc["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "message", "chain"
            }
            assert finding["path"].endswith("fake.py")
            assert isinstance(finding["line"], int)

    def test_json_clean_run(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "ok.py").write_text("def _f(x):\n    return x\n")
        assert main(
            [str(tmp_path), "--format", "json", "--no-cache"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == [] and doc["errors"] == []


class TestBaseline:
    def test_baseline_blocks_only_new_findings(
        self, bad_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(bad_tree), "--write-baseline", str(baseline),
             "--no-cache"]
        ) == 0
        assert baseline.exists()

        # unchanged tree: every finding is baselined, run passes
        assert main(
            [str(bad_tree), "--baseline", str(baseline), "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "2 baselined" in out

        # introduce a NEW violation: only it is reported
        target = bad_tree / "repro" / "eplace" / "fake.py"
        target.write_text(
            target.read_text() + "\n\ndef loud():\n    print('x')\n"
        )
        assert main(
            [str(bad_tree), "--baseline", str(baseline), "--no-cache"]
        ) == 1
        out = capsys.readouterr().out
        assert "RPR202" in out
        assert "1 finding " in out

    def test_malformed_baseline_rejected(self, bad_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"findings": "nope"}')
        with pytest.raises(SystemExit, match="findings document"):
            main(
                [str(bad_tree), "--baseline", str(baseline),
                 "--no-cache"]
            )


class TestSuppression:
    def test_line_suppression(self):
        src = textwrap.dedent(
            """
            import time

            def run():
                return time.perf_counter()  # repro-lint: disable=RPR001
            """
        )
        assert not lint_source(src, "repro/eplace/fake.py")

    def test_line_suppression_is_rule_specific(self):
        src = textwrap.dedent(
            """
            import time

            def run():
                return time.perf_counter()  # repro-lint: disable=RPR202
            """
        )
        findings = lint_source(src, "repro/eplace/fake.py")
        assert {f.rule for f in findings} == {"RPR001"}

    def test_file_suppression(self):
        src = textwrap.dedent(
            """
            # repro-lint: disable-file=RPR001
            import time

            def run():
                return time.perf_counter()
            """
        )
        assert not lint_source(src, "repro/eplace/fake.py")

    def test_disable_all(self):
        src = textwrap.dedent(
            """
            import time

            def run():
                print("x")
                return time.perf_counter()  # repro-lint: disable=all
            """
        )
        findings = lint_source(src, "repro/eplace/fake.py")
        assert {f.rule for f in findings} == {"RPR202"}


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        findings, errors = lint_paths([_REPO / "src"])
        assert errors == []
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_self_check_exits_zero(self, capsys):
        assert main([str(_REPO / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out
