"""One failing and one clean fixture per lint rule.

Fixtures go through :func:`repro.lint.core.lint_source` with a
synthetic ``rel`` path chosen to match (or miss) each rule's scope, so
these sources never need to exist on disk and never get linted when
the real tree is scanned.
"""

from __future__ import annotations

import textwrap

from repro.lint.core import REGISTRY, lint_source


def _lint(source: str, rel: str, rule: str) -> list:
    return lint_source(textwrap.dedent(source), rel, select=[rule])


def _rule_ids(findings: list) -> set[str]:
    return {f.rule for f in findings}


class TestRegistry:
    def test_expected_rules_registered(self):
        assert set(REGISTRY) == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR101", "RPR102",
            "RPR201", "RPR202", "RPR203", "RPR204",
            "RPR301",
            "RPR401", "RPR402", "RPR403", "RPR404",
            "RPR501",
        }

    def test_rules_have_metadata(self):
        for rule in REGISTRY.values():
            assert rule.id and rule.name and rule.summary
            assert rule.scopes


class TestWallClockRPR001:
    BAD = """
        import time

        def run():
            start = time.perf_counter()
            return start
    """

    GOOD = """
        from repro.obs import Stopwatch

        def run():
            watch = Stopwatch()
            return watch.elapsed()
    """

    def test_flags_perf_counter_in_engine(self):
        findings = _lint(self.BAD, "repro/eplace/fake.py", "RPR001")
        assert _rule_ids(findings) == {"RPR001"}
        assert "perf_counter" in findings[0].message

    def test_flags_aliased_import(self):
        src = """
            from time import perf_counter as pc

            def run():
                return pc()
        """
        findings = _lint(src, "repro/annealing/fake.py", "RPR001")
        assert _rule_ids(findings) == {"RPR001"}

    def test_clean_via_stopwatch(self):
        assert not _lint(self.GOOD, "repro/eplace/fake.py", "RPR001")

    def test_obs_package_is_excluded(self):
        assert not _lint(self.BAD, "repro/obs/fake.py", "RPR001")


class TestUnseededRngRPR002:
    def test_flags_legacy_global_numpy_rng(self):
        src = """
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
        """
        findings = _lint(src, "repro/annealing/fake.py", "RPR002")
        assert _rule_ids(findings) == {"RPR002"}
        assert "numpy.random.rand" in findings[0].message

    def test_flags_unseeded_default_rng(self):
        src = """
            import numpy as np

            def jitter(n):
                rng = np.random.default_rng()
                return rng.random(n)
        """
        findings = _lint(src, "repro/annealing/fake.py", "RPR002")
        assert _rule_ids(findings) == {"RPR002"}
        assert "seed" in findings[0].message

    def test_flags_module_level_rng(self):
        src = """
            import numpy as np

            RNG = np.random.default_rng(7)
        """
        findings = _lint(src, "repro/annealing/fake.py", "RPR002")
        assert _rule_ids(findings) == {"RPR002"}
        assert "module level" in findings[0].message

    def test_clean_seeded_rng_inside_function(self):
        src = """
            import numpy as np

            def jitter(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
        """
        assert not _lint(src, "repro/annealing/fake.py", "RPR002")


class TestSetIterationRPR003:
    def test_flags_for_over_set_literal(self):
        src = """
            def walk():
                out = []
                for name in {"a", "b"}:
                    out.append(name)
                return out
        """
        findings = _lint(src, "repro/netlist/fake.py", "RPR003")
        assert _rule_ids(findings) == {"RPR003"}

    def test_flags_list_of_assigned_set(self):
        src = """
            def walk(names):
                pending = set(names)
                return list(pending)
        """
        findings = _lint(src, "repro/netlist/fake.py", "RPR003")
        assert _rule_ids(findings) == {"RPR003"}

    def test_flags_comprehension_over_set(self):
        src = """
            def walk(names):
                return [n.upper() for n in set(names)]
        """
        findings = _lint(src, "repro/netlist/fake.py", "RPR003")
        assert _rule_ids(findings) == {"RPR003"}

    def test_clean_sorted_iteration(self):
        src = """
            def walk(names):
                pending = set(names)
                return [n for n in sorted(pending)]
        """
        assert not _lint(src, "repro/netlist/fake.py", "RPR003")


class TestUnclippedExpLogRPR101:
    def test_flags_bare_np_exp(self):
        src = """
            import numpy as np

            def kernel(x, gamma):
                return np.exp(x / gamma)
        """
        findings = _lint(src, "repro/analytic/fake.py", "RPR101")
        assert _rule_ids(findings) == {"RPR101"}
        assert "overflow" in findings[0].message

    def test_flags_bare_np_log(self):
        src = """
            import numpy as np

            def kernel(s):
                return np.log(s.sum())
        """
        findings = _lint(src, "repro/analytic/fake.py", "RPR101")
        assert _rule_ids(findings) == {"RPR101"}

    def test_clean_clipped_argument(self):
        src = """
            import numpy as np

            def kernel(x, gamma):
                return np.exp(np.clip(x / gamma, -60.0, 60.0))
        """
        assert not _lint(src, "repro/analytic/fake.py", "RPR101")

    def test_clean_clip_through_assignment(self):
        src = """
            import numpy as np

            def kernel(x, gamma):
                shifted = np.minimum((x - x.max()) / gamma, 0.0)
                return np.exp(shifted)
        """
        assert not _lint(src, "repro/analytic/fake.py", "RPR101")

    def test_outside_analytic_scope_not_checked(self):
        src = """
            import numpy as np

            def kernel(x):
                return np.exp(x)
        """
        assert not _lint(src, "repro/eplace/fake.py", "RPR101")


class TestBareDivisionRPR102:
    def test_flags_unguarded_sum_denominator(self):
        src = """
            def grad(a, w):
                return a / w.sum()
        """
        findings = _lint(src, "repro/analytic/fake.py", "RPR102")
        assert _rule_ids(findings) == {"RPR102"}
        assert "epsilon" in findings[0].message

    def test_flags_unguarded_subscript_denominator(self):
        src = """
            def grad(a, sums, seg):
                return a / sums[seg]
        """
        findings = _lint(src, "repro/analytic/fake.py", "RPR102")
        assert _rule_ids(findings) == {"RPR102"}

    def test_clean_maximum_guard(self):
        src = """
            import numpy as np

            def grad(a, w):
                return a / np.maximum(w.sum(), 1e-30)
        """
        assert not _lint(src, "repro/analytic/fake.py", "RPR102")

    def test_clean_comparison_guard(self):
        src = """
            def grad(a, w):
                den = w.sum()
                if den <= 0.0:
                    return a * 0.0
                return a / den
        """
        assert not _lint(src, "repro/analytic/fake.py", "RPR102")

    def test_clean_safe_div_helper(self):
        src = """
            from repro.analytic.stable import safe_div

            def grad(a, w):
                return safe_div(a, w.sum())
        """
        assert not _lint(src, "repro/analytic/fake.py", "RPR102")


class TestSpanContractRPR201:
    BAD = """
        from repro.placement import PlacerResult

        def place(circuit) -> PlacerResult:
            return _solve(circuit)

        def _solve(circuit):
            return PlacerResult()
    """

    GOOD = """
        from repro.obs import trace
        from repro.placement import PlacerResult

        def place(circuit) -> PlacerResult:
            with trace.span("engine.place"):
                return _solve(circuit)

        def _solve(circuit):
            return PlacerResult()
    """

    def test_flags_entry_point_without_span(self):
        findings = _lint(self.BAD, "repro/eplace/fake.py", "RPR201")
        assert _rule_ids(findings) == {"RPR201"}
        assert "span" in findings[0].message

    def test_clean_direct_span(self):
        assert not _lint(self.GOOD, "repro/eplace/fake.py", "RPR201")

    def test_clean_span_via_same_module_callee(self):
        src = """
            from repro.obs import trace
            from repro.placement import PlacerResult

            def place(circuit) -> "PlacerResult":
                return _solve(circuit)

            def _solve(circuit):
                with trace.span("engine.solve"):
                    return PlacerResult()
        """
        assert not _lint(src, "repro/legalize/fake.py", "RPR201")

    def test_non_engine_scope_not_checked(self):
        assert not _lint(self.BAD, "repro/parasitics/fake.py", "RPR201")


class TestLiveProgressRPR203:
    BAD = """
        from repro.obs import trace

        def optimize(tracer):
            for i in range(10):
                tracer.record("engine.loop", i, value=float(i))
    """

    GOOD = """
        from repro.obs import live, trace

        def optimize(tracer):
            for i in range(10):
                tracer.record("engine.loop", i, value=float(i))
                live.progress("engine.loop", i, value=float(i))
    """

    def test_flags_record_without_progress(self):
        findings = _lint(self.BAD, "repro/eplace/fake.py", "RPR203")
        assert _rule_ids(findings) == {"RPR203"}
        assert "live" in findings[0].message

    def test_clean_paired_progress(self):
        assert not _lint(self.GOOD, "repro/eplace/fake.py", "RPR203")

    def test_clean_nested_callback(self):
        # the xu-style pattern: record+progress inside a nested
        # closure still satisfies the outer function
        src = """
            from repro.obs import live, trace

            def optimize(tracer):
                def callback(i, value):
                    tracer.record("engine.cg", i, value=value)
                    live.progress("engine.cg", i, value=value)
                return callback
        """
        assert not _lint(src, "repro/xu_ispd19/fake.py", "RPR203")

    def test_non_engine_scope_not_checked(self):
        assert not _lint(self.BAD, "repro/parasitics/fake.py",
                         "RPR203")


class TestHealthChannelRPR204:
    BAD = """
        from repro.obs import health, live, trace

        HEALTH_FIELDS = ("grad_norm", "step_length")

        def optimize(tracer):
            for i in range(10):
                tracer.record("engine.loop", i, value=float(i))
                live.progress("engine.loop", i, value=float(i))
    """

    GOOD = """
        from repro.obs import health, live, trace

        HEALTH_FIELDS = ("grad_norm", "step_length")

        def optimize(tracer):
            for i in range(10):
                tracer.record("engine.loop", i, value=float(i))
                live.progress("engine.loop", i, value=float(i))
                health.sample("engine.loop", i, grad_norm=1.0,
                              step_length=0.5)
    """

    def test_flags_progress_without_health(self):
        findings = _lint(self.BAD, "repro/eplace/fake.py", "RPR204")
        assert _rule_ids(findings) == {"RPR204"}
        assert "HEALTH_FIELDS" in findings[0].message

    def test_clean_paired_health_sample(self):
        assert not _lint(self.GOOD, "repro/eplace/fake.py", "RPR204")

    def test_undeclared_module_not_checked(self):
        # no HEALTH_FIELDS declaration: the engine has no health
        # instrumentation and progress-only loops stay legal
        src = """
            from repro.obs import live, trace

            def optimize(tracer):
                for i in range(10):
                    tracer.record("engine.loop", i, value=float(i))
                    live.progress("engine.loop", i, value=float(i))
        """
        assert not _lint(src, "repro/eplace/fake.py", "RPR204")

    def test_non_engine_scope_not_checked(self):
        assert not _lint(self.BAD, "repro/parasitics/fake.py",
                         "RPR204")


class TestNoPrintRPR202:
    def test_flags_print(self):
        src = """
            def solve(model):
                print("status", model)
                return model
        """
        findings = _lint(src, "repro/legalize/fake.py", "RPR202")
        assert _rule_ids(findings) == {"RPR202"}

    def test_clean_logger(self):
        src = """
            from repro.obs.log import get_logger

            logger = get_logger(__name__)

            def solve(model):
                logger.debug("status %s", model)
                return model
        """
        assert not _lint(src, "repro/legalize/fake.py", "RPR202")


class TestApiHygieneRPR301:
    def test_flags_missing_annotations_and_docstring(self):
        src = """
            def place(circuit, method="eplace-a"):
                return circuit
        """
        findings = _lint(src, "repro/api.py", "RPR301")
        assert _rule_ids(findings) == {"RPR301"}
        messages = " ".join(f.message for f in findings)
        assert "type hints" in messages
        assert "docstring" in messages

    def test_flags_untyped_public_method(self):
        src = """
            class Placement:
                '''Coordinates.'''

                def shift(self, dx):
                    '''Move everything by dx.'''
                    return dx
        """
        findings = _lint(src, "repro/placement/fake.py", "RPR301")
        assert _rule_ids(findings) == {"RPR301"}
        assert "Placement.shift" in findings[0].message

    def test_clean_typed_documented_function(self):
        src = """
            def place(circuit: object, method: str = "eplace-a",
                      **kwargs: object) -> object:
                '''Run one placement flow.'''
                return circuit
        """
        assert not _lint(src, "repro/api.py", "RPR301")

    def test_private_names_exempt(self):
        src = """
            def _helper(x):
                return x
        """
        assert not _lint(src, "repro/api.py", "RPR301")


class TestShmConfinementRPR501:
    BAD = """
        from multiprocessing import shared_memory

        def stash(payload):
            seg = shared_memory.SharedMemory(
                create=True, size=len(payload)
            )
            seg.buf[: len(payload)] = payload
            return seg.name
    """

    def test_flags_construction_outside_parallel(self):
        findings = _lint(self.BAD, "repro/service/fake.py", "RPR501")
        assert _rule_ids(findings) == {"RPR501"}
        assert "repro.parallel" in findings[0].message

    def test_flags_aliased_class_import(self):
        src = """
            from multiprocessing.shared_memory import SharedMemory as Seg

            def attach(name):
                return Seg(name=name)
        """
        findings = _lint(src, "repro/obs/fake.py", "RPR501")
        assert _rule_ids(findings) == {"RPR501"}

    def test_parallel_module_is_exempt(self):
        assert not _lint(self.BAD, "repro/parallel.py", "RPR501")

    def test_clean_via_transport_helpers(self):
        src = """
            from repro.parallel import shm_dumps, shm_loads

            def roundtrip(result):
                return shm_loads(shm_dumps(result))
        """
        assert not _lint(src, "repro/service/fake.py", "RPR501")
