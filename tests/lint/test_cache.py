"""Incremental cache: warm/cold equivalence and invalidation."""

from __future__ import annotations

import json
import textwrap

from repro.lint.cache import LintCache, registry_signature
from repro.lint.core import lint_paths

_ENGINE = textwrap.dedent(
    """
    import time

    def run():
        return time.perf_counter()
    """
)

_CLEAN = textwrap.dedent(
    """
    def run(x):
        return x
    """
)


def _tree(tmp_path, source=_ENGINE):
    pkg = tmp_path / "repro" / "eplace"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "fake.py").write_text(source)
    return tmp_path


class TestWarmCold:
    def test_warm_run_reproduces_cold_findings(self, tmp_path):
        tree = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"

        cold_cache = LintCache(cache_file)
        cold, errs = lint_paths([tree], cache=cold_cache)
        assert errs == []
        assert cold_cache.misses == 1 and cold_cache.hits == 0

        warm_cache = LintCache(cache_file)
        warm, errs = lint_paths([tree], cache=warm_cache)
        assert errs == []
        assert warm_cache.hits == 1 and warm_cache.misses == 0
        assert [f.to_dict() for f in warm] == [
            f.to_dict() for f in cold
        ]
        assert warm  # the fixture really does violate RPR001

    def test_select_filter_applied_on_cached_findings(self, tmp_path):
        # findings are cached for ALL rules; a later narrower --select
        # must still filter, not replay the full cached set
        tree = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        lint_paths([tree], cache=LintCache(cache_file))

        warm_cache = LintCache(cache_file)
        findings, _ = lint_paths(
            [tree], select=frozenset({"RPR202"}), cache=warm_cache
        )
        assert warm_cache.hits == 1
        assert {f.rule for f in findings} == set()  # no print() here

    def test_graph_findings_come_from_cached_summaries(self, tmp_path):
        # a cross-module RPR004 chain must survive a fully-warm run,
        # i.e. summaries round-trip through the cache well enough to
        # rebuild the call graph without re-parsing anything
        pkg = tmp_path / "repro" / "eplace"
        pkg.mkdir(parents=True)
        (pkg / "entry.py").write_text(textwrap.dedent(
            """
            from repro.eplace import util

            def place(circuit):
                return util._stamp(circuit)
            """
        ))
        (pkg / "util.py").write_text(textwrap.dedent(
            """
            import time

            def _stamp(circuit):
                return time.time(), circuit
            """
        ))
        cache_file = tmp_path / "cache.json"
        cold, _ = lint_paths([tmp_path], cache=LintCache(cache_file))

        warm_cache = LintCache(cache_file)
        warm, _ = lint_paths([tmp_path], cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert {f.rule for f in warm} >= {"RPR004"}
        assert [f.to_dict() for f in warm] == [
            f.to_dict() for f in cold
        ]
        taint = next(f for f in warm if f.rule == "RPR004")
        assert taint.chain  # chain reconstructed from cached summary


class TestInvalidation:
    def test_content_change_misses(self, tmp_path):
        tree = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        lint_paths([tree], cache=LintCache(cache_file))

        _tree(tmp_path, _CLEAN)  # rewrite the module
        cache = LintCache(cache_file)
        findings, _ = lint_paths([tree], cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        assert findings == []

    def test_signature_mismatch_discards_cache(self, tmp_path):
        tree = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        lint_paths([tree], cache=LintCache(cache_file))

        payload = json.loads(cache_file.read_text())
        payload["signature"] = "stale"
        cache_file.write_text(json.dumps(payload))

        cache = LintCache(cache_file)
        lint_paths([tree], cache=cache)
        assert cache.misses == 1 and cache.hits == 0

    def test_corrupt_cache_file_tolerated(self, tmp_path):
        tree = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        findings, errs = lint_paths(
            [tree], cache=LintCache(cache_file)
        )
        assert errs == []
        assert findings

    def test_signature_is_deterministic(self):
        sig = registry_signature()
        assert sig == registry_signature()
        assert len(sig) == 32
        int(sig, 16)  # hex digest
