"""Failing and clean fixtures for the whole-program rule families.

RPR004/RPR005 (interprocedural determinism taint) and RPR401–RPR404
(concurrency) go through :func:`repro.lint.core.lint_sources`, which
runs the full pipeline — per-module rules, summary extraction, graph
binding — over a dict of synthetic modules, so cross-module chains
are exercised exactly as `python -m repro.lint src` would see them.
"""

from __future__ import annotations

import textwrap

from repro.lint.core import lint_source, lint_sources


def _lint(sources: dict[str, str], rule: str) -> list:
    return lint_sources(
        {
            rel: textwrap.dedent(src)
            for rel, src in sources.items()
        },
        select=[rule],
    )


class TestWallClockTaintRPR004:
    BAD = {
        "repro/eplace/entry.py": """
            from repro.eplace import util

            def place(circuit):
                return util._stamp(circuit)
        """,
        "repro/eplace/util.py": """
            import time

            def _stamp(circuit):
                return time.time(), circuit
        """,
    }

    def test_flags_public_entry_with_chain(self):
        findings = _lint(self.BAD, "RPR004")
        assert [f.rule for f in findings] == ["RPR004"]
        finding = findings[0]
        assert finding.path == "repro/eplace/entry.py"
        assert "repro.eplace.entry.place" in finding.message
        assert finding.chain
        assert finding.chain[-1] == "wall-clock read time.time()"
        assert any("util._stamp" in step for step in finding.chain)

    def test_public_intermediate_is_the_anchor(self):
        # when a *public* helper sits between the entry point and the
        # clock read, the helper is the nearest public ancestor and
        # gets the finding; the entry point above it stays clean
        sources = {
            "repro/eplace/entry.py": """
                from repro.eplace import util

                def place(circuit):
                    return util.stamp(circuit)
            """,
            "repro/eplace/util.py": """
                import time

                def stamp(circuit):
                    return _now(), circuit

                def _now():
                    return time.time()
            """,
        }
        findings = _lint(sources, "RPR004")
        assert [f.path for f in findings] == ["repro/eplace/util.py"]
        assert "repro.eplace.util.stamp" in findings[0].message

    def test_clean_when_clock_stays_in_obs(self):
        sources = {
            "repro/eplace/entry.py": """
                from repro.obs import timer

                def place(circuit):
                    return timer.elapsed(), circuit
            """,
            "repro/obs/timer.py": """
                import time

                def elapsed():
                    return time.perf_counter()
            """,
        }
        assert not _lint(sources, "RPR004")

    def test_nearest_public_ancestor_only(self):
        # two public hops: only the innermost public function on the
        # chain is flagged, not every public caller above it
        sources = {
            "repro/api.py": """
                from repro.eplace import entry

                def place(circuit):
                    return entry.place(circuit)
            """,
            "repro/eplace/entry.py": """
                import time

                def place(circuit):
                    return _stamp(circuit)

                def _stamp(circuit):
                    return time.time(), circuit
            """,
        }
        findings = _lint(sources, "RPR004")
        assert [f.path for f in findings] == ["repro/eplace/entry.py"]


class TestRngTaintRPR005:
    def test_flags_laundered_unseeded_rng(self):
        sources = {
            "repro/annealing/entry.py": """
                from repro.annealing import noise

                def anneal(circuit):
                    return noise.jitter(circuit)
            """,
            "repro/annealing/noise.py": """
                import numpy as np

                def jitter(circuit):
                    return _rng().random(), circuit

                def _rng():
                    return np.random.default_rng()
            """,
        }
        findings = _lint(sources, "RPR005")
        assert findings
        assert findings[0].rule == "RPR005"
        assert findings[0].chain

    def test_clean_seeded_rng_chain(self):
        sources = {
            "repro/annealing/entry.py": """
                from repro.annealing import noise

                def anneal(circuit, seed):
                    return noise.jitter(circuit, seed)
            """,
            "repro/annealing/noise.py": """
                import numpy as np

                def jitter(circuit, seed):
                    return np.random.default_rng(seed).random(), circuit
            """,
        }
        assert not _lint(sources, "RPR005")


class TestBareAcquireRPR401:
    def test_flags_bare_acquire(self):
        src = """
            import threading

            _lock = threading.Lock()

            def update(value):
                _lock.acquire()
                STATE = value
                _lock.release()
        """
        findings = lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR401"],
        )
        assert [f.rule for f in findings] == ["RPR401"]
        assert "with lock" in findings[0].message

    def test_clean_with_statement(self):
        src = """
            import threading

            _lock = threading.Lock()

            def update(value):
                with _lock:
                    return value
        """
        assert not lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR401"],
        )

    def test_clean_try_finally_release(self):
        src = """
            import threading

            _lock = threading.Lock()

            def update(value):
                _lock.acquire()
                try:
                    return value
                finally:
                    _lock.release()
        """
        assert not lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR401"],
        )


class TestForkAfterThreadRPR402:
    def test_flags_direct_fork_with_live_sampler(self):
        sources = {
            "repro/runner.py": """
                from concurrent.futures import ProcessPoolExecutor
                from repro.obs.live import ResourceSampler

                def run(bus, tasks):
                    sampler = ResourceSampler(bus)
                    sampler.start()
                    with ProcessPoolExecutor(max_workers=2) as pool:
                        out = list(pool.map(str, tasks))
                    sampler.stop()
                    return out
            """,
        }
        findings = _lint(sources, "RPR402")
        assert findings
        assert findings[0].rule == "RPR402"
        assert "sampler" in findings[0].message

    def test_flags_transitive_fork_with_chain(self):
        sources = {
            "repro/runner.py": """
                from repro import fanout
                from repro.obs.live import ResourceSampler

                def run(bus, tasks):
                    sampler = ResourceSampler(bus)
                    sampler.start()
                    out = fanout.spread(tasks)
                    sampler.stop()
                    return out
            """,
            "repro/fanout.py": """
                from concurrent.futures import ProcessPoolExecutor

                def spread(tasks):
                    with ProcessPoolExecutor(max_workers=2) as pool:
                        return list(pool.map(str, tasks))
            """,
        }
        findings = _lint(sources, "RPR402")
        assert findings
        finding = findings[0]
        assert finding.path == "repro/runner.py"
        assert finding.chain
        assert any("fanout.spread" in step for step in finding.chain)

    def test_clean_when_stopped_before_fork(self):
        sources = {
            "repro/runner.py": """
                from concurrent.futures import ProcessPoolExecutor
                from repro.obs.live import ResourceSampler

                def run(bus, tasks):
                    sampler = ResourceSampler(bus)
                    sampler.start()
                    sampler.stop()
                    with ProcessPoolExecutor(max_workers=2) as pool:
                        return list(pool.map(str, tasks))
            """,
        }
        assert not _lint(sources, "RPR402")

    def test_clean_when_fork_guarded(self):
        sources = {
            "repro/runner.py": """
                from concurrent.futures import ProcessPoolExecutor
                from repro.obs import live

                def run(bus, tasks):
                    with live.ResourceSampler(bus):
                        with live.suspend_samplers():
                            with ProcessPoolExecutor() as pool:
                                return list(pool.map(str, tasks))
            """,
        }
        assert not _lint(sources, "RPR402")

    def test_flags_fork_under_module_lock(self):
        sources = {
            "repro/runner.py": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                _io_lock = threading.Lock()

                def run(tasks):
                    with _io_lock:
                        with ProcessPoolExecutor() as pool:
                            return list(pool.map(str, tasks))
            """,
        }
        findings = _lint(sources, "RPR402")
        assert findings
        assert "lock" in findings[0].message


class TestThreadSharedMutationRPR403:
    def test_flags_unlocked_global_write(self):
        src = """
            import threading

            _events = []

            def _worker():
                _events.append(1)

            def start():
                thread = threading.Thread(target=_worker)
                thread.start()
                return thread
        """
        findings = lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR403"],
        )
        assert [f.rule for f in findings] == ["RPR403"]
        assert "_events" in findings[0].message

    def test_flags_unlocked_global_rebind(self):
        src = """
            import threading

            _state = None

            def _worker():
                global _state
                _state = 1

            def start():
                return threading.Thread(target=_worker)
        """
        findings = lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR403"],
        )
        assert [f.rule for f in findings] == ["RPR403"]

    def test_clean_locked_write(self):
        src = """
            import threading

            _events = []
            _lock = threading.Lock()

            def _worker():
                with _lock:
                    _events.append(1)

            def start():
                return threading.Thread(target=_worker)
        """
        assert not lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR403"],
        )

    def test_clean_instance_state(self):
        src = """
            import threading

            class Sampler:
                def __init__(self):
                    self.samples = []
                    self._thread = threading.Thread(target=self._run)

                def _run(self):
                    self.samples.append(1)
        """
        assert not lint_source(
            textwrap.dedent(src), "repro/obs/fake.py",
            select=["RPR403"],
        )


class TestLockOrderRPR404:
    #: the synthetic two-lock deadlock: one module nests A then B,
    #: another nests B then A through a cross-module call
    DEADLOCK = {
        "repro/m1.py": """
            import threading

            A_LOCK = threading.Lock()
            B_LOCK = threading.Lock()

            def forward():
                with A_LOCK:
                    with B_LOCK:
                        return 1
        """,
        "repro/m2.py": """
            from repro.m1 import A_LOCK, B_LOCK

            def backward():
                with B_LOCK:
                    with A_LOCK:
                        return 2
        """,
    }

    def test_flags_two_lock_cycle(self):
        findings = _lint(self.DEADLOCK, "RPR404")
        assert findings
        finding = findings[0]
        assert finding.rule == "RPR404"
        assert "A_LOCK" in finding.message
        assert "B_LOCK" in finding.message
        assert finding.chain  # the edges forming the cycle

    def test_flags_cycle_through_call_graph(self):
        sources = {
            "repro/m1.py": """
                import threading

                A_LOCK = threading.Lock()
                B_LOCK = threading.Lock()

                def forward():
                    with A_LOCK:
                        take_b()

                def take_b():
                    with B_LOCK:
                        return 1
            """,
            "repro/m2.py": """
                from repro.m1 import A_LOCK, B_LOCK

                def backward():
                    with B_LOCK:
                        take_a()

                def take_a():
                    with A_LOCK:
                        return 2
            """,
        }
        findings = _lint(sources, "RPR404")
        assert findings
        assert findings[0].rule == "RPR404"

    def test_clean_consistent_order(self):
        sources = {
            "repro/m1.py": """
                import threading

                A_LOCK = threading.Lock()
                B_LOCK = threading.Lock()

                def forward():
                    with A_LOCK:
                        with B_LOCK:
                            return 1
            """,
            "repro/m2.py": """
                from repro.m1 import A_LOCK, B_LOCK

                def also_forward():
                    with A_LOCK:
                        with B_LOCK:
                            return 2
            """,
        }
        assert not _lint(sources, "RPR404")


class TestSuppression:
    def test_graph_finding_respects_line_suppression(self):
        sources = {
            "repro/runner.py": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                _io_lock = threading.Lock()

                def run(tasks):
                    with _io_lock:
                        with ProcessPoolExecutor() as pool:  # repro-lint: disable=RPR402
                            return list(pool.map(str, tasks))
            """,
        }
        assert not _lint(sources, "RPR402")
