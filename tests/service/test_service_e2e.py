"""End-to-end service tests over a real socket.

Each test boots a :class:`repro.service.PlacementService` plus its
``ThreadingHTTPServer`` on an ephemeral port, with the run registry
rooted in a temp directory, and drives it with ``urllib`` exactly as
an external client would.  The contracts pinned here are the service's
reason to exist:

* an HTTP job is **bit-identical** to a direct :func:`repro.api.place`
  call with the same request;
* duplicate submissions coalesce to **one** execution and one
  registry run;
* over-budget work is refused with 429 + ``Retry-After``; a full
  queue refuses with 503;
* cancellation lands mid-run through the fork bridge's cancel token;
* the NDJSON event stream round-trips through
  :func:`repro.obs.live.event_from_record` into the same canonical
  sequence an in-process run publishes.
"""

from __future__ import annotations

import json
import time
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager
from dataclasses import replace

import pytest

from repro.api import _reseed_kwargs, place
from repro.circuits import make
from repro.obs import live
from repro.obs.registry import RunRegistry
from repro.placement.io import placement_to_dict
from repro.service import ServiceConfig, make_server

#: request params that keep an xu-ispd19 run under a second
_FAST_XU = {"stages": 2, "cg_iterations": 20}

#: an annealing budget big enough to still be running when the test
#: cancels it, small enough to finish quickly if cancellation fails
_SLOW_SA = {"iterations": 200000}


@contextmanager
def service_server(tmp_path, **overrides):
    """A running service + HTTP server on an ephemeral port."""
    config = ServiceConfig(
        port=0,
        workers=overrides.pop("workers", 1),
        runs_root=str(tmp_path / "runs"),
        **overrides,
    )
    service, server = make_server(config)
    service.start()
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def request(method, url, body=None):
    """(status, json document, headers) for one HTTP exchange."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(
                resp.headers
            )
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def wait_for(base, job_id, states, timeout_s=90.0):
    """Poll a job until its state is in ``states``; returns the doc."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, doc, _ = request("GET", f"{base}/jobs/{job_id}")
        if doc.get("state") in states:
            return doc
        time.sleep(0.1)
    raise AssertionError(
        f"job {job_id} never reached {states}; last doc: {doc}"
    )


def run_ids(tmp_path):
    return [run.run_id
            for run in RunRegistry(tmp_path / "runs").list_runs()]


# ---------------------------------------------------------------------------
# the headline contract: HTTP == direct API call, bit for bit


def test_job_is_bit_identical_to_direct_place(tmp_path):
    with service_server(tmp_path) as (base, _service):
        status, doc, headers = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "xu-ispd19", "seed": 5,
            "params": _FAST_XU,
        })
        assert status == 202
        assert headers["Location"] == f"/jobs/{doc['id']}"
        assert doc["state"] in ("queued", "running")
        done = wait_for(base, doc["id"], ("done", "failed"))
        assert done["state"] == "done"

        kwargs = _reseed_kwargs("xu-ispd19", {}, 5)
        kwargs["gp_params"] = replace(kwargs["gp_params"], **_FAST_XU)
        direct = place(make("Comp1"), "xu-ispd19", **kwargs)
        assert done["result"]["placement"] == \
            placement_to_dict(direct.placement)
        assert done["result"]["metrics"]["hpwl"] == pytest.approx(
            direct.metrics()["hpwl"]
        )

        # the execution was finalized into the run registry
        assert done["run_id"] in run_ids(tmp_path)
        _, stats, _ = request("GET", f"{base}/stats")
        assert stats["completed"] == 1


def test_duplicate_submissions_share_one_execution(tmp_path):
    with service_server(tmp_path) as (base, _service):
        body = {"circuit": "comp1", "method": "xu-ispd19", "seed": 6,
                "params": _FAST_XU}
        status1, doc1, _ = request("POST", f"{base}/jobs", body)
        status2, doc2, _ = request("POST", f"{base}/jobs", body)
        assert status1 == 202
        # the duplicate coalesced onto the in-flight job...
        assert status2 == 200
        assert doc2["id"] == doc1["id"]
        assert doc2["deduped"] is True
        done = wait_for(base, doc1["id"], ("done", "failed"))
        assert done["state"] == "done"
        # ...so exactly one execution reached the registry
        assert len(run_ids(tmp_path)) == 1

        # a post-completion repeat answers from the cache: a fresh job
        # record, but the same result and still only one registry run
        status3, doc3, _ = request("POST", f"{base}/jobs", body)
        assert status3 == 200
        assert doc3["cache_hit"] is True
        assert doc3["id"] != doc1["id"]
        assert doc3["result"] == done["result"]
        assert len(run_ids(tmp_path)) == 1
        _, stats, _ = request("GET", f"{base}/stats")
        assert stats["submitted"] == 1
        assert stats["coalesced"] == 1
        assert stats["cache_hits"] == 1


# ---------------------------------------------------------------------------
# admission control and backpressure


def test_over_budget_job_gets_429_with_retry_after(tmp_path):
    with service_server(tmp_path, max_cost=1.0) as (base, _service):
        status, doc, headers = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "annealing", "seed": 1,
        })
        assert status == 429
        assert "budget" in doc["error"]
        assert int(headers["Retry-After"]) >= 1
        _, stats, _ = request("GET", f"{base}/stats")
        assert stats["rejected_cost"] == 1
        assert len(run_ids(tmp_path)) == 0


def test_full_queue_gets_503(tmp_path):
    with service_server(
        tmp_path, workers=1, queue_depth=1
    ) as (base, _service):
        def submit(seed):
            return request("POST", f"{base}/jobs", {
                "circuit": "comp1", "method": "annealing",
                "seed": seed, "params": _SLOW_SA,
            })

        status1, doc1, _ = submit(1)
        assert status1 == 202
        wait_for(base, doc1["id"], ("running",), timeout_s=30.0)
        status2, doc2, _ = submit(2)     # fills the queue
        assert status2 == 202
        status3, doc3, headers = submit(3)
        assert status3 == 503
        assert "full" in doc3["error"]
        assert int(headers["Retry-After"]) >= 1
        # cancel the backlog so teardown is quick
        for doc in (doc2, doc1):
            request("DELETE", f"{base}/jobs/{doc['id']}")
        wait_for(base, doc1["id"],
                 ("cancelled", "done", "failed"))


# ---------------------------------------------------------------------------
# cancellation and timeouts


def test_cancel_lands_mid_run(tmp_path):
    from repro.parallel import shm_segments

    segments_before = shm_segments()
    with service_server(tmp_path) as (base, _service):
        _, doc, _ = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "annealing", "seed": 2,
            "params": _SLOW_SA,
        })
        wait_for(base, doc["id"], ("running",), timeout_s=30.0)
        status, cancelled, _ = request(
            "DELETE", f"{base}/jobs/{doc['id']}"
        )
        assert status == 200
        assert cancelled["id"] == doc["id"]
        final = wait_for(base, doc["id"], ("cancelled", "done"))
        assert final["state"] == "cancelled"
        # the interrupted run still reached the registry, finalized
        registry = RunRegistry(tmp_path / "runs")
        run = registry.list_runs()[-1]
        assert run.manifest["status"] == "cancelled"
    # the cancelled worker's shared-memory segments were unlinked
    assert shm_segments() == segments_before


def test_per_job_timeout_fails_the_job(tmp_path):
    from repro.parallel import shm_segments

    segments_before = shm_segments()
    with service_server(tmp_path) as (base, _service):
        _, doc, _ = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "annealing", "seed": 3,
            "params": _SLOW_SA, "timeout_s": 0.5,
        })
        final = wait_for(base, doc["id"],
                         ("failed", "done", "cancelled"))
        assert final["state"] == "failed"
        assert "timed out" in final["error"]
        _, stats, _ = request("GET", f"{base}/stats")
        assert stats["timeouts"] == 1
    # a timed-out job's transport segments never outlive the job
    assert shm_segments() == segments_before


def test_cancel_while_queued_never_executes(tmp_path):
    with service_server(
        tmp_path, workers=1, queue_depth=4
    ) as (base, _service):
        _, blocker, _ = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "annealing", "seed": 4,
            "params": _SLOW_SA,
        })
        wait_for(base, blocker["id"], ("running",), timeout_s=30.0)
        _, queued, _ = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "xu-ispd19", "seed": 7,
            "params": _FAST_XU,
        })
        assert queued["state"] == "queued"
        status, doc, _ = request(
            "DELETE", f"{base}/jobs/{queued['id']}"
        )
        assert status == 200
        assert doc["state"] == "cancelled"
        assert "run_id" not in doc  # never reached a worker
        request("DELETE", f"{base}/jobs/{blocker['id']}")
        wait_for(base, blocker["id"], ("cancelled", "done"))


# ---------------------------------------------------------------------------
# event streaming


def _normalize(events):
    """Strip bridge artifacts: task-marker phases and source stamps."""
    out = []
    for event in events:
        if isinstance(event, live.PhaseEvent) and \
                event.phase == "task":
            continue
        out.append(replace(event, source=None))
    return out


def test_ndjson_stream_round_trips_the_live_run(tmp_path):
    body = {"circuit": "comp1", "method": "xu-ispd19", "seed": 8,
            "params": _FAST_XU}
    with service_server(tmp_path) as (base, _service):
        _, doc, _ = request("POST", f"{base}/jobs", body)
        done = wait_for(base, doc["id"], ("done", "failed"))
        assert done["state"] == "done"
        req = urllib.request.Request(
            f"{base}/jobs/{doc['id']}/events"
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["Content-Type"] == \
                "application/x-ndjson"
            lines = resp.read().decode().splitlines()
        streamed = [live.event_from_record(json.loads(line))
                    for line in lines]
        assert len(streamed) == done["events"]

    # the same computation run in-process, on a local bus
    sub = live.CollectingSubscriber()
    bus = live.EventBus()
    bus.subscribe(sub)
    kwargs = _reseed_kwargs("xu-ispd19", {}, 8)
    kwargs["gp_params"] = replace(kwargs["gp_params"], **_FAST_XU)
    with live.session(bus):
        place(make("Comp1"), "xu-ispd19", **kwargs)

    assert _normalize(streamed) == _normalize(sub.canonical())


def test_event_stream_for_unknown_job_is_404(tmp_path):
    with service_server(tmp_path) as (base, _service):
        status, _, _ = request(
            "GET", f"{base}/jobs/nope/events"
        )
        assert status == 404


# ---------------------------------------------------------------------------
# record lifecycle and error surfaces


def test_malformed_submissions_get_400(tmp_path):
    with service_server(tmp_path) as (base, _service):
        status, doc, _ = request("POST", f"{base}/jobs", {
            "circuit": "not-a-circuit",
        })
        assert status == 400
        assert "unknown circuit" in doc["error"]
        status, _, _ = request("POST", f"{base}/jobs", ["array"])
        assert status == 400


def test_unknown_endpoints_and_jobs(tmp_path):
    with service_server(tmp_path) as (base, _service):
        assert request("GET", f"{base}/jobs/nope")[0] == 404
        assert request("GET", f"{base}/bogus")[0] == 404
        assert request("POST", f"{base}/bogus", {})[0] == 404
        assert request("DELETE", f"{base}/bogus")[0] == 404


def test_delete_on_done_job_evicts_to_410(tmp_path):
    with service_server(tmp_path) as (base, _service):
        _, doc, _ = request("POST", f"{base}/jobs", {
            "circuit": "comp1", "method": "xu-ispd19", "seed": 9,
            "params": _FAST_XU,
        })
        wait_for(base, doc["id"], ("done",))
        status, gone, _ = request(
            "DELETE", f"{base}/jobs/{doc['id']}"
        )
        assert status == 200
        assert gone["state"] == "evicted"
        status, doc2, _ = request("GET", f"{base}/jobs/{doc['id']}")
        assert status == 410
        assert doc2["state"] == "evicted"


def test_health_and_stats_endpoints(tmp_path):
    with service_server(tmp_path, workers=2) as (base, _service):
        status, health, _ = request("GET", f"{base}/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2
        status, stats, _ = request("GET", f"{base}/stats")
        assert status == 200
        assert stats["schema"] == "repro.service.stats/1"
        assert stats["uptime_s"] > 0
        assert stats["config"]["queue_depth"] == 16
