"""docs/SERVICE.md must cover every registered route and state.

The route table is code (`repro.service.ROUTES`); the reference is
prose.  Enumerating one against the other keeps them from drifting:
adding an endpoint without documenting it — or documenting one that
does not exist — fails here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.service import JOB_STATES, ROUTES

DOC = Path(__file__).resolve().parents[2] / "docs" / "SERVICE.md"


@pytest.fixture(scope="module")
def service_md():
    assert DOC.is_file(), f"missing {DOC}"
    return DOC.read_text()


@pytest.mark.parametrize(
    "method,pattern", [(m, p) for m, p, _ in ROUTES]
)
def test_every_route_is_documented(service_md, method, pattern):
    assert f"`{method} {pattern}`" in service_md, (
        f"docs/SERVICE.md has no section for `{method} {pattern}`; "
        "document the endpoint (and keep the backtick form so this "
        "test can find it)"
    )


def test_every_job_state_is_documented(service_md):
    for state in JOB_STATES:
        assert f"`{state}`" in service_md, (
            f"docs/SERVICE.md never mentions job state `{state}`"
        )


def test_routes_table_is_complete():
    # the six endpoints the handler dispatches; growing the handler
    # without growing ROUTES (and the doc) should fail loudly
    patterns = {(method, pattern) for method, pattern, _ in ROUTES}
    assert patterns == {
        ("POST", "/jobs"),
        ("GET", "/jobs/<id>"),
        ("GET", "/jobs/<id>/events"),
        ("DELETE", "/jobs/<id>"),
        ("GET", "/healthz"),
        ("GET", "/stats"),
    }
