"""Unit tests for the service wire protocol, cost model and cache.

Everything here is socket-free: request parsing, the content
fingerprint that keys the dedupe cache, the admission cost estimator,
and the result cache's disk layer.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.circuits import make
from repro.service import (
    AdmissionPolicy,
    ProtocolError,
    ResultCache,
    build_place_kwargs,
    canonical_circuit,
    engine_params_doc,
    estimate_cost,
    fingerprint_request,
    parse_job_request,
    resolve_circuit,
)

# ---------------------------------------------------------------------------
# request parsing


def test_parse_minimal_request_defaults():
    req = parse_job_request({"circuit": "comp1"})
    assert req.circuit == "Comp1"
    assert req.method == "eplace-a"
    assert req.seed == 1
    assert req.params == {}
    assert req.timeout_s is None


def test_parse_full_request():
    req = parse_job_request({
        "circuit": "CM-OTA1", "method": "annealing", "seed": 7,
        "params": {"iterations": 500}, "timeout_s": 2.5,
    })
    assert req.circuit == "CM-OTA1"
    assert req.method == "annealing"
    assert req.seed == 7
    assert req.params == {"iterations": 500}
    assert req.timeout_s == 2.5


@pytest.mark.parametrize("doc,fragment", [
    ("not an object", "JSON object"),
    ({}, "circuit"),
    ({"circuit": "nope"}, "unknown circuit"),
    ({"circuit": "comp1", "method": "magic"}, "unknown method"),
    ({"circuit": "comp1", "seed": "one"}, "seed"),
    ({"circuit": "comp1", "seed": True}, "seed"),
    ({"circuit": "comp1", "bogus": 1}, "unknown request field"),
    ({"circuit": "comp1", "params": [1]}, "params"),
    ({"circuit": "comp1", "params": {"seed": 2}}, "params.seed"),
    ({"circuit": "comp1", "params": {"x": [1]}}, "params.x"),
    ({"circuit": "comp1", "timeout_s": "fast"}, "timeout_s"),
    ({"circuit": "comp1", "timeout_s": -1}, "positive"),
])
def test_parse_rejects_malformed(doc, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        parse_job_request(doc)


def test_circuit_aliases_resolve_like_the_cli():
    assert resolve_circuit("cmota1") == "CM-OTA1"
    assert resolve_circuit("CC_OTA") == "CC-OTA"
    with pytest.raises(ProtocolError):
        resolve_circuit("not-a-circuit")


def test_build_place_kwargs_rejects_unknown_engine_param():
    req = parse_job_request(
        {"circuit": "comp1", "params": {"warp_factor": 9}}
    )
    with pytest.raises(ProtocolError, match="unknown engine param"):
        build_place_kwargs(req)


def test_build_place_kwargs_seeds_like_the_api():
    req = parse_job_request(
        {"circuit": "comp1", "method": "annealing", "seed": 11}
    )
    kwargs = build_place_kwargs(req)
    assert kwargs["params"].seed == 11
    req = parse_job_request({"circuit": "comp1", "seed": 4})
    assert build_place_kwargs(req)["gp_params"].seed == 4


# ---------------------------------------------------------------------------
# fingerprints


def _fp(doc):
    return fingerprint_request(parse_job_request(doc))


def test_fingerprint_is_stable_across_aliases_and_defaults():
    base = _fp({"circuit": "comp1", "method": "eplace-a", "seed": 3})
    # alias spelling of the same circuit
    assert _fp({"circuit": "Comp1", "seed": 3}) == base
    # spelling out a default param value changes nothing
    assert _fp({
        "circuit": "comp1", "seed": 3,
        "params": {"utilization": 0.8},
    }) == base
    # timeout_s changes when a job is killed, not what it computes
    assert _fp({
        "circuit": "comp1", "seed": 3, "timeout_s": 60,
    }) == base


def test_fingerprint_separates_distinct_computations():
    base = _fp({"circuit": "comp1", "seed": 3})
    assert _fp({"circuit": "comp1", "seed": 4}) != base
    assert _fp({"circuit": "comp2", "seed": 3}) != base
    assert _fp({
        "circuit": "comp1", "seed": 3, "method": "xu-ispd19",
    }) != base
    assert _fp({
        "circuit": "comp1", "seed": 3,
        "params": {"utilization": 0.7},
    }) != base


def test_fingerprint_covers_constraints_not_just_the_name():
    req = parse_job_request({"circuit": "comp1", "seed": 3})
    circuit = make("Comp1")
    mutated = copy.deepcopy(circuit)
    assert mutated.constraints.symmetry_groups
    mutated.constraints.symmetry_groups.pop(0)
    assert fingerprint_request(req, circuit) != fingerprint_request(
        req, mutated
    )


def test_canonical_circuit_is_json_stable():
    doc_a = canonical_circuit(make("CC-OTA"))
    doc_b = canonical_circuit(make("CC-OTA"))
    assert json.dumps(doc_a, sort_keys=True) == \
        json.dumps(doc_b, sort_keys=True)
    assert doc_a["constraints"]["symmetry_groups"]


def test_engine_params_doc_folds_in_seed_and_defaults():
    doc = engine_params_doc(
        parse_job_request({"circuit": "comp1", "seed": 9})
    )
    assert doc["seed"] == 9
    assert doc["utilization"] == 0.8


# ---------------------------------------------------------------------------
# admission cost model


def test_cost_scales_with_devices_and_engine_weight():
    xu = parse_job_request({"circuit": "comp1", "method": "xu-ispd19"})
    sa = parse_job_request({"circuit": "comp1", "method": "annealing"})
    assert estimate_cost(20, xu) == 2 * estimate_cost(10, xu)
    assert estimate_cost(10, sa) > estimate_cost(10, xu)


def test_cost_scales_with_iteration_budget():
    small = parse_job_request({
        "circuit": "comp1", "method": "xu-ispd19",
        "params": {"cg_iterations": 10},
    })
    big = parse_job_request({
        "circuit": "comp1", "method": "xu-ispd19",
        "params": {"cg_iterations": 100},
    })
    assert estimate_cost(10, big) == pytest.approx(
        10 * estimate_cost(10, small)
    )


def test_admission_policy_gates_on_max_cost():
    req = parse_job_request({"circuit": "comp1"})
    open_gate = AdmissionPolicy(max_cost=None)
    assert open_gate.check(100, req).admitted
    closed = AdmissionPolicy(max_cost=1.0)
    decision = closed.check(100, req, backlog=3)
    assert not decision.admitted
    assert decision.cost > 1.0
    assert "budget" in decision.reason
    assert decision.retry_after_s >= 1
    with pytest.raises(ValueError):
        AdmissionPolicy(max_cost=0.0)


def test_retry_after_grows_with_backlog():
    policy = AdmissionPolicy(max_cost=1.0)
    assert policy.retry_after_s(8) > policy.retry_after_s(1)
    assert policy.retry_after_s(0) >= 1


# ---------------------------------------------------------------------------
# result cache


def test_cache_memory_roundtrip():
    cache = ResultCache()
    assert cache.get("aa") is None
    cache.put("aa", {"x": 1})
    assert cache.get("aa") == {"x": 1}
    assert len(cache) == 1


def test_cache_disk_layer_survives_reconstruction(tmp_path):
    first = ResultCache(tmp_path / "cache")
    first.put("deadbeef", {"metrics": {"hpwl": 1.5}})
    second = ResultCache(tmp_path / "cache")
    assert second.get("deadbeef") == {"metrics": {"hpwl": 1.5}}
    assert len(second) == 1


def test_cache_treats_corrupt_entries_as_misses(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    (cache_dir / "feedface.json").write_text("{not json")
    assert cache.get("feedface") is None


def test_cache_prune_keeps_newest(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for index in range(5):
        cache.put(f"fp{index}", {"n": index})
    removed = cache.prune(keep=2)
    assert removed == 3
    remaining = sorted(
        path.stem for path in (tmp_path / "cache").glob("*.json")
    )
    assert len(remaining) == 2


def _backdated_cache(tmp_path, policy):
    """Four entries with mtimes pinned to a known (old) write order."""
    import os

    cache = ResultCache(tmp_path / "cache", policy=policy)
    for index in range(4):
        cache.put(f"fp{index}", {"n": index})
        # deterministic, far-past mtimes in write order
        os.utime(tmp_path / "cache" / f"fp{index}.json",
                 (1000 + index, 1000 + index))
    return cache


def _remaining(tmp_path):
    return {p.stem for p in (tmp_path / "cache").glob("*.json")}


def test_cache_rejects_unknown_policy(tmp_path):
    with pytest.raises(ValueError, match="policy"):
        ResultCache(tmp_path / "cache", policy="mru")


def test_cache_lru_hit_renews_entry(tmp_path):
    cache = _backdated_cache(tmp_path, "lru")
    assert cache.get("fp0") == {"n": 0}  # touch: fp0 becomes newest
    removed = cache.prune(keep=2)
    assert removed == 2
    # fp0 survives because it was *used*; fp3 is the newest write
    assert _remaining(tmp_path) == {"fp0", "fp3"}


def test_cache_fifo_hit_does_not_renew(tmp_path):
    cache = _backdated_cache(tmp_path, "fifo")
    assert cache.get("fp0") == {"n": 0}  # no touch under fifo
    removed = cache.prune(keep=2)
    assert removed == 2
    # victims are the oldest writes regardless of the hit
    assert _remaining(tmp_path) == {"fp2", "fp3"}


def test_cache_lru_disk_hit_renews_too(tmp_path):
    _backdated_cache(tmp_path, "lru")
    # a fresh instance has an empty memory map: the hit comes from
    # disk and must still refresh the entry's mtime
    reopened = ResultCache(tmp_path / "cache", policy="lru")
    assert reopened.get("fp1") == {"n": 1}
    reopened.prune(keep=1)
    assert _remaining(tmp_path) == {"fp1"}
