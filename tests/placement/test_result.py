"""PlacerResult container tests."""


from repro.placement import Placement, PlacerResult


def test_metrics_bundle(tiny_circuit):
    placement = Placement.from_mapping(tiny_circuit, {
        "A": (1, 1), "B": (5, 1), "C": (2, 5), "D": (9, 2),
    })
    result = PlacerResult(placement=placement, runtime_s=1.5,
                          method="test", stats={"k": 1})
    metrics = result.metrics()
    assert metrics["runtime_s"] == 1.5
    assert metrics["area"] > 0
    assert "hpwl" in metrics
    assert result.stats["k"] == 1
