"""Exact metric unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Circuit, Device, DeviceType, Net
from repro.placement import (
    Placement,
    bounding_area,
    hpwl,
    net_hpwl,
    overlapping_pairs,
    pair_overlap,
    summarize,
    total_overlap,
    utilization,
)


def _grid_circuit(n: int) -> Circuit:
    c = Circuit("grid")
    for i in range(n):
        c.add_device(Device(f"d{i}", DeviceType.NMOS, 2.0, 2.0))
    c.add_net(Net("all", [f"d{i}" for i in range(n)]))
    return c


def test_net_hpwl_two_pins(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (0, 0), "B": (10, 0), "C": (4, 3), "D": (0, 8),
    })
    # n1 connects A.p (-0.6, 0) and C.p (-1.6, 0) offsets from centres
    expected = abs((0 - 0.6) - (4 - 1.6)) + abs(0.0 - 3.0)
    assert net_hpwl(p, tiny_circuit.nets[0]) == pytest.approx(expected)


def test_hpwl_weighting(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (0, 0), "B": (10, 0), "C": (4, 3), "D": (0, 8),
    })
    weighted = hpwl(p, weighted=True)
    unweighted = hpwl(p, weighted=False)
    # net n2 has weight 2, so weighted > unweighted here
    assert weighted > unweighted


def test_single_pin_net_zero_hpwl():
    c = Circuit("c")
    c.add_device(Device("A", DeviceType.NMOS, 2.0, 2.0))
    c.add_net(Net("n", ["A"]))
    p = Placement.zeros(c)
    assert hpwl(p) == 0.0


def test_pair_overlap_disjoint_and_touching():
    a = np.array([0.0, 0.0, 2.0, 2.0])
    assert pair_overlap(a, np.array([3.0, 0.0, 5.0, 2.0])) == 0.0
    assert pair_overlap(a, np.array([2.0, 0.0, 4.0, 2.0])) == 0.0
    assert pair_overlap(a, np.array([1.0, 1.0, 3.0, 3.0])) == 1.0


def test_total_overlap_stack():
    c = _grid_circuit(3)
    p = Placement(c, np.zeros(3), np.zeros(3))  # all coincident 2x2
    # three pairs, each overlapping 4
    assert total_overlap(p) == pytest.approx(12.0)


def test_overlapping_pairs_penetrations():
    c = _grid_circuit(2)
    p = Placement(c, np.array([0.0, 1.0]), np.array([0.0, 0.5]))
    pairs = overlapping_pairs(p)
    assert len(pairs) == 1
    i, j, dx, dy = pairs[0]
    assert (i, j) == (0, 1)
    assert dx == pytest.approx(1.0)
    assert dy == pytest.approx(1.5)


def test_utilization_legal_leq_one():
    c = _grid_circuit(4)
    p = Placement(c, np.array([1.0, 3.0, 1.0, 3.0]),
                  np.array([1.0, 1.0, 3.0, 3.0]))
    assert utilization(p) == pytest.approx(1.0)
    assert bounding_area(p) == pytest.approx(16.0)


def test_summarize_keys(tiny_circuit):
    p = Placement.zeros(tiny_circuit)
    out = summarize(p)
    assert set(out) == {"hpwl", "area", "overlap", "utilization"}


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
    min_size=2, max_size=8,
))
def test_property_translation_invariance(points):
    """HPWL and overlap are invariant under rigid translation."""
    c = _grid_circuit(len(points))
    x = np.array([p[0] for p in points])
    y = np.array([p[1] for p in points])
    p1 = Placement(c, x, y)
    p2 = p1.translate(13.7, -4.2)
    assert hpwl(p2) == pytest.approx(hpwl(p1), abs=1e-9)
    assert total_overlap(p2) == pytest.approx(total_overlap(p1),
                                              abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 40), st.floats(0, 40)),
    min_size=2, max_size=8,
))
def test_property_overlap_nonnegative_and_bounded(points):
    """Total overlap is >= 0 and no pair exceeds the smaller area."""
    c = _grid_circuit(len(points))
    x = np.array([p[0] for p in points])
    y = np.array([p[1] for p in points])
    p = Placement(c, x, y)
    total = total_overlap(p)
    assert total >= 0.0
    n_pairs = len(points) * (len(points) - 1) // 2
    assert total <= n_pairs * 4.0 + 1e-9  # each device is 2x2
