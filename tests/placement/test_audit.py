"""Constraint-audit unit tests."""

import pytest

from repro.netlist import (
    AlignmentPair,
    Axis,
    Circuit,
    Device,
    DeviceType,
    OrderingChain,
    SymmetryGroup,
)
from repro.placement import Placement, audit_constraints


def _circuit_with_constraints():
    c = Circuit("c")
    for name in ("A", "B", "S", "L", "R"):
        c.add_device(Device(name, DeviceType.NMOS, 2.0, 2.0))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g", pairs=(("A", "B"),), self_symmetric=("S",))
    )
    c.constraints.alignments.append(AlignmentPair("L", "R", "bottom"))
    c.constraints.orderings.append(
        OrderingChain(("L", "R"), axis=Axis.VERTICAL)
    )
    return c


def test_perfect_placement_passes():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 0), "S": (3, 4),
        "L": (0, 8), "R": (6, 8),
    })
    audit = audit_constraints(p)
    assert audit.ok
    assert audit.worst == pytest.approx(0.0)


def test_symmetry_violation_detected():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 1.0), "S": (3, 4),  # y mismatch of 1
        "L": (0, 8), "R": (6, 8),
    })
    audit = audit_constraints(p)
    assert not audit.ok
    assert audit.symmetry == pytest.approx(1.0)
    assert any("cross-coord" in v for v in audit.violations)


def test_self_symmetric_off_axis_detected():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 0), "S": (5, 4),  # axis at 3, S at 5
        "L": (0, 8), "R": (6, 8),
    })
    audit = audit_constraints(p)
    assert not audit.ok
    assert audit.symmetry > 0.5


def test_alignment_violation_detected():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 0), "S": (3, 4),
        "L": (0, 8), "R": (6, 8.7),
    })
    audit = audit_constraints(p)
    assert audit.alignment == pytest.approx(0.7)


def test_ordering_violation_detected():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 0), "S": (3, 4),
        "L": (6, 8), "R": (0, 8),  # wrong order
    })
    audit = audit_constraints(p)
    assert audit.ordering == pytest.approx(8.0)  # 6+2 gap violation


def test_ordering_touching_ok():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 0), "S": (3, 4),
        "L": (0, 8), "R": (2, 8),  # abutted: edge-to-edge
    })
    assert audit_constraints(p).ordering == pytest.approx(0.0)


def test_tolerance_suppresses_tiny_violations():
    c = _circuit_with_constraints()
    p = Placement.from_mapping(c, {
        "A": (0, 0), "B": (6, 1e-9), "S": (3, 4),
        "L": (0, 8), "R": (6, 8),
    })
    assert audit_constraints(p, tolerance=1e-6).ok
