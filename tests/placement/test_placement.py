"""Placement container unit tests."""

import numpy as np
import pytest

from repro.placement import Placement


def test_zeros_factory(tiny_circuit):
    p = Placement.zeros(tiny_circuit)
    assert p.x.tolist() == [0.0] * 4
    assert not p.flip_x.any()


def test_from_mapping(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (0, 0), "B": (4, 0), "C": (2, 4), "D": (6, 4),
    })
    assert p.position_of("C") == (2.0, 4.0)


def test_from_mapping_missing_device(tiny_circuit):
    with pytest.raises(ValueError, match="missing"):
        Placement.from_mapping(tiny_circuit, {"A": (0, 0)})


def test_wrong_shape_rejected(tiny_circuit):
    with pytest.raises(ValueError, match="coordinates"):
        Placement(tiny_circuit, np.zeros(3), np.zeros(4))


def test_rectangles_and_bbox(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (1, 1), "B": (5, 1), "C": (2, 5), "D": (9, 2),
    })
    rects = p.rectangles()
    assert rects[0].tolist() == [0.0, 0.0, 2.0, 2.0]
    xlo, ylo, xhi, yhi = p.bounding_box()
    assert (xlo, ylo) == (0.0, 0.0)
    assert xhi == pytest.approx(10.0)
    assert yhi == pytest.approx(6.0)


def test_pin_position_respects_flip(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (1, 1), "B": (5, 1), "C": (2, 5), "D": (9, 2),
    })
    # A is 2x2 at centre (1,1); pin p at offset (0.4, 1.0)
    assert p.pin_position("A", "p") == pytest.approx((0.4, 1.0))
    p.flip_x[0] = True
    assert p.pin_position("A", "p") == pytest.approx((1.6, 1.0))


def test_translate_and_normalize(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (10, 10), "B": (14, 10), "C": (12, 14), "D": (18, 12),
    })
    q = p.normalized()
    xlo, ylo, _, _ = q.bounding_box()
    assert xlo == pytest.approx(0.0)
    assert ylo == pytest.approx(0.0)
    # original untouched
    assert p.position_of("A") == (10.0, 10.0)


def test_copy_is_deep(tiny_circuit):
    p = Placement.zeros(tiny_circuit)
    q = p.copy()
    q.x[0] = 5.0
    q.flip_x[0] = True
    assert p.x[0] == 0.0
    assert not p.flip_x[0]


def test_net_pin_positions_shape(tiny_circuit):
    p = Placement.zeros(tiny_circuit)
    net = tiny_circuit.nets[1]
    pts = p.net_pin_positions(net)
    assert pts.shape == (3, 2)
