"""Placement serialization and SVG export tests."""

import json

import numpy as np
import pytest

from repro.placement import (
    Placement,
    load_placement,
    placement_from_dict,
    placement_to_dict,
    placement_to_svg,
    save_placement,
)


@pytest.fixture
def sample_placement(tiny_circuit):
    p = Placement.from_mapping(tiny_circuit, {
        "A": (1.0, 1.0), "B": (5.0, 1.0), "C": (3.0, 4.0),
        "D": (8.0, 2.5),
    })
    p.flip_x[1] = True
    return p


def test_roundtrip(sample_placement, tiny_circuit, tmp_path):
    path = tmp_path / "layout.json"
    save_placement(sample_placement, path)
    loaded = load_placement(tiny_circuit, path)
    assert np.allclose(loaded.x, sample_placement.x)
    assert np.allclose(loaded.y, sample_placement.y)
    assert loaded.flip_x[1]
    assert not loaded.flip_x[0]


def test_dict_keyed_by_name(sample_placement):
    data = placement_to_dict(sample_placement)
    assert data["circuit"] == "tiny"
    assert data["devices"]["B"]["flip_x"] is True
    json.dumps(data)  # must be serialisable as-is


def test_wrong_circuit_rejected(sample_placement, comp1_circuit):
    data = placement_to_dict(sample_placement)
    with pytest.raises(ValueError, match="is for circuit"):
        placement_from_dict(comp1_circuit, data)


def test_missing_device_rejected(sample_placement, tiny_circuit):
    data = placement_to_dict(sample_placement)
    del data["devices"]["C"]
    with pytest.raises(ValueError, match="missing devices"):
        placement_from_dict(tiny_circuit, data)


class TestSVG:
    def test_contains_every_device(self, sample_placement):
        svg = placement_to_svg(sample_placement)
        for name in sample_placement.circuit.device_names:
            assert f">{name}</text>" in svg
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_critical_net_drawn(self, sample_placement):
        svg = placement_to_svg(sample_placement,
                               show_critical_nets=True)
        assert "<polyline" in svg  # tiny circuit's n2 is critical
        bare = placement_to_svg(sample_placement,
                                show_critical_nets=False)
        assert "<polyline" not in bare

    def test_symmetry_axis_drawn(self, sample_placement):
        svg = placement_to_svg(sample_placement,
                               show_symmetry_axes=True)
        assert "stroke-dasharray" in svg

    def test_real_circuit_renders(self):
        from repro.api import place
        from repro.circuits import cc_ota
        from repro.annealing import SAParams

        result = place(cc_ota(), "annealing",
                       params=SAParams(iterations=500, seed=1))
        svg = placement_to_svg(result.placement)
        assert svg.count("<rect") >= cc_ota().num_devices


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CC-OTA" in out

    def test_place_and_simulate(self, capsys, tmp_path):
        from repro.cli import main

        layout = tmp_path / "adder.json"
        code = main(["place", "Adder", "--method", "annealing",
                     "--sa-iterations", "500",
                     "--out", str(layout)])
        assert code == 0
        assert layout.exists()
        assert main(["simulate", "Adder", "--layout",
                     str(layout)]) == 0
        out = capsys.readouterr().out
        assert "FOM" in out

    def test_unknown_table(self, capsys):
        from repro.cli import main

        assert main(["table", "table99"]) == 2
