"""Process-parallel fan-out: determinism, ordering and trace merging.

The contract under test is the one every fan-out site relies on:
``jobs=N`` must produce byte-identical results to ``jobs=1``, in input
order, and per-worker traces must merge losslessly into the parent
tracer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealing import SAParams
from repro.api import place_multiseed
from repro.circuits import make
from repro.obs import tracing
from repro.parallel import normalize_jobs, parallel_map

#: tiny SA budget: quality is irrelevant here, only determinism
_FAST_SA = SAParams(iterations=400, polish_evals=50)


def _square(value: int) -> int:
    return value * value


def _explode(value: int) -> int:
    raise RuntimeError(f"worker {value} failed")


class TestParallelMap:
    def test_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == \
            [v * v for v in items]

    def test_inline_and_parallel_agree(self):
        items = [3, 1, 4, 1, 5]
        assert parallel_map(_square, items, jobs=1) == \
            parallel_map(_square, items, jobs=3)

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker"):
            parallel_map(_explode, [1, 2], jobs=2)

    def test_normalize_jobs(self):
        assert normalize_jobs(1) == 1
        assert normalize_jobs(None) >= 1
        assert normalize_jobs(0) == normalize_jobs(None)
        assert normalize_jobs(10_000) >= 1  # clamped to cpu count
        with pytest.raises(ValueError):
            normalize_jobs(-2)


class TestPlaceMultiseed:
    def test_jobs_do_not_change_results(self):
        circuit = make("Adder")
        seq = place_multiseed(circuit, "annealing", seeds=(1, 2, 3),
                              jobs=1, params=_FAST_SA)
        par = place_multiseed(circuit, "annealing", seeds=(1, 2, 3),
                              jobs=3, params=_FAST_SA)
        for a, b in zip(seq, par):
            assert np.array_equal(a.placement.x, b.placement.x)
            assert np.array_equal(a.placement.y, b.placement.y)
            ma = {k: v for k, v in a.metrics().items()
                  if k != "runtime_s"}
            mb = {k: v for k, v in b.metrics().items()
                  if k != "runtime_s"}
            assert ma == mb

    def test_results_in_seed_order_and_seeded(self):
        circuit = make("Adder")
        results = place_multiseed(circuit, "annealing", seeds=(7, 2),
                                  jobs=2, params=_FAST_SA)
        again = place_multiseed(circuit, "annealing", seeds=(7, 2),
                                jobs=1, params=_FAST_SA)
        assert len(results) == 2
        # seed-sharded: result i corresponds to seeds[i] exactly
        for a, b in zip(results, again):
            assert np.array_equal(a.placement.x, b.placement.x)

    def test_worker_traces_merge_into_parent(self):
        circuit = make("Adder")
        with tracing() as tracer:
            place_multiseed(circuit, "annealing", seeds=(1, 2),
                            jobs=2, params=_FAST_SA)
            merged = tracer.to_trace()
        # both workers traced 400 proposals each through sa.cost
        assert merged.timers["sa.cost"]["calls"] >= 2 * 400
        roots = [s for s in merged.spans if s.name == "sa.place"]
        assert len(roots) == 2

    def test_untraced_by_default(self):
        circuit = make("Adder")
        results = place_multiseed(circuit, "annealing", seeds=(1,),
                                  jobs=1, params=_FAST_SA)
        assert not results[0].trace
