"""Performance-driven flow tests (small budgets)."""

import pytest

from repro.annealing import SAParams
from repro.eplace import EPlaceParams
from repro.gnn import train_performance_model
from repro.legalize import DetailedParams
from repro.perf_driven import (
    RefineParams,
    place_eplace_ap,
    place_perf_sa,
    place_perf_xu,
    place_performance_driven,
    phi_refine,
)
from repro.placement import audit_constraints, total_overlap
from repro.xu_ispd19 import XuParams


@pytest.fixture(scope="module")
def quick_model():
    """A small trained model for CC-OTA shared across the module."""
    from repro.api import place_eplace_a
    from repro.circuits import cc_ota

    seed = place_eplace_a(cc_ota())
    model, _ = train_performance_model(
        seed.placement, samples=160, epochs=20, sa_sweep_runs=4,
        adversarial_rounds=1)
    return model


@pytest.fixture
def quick_gp():
    return EPlaceParams(max_iters=120, min_iters=20, bins=16)


class TestEPlaceAP:
    def test_legal_and_constrained(self, quick_model, quick_gp):
        from repro.circuits import cc_ota

        result = place_eplace_ap(
            cc_ota(), quick_model, gp_params=quick_gp, alpha=1.0,
            refine_params=RefineParams(rounds=1, lns_rounds=1,
                                       flip_passes=1))
        assert total_overlap(result.placement) == pytest.approx(0.0)
        assert audit_constraints(result.placement).ok
        assert "refine" in result.stats

    def test_model_circuit_mismatch_rejected(self, quick_model):
        from repro.circuits import comp1

        with pytest.raises(ValueError, match="trained for"):
            place_eplace_ap(comp1(), quick_model)


class TestPerfSA:
    def test_legal_and_constrained(self, quick_model):
        from repro.circuits import cc_ota

        result = place_perf_sa(
            cc_ota(), quick_model,
            SAParams(iterations=1200, seed=3, perf_weight=2.0))
        assert total_overlap(result.placement) == pytest.approx(0.0)
        assert audit_constraints(result.placement).ok
        assert result.method == "perf-sa"

    def test_requires_positive_perf_weight(self, quick_model):
        from repro.circuits import cc_ota

        with pytest.raises(ValueError, match="perf_weight"):
            place_perf_sa(cc_ota(), quick_model,
                          SAParams(iterations=100, perf_weight=0.0))


class TestPerfXu:
    def test_legal_and_constrained(self, quick_model):
        from repro.circuits import cc_ota

        result = place_perf_xu(
            cc_ota(), quick_model,
            gp_params=XuParams(stages=4, cg_iterations=30), alpha=1.0)
        assert total_overlap(result.placement) == pytest.approx(
            0.0, abs=1e-6)
        assert audit_constraints(result.placement,
                                 tolerance=1e-5).ok


class TestDispatch:
    def test_unknown_method(self, quick_model):
        from repro.circuits import cc_ota

        with pytest.raises(ValueError, match="unknown method"):
            place_performance_driven(cc_ota(), quick_model,
                                     method="magic")


class TestPhiRefine:
    def test_returns_legal(self, quick_model, quick_gp):
        from repro.api import place_eplace_a
        from repro.circuits import cc_ota

        legal = place_eplace_a(
            cc_ota(), gp_params=quick_gp,
            dp_params=DetailedParams(iterate_rounds=1,
                                     refine_rounds=0)).placement
        refined, stats = phi_refine(
            legal, quick_model,
            RefineParams(rounds=1, lns_rounds=2, flip_passes=1))
        assert total_overlap(refined) == pytest.approx(0.0)
        assert audit_constraints(refined).ok
        assert "final_phi" in stats

    def test_low_trust_short_circuits(self, quick_model, quick_gp):
        from repro.api import place_eplace_a
        from repro.circuits import cc_ota
        import numpy as np

        legal = place_eplace_a(
            cc_ota(), gp_params=quick_gp,
            dp_params=DetailedParams(iterate_rounds=1,
                                     refine_rounds=0)).placement
        saved = quick_model.validation_corr
        quick_model.validation_corr = -0.1  # fails validation
        try:
            refined, stats = phi_refine(legal, quick_model)
            assert stats.get("skipped_low_trust")
            assert np.allclose(refined.x, legal.x)
        finally:
            quick_model.validation_corr = saved


class TestRefineParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            RefineParams(step_um=0.0)
        with pytest.raises(ValueError):
            RefineParams(steps_per_round=0)
