"""Detector edge cases and the diagnosis determinism contract."""

from __future__ import annotations

import json

from repro.annealing import SAParams
from repro.api import place_multiseed
from repro.obs import health, live
from repro.obs.diagnose import DiagnoseParams, Diagnosis, \
    StreamDiagnoser, diagnose_events, diagnose_trace
from repro.obs.export import read_jsonl, write_jsonl
from repro import obs


def _progress_series(values, phase="p", key="cost", step=None):
    events = []
    for i, v in enumerate(values):
        payload = {key: v}
        if step is not None:
            payload["step_length"] = step[i]
        events.append(live.ProgressEvent(phase, i, payload, None))
    return events


class TestDetectors:
    def test_empty_stream_is_insufficient_data(self):
        d = diagnose_events([])
        assert d.verdict == "insufficient-data"
        assert d.phases == {}
        assert d.healthy

    def test_single_iteration_is_insufficient_data(self):
        d = diagnose_events(_progress_series([10.0]))
        assert d.phases["p"].verdict == "insufficient-data"
        assert d.verdict == "insufficient-data"
        assert d.healthy

    def test_decreasing_series_converges(self):
        values = [100.0 / (i + 1) for i in range(30)]
        d = diagnose_events(_progress_series(values))
        assert d.phases["p"].verdict == "converged"
        assert d.healthy

    def test_constant_series_stalls(self):
        d = diagnose_events(_progress_series([5.0] * 6))
        phase = d.phases["p"]
        assert phase.verdict == "stalled"
        assert phase.checks["stalled"]
        assert phase.evidence["stalled"]["relative_improvement"] == 0.0
        assert not d.healthy

    def test_constant_below_stall_points_is_insufficient_signal(self):
        # 5 points: enough for a verdict (min_points=3) but below the
        # stall threshold of 6 — a short flat prefix is not a stall
        d = diagnose_events(_progress_series([5.0] * 5))
        assert d.phases["p"].verdict == "converged"

    def test_rising_series_diverges(self):
        values = [10.0 + i * 2.0 for i in range(20)]
        d = diagnose_events(_progress_series(values))
        phase = d.phases["p"]
        assert phase.verdict == "diverging"
        assert phase.evidence["diverging"]["window_rise"] > 0
        assert not d.healthy

    def test_fall_then_sustained_rise_diverges(self):
        values = [100.0 - 10.0 * i for i in range(10)]
        values += [values[-1] + 8.0 * i for i in range(1, 13)]
        d = diagnose_events(_progress_series(values))
        assert d.phases["p"].verdict == "diverging"

    def test_nan_first_iteration_is_nonfinite(self):
        d = diagnose_events(_progress_series([float("nan")]))
        phase = d.phases["p"]
        assert phase.verdict == "non-finite"
        assert phase.checks["non-finite"]
        # non-finite outranks insufficient-data even on one point
        assert d.verdict == "non-finite"

    def test_nan_in_secondary_key_is_nonfinite(self):
        events = [
            live.ProgressEvent(
                "p", i, {"cost": 1.0 / (i + 1), "grad_norm": g}, None,
            )
            for i, g in enumerate([1.0, float("inf"), 1.0, 1.0])
        ]
        d = diagnose_events(events)
        phase = d.phases["p"]
        assert phase.verdict == "non-finite"
        assert phase.evidence["non-finite"]["key"] == "grad_norm"

    def test_nan_in_health_values_is_nonfinite(self):
        events = _progress_series([3.0, 2.0, 1.0, 0.5])
        events.append(
            health.HealthSample("p", 2, {"residual": float("nan")},
                                None)
        )
        d = diagnose_events(events)
        assert d.phases["p"].verdict == "non-finite"

    def test_oscillating_tail_detected(self):
        # bounces between 8 and 11 without ever beating the prefix
        # best of 8 — an oscillation, not progress
        values = [10.0, 9.0, 8.0]
        for i in range(14):
            values.append(8.0 + (3.0 if i % 2 == 0 else 0.0))
        d = diagnose_events(_progress_series(values))
        phase = d.phases["p"]
        assert phase.verdict == "oscillating"
        assert phase.evidence["oscillating"]["flip_fraction"] >= 0.75

    def test_step_collapse_detected(self):
        n = 12
        values = [10.0 - 0.5 * i for i in range(n)]
        steps = [1.0] * 4 + [1e-15] * (n - 4)
        d = diagnose_events(
            _progress_series(values, step=steps)
        )
        phase = d.phases["p"]
        assert phase.verdict == "step-collapse"
        assert phase.evidence["step-collapse"]["peak_step"] == 1.0

    def test_health_steps_preferred_over_progress_steps(self):
        events = _progress_series([10.0 - 0.5 * i for i in range(12)])
        for i in range(12):
            events.append(health.HealthSample(
                "p", i, {"step_length": 1.0 if i < 4 else 1e-15},
                None,
            ))
        d = diagnose_events(events)
        assert d.phases["p"].verdict == "step-collapse"

    def test_metric_preference_overflow_over_value(self):
        # ePlace publishes both; overflow is the convergence criterion
        events = [
            live.ProgressEvent(
                "eplace.nesterov", i,
                {"value": 10.0 + i, "overflow": 1.0 / (i + 1.0),
                 "hpwl": 50.0 + i},
                None,
            )
            for i in range(20)
        ]
        d = diagnose_events(events)
        phase = d.phases["eplace.nesterov"]
        assert phase.metric == "overflow"
        assert phase.verdict == "converged"

    def test_explicit_metric_override(self):
        events = [
            live.ProgressEvent(
                "p", i, {"cost": 1.0, "aux": 10.0 + i}, None,
            )
            for i in range(20)
        ]
        d = diagnose_events(
            events, DiagnoseParams(metric="aux")
        )
        assert d.phases["p"].metric == "aux"
        assert d.phases["p"].verdict == "diverging"


class TestSerialization:
    def test_roundtrip_through_dict(self):
        values = [10.0 + i for i in range(20)]
        d = diagnose_events(_progress_series(values))
        back = Diagnosis.from_dict(d.to_dict())
        assert back.to_json() == d.to_json()
        assert back.verdict == "diverging"

    def test_to_json_is_canonical(self):
        d = diagnose_events(_progress_series([3.0, 2.0, 1.0]))
        assert d.to_json() == d.to_json()
        assert "\n" not in d.to_json()

    def test_from_dict_tolerates_unknown_keys(self):
        doc = diagnose_events(
            _progress_series([3.0, 2.0, 1.0])
        ).to_dict()
        doc["future_field"] = {"x": 1}
        doc["phases"]["p"]["another"] = True
        back = Diagnosis.from_dict(doc)
        assert back.phases["p"].verdict == "converged"


class TestTraceDiagnosis:
    def _trace(self, values, health_steps=None):
        tracer = obs.Tracer(enabled=True)
        for i, v in enumerate(values):
            tracer.record("p", i, cost=v)
            if health_steps is not None:
                tracer.record(
                    "p" + health.HEALTH_SUFFIX, i,
                    step_length=health_steps[i],
                )
        return tracer.to_trace()

    def test_trace_and_events_agree(self):
        values = [100.0 / (i + 1) for i in range(30)]
        from_trace = diagnose_trace(self._trace(values))
        from_events = diagnose_events(_progress_series(values))
        assert from_trace.to_json() == from_events.to_json()

    def test_health_phase_merges_into_base(self):
        values = [10.0 - 0.5 * i for i in range(12)]
        steps = [1.0] * 4 + [1e-15] * 8
        d = diagnose_trace(self._trace(values, health_steps=steps))
        assert set(d.phases) == {"p"}
        assert d.phases["p"].verdict == "step-collapse"

    def test_trace_roundtrip_preserves_diagnosis(self, tmp_path):
        values = [10.0 + i for i in range(20)]
        trace = self._trace(values)
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        _, loaded = read_jsonl(path)
        assert diagnose_trace(loaded).to_json() == \
            diagnose_trace(trace).to_json()


class TestDeterminism:
    def test_repeat_byte_identity(self, comp1_circuit):
        outs = []
        for _ in range(2):
            sub = StreamDiagnoser()
            bus = live.EventBus()
            bus.subscribe(sub)
            from repro.annealing import anneal_place
            with live.session(bus):
                anneal_place(
                    comp1_circuit, SAParams(iterations=600, seed=3)
                )
            outs.append(sub.diagnosis().to_json())
        assert outs[0] == outs[1]

    def test_jobs_1_vs_4_byte_identity(self, comp1_circuit):
        outs = []
        for jobs in (1, 4):
            sub = StreamDiagnoser()
            bus = live.EventBus()
            bus.subscribe(sub)
            with live.session(bus):
                place_multiseed(
                    comp1_circuit, "annealing", seeds=(1, 2, 3),
                    jobs=jobs,
                    params=SAParams(iterations=400),
                )
            outs.append(sub.diagnosis().to_json())
        assert outs[0] == outs[1]
        # multi-source phases are named per seed
        doc = Diagnosis.from_dict(json.loads(outs[0]))
        assert {"sa.stage[0]", "sa.stage[1]", "sa.stage[2]"} <= \
            set(doc.phases)


class TestAttach:
    def test_untraced_run_attaches_insufficient_data(
        self, comp1_circuit, fast_sa_params,
    ):
        from repro.annealing import anneal_place

        result = anneal_place(comp1_circuit, fast_sa_params)
        assert result.diagnosis is not None
        assert result.diagnosis.verdict == "insufficient-data"

    def test_traced_run_attaches_real_verdict(self, comp1_circuit):
        from repro.annealing import anneal_place

        # seed 1 improves on its initial cost (seed 2 happens to start
        # at its own best, which correctly diagnoses as stalled)
        with obs.tracing():
            result = anneal_place(
                comp1_circuit, SAParams(iterations=1500, seed=1)
            )
        assert result.diagnosis is not None
        assert result.diagnosis.verdict == "converged"
        assert result.diagnosis.healthy
