"""Unit tests for the metrics registry, JSONL export and profile table."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs import metrics, trace
from repro.obs.log import configure, get_logger, verbosity_level


@pytest.fixture
def registry():
    reg = metrics.MetricsRegistry()
    yield reg
    reg.reset()


def test_counter_gauge_timer_snapshot(registry):
    registry.counter("solves").inc()
    registry.counter("solves").inc(2.0)
    registry.gauge("vars").set(17)
    with registry.timer("build"):
        pass
    snap = registry.snapshot()
    assert snap["counters"] == {"solves": 3.0}
    assert snap["gauges"] == {"vars": 17.0}
    assert snap["timers"]["build"]["calls"] == 1
    registry.reset()
    empty = registry.snapshot()
    assert empty == {"counters": {}, "gauges": {}, "timers": {}}


def test_global_registry_snapshot_lands_in_trace():
    metrics.reset()
    try:
        with trace.tracing() as tracer:
            metrics.counter("repro.test_counter").inc(5)
            metrics.gauge("repro.test_gauge").set(2.5)
        t = tracer.to_trace()
        assert t.counters["repro.test_counter"] == 5.0
        assert t.gauges["repro.test_gauge"] == 2.5
    finally:
        metrics.reset()


def _sample_trace():
    metrics.reset()
    with trace.tracing() as tracer:
        with trace.span("root", circuit="tiny"):
            with trace.span("child"):
                with trace.timer("hot"):
                    pass
        for i in range(3):
            trace.record("conv", i, hpwl=float(i), grad_norm=0.1)
        metrics.counter("repro.sample").inc()
    t = tracer.to_trace()
    metrics.reset()
    return t


def test_jsonl_round_trip(tmp_path):
    t = _sample_trace()
    path = tmp_path / "trace.jsonl"
    count = obs.write_jsonl(t, path, method="unit", runtime_s=0.5)
    lines = path.read_text().splitlines()
    assert len(lines) == count
    records = [json.loads(line) for line in lines]
    header = records[0]
    assert header["type"] == "meta"
    assert header["method"] == "unit"
    assert header["runtime_s"] == 0.5
    assert header["spans"] == 2 and header["iterations"] == 3
    by_type = {}
    for rec in records:
        by_type.setdefault(rec["type"], []).append(rec)
    assert {r["name"] for r in by_type["span"]} == {"root", "child"}
    root = next(r for r in by_type["span"] if r["name"] == "root")
    assert root["depth"] == 0 and root["parent"] is None
    assert root["attrs"] == {"circuit": "tiny"}
    iters = by_type["iteration"]
    assert [r["iteration"] for r in iters] == [0, 1, 2]
    assert iters[2]["hpwl"] == 2.0 and "grad_norm" in iters[2]
    assert by_type["timer"][0]["name"] == "hot"
    assert by_type["counter"][0] == {
        "type": "counter", "name": "repro.sample", "value": 1.0,
    }


def test_format_profile_partitions_total():
    t = _sample_trace()
    table = obs.format_profile(t, runtime_s=0.25)
    assert "root" in table and "child" in table
    assert "total (sum of self)" in table
    assert "reported runtime_s" in table
    assert "hot" in table  # the timer section
    # self percentages sum to ~100
    pcts = [
        float(line.rsplit("%", 1)[0].rsplit(None, 1)[-1])
        for line in table.splitlines()
        if line.endswith("%") and not line.endswith("self %")
        and "total (sum of self)" not in line
    ]
    assert sum(pcts) == pytest.approx(100.0, abs=0.5)


def test_format_profile_empty_trace():
    assert "empty trace" in obs.format_profile(trace.Trace())


def test_logging_namespace_and_configure():
    logger = get_logger("eplace")
    assert logger.name == "repro.eplace"
    assert verbosity_level(0) == logging.WARNING
    assert verbosity_level(1) == logging.INFO
    assert verbosity_level(2) == logging.DEBUG
    assert verbosity_level(9) == logging.DEBUG
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    try:
        configure(1)
        configure(2)  # idempotent: no handler duplication
        ours = [h for h in root.handlers if getattr(h, "_repro_cli", False)]
        assert len(ours) == 1
        assert root.level == logging.DEBUG
    finally:
        root.handlers, root.level, root.propagate = saved
