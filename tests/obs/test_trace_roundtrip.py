"""JSONL export → reload round-trip: the trace schema is stable.

``read_jsonl`` must rebuild exactly what ``write_jsonl`` stored, and
re-exporting the reloaded trace must reproduce the original file —
this is what makes trace artifacts durable across sessions (the bench
observatory and any future analysis scripts rely on it).
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics, trace


def _sample_trace():
    metrics.reset()
    with trace.tracing() as tracer:
        with trace.span("flow", circuit="tiny"):
            with trace.span("gp", stage=1):
                with trace.timer("gp.hot"):
                    pass
            with trace.span("dp"):
                pass
        for i in range(5):
            trace.record("gp.iter", i, hpwl=10.0 - i, overflow=0.5 / (i + 1))
        metrics.counter("repro.sample").inc(2)
        metrics.gauge("repro.level").set(7.5)
    snapshot = tracer.to_trace()
    metrics.reset()
    return snapshot


def test_reload_rebuilds_identical_trace(tmp_path):
    original = _sample_trace()
    path = tmp_path / "trace.jsonl"
    obs.write_jsonl(original, path, method="unit", circuit="tiny",
                    runtime_s=0.25)

    meta, reloaded = obs.read_jsonl(path)
    assert meta == {"method": "unit", "circuit": "tiny",
                    "runtime_s": 0.25}
    assert len(reloaded.spans) == len(original.spans)
    for a, b in zip(reloaded.spans, original.spans):
        assert (a.name, a.start, a.duration, a.self_s, a.depth,
                a.parent, a.thread, a.attrs) == (
            b.name, b.start, b.duration, b.self_s, b.depth,
            b.parent, b.thread, b.attrs)
    assert [(r.phase, r.iteration, r.values)
            for r in reloaded.convergence] == [
        (r.phase, r.iteration, r.values) for r in original.convergence
    ]
    assert reloaded.timers == original.timers
    assert reloaded.counters == original.counters
    assert reloaded.gauges == original.gauges
    assert reloaded.dropped_spans == original.dropped_spans
    assert reloaded.dropped_records == original.dropped_records


def test_reexport_is_byte_identical(tmp_path):
    """write → read → write reproduces the original file exactly."""
    original = _sample_trace()
    first = tmp_path / "first.jsonl"
    obs.write_jsonl(original, first, method="unit", runtime_s=1.5)
    meta, reloaded = obs.read_jsonl(first)
    second = tmp_path / "second.jsonl"
    obs.write_jsonl(reloaded, second, **meta)
    assert first.read_text() == second.read_text()


def test_reload_derived_views_match(tmp_path):
    """phase_times/convergence views work identically after reload."""
    original = _sample_trace()
    path = tmp_path / "trace.jsonl"
    obs.write_jsonl(original, path)
    _, reloaded = obs.read_jsonl(path)
    assert reloaded.phase_times() == original.phase_times()
    assert reloaded.total_span_s() == pytest.approx(
        original.total_span_s()
    )
    assert len(reloaded.convergence_by_phase("gp.iter")) == 5


def test_reload_rejects_unknown_record_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"type": "meta", "spans": 0}) + "\n"
        + json.dumps({"type": "mystery", "name": "x"}) + "\n"
    )
    with pytest.raises(ValueError, match="unknown record type"):
        obs.read_jsonl(path)


def test_reload_rejects_missing_header(tmp_path):
    path = tmp_path / "headless.jsonl"
    path.write_text(json.dumps({"type": "span", "name": "x"}) + "\n")
    with pytest.raises(ValueError, match="meta"):
        obs.read_jsonl(path)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        obs.read_jsonl(empty)


def test_drop_counters_survive_round_trip(tmp_path):
    with trace.tracing(max_spans=2, convergence_capacity=2) as tracer:
        for i in range(4):
            with trace.span(f"s{i}"):
                pass
            trace.record("p", i, v=float(i))
    snapshot = tracer.to_trace()
    assert snapshot.dropped_spans == 2
    assert snapshot.dropped_records == 2
    path = tmp_path / "dropped.jsonl"
    obs.write_jsonl(snapshot, path)
    _, reloaded = obs.read_jsonl(path)
    assert reloaded.dropped_spans == 2
    assert reloaded.dropped_records == 2
