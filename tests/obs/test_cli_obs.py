"""CLI observability surface: --trace-out, --profile, -v, aliases."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, resolve_circuit


def test_circuit_alias_normalisation():
    assert resolve_circuit("CM-OTA1") == "CM-OTA1"
    assert resolve_circuit("cmota1") == "CM-OTA1"
    assert resolve_circuit("cm_ota1") == "CM-OTA1"
    assert resolve_circuit("comp1") == "Comp1"
    with pytest.raises(SystemExit):
        resolve_circuit("nosuch")


def test_place_trace_out_and_profile(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    rc = main([
        "place", "--method", "annealing", "--circuit", "comp1",
        "--sa-iterations", "600", "--trace-out", str(out), "--profile",
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "runtime" in captured
    assert "total (sum of self)" in captured  # the --profile table
    records = [json.loads(line)
               for line in out.read_text().splitlines()]
    assert records[0]["type"] == "meta"
    assert records[0]["circuit"] == "Comp1"
    types = {r["type"] for r in records}
    assert {"meta", "span", "iteration"} <= types
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert "sa.place" in span_names and "sa.stage" in span_names


def test_place_metrics_out(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    rc = main([
        "place", "--method", "annealing", "--circuit", "comp1",
        "--sa-iterations", "600", "--metrics-out", str(out),
    ])
    assert rc == 0
    assert str(out) in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.obs.metrics/1"
    assert doc["method"] == "annealing"
    assert doc["circuit"] == "Comp1"
    assert doc["runtime_s"] > 0
    assert doc["quality"]["hpwl"] > 0
    assert "registry" in doc  # repro.obs metrics snapshot rides along


def test_place_positional_circuit_still_works(capsys):
    rc = main(["place", "comp1", "--method", "annealing",
               "--sa-iterations", "400"])
    assert rc == 0
    assert "method   : annealing" in capsys.readouterr().out


def test_place_requires_a_circuit():
    with pytest.raises(SystemExit):
        main(["place", "--method", "annealing"])


def test_list_runs(capsys):
    assert main(["list"]) == 0
    assert "Comp1" in capsys.readouterr().out


def test_verbose_flag_configures_logging():
    import logging

    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    try:
        main(["-v", "list"])
        assert root.level == logging.INFO
    finally:
        root.handlers, root.level, root.propagate = saved
