"""tracemalloc memory-profiling hooks: sessions, phases, no-op path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import memory, metrics


def test_phase_peak_is_noop_without_session():
    assert not memory.profiling()
    first = memory.phase_peak("a")
    second = memory.phase_peak("b")
    assert first is second  # the shared no-op singleton
    with first:
        pass  # must not raise nor start tracemalloc


def test_profile_memory_records_phase_and_overall_peaks():
    with memory.profile_memory() as profile:
        assert memory.profiling()
        with memory.phase_peak("alloc.big"):
            block = np.zeros((512, 512))  # ~2 MiB
            del block
        with memory.phase_peak("alloc.small"):
            small = np.zeros(128)
            del small
    assert not memory.profiling()
    assert profile.phase_peaks_kib["alloc.big"] > 1024.0
    assert profile.phase_peaks_kib["alloc.small"] < (
        profile.phase_peaks_kib["alloc.big"]
    )
    assert profile.overall_peak_kib >= max(
        profile.phase_peaks_kib.values()
    )


def test_phase_peaks_max_aggregate_across_calls():
    with memory.profile_memory() as profile:
        for size in (64, 512, 128):
            with memory.phase_peak("alloc.repeat"):
                block = np.zeros((size, size))
                del block
    # the biggest of the three calls defines the recorded peak
    assert profile.phase_peaks_kib["alloc.repeat"] > 1024.0


def test_sessions_do_not_nest():
    with memory.profile_memory():
        with pytest.raises(RuntimeError, match="nest"):
            with memory.profile_memory():
                pass
    # the failed inner attempt must not have torn down the outer state
    assert not memory.profiling()


def test_gauges_land_in_registry():
    metrics.reset()
    try:
        with memory.profile_memory():
            with memory.phase_peak("unit.phase"):
                block = np.zeros((256, 256))
                del block
        snap = metrics.snapshot()
        assert snap["gauges"]["mem.unit.phase.peak_kib"] > 0
        assert snap["gauges"]["mem.overall.peak_kib"] >= (
            snap["gauges"]["mem.unit.phase.peak_kib"]
        )
    finally:
        metrics.reset()
