"""Run registry: directories, manifests, CLI list/show/compare/gc."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import live, trace
from repro.obs.registry import (
    DEFAULT_ROOT,
    RegistryError,
    RunRegistry,
)


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


class TestRegistryCore:
    def test_create_writes_running_manifest(self, registry):
        writer = registry.create("place", "Comp1:annealing",
                                 config={"seed": 3})
        manifest_path = writer.path / "manifest.json"
        assert manifest_path.is_file()
        doc = json.loads(manifest_path.read_text())
        assert doc["schema"] == "repro.run/2"
        assert doc["status"] == "running"  # crash-visible
        assert doc["kind"] == "place"
        assert doc["config"] == {"seed": 3}
        assert doc["run_id"] == writer.run_id

    def test_finalize_flushes_metrics_and_events(self, registry):
        writer = registry.create("place", "x")
        bus = live.EventBus()
        bus.subscribe(writer.event_subscriber())
        bus.publish(live.ProgressEvent("p", 1, {"hpwl": 2.0}, 0))
        bus.publish(live.RaceEvent("kill", seed=2, task=1,
                                   iteration=3, value=2.0, best=1.0))
        writer.finalize(metrics={"hpwl": 2.0, "note": "text"})
        (run,) = registry.list_runs()
        assert run.status == "complete"
        # only numeric metrics summarise into the manifest
        assert run.metrics == {"hpwl": 2.0}
        lines = (writer.path / "events.jsonl").read_text().splitlines()
        events = [live.event_from_record(json.loads(line))
                  for line in lines]
        assert isinstance(events[0], live.ProgressEvent)
        assert isinstance(events[1], live.RaceEvent)
        assert events[0].values == {"hpwl": 2.0}

    def test_write_trace_emits_convergence_series(self, registry):
        with trace.tracing() as tracer:
            with trace.span("engine"):
                for i in range(3):
                    tracer.record("engine.loop", i, hpwl=float(10 - i))
        writer = registry.create("place", "x")
        count = writer.write_trace(tracer.to_trace(), method="test")
        assert count > 0
        doc = json.loads(
            (writer.path / "convergence.json").read_text()
        )
        series = doc["phases"]["engine.loop"]
        assert series["iterations"] == [0, 1, 2]
        assert series["values"]["hpwl"] == [10.0, 9.0, 8.0]

    def test_same_config_same_fingerprint(self, registry):
        a = registry.create("place", "x", config={"seed": 1})
        b = registry.create("place", "x", config={"seed": 1})
        c = registry.create("place", "x", config={"seed": 2})
        fp = lambda w: w.run_id.rsplit("-", 1)[1].split(".")[0]  # noqa: E731
        assert fp(a) == fp(b)
        assert fp(a) != fp(c)
        assert a.run_id != b.run_id  # disambiguated directories

    def test_resolve_exact_prefix_latest_and_errors(self, registry):
        with pytest.raises(RegistryError):
            registry.resolve("latest")  # empty registry
        first = registry.create("place", "x", config={"seed": 1})
        first.finalize()
        second = registry.create("bench", "y", config={"seed": 2})
        second.finalize()
        assert registry.resolve("latest").run_id == second.run_id
        assert registry.resolve(first.run_id).run_id == first.run_id
        with pytest.raises(RegistryError):
            registry.resolve("nosuchrun")
        with pytest.raises(RegistryError):
            registry.resolve("2")  # ambiguous prefix (both stamps)

    def test_gc_keeps_newest(self, registry):
        ids = []
        for seed in range(4):
            writer = registry.create("place", "x",
                                     config={"seed": seed})
            writer.finalize()
            ids.append(writer.run_id)
        would = registry.gc(keep=2, dry_run=True)
        assert [r.run_id for r in would] == ids[:2]
        assert len(registry.list_runs()) == 4  # dry run: untouched
        deleted = registry.gc(keep=2)
        assert [r.run_id for r in deleted] == ids[:2]
        assert [r.run_id for r in registry.list_runs()] == ids[2:]

    def test_env_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "custom"))
        assert RunRegistry().root == tmp_path / "custom"
        monkeypatch.delenv("REPRO_RUNS_DIR")
        assert str(RunRegistry().root) == DEFAULT_ROOT

    def test_write_trace_stores_diagnosis(self, registry):
        with trace.tracing() as tracer:
            for i in range(10):
                tracer.record("engine.loop", i,
                              best_cost=float(10 - i))
        writer = registry.create("place", "x")
        writer.write_trace(tracer.to_trace(), method="test")
        writer.finalize()
        (run,) = registry.list_runs()
        doc = run.manifest["diagnosis"]
        assert doc["schema"] == "repro.diagnosis/1"
        assert doc["verdict"] == "converged"
        assert "engine.loop" in doc["phases"]

    def test_finalize_merges_resource_summary(self, registry):
        writer = registry.create("place", "x")
        bus = live.EventBus()
        bus.subscribe(writer.event_subscriber())
        bus.publish(live.ResourceSample(0.0, 1000.0, 0.0))
        bus.publish(live.ResourceSample(1.0, 4096.0, 0.5))
        writer.finalize(metrics={"hpwl": 2.0})
        (run,) = registry.list_runs()
        assert run.metrics["hpwl"] == 2.0
        assert run.metrics["peak_rss_kib"] == 4096.0
        assert run.metrics["resource_samples"] == 2.0
        assert run.metrics["mean_cpu"] == pytest.approx(0.5)

    def test_v1_manifest_still_loads(self, registry):
        """``repro.run/1`` directories (no diagnosis/resource keys)
        keep listing, resolving and comparing."""
        path = registry.root / "20250101-000000-deadbeef"
        path.mkdir(parents=True)
        (path / "manifest.json").write_text(json.dumps({
            "schema": "repro.run/1",
            "run_id": path.name,
            "kind": "place",
            "label": "old:annealing",
            "config": {"seed": 1},
            "status": "complete",
            "metrics": {"hpwl": 3.5},
        }))
        (run,) = registry.list_runs()
        assert run.status == "complete"
        assert run.metrics == {"hpwl": 3.5}
        assert registry.resolve("latest").run_id == path.name
        assert "diagnosis" not in run.manifest


class TestRunsCli:
    @pytest.fixture
    def recorded(self, tmp_path, monkeypatch):
        """Two real --save-run place runs under a temp registry."""
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        for seed in ("3", "7"):
            rc = main([
                "place", "comp1", "--method", "annealing",
                "--sa-iterations", "1000", "--seed", seed,
                "--save-run",
            ])
            assert rc == 0
        return tmp_path / "runs"

    def test_save_run_records_artifacts(self, recorded, capsys):
        capsys.readouterr()
        runs = sorted(p for p in recorded.iterdir() if p.is_dir())
        assert len(runs) == 2
        for run in runs:
            names = {p.name for p in run.iterdir()}
            assert {"manifest.json", "trace.jsonl", "metrics.json",
                    "convergence.json", "events.jsonl"} <= names

    def test_list_show_compare_gc(self, recorded, capsys):
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        listing = capsys.readouterr().out
        assert listing.count("Comp1:annealing") == 2
        assert "hpwl=" in listing

        assert main(["runs", "show", "latest"]) == 0
        shown = capsys.readouterr().out
        assert "status   : complete" in shown
        assert "sa.stage" in shown
        assert "events.jsonl" in shown

        base = sorted(p.name for p in recorded.iterdir())[0]
        assert main(["runs", "compare", base, "latest"]) == 0
        compared = capsys.readouterr().out
        assert "hpwl" in compared and "delta" in compared

        assert main(["runs", "gc", "--keep", "1", "--dry-run"]) == 0
        assert len(list(recorded.iterdir())) == 2
        assert main(["runs", "gc", "--keep", "1"]) == 0
        assert len(list(recorded.iterdir())) == 1

    def test_unknown_run_exits_2(self, recorded, capsys):
        capsys.readouterr()
        assert main(["runs", "show", "nosuchrun"]) == 2
        assert "error" in capsys.readouterr().err

    def test_explicit_root_flag(self, recorded, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR")
        capsys.readouterr()
        assert main(["runs", "--root", str(recorded), "list"]) == 0
        assert "Comp1:annealing" in capsys.readouterr().out


def _record_synthetic_run(root, values, label="synthetic"):
    """One registry run whose convergence series is ``values``."""
    registry = RunRegistry(root)
    with trace.tracing() as tracer:
        for i, v in enumerate(values):
            tracer.record("engine.loop", i, best_cost=float(v))
    writer = registry.create("place", label)
    writer.write_trace(tracer.to_trace(), method="test")
    writer.finalize(metrics={"best_cost": float(values[-1])})
    return writer


class TestDoctorCli:
    def test_healthy_run_exits_0(self, tmp_path, capsys):
        _record_synthetic_run(
            tmp_path, [100.0 / (i + 1) for i in range(30)]
        )
        assert main(["runs", "--root", str(tmp_path),
                     "doctor", "latest"]) == 0
        out = capsys.readouterr().out
        assert "verdict  : converged" in out
        assert "engine.loop" in out

    def test_diverging_run_exits_1(self, tmp_path, capsys):
        _record_synthetic_run(
            tmp_path, [10.0 + 2.0 * i for i in range(30)]
        )
        assert main(["runs", "--root", str(tmp_path),
                     "doctor", "latest"]) == 1
        out = capsys.readouterr().out
        assert "verdict  : diverging" in out

    def test_run_without_trace_is_insufficient(self, tmp_path,
                                               capsys):
        writer = RunRegistry(tmp_path).create("place", "bare")
        writer.finalize()
        assert main(["runs", "--root", str(tmp_path),
                     "doctor", "latest"]) == 0
        assert "insufficient-data" in capsys.readouterr().out

    def test_v1_run_recomputes_from_trace(self, tmp_path, capsys):
        # strip the stored verdicts: doctor must fall back to the
        # trace.jsonl recompute path used for repro.run/1 directories
        writer = _record_synthetic_run(
            tmp_path, [10.0 + 2.0 * i for i in range(30)]
        )
        manifest_path = writer.path / "manifest.json"
        doc = json.loads(manifest_path.read_text())
        del doc["diagnosis"]
        doc["schema"] = "repro.run/1"
        manifest_path.write_text(json.dumps(doc))
        assert main(["runs", "--root", str(tmp_path),
                     "doctor", "latest"]) == 1
        assert "diverging" in capsys.readouterr().out

    def test_doctor_real_smoke_run(self, tmp_path, monkeypatch,
                                   capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main([
            "place", "comp1", "--method", "annealing",
            "--sa-iterations", "1500", "--seed", "1", "--save-run",
        ]) == 0
        capsys.readouterr()
        assert main(["runs", "doctor", "latest"]) == 0
        out = capsys.readouterr().out
        assert "verdict  : converged" in out
        assert "sa.stage" in out


class TestReportCli:
    def test_report_writes_selfcontained_html(self, tmp_path,
                                              capsys):
        writer = _record_synthetic_run(
            tmp_path, [100.0 / (i + 1) for i in range(30)]
        )
        assert main(["runs", "--root", str(tmp_path),
                     "report", "latest"]) == 0
        out_path = writer.path / "report.html"
        assert out_path.is_file()
        html = out_path.read_text()
        assert len(html) > 0
        assert "<html" in html
        assert "engine.loop" in html
        # self-contained: no external asset references
        assert "http://" not in html and "https://" not in html

    def test_report_out_flag(self, tmp_path, capsys):
        _record_synthetic_run(
            tmp_path, [3.0, 2.0, 1.0]
        )
        target = tmp_path / "custom.html"
        assert main(["runs", "--root", str(tmp_path),
                     "report", "latest", "--out",
                     str(target)]) == 0
        assert target.is_file()
        assert "<html" in target.read_text()


class TestCompareHealthCli:
    def test_health_rows_and_mismatch_marker(self, tmp_path, capsys):
        good = _record_synthetic_run(
            tmp_path, [100.0 / (i + 1) for i in range(30)],
            label="good",
        )
        bad = _record_synthetic_run(
            tmp_path, [10.0 + 2.0 * i for i in range(30)],
            label="bad",
        )
        assert main(["runs", "--root", str(tmp_path), "compare",
                     good.run_id, bad.run_id, "--health"]) == 0
        out = capsys.readouterr().out
        assert "health" in out
        assert "converged" in out and "diverging" in out
        assert "*" in out  # the verdicts differ

    def test_matching_verdicts_have_no_marker(self, tmp_path,
                                              capsys):
        a = _record_synthetic_run(tmp_path, [3.0, 2.0, 1.0],
                                  label="a")
        b = _record_synthetic_run(tmp_path, [6.0, 4.0, 2.0],
                                  label="b")
        assert main(["runs", "--root", str(tmp_path), "compare",
                     a.run_id, b.run_id, "--health"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "*" not in out
