"""Every engine reports its per-phase spans and convergence records.

These are the instrumentation contracts the ``--profile`` table and the
paper's runtime breakdowns depend on: GP engines split objective
timers / density from the solver loop, ILP/LP split model build from
solve, SA reports one span + record per temperature stage.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.annealing import anneal_place
from repro.eplace import eplace_global
from repro.legalize import (
    detailed_place,
    ilp_detailed_placement,
    lp_two_stage_detailed_placement,
)
from repro.obs import trace
from repro.xu_ispd19 import XuParams, xu_global


@pytest.fixture
def tracer():
    with obs.tracing() as t:
        yield t


def test_eplace_gp_spans_and_convergence(comp1_circuit, fast_gp_params,
                                         tracer):
    result = eplace_global(comp1_circuit, fast_gp_params)
    t = result.trace
    phases = t.phase_times()
    assert {"eplace.gp", "eplace.gp.init",
            "eplace.gp.nesterov"} <= set(phases)
    # objective split into hot-path timers
    assert {"eplace.gp.wirelength", "eplace.gp.density",
            "eplace.gp.area"} <= set(t.timers)
    conv = t.convergence_by_phase("eplace.nesterov")
    assert len(conv) == result.stats["iterations"]
    sample = conv[-1].values
    for key in ("value", "grad_norm", "step_length", "overflow",
                "hpwl", "density_weight"):
        assert key in sample, key
    # iterations count upward
    assert conv[0].iteration < conv[-1].iteration


def test_xu_gp_spans_and_convergence(comp1_circuit, tracer):
    params = XuParams(cg_iterations=30, stages=3)
    result = xu_global(comp1_circuit, params)
    t = result.trace
    phases = t.phase_times()
    assert {"xu.gp", "xu.gp.init", "xu.gp.stage"} <= set(phases)
    assert phases["xu.gp.stage"]["calls"] == params.stages
    assert {"xu.gp.wirelength", "xu.gp.density"} <= set(t.timers)
    stage_recs = t.convergence_by_phase("xu.stage")
    assert len(stage_recs) == params.stages
    assert "hpwl" in stage_recs[-1].values
    cg_recs = t.convergence_by_phase("xu.cg")
    assert cg_recs, "per-CG-step records missing"
    assert {"value", "grad_norm", "step_length"} <= set(
        cg_recs[0].values
    )


def test_sa_spans_one_per_temperature_stage(comp1_circuit,
                                            fast_sa_params, tracer):
    result = anneal_place(comp1_circuit, fast_sa_params)
    t = result.trace
    phases = t.phase_times()
    assert {"sa.place", "sa.islands", "sa.probe",
            "sa.stage"} <= set(phases)
    expected_stages = -(-fast_sa_params.iterations //
                        fast_sa_params.moves_per_temp)
    assert phases["sa.stage"]["calls"] == expected_stages
    recs = t.convergence_by_phase("sa.stage")
    assert len(recs) == expected_stages
    for key in ("temperature", "cost", "best_cost", "accepted"):
        assert key in recs[0].values
    # temperature decays monotonically across stages
    temps = [r.values["temperature"] for r in recs]
    assert temps[0] > temps[-1]
    assert t.timers["sa.cost"]["calls"] == fast_sa_params.iterations


def test_ilp_splits_model_build_from_solve(comp1_circuit,
                                           fast_gp_params,
                                           fast_dp_params, tracer):
    gp = eplace_global(comp1_circuit, fast_gp_params)
    dp = ilp_detailed_placement(gp.placement, fast_dp_params)
    phases = dp.trace.phase_times()
    assert {"legalize.ilp", "legalize.ilp.model",
            "legalize.ilp.solve"} <= set(phases)
    assert dp.trace.counters.get("repro.milp_solves", 0) >= 1


def test_detailed_place_iterate_and_refine_spans(comp1_circuit,
                                                 fast_gp_params, tracer):
    from repro.legalize import DetailedParams

    gp = eplace_global(comp1_circuit, fast_gp_params)
    dp = detailed_place(gp.placement, DetailedParams(
        iterate_rounds=2, refine_rounds=1, time_limit_s=20.0,
        refine_time_limit_s=5.0))
    phases = dp.trace.phase_times()
    assert {"legalize.ilp", "legalize.ilp.model", "legalize.ilp.solve",
            "legalize.ilp.iterate",
            "legalize.ilp.refine"} <= set(phases)


def test_lp_two_stage_spans(comp1_circuit, fast_gp_params, tracer):
    from repro.legalize import DetailedParams

    gp = eplace_global(comp1_circuit, fast_gp_params)
    dp = lp_two_stage_detailed_placement(
        gp.placement, DetailedParams(allow_flipping=False))
    phases = dp.trace.phase_times()
    assert {"legalize.lp2", "legalize.lp2.model", "legalize.lp2.stage1",
            "legalize.lp2.stage2"} <= set(phases)
    assert dp.trace.counters.get("repro.lp_solves", 0) >= 2


def test_untraced_run_has_empty_trace(comp1_circuit, fast_gp_params):
    assert trace.current() is trace.NULL_TRACER
    result = eplace_global(comp1_circuit, fast_gp_params)
    assert not result.trace
    assert result.trace.phase_times() == {}


def test_flow_profile_self_times_cover_runtime(comp1_circuit,
                                               fast_gp_params,
                                               fast_dp_params, tracer):
    """Acceptance: per-phase self times sum to ~the flow's runtime_s."""
    from repro.api import place

    result = place(comp1_circuit, "eplace-a",
                   gp_params=fast_gp_params, dp_params=fast_dp_params)
    t = result.trace
    assert t.total_span_s() == pytest.approx(result.runtime_s,
                                             rel=0.10)
    assert sum(
        agg["self_s"] for agg in t.phase_times().values()
    ) == pytest.approx(t.total_span_s(), rel=1e-6)
