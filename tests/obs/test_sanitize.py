"""Runtime race sanitizer: lock order, fork safety, shared writes.

These tests arm ``REPRO_SANITIZE=1`` via monkeypatch per test; the CI
``sanitize`` job additionally runs the whole obs/parallel/racing suite
with the variable exported so the instrumented locks in the real stack
(EventBus, registry sink, racing kills) are exercised under load.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro import sanitize
from repro.obs import live
from repro.parallel import parallel_map, parallel_map_live


@pytest.fixture
def sanitized(monkeypatch):
    """Arm the sanitizer and isolate the global lock-order graph."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitize.reset_order_graph()
    yield
    sanitize.reset_order_graph()


class TestEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()
        lock = sanitize.make_lock("x")
        assert not isinstance(lock, sanitize.TrackedLock)
        assert sanitize.shared_list("x") == []
        assert not isinstance(
            sanitize.shared_list("x"), sanitize.SanitizedList
        )

    def test_on_with_env(self, sanitized):
        assert sanitize.enabled()
        assert isinstance(
            sanitize.make_lock("x"), sanitize.TrackedLock
        )
        assert isinstance(
            sanitize.shared_list("x"), sanitize.SanitizedList
        )


class TestLockOrder:
    def test_inversion_raises_deterministically(self, sanitized):
        a = sanitize.make_lock("A")
        b = sanitize.make_lock("B")
        with a:
            with b:
                pass
        # the opposite nesting now fails on ONE thread, without any
        # second thread or unlucky scheduling
        with pytest.raises(sanitize.LockOrderError, match="inversion"):
            with b:
                with a:
                    pass

    def test_consistent_order_is_fine(self, sanitized):
        a = sanitize.make_lock("A")
        b = sanitize.make_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_reset_forgets_orders(self, sanitized):
        a = sanitize.make_lock("A")
        b = sanitize.make_lock("B")
        with a:
            with b:
                pass
        sanitize.reset_order_graph()
        with b:
            with a:
                pass  # no recorded history, no inversion

    def test_transitive_inversion_detected(self, sanitized):
        a = sanitize.make_lock("A")
        b = sanitize.make_lock("B")
        c = sanitize.make_lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(sanitize.LockOrderError):
            with c:
                with a:
                    pass

    def test_reentrant_reacquire_allowed(self, sanitized):
        lock = sanitize.make_lock("R", reentrant=True)
        with lock:
            with lock:
                assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_release_restores_stack(self, sanitized):
        a = sanitize.make_lock("A")
        with a:
            assert a.held_by_current_thread()
        assert not a.held_by_current_thread()


class TestForkSafety:
    def test_noop_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sanitize.check_fork_safety()  # never raises when off

    def test_clean_process_passes(self, sanitized):
        sanitize.check_fork_safety()

    def test_nondaemon_thread_raises(self, sanitized):
        release = threading.Event()
        thread = threading.Thread(target=release.wait)
        thread.start()
        try:
            with pytest.raises(
                sanitize.ForkSafetyError, match="non-daemon"
            ):
                sanitize.check_fork_safety()
        finally:
            release.set()
            thread.join()

    def test_main_thread_is_exempt_from_worker_forks(self, sanitized):
        # A threaded server forks from worker threads while the main
        # thread is (unavoidably) alive — that must not be flagged.
        outcome = []

        def worker():
            try:
                sanitize.check_fork_safety()
                outcome.append(None)
            except sanitize.ForkSafetyError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        thread.join()
        assert outcome == [None]

    def test_running_sampler_raises(self, sanitized):
        sampler = live.ResourceSampler(live.EventBus(), interval=0.05)
        sampler.start()
        try:
            with pytest.raises(
                sanitize.ForkSafetyError, match="resource-sampler"
            ):
                sanitize.check_fork_safety()
        finally:
            sampler.stop()
        sanitize.check_fork_safety()  # clean again once stopped

    def test_suspend_samplers_makes_fork_safe(self, sanitized):
        sampler = live.ResourceSampler(live.EventBus(), interval=0.05)
        sampler.start()
        try:
            with live.suspend_samplers():
                assert not sampler.running
                sanitize.check_fork_safety()
            assert sampler.running
        finally:
            sampler.stop()

    def test_at_fork_hook_records_not_raises(self, sanitized):
        sanitize.install()
        sanitize.install()  # idempotent
        release = threading.Event()
        thread = threading.Thread(target=release.wait)
        thread.start()
        before = len(sanitize.fork_violations)
        try:
            sanitize._at_fork_check()  # must not raise
        finally:
            release.set()
            thread.join()
        assert len(sanitize.fork_violations) == before + 1
        assert "hazardous" in sanitize.fork_violations[-1]


class TestSharedList:
    def test_same_thread_writes_ok(self, sanitized):
        shared = sanitize.shared_list("s")
        shared.append(1)
        shared.extend([2, 3])
        shared[0] = 0
        shared.sort()
        assert shared == [0, 2, 3]

    def test_cross_thread_write_raises(self, sanitized):
        shared = sanitize.shared_list("s")
        shared.append(1)  # this thread now owns the structure
        caught: "list[BaseException]" = []

        def intruder() -> None:
            try:
                shared.append(2)
            except BaseException as exc:  # noqa: BLE001
                caught.append(exc)

        thread = threading.Thread(target=intruder)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], sanitize.SharedWriteError)

    def test_lock_held_write_transfers_ownership(self, sanitized):
        lock = sanitize.make_lock("s.lock")
        shared = sanitize.shared_list("s", lock=lock)
        shared.append(1)
        errors: "list[BaseException]" = []

        def cooperator() -> None:
            try:
                with lock:
                    shared.append(2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=cooperator)
        thread.start()
        thread.join()
        assert errors == []
        assert shared == [1, 2]
        # ownership transferred to the cooperator; this thread must
        # now take the lock too
        with lock:
            shared.append(3)
        assert shared == [1, 2, 3]

    def test_pickles_to_plain_list(self, sanitized):
        shared = sanitize.shared_list("s")
        shared.extend([1, 2])
        clone = pickle.loads(pickle.dumps(shared))
        assert type(clone) is list
        assert clone == [1, 2]


class TestSamplerPauseResume:
    def test_elapsed_clock_survives_pause(self, sanitized):
        sink = live.CollectingSubscriber()
        bus = live.EventBus()
        bus.subscribe(sink)
        sampler = live.ResourceSampler(bus, interval=0.01)
        sampler.start()
        try:
            time.sleep(0.05)
            sampler.pause()
            n_paused = len(sink.events)
            assert n_paused >= 1
            time.sleep(0.03)
            assert len(sink.events) == n_paused  # truly stopped
            sampler.resume()
            deadline = time.time() + 2.0
            while len(sink.events) <= n_paused and time.time() < deadline:
                time.sleep(0.01)
            assert len(sink.events) > n_paused
        finally:
            sampler.stop()
        elapsed = [e.elapsed_s for e in sink.events]
        assert elapsed == sorted(elapsed)  # continuous across pause


class TestEventBusStress:
    def test_concurrent_publish_and_subscriber_churn(self, sanitized):
        bus = live.EventBus()
        sink = live.RingSubscriber(capacity=100_000)
        bus.subscribe(sink)
        errors: "list[BaseException]" = []
        n_threads, n_events = 4, 250

        def publisher(idx: int) -> None:
            try:
                for i in range(n_events):
                    bus.publish(
                        live.ProgressEvent("stress", i, {}, idx)
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=publisher, args=(idx,))
            for idx in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        # churn the subscriber list while publishers hammer the bus:
        # subscribe/unsubscribe take the bus's tracked lock
        churn = live.CollectingSubscriber()
        for _ in range(50):
            bus.subscribe(churn)
            bus.unsubscribe(churn)
        for thread in threads:
            thread.join()
        assert errors == []
        assert sink.seen == n_threads * n_events


def _double(x: int) -> int:
    return 2 * x


class TestForkRegression:
    """Forking under an active live session with a running sampler.

    The original hazard: ``parallel_map`` forked while the resource
    sampler's daemon thread was mid-publish, so the child inherited
    locked locks.  The fix routes every fork through
    ``live.suspend_samplers()`` + ``sanitize.check_fork_safety()`` —
    with the sanitizer armed, these tests fail loudly if the guard
    ever regresses.
    """

    def test_parallel_map_with_live_sampler(self, sanitized):
        sink = live.CollectingSubscriber()
        with live.session() as bus:
            bus.subscribe(sink)
            sampler = live.ResourceSampler(bus, interval=0.01)
            sampler.start()
            try:
                assert parallel_map(_double, [1, 2, 3], jobs=2) == [
                    2, 4, 6
                ]
                # the sampler was resumed after the fork and samples on
                deadline = time.time() + 2.0
                baseline = len(sink.events)
                while (
                    len(sink.events) <= baseline
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
                assert sampler.running
                assert len(sink.events) > baseline
            finally:
                sampler.stop()

    def test_parallel_map_live_with_live_sampler(self, sanitized):
        bus = live.EventBus()
        sampler = live.ResourceSampler(bus, interval=0.01)
        sampler.start()
        try:
            out = parallel_map_live(
                _double, [4, 5], jobs=2, bus=bus
            )
            assert out == [8, 10]
            assert sampler.running
        finally:
            sampler.stop()
