"""All five engines publish per-iteration events through the bus.

The streams are live-only here — no tracer is active — so these tests
also pin that live telemetry works without the post-mortem recorder
(and vice versa: the engines guard on ``tracer.enabled or
live.active()``).
"""

from __future__ import annotations

import numpy as np

from repro.annealing import SAParams, anneal_place
from repro.eplace import EPlaceParams, eplace_global
from repro.obs import live
from repro.perf_driven.eplace_ap import EPlaceAPGlobalPlacer
from repro.perf_driven.perf_xu import XuPerfGlobalPlacer
from repro.xu_ispd19 import XuParams, xu_global


class _StubModel:
    """Duck-typed PerformanceModel: a smooth quadratic phi term."""

    trust = 1.0

    def __init__(self, circuit):
        self.circuit = circuit

    def phi(self, x, y):
        return float(np.sum(x * x + y * y))

    def phi_and_grad(self, x, y):
        return self.phi(x, y), 2.0 * x, 2.0 * y


def _progress_of(fn):
    sub = live.CollectingSubscriber()
    bus = live.EventBus()
    bus.subscribe(sub)
    with live.session(bus):
        result = fn()
    progress = [e for e in sub.events
                if isinstance(e, live.ProgressEvent)]
    return result, progress


def test_eplace_a_streams_nesterov_iterations(comp1_circuit,
                                              fast_gp_params):
    result, progress = _progress_of(
        lambda: eplace_global(comp1_circuit, fast_gp_params)
    )
    assert {e.phase for e in progress} == {"eplace.nesterov"}
    assert len(progress) == result.stats["iterations"]
    assert [e.iteration for e in progress] == \
        list(range(1, len(progress) + 1))
    for key in ("value", "overflow", "hpwl", "density_weight"):
        assert key in progress[-1].values, key


def test_xu_ispd19_streams_cg_and_stage_events(comp1_circuit):
    params = XuParams(cg_iterations=30, stages=3)
    _, progress = _progress_of(
        lambda: xu_global(comp1_circuit, params)
    )
    phases = {e.phase for e in progress}
    assert phases == {"xu.cg", "xu.stage"}
    stages = [e for e in progress if e.phase == "xu.stage"]
    assert len(stages) == params.stages
    assert "hpwl" in stages[-1].values


def test_annealing_streams_one_event_per_stage(comp1_circuit,
                                               fast_sa_params):
    _, progress = _progress_of(
        lambda: anneal_place(comp1_circuit, fast_sa_params)
    )
    expected = -(-fast_sa_params.iterations //
                 fast_sa_params.moves_per_temp)
    assert {e.phase for e in progress} == {"sa.stage"}
    assert len(progress) == expected
    assert {"temperature", "cost", "best_cost"} <= set(
        progress[0].values
    )


def test_eplace_ap_streams_through_base_loop(comp1_circuit,
                                             fast_gp_params):
    placer = EPlaceAPGlobalPlacer(
        comp1_circuit, _StubModel(comp1_circuit), fast_gp_params
    )
    result, progress = _progress_of(placer.place)
    assert {e.phase for e in progress} == {"eplace.nesterov"}
    assert len(progress) == result.stats["iterations"]


def test_perf_xu_streams_through_base_loop(comp1_circuit):
    placer = XuPerfGlobalPlacer(
        comp1_circuit, _StubModel(comp1_circuit),
        XuParams(cg_iterations=20, stages=2),
    )
    _, progress = _progress_of(placer.place)
    assert {e.phase for e in progress} >= {"xu.stage"}
    assert len(
        [e for e in progress if e.phase == "xu.stage"]
    ) == 2


def test_no_bus_no_events_published(comp1_circuit, fast_sa_params):
    # guard direction: without a session, engines publish nothing and
    # run exactly as before
    result = anneal_place(comp1_circuit, fast_sa_params)
    assert result.stats["best_cost"] > 0
