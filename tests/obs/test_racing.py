"""Convergence racing: controller decisions and end-to-end kills."""

from __future__ import annotations

import pytest

from repro.api import place_multiseed
from repro.annealing import SAParams
from repro.circuits import comp1
from repro.obs import live
from repro.obs.racing import RaceController, RaceResult, RacingParams


class _FakeHandle:
    def __init__(self):
        self.cancelled: list[int] = []

    def cancel(self, index: int) -> None:
        self.cancelled.append(index)


class TestRaceController:
    def _publish_pair(self, bus, iteration, costs):
        for source, cost in enumerate(costs):
            bus.publish(live.ProgressEvent(
                "p", iteration, {"cost": cost}, source
            ))

    def test_dominated_seed_killed_at_first_checkpoint(self):
        bus = live.EventBus()
        sub = live.CollectingSubscriber()
        bus.subscribe(sub)
        controller = RaceController(
            RacingParams(warmup_frac=0.5, rel_tol=0.1, metric="cost"),
            seeds=[10, 20], expected_iterations=4,
        )
        controller.attach(bus)
        handle = _FakeHandle()
        controller.bind(handle)
        for iteration in range(1, 5):
            self._publish_pair(bus, iteration, [1.0, 2.0])
        assert [k.seed for k in controller.kills] == [20]
        kill = controller.kills[0]
        assert kill.iteration == 2  # warmup = ceil(0.5 * 4)
        assert kill.value == 2.0 and kill.best == 1.0 and kill.landed
        assert handle.cancelled == [1]
        race_events = [e for e in sub.events
                       if isinstance(e, live.RaceEvent)]
        assert len(race_events) == 1
        assert race_events[0].seed == 20 and race_events[0].task == 1
        assert controller.winner_index() == 0

    def test_no_kill_within_tolerance(self):
        bus = live.EventBus()
        controller = RaceController(
            RacingParams(warmup_frac=0.5, rel_tol=0.5, metric="cost"),
            seeds=[10, 20], expected_iterations=4,
        )
        controller.attach(bus)
        for iteration in range(1, 5):
            self._publish_pair(bus, iteration, [1.0, 1.2])
        controller.finalize()
        assert controller.kills == []

    def test_min_survivors_floor(self):
        bus = live.EventBus()
        controller = RaceController(
            RacingParams(warmup_frac=0.5, rel_tol=0.0, metric="cost",
                         min_survivors=2),
            seeds=[1, 2, 3], expected_iterations=2,
        )
        controller.attach(bus)
        for iteration in range(1, 3):
            for source, cost in enumerate([1.0, 2.0, 3.0]):
                bus.publish(live.ProgressEvent(
                    "p", iteration, {"cost": cost}, source
                ))
        controller.finalize()
        # only one seed may die: 3 alive - min_survivors 2
        assert [k.seed for k in controller.kills] == [3]

    def test_barrier_waits_for_stragglers(self):
        bus = live.EventBus()
        controller = RaceController(
            RacingParams(warmup_frac=0.5, rel_tol=0.1, metric="cost"),
            seeds=[10, 20], expected_iterations=4,
        )
        controller.attach(bus)
        handle = _FakeHandle()
        controller.bind(handle)
        # source 0 races ahead; nothing may be decided until source 1
        # reports the checkpoint iteration
        for iteration in range(1, 5):
            bus.publish(live.ProgressEvent(
                "p", iteration, {"cost": 1.0}, 0
            ))
        assert controller.kills == []
        bus.publish(live.ProgressEvent("p", 2, {"cost": 5.0}, 1))
        assert [k.task for k in controller.kills] == [1]

    def test_metric_and_phase_autodetect(self):
        bus = live.EventBus()
        controller = RaceController(
            RacingParams(warmup_frac=0.5, rel_tol=0.1),
            seeds=[10, 20], expected_iterations=2,
        )
        controller.attach(bus)
        for iteration in range(1, 3):
            for source, cost in enumerate([1.0, 9.0]):
                bus.publish(live.ProgressEvent(
                    "sa.stage", iteration,
                    {"temperature": 0.5, "best_cost": cost}, source
                ))
        assert controller.metric == "best_cost"
        assert controller.phase == "sa.stage"
        assert [k.task for k in controller.kills] == [1]

    def test_expected_iterations_validated(self):
        with pytest.raises(ValueError):
            RaceController(RacingParams(), seeds=[1], expected_iterations=0)


@pytest.fixture(scope="module")
def comp1_sa():
    return comp1(), SAParams(iterations=3000, moves_per_temp=100)


class TestPlaceMultiseedRacing:
    # dominated seed (3) last, so the inline kill provably lands
    SEEDS = (1, 2, 4, 3)
    PARAMS = RacingParams(warmup_frac=0.3, rel_tol=0.01)

    def test_racing_saves_iterations_same_winner_quality(self, comp1_sa):
        circuit, sa_params = comp1_sa
        sub = live.CollectingSubscriber()
        bus = live.EventBus()
        bus.subscribe(sub)
        with live.session(bus):
            plain = place_multiseed(
                circuit, "annealing", seeds=self.SEEDS,
                params=sa_params,
            )
        plain_iters = sum(
            isinstance(e, live.ProgressEvent) for e in sub.events
        )

        race = place_multiseed(
            circuit, "annealing", seeds=self.SEEDS,
            racing=self.PARAMS, params=sa_params,
        )
        assert isinstance(race, RaceResult)
        # a dominated seed was provably killed mid-run ...
        assert race.kills and any(k.landed for k in race.kills)
        killed = race.killed_seeds
        assert [s for s, r in zip(race.seeds, race.results)
                if r is None] == killed
        # ... so the race burned strictly fewer engine iterations ...
        assert race.progress_events < plain_iters
        # ... with identical winner quality
        best_plain = min(r.stats["best_cost"] for r in plain)
        assert race.winner.stats["best_cost"] == best_plain
        assert race.metric == "best_cost"

    def test_kill_set_and_winner_invariant_across_jobs(self, comp1_sa):
        circuit, sa_params = comp1_sa
        outcomes = []
        for jobs in (1, 2):
            race = place_multiseed(
                circuit, "annealing", seeds=self.SEEDS, jobs=jobs,
                racing=self.PARAMS, params=sa_params,
            )
            outcomes.append((
                [(k.seed, k.iteration, k.value, k.best)
                 for k in race.kills],
                race.winner_index,
                race.winner.stats["best_cost"],
            ))
        assert outcomes[0] == outcomes[1]

    def test_racing_is_deterministic_across_repeats(self, comp1_sa):
        circuit, sa_params = comp1_sa
        runs = [
            place_multiseed(
                circuit, "annealing", seeds=self.SEEDS,
                racing=self.PARAMS, params=sa_params,
            )
            for _ in range(2)
        ]
        assert [(k.seed, k.iteration) for k in runs[0].kills] == \
            [(k.seed, k.iteration) for k in runs[1].kills]
        assert runs[0].winner_index == runs[1].winner_index
        assert runs[0].winner.stats["best_cost"] == \
            runs[1].winner.stats["best_cost"]
