"""Live telemetry bus: ordering, backpressure, sampler, overhead."""

from __future__ import annotations

import pytest

from repro.obs import live


class TestEventBus:
    def test_delivery_in_subscription_and_publish_order(self):
        order: list[tuple[str, int]] = []
        bus = live.EventBus()
        bus.subscribe(lambda e: order.append(("first", e.iteration)))
        bus.subscribe(lambda e: order.append(("second", e.iteration)))
        for i in range(3):
            bus.publish(live.ProgressEvent("p", i, {}))
        assert order == [
            ("first", 0), ("second", 0),
            ("first", 1), ("second", 1),
            ("first", 2), ("second", 2),
        ]
        assert bus.published == 3

    def test_subscribe_is_idempotent_and_unsubscribe_removes(self):
        seen: list[object] = []
        bus = live.EventBus()
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)  # no duplicate delivery
        bus.publish(live.PhaseEvent("p", "start"))
        assert len(seen) == 1
        bus.unsubscribe(seen.append)
        bus.publish(live.PhaseEvent("p", "end"))
        assert len(seen) == 1
        bus.unsubscribe(seen.append)  # unknown: ignored

    def test_source_stamps_progress_and_phase(self):
        sub = live.CollectingSubscriber()
        bus = live.EventBus(source=7)
        bus.subscribe(sub)
        with live.session(bus):
            live.phase("task", "start")
            live.progress("p", 1, value=2.0)
        assert [e.source for e in sub.events] == [7, 7]
        assert sub.events[1].values == {"value": 2.0}


class TestBackpressure:
    def test_ring_subscriber_sheds_oldest_and_counts_drops(self):
        ring = live.RingSubscriber(capacity=4)
        bus = live.EventBus()
        bus.subscribe(ring)
        for i in range(10):
            bus.publish(live.ProgressEvent("p", i, {}))
        assert ring.seen == 10
        assert ring.dropped == 6
        # the newest events survive; the publisher never blocked
        assert [e.iteration for e in ring.events] == [6, 7, 8, 9]

    def test_ring_capacity_validated(self):
        with pytest.raises(ValueError):
            live.RingSubscriber(capacity=0)


class TestSession:
    def test_no_active_bus_is_noop(self):
        assert live.current() is None
        assert not live.active()
        live.progress("orphan", 0, value=1.0)  # must not raise
        live.phase("orphan", "start")

    def test_session_activates_and_nests(self):
        assert not live.active()
        with live.session() as outer:
            assert live.current() is outer
            inner_bus = live.EventBus()
            with live.session(inner_bus):
                assert live.current() is inner_bus
            assert live.current() is outer
        assert live.current() is None

    def test_disabled_bus_constructs_no_events(self, monkeypatch):
        constructed: list[int] = []
        real = live.ProgressEvent

        class Counting(real):  # type: ignore[misc, valid-type]
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(live, "ProgressEvent", Counting)
        assert not live.active()
        for i in range(100):
            live.progress("p", i, value=float(i))
        # the overhead guard: zero event construction when the bus is
        # off — the disabled path is one thread-local lookup
        assert constructed == []
        with live.session():
            live.progress("p", 0, value=0.0)
        assert len(constructed) == 1

    def test_disabled_bus_constructs_no_health_samples(
        self, monkeypatch,
    ):
        from repro.obs import health

        constructed: list[int] = []
        real = health.HealthSample

        class Counting(real):  # type: ignore[misc, valid-type]
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(health, "HealthSample", Counting)
        assert not live.active()
        for i in range(100):
            health.sample("p", i, grad_norm=float(i))
        # same zero-construction guarantee as progress: the health
        # channel costs one thread-local lookup when no bus is active
        assert constructed == []
        with live.session():
            health.sample("p", 0, grad_norm=0.0)
        assert len(constructed) == 1

    def test_cancellation_raises_after_publishing(self):
        sub = live.CollectingSubscriber()
        cancelled = {"flag": False}
        bus = live.EventBus(cancel_check=lambda: cancelled["flag"])
        bus.subscribe(sub)
        with live.session(bus):
            live.progress("p", 1, value=1.0)
            cancelled["flag"] = True
            with pytest.raises(live.CancelledRun) as excinfo:
                live.progress("p", 2, value=2.0)
        # the cancelling publication still reached subscribers
        assert [e.iteration for e in sub.events] == [1, 2]
        assert excinfo.value.phase == "p"
        assert excinfo.value.iteration == 2


class TestResourceSampler:
    def test_samples_flow_to_the_bus(self):
        sub = live.CollectingSubscriber()
        bus = live.EventBus()
        bus.subscribe(sub)
        with live.ResourceSampler(bus, interval=0.01) as sampler:
            deadline = 200
            while sampler.samples < 2 and deadline:
                sampler._stop.wait(0.01)
                deadline -= 1
        samples = [e for e in sub.events
                   if isinstance(e, live.ResourceSample)]
        assert len(samples) >= 2
        for sample in samples:
            assert sample.rss_kib > 0
            assert sample.cpu_s >= 0
            assert sample.elapsed_s >= 0

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            live.ResourceSampler(live.EventBus(), interval=0.0)


class TestCanonicalOrdering:
    def test_stable_sort_by_source(self):
        sub = live.CollectingSubscriber()
        # interleaved arrival from two sources plus a local event
        arrivals = [
            live.ProgressEvent("p", 1, {}, source=1),
            live.ProgressEvent("p", 1, {}, source=0),
            live.PhaseEvent("task", "start", source=None),
            live.ProgressEvent("p", 2, {}, source=1),
            live.ProgressEvent("p", 2, {}, source=0),
        ]
        for event in arrivals:
            sub(event)
        canonical = sub.canonical()
        assert [getattr(e, "source", None) for e in canonical] == \
            [None, 0, 0, 1, 1]
        # stability: per-source order is untouched
        assert [e.iteration for e in canonical
                if getattr(e, "source", None) == 1] == [1, 2]


class TestEventSerialisation:
    EVENTS = [
        live.ProgressEvent("p", 3, {"hpwl": 1.5}, source=2),
        live.PhaseEvent("task", "end", source=0),
        live.ResourceSample(0.5, 1024.0, 0.25, rss_is_peak=True),
        live.RaceEvent("kill", seed=7, task=1, iteration=9,
                       value=2.0, best=1.0, landed=False),
    ]

    def test_round_trip(self):
        for event in self.EVENTS:
            record = live.event_to_record(event)
            assert isinstance(record["event"], str)
            assert live.event_from_record(record) == event

    def test_unknown_kinds_raise(self):
        with pytest.raises(TypeError):
            live.event_to_record(object())
        with pytest.raises(ValueError):
            live.event_from_record({"event": "nosuch"})
