"""Monotonic-clock discipline: one epoch per tracer, absorb rebasing."""

from __future__ import annotations

from repro.obs import export, trace


def test_tracer_captures_wall_clock_epoch_once():
    tracer = trace.Tracer()
    assert tracer.epoch_unix is not None
    with trace.tracing() as active:
        with trace.span("a"):
            pass
    assert active.to_trace().epoch_unix == active.epoch_unix


def test_absorb_rebases_span_starts_onto_parent_clock():
    parent = trace.Tracer()
    worker = trace.Tracer()
    with worker.span("worker.phase"):
        pass
    worker_trace = worker.to_trace()
    # simulate a worker whose process started 100 s after the parent:
    # its monotonic offsets are near zero but its epoch is later
    worker_trace.epoch_unix = parent.epoch_unix + 100.0
    original_start = worker_trace.spans[0].start
    shift = worker_trace.epoch_unix - parent.epoch_unix
    parent.absorb(worker_trace)
    merged = parent.to_trace()
    (span,) = merged.spans
    assert span.start == original_start + shift
    # absorbing mutates the merged copy only, on one timeline whose
    # zero point is the parent's epoch
    assert merged.epoch_unix == parent.epoch_unix


def test_absorb_without_epoch_keeps_offsets():
    parent = trace.Tracer()
    worker = trace.Tracer()
    with worker.span("legacy"):
        pass
    legacy = worker.to_trace()
    legacy.epoch_unix = None  # pre-epoch export
    start = legacy.spans[0].start
    parent.absorb(legacy)
    assert parent.to_trace().spans[0].start == start


def test_export_round_trips_epoch(tmp_path):
    with trace.tracing() as tracer:
        with trace.span("a"):
            pass
    path = tmp_path / "trace.jsonl"
    export.write_jsonl(tracer.to_trace(), path, method="test")
    meta, reloaded = export.read_jsonl(path)
    assert reloaded.epoch_unix == tracer.epoch_unix
    # epoch is computed metadata, not caller context
    assert "epoch_unix" not in meta
    # re-export reproduces the original byte-for-byte
    second = tmp_path / "again.jsonl"
    export.write_jsonl(reloaded, second, **meta)
    assert path.read_text() == second.read_text()
