"""Unit tests for the span tracer core (repro.obs.trace)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import trace


def test_no_active_tracer_is_null():
    assert trace.current() is trace.NULL_TRACER
    assert not trace.active()
    # the module-level helpers must be no-ops, not errors
    with trace.span("orphan"):
        with trace.timer("orphan.timer"):
            pass
    trace.record("orphan", 0, value=1.0)
    assert not trace.NULL_TRACER.to_trace()


def test_disabled_tracer_returns_empty_falsy_trace():
    tracer = trace.Tracer(enabled=False)
    with tracer.span("a"):
        pass
    tracer.record("p", 0, v=1.0)
    t = tracer.to_trace()
    assert not t
    assert t.spans == [] and t.convergence == []


def test_span_nesting_depth_parent_and_self_time():
    with trace.tracing() as tracer:
        with trace.span("outer", circuit="tiny"):
            with trace.span("inner"):
                pass
            with trace.span("inner"):
                pass
    t = tracer.to_trace()
    by_name = {}
    for s in t.spans:
        by_name.setdefault(s.name, []).append(s)
    (outer,) = by_name["outer"]
    inners = by_name["inner"]
    assert outer.depth == 0 and outer.parent is None
    assert outer.attrs == {"circuit": "tiny"}
    assert all(s.depth == 1 and s.parent == "outer" for s in inners)
    # self time = duration minus children, and it partitions the total
    child_total = sum(s.duration for s in inners)
    assert outer.self_s == pytest.approx(outer.duration - child_total)
    assert sum(s.self_s for s in t.spans) == pytest.approx(
        t.total_span_s()
    )


def test_phase_times_aggregates_calls():
    with trace.tracing() as tracer:
        for _ in range(3):
            with trace.span("phase.x"):
                pass
    phases = tracer.to_trace().phase_times()
    assert phases["phase.x"]["calls"] == 3
    assert phases["phase.x"]["total_s"] >= 0.0


def test_timer_aggregates_instead_of_per_call_records():
    with trace.tracing() as tracer:
        for _ in range(50):
            with trace.timer("hot.loop"):
                pass
    t = tracer.to_trace()
    assert t.spans == []
    assert t.timers["hot.loop"]["calls"] == 50
    assert t.timers["hot.loop"]["total_s"] >= 0.0


def test_iteration_records_ring_buffer_and_drop_count():
    with trace.tracing(convergence_capacity=10) as tracer:
        for i in range(25):
            trace.record("p", i, value=float(i))
    t = tracer.to_trace()
    assert len(t.convergence) == 10
    assert t.dropped_records == 15
    # ring keeps the newest records
    assert [r.iteration for r in t.convergence] == list(range(15, 25))
    assert t.convergence_by_phase("p")[-1].values == {"value": 24.0}
    assert t.convergence_by_phase("other") == []


def test_max_spans_cap_and_drop_count():
    with trace.tracing(max_spans=5) as tracer:
        for _ in range(8):
            with trace.span("s"):
                pass
    t = tracer.to_trace()
    assert len(t.spans) == 5
    assert t.dropped_spans == 3


def test_span_stacks_are_thread_local():
    with trace.tracing() as tracer:
        barrier = threading.Barrier(2)

        def work(name):
            # the active tracer is thread-local: re-register on workers
            trace._ACTIVE.tracer = tracer
            try:
                with trace.span(name):
                    barrier.wait(timeout=5)
            finally:
                trace._ACTIVE.tracer = None

        threads = [
            threading.Thread(target=work, args=(f"t{i}",), name=f"w{i}")
            for i in range(2)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    t = tracer.to_trace()
    # both spans overlap in time yet neither parents the other
    assert sorted(s.name for s in t.spans) == ["t0", "t1"]
    assert all(s.depth == 0 and s.parent is None for s in t.spans)
    assert sorted(s.thread for s in t.spans) == ["w0", "w1"]


def test_tracing_restores_previous_tracer():
    with trace.tracing() as outer:
        assert trace.current() is outer
        with trace.tracing() as inner:
            assert trace.current() is inner
        assert trace.current() is outer
    assert trace.current() is trace.NULL_TRACER


def test_stopwatch_elapsed_and_restart():
    clock = trace.Stopwatch()
    first = clock.elapsed()
    assert first >= 0.0
    clock.restart()
    assert clock.elapsed() <= first + 1.0


def test_stats_view_shape():
    with trace.tracing() as tracer:
        with trace.span("a"):
            pass
        trace.record("p", 0, v=1.0)
    view = tracer.to_trace().stats_view()
    assert view["spans"] == 1
    assert view["convergence_records"] == 1
    assert "phase_times" in view and "a" in view["phase_times"]
