"""All five engines publish HealthSample events on the live bus.

Mirror of ``test_engine_live.py`` for the typed health channel: each
engine streams solver internals (gradient norms, line-search activity,
acceptance rates) alongside its progress events, and the samples
serialise through the ``events.jsonl`` record codec.
"""

from __future__ import annotations

import numpy as np

from repro.annealing import SAParams, anneal_place
from repro.eplace import EPlaceParams, eplace_global
from repro.obs import health, live, tracing
from repro.perf_driven.eplace_ap import EPlaceAPGlobalPlacer
from repro.perf_driven.perf_xu import XuPerfGlobalPlacer
from repro.xu_ispd19 import XuParams, xu_global


class _StubModel:
    """Duck-typed PerformanceModel: a smooth quadratic phi term."""

    trust = 1.0

    def __init__(self, circuit):
        self.circuit = circuit

    def phi(self, x, y):
        return float(np.sum(x * x + y * y))

    def phi_and_grad(self, x, y):
        return self.phi(x, y), 2.0 * x, 2.0 * y


def _health_of(fn):
    sub = live.CollectingSubscriber()
    bus = live.EventBus()
    bus.subscribe(sub)
    with live.session(bus):
        result = fn()
    samples = [e for e in sub.events
               if isinstance(e, health.HealthSample)]
    return result, samples


def test_eplace_a_publishes_health(comp1_circuit, fast_gp_params):
    result, samples = _health_of(
        lambda: eplace_global(comp1_circuit, fast_gp_params)
    )
    assert {s.phase for s in samples} == {"eplace.nesterov"}
    # one health sample per progress iteration
    assert len(samples) == result.stats["iterations"]
    last = samples[-1].values
    for key in ("grad_norm", "grad_wl_norm", "grad_density_norm",
                "grad_penalty_norm", "step_length", "step_predicted",
                "backtracks", "density_weight", "tau", "eta",
                "overflow"):
        assert key in last, key
    assert last["step_predicted"] > 0.0


def test_xu_ispd19_publishes_health(comp1_circuit):
    params = XuParams(cg_iterations=30, stages=3)
    _, samples = _health_of(
        lambda: xu_global(comp1_circuit, params)
    )
    phases = {s.phase for s in samples}
    assert phases == {"xu.cg", "xu.stage"}
    cg = [s for s in samples if s.phase == "xu.cg"]
    for key in ("residual", "step_length", "line_search_halvings",
                "restarts", "density_weight"):
        assert key in cg[-1].values, key
    # restarts is a cumulative counter: never decreasing per stage
    stages = {}
    for s in cg:
        stage = (s.iteration - 1) // params.cg_iterations
        series = stages.setdefault(stage, [])
        series.append(s.values["restarts"])
    for series in stages.values():
        assert series == sorted(series)


def test_annealing_publishes_health(comp1_circuit, fast_sa_params):
    _, samples = _health_of(
        lambda: anneal_place(comp1_circuit, fast_sa_params)
    )
    assert {s.phase for s in samples} == {"sa.stage"}
    first = samples[0].values
    for key in ("accept_rate", "temperature", "dirty_nets",
                "evaluated"):
        assert key in first, key
    assert 0.0 <= first["accept_rate"] <= 1.0
    # the incremental evaluator touched at least one net somewhere
    assert sum(s.values["dirty_nets"] for s in samples) > 0


def test_eplace_ap_health_adds_gnn_term(comp1_circuit,
                                        fast_gp_params):
    placer = EPlaceAPGlobalPlacer(
        comp1_circuit, _StubModel(comp1_circuit), fast_gp_params
    )
    _, samples = _health_of(placer.place)
    assert samples
    assert "grad_phi_norm" in samples[-1].values
    assert samples[-1].values["grad_phi_norm"] > 0.0


def test_perf_xu_health_adds_gnn_term(comp1_circuit):
    placer = XuPerfGlobalPlacer(
        comp1_circuit, _StubModel(comp1_circuit),
        XuParams(cg_iterations=20, stages=2),
    )
    _, samples = _health_of(placer.place)
    cg = [s for s in samples if s.phase == "xu.cg"]
    assert cg
    assert "grad_phi_norm" in cg[-1].values
    assert cg[-1].values["grad_phi_norm"] > 0.0


def test_health_sample_record_roundtrip():
    sample = health.HealthSample(
        "eplace.nesterov", 7, {"grad_norm": 1.5}, source=2
    )
    record = live.event_to_record(sample)
    assert record["event"] == "health"
    back = live.event_from_record(record)
    assert isinstance(back, health.HealthSample)
    assert back == sample


def test_traced_runs_record_health_phases(comp1_circuit,
                                          fast_sa_params):
    with tracing():
        result = anneal_place(comp1_circuit, fast_sa_params)
    phases = {r.phase for r in result.trace.convergence}
    assert "sa.stage" in phases
    assert "sa.stage" + health.HEALTH_SUFFIX in phases
    # the trace-side diagnosis landed on the result
    assert result.diagnosis is not None
    assert "sa.stage" in result.diagnosis.phases


def test_base_phase_helpers():
    assert health.base_phase("eplace.nesterov.health") == \
        "eplace.nesterov"
    assert health.base_phase("eplace.nesterov") == "eplace.nesterov"
    assert health.is_health_phase("xu.cg.health")
    assert not health.is_health_phase("xu.cg")
