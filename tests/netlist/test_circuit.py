"""Circuit container unit tests."""

import pytest

from repro.netlist import (
    Circuit,
    CircuitError,
    Device,
    DeviceType,
    Net,
    SymmetryGroup,
)


def _mos(name, w=2.0, h=2.0):
    return Device(name, DeviceType.NMOS, width=w, height=h)


def test_duplicate_device_rejected():
    c = Circuit("c")
    c.add_device(_mos("A"))
    with pytest.raises(CircuitError, match="duplicate device"):
        c.add_device(_mos("A"))


def test_duplicate_net_rejected():
    c = Circuit("c")
    c.add_device(_mos("A"))
    c.add_net(Net("n", ["A"]))
    with pytest.raises(CircuitError, match="duplicate net"):
        c.add_net(Net("n", ["A"]))


def test_validate_unknown_device_in_net():
    c = Circuit("c")
    c.add_device(_mos("A"))
    c.add_net(Net("n", ["A", "B"]))
    with pytest.raises(CircuitError, match="unknown device 'B'"):
        c.validate()


def test_validate_unknown_pin():
    c = Circuit("c")
    c.add_device(_mos("A"))
    c.add_net(Net("n", [("A", "nopin")]))
    with pytest.raises(KeyError, match="no pin"):
        c.validate()


def test_validate_unknown_constraint_device():
    c = Circuit("c")
    c.add_device(_mos("A"))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g", pairs=(("A", "Z"),))
    )
    with pytest.raises(CircuitError, match="unknown devices"):
        c.validate()


def test_validate_mismatched_pair_dimensions():
    c = Circuit("c")
    c.add_device(_mos("A", w=2.0))
    c.add_device(_mos("B", w=4.0))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g", pairs=(("A", "B"),))
    )
    with pytest.raises(CircuitError, match="mismatched"):
        c.validate()


def test_validate_device_in_two_groups():
    c = Circuit("c")
    for name in ("A", "B", "C"):
        c.add_device(_mos(name))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g1", pairs=(("A", "B"),)))
    c.constraints.symmetry_groups.append(
        SymmetryGroup("g2", pairs=(("A", "C"),)))
    with pytest.raises(CircuitError, match="more than one"):
        c.validate()


def test_empty_circuit_invalid():
    with pytest.raises(CircuitError, match="no devices"):
        Circuit("c").validate()


def test_index_and_sizes(tiny_circuit):
    assert tiny_circuit.index_of("C") == 2
    widths, heights = tiny_circuit.sizes()
    assert widths.tolist() == [2.0, 2.0, 4.0, 2.0]
    assert heights.tolist() == [2.0, 2.0, 2.0, 4.0]
    assert tiny_circuit.total_device_area() == pytest.approx(24.0)


def test_index_of_unknown():
    c = Circuit("c")
    c.add_device(_mos("A"))
    with pytest.raises(CircuitError, match="no device"):
        c.index_of("Z")


def test_net_pin_arrays_offsets_from_centre(tiny_circuit):
    arrays = tiny_circuit.net_pin_arrays()
    idx, offx, offy = arrays[0]  # net n1: A.p, C.p
    assert idx.tolist() == [0, 2]
    # A.p at (0.4, 1.0) of a 2x2 device -> centre offset (-0.6, 0.0)
    assert offx[0] == pytest.approx(-0.6)
    assert offy[0] == pytest.approx(0.0)


def test_to_graph_clique_weights(tiny_circuit):
    g = tiny_circuit.to_graph()
    assert g.number_of_nodes() == 4
    # n2 (weight 2, degree 3) contributes 2*2/3 to each pair
    assert g["B"]["C"]["weight"] == pytest.approx(4.0 / 3.0)
    assert g["C"]["D"]["weight"] == pytest.approx(4.0 / 3.0)
    # n1 (weight 1, degree 2) contributes 1.0
    assert g["A"]["C"]["weight"] == pytest.approx(1.0)


def test_parallel_nets_accumulate_graph_weight():
    c = Circuit("c")
    c.add_device(_mos("A"))
    c.add_device(_mos("B"))
    c.add_net(Net("n1", ["A", "B"]))
    c.add_net(Net("n2", ["A", "B"]))
    g = c.to_graph()
    assert g["A"]["B"]["weight"] == pytest.approx(2.0)


def test_repr_mentions_counts(tiny_circuit):
    text = repr(tiny_circuit)
    assert "devices=4" in text
    assert "nets=2" in text
