"""Net model unit tests."""

import pytest

from repro.netlist import Net, Terminal


def test_terminal_parsing_forms():
    net = Net("n", ["A", ("B", "g"), Terminal("C", "d")])
    assert net.terminals == (
        Terminal("A", "c"), Terminal("B", "g"), Terminal("C", "d"),
    )


def test_degree_and_devices_dedup():
    net = Net("n", [("A", "g"), ("A", "d"), ("B", "g")])
    assert net.degree == 3
    assert net.devices == ("A", "B")


def test_rejects_nonpositive_weight():
    with pytest.raises(ValueError, match="weight"):
        Net("n", ["A"], weight=0.0)


def test_equality_and_hash():
    a = Net("n", [("A", "g")], weight=2.0)
    b = Net("n", [("A", "g")], weight=2.0)
    c = Net("n", [("A", "d")], weight=2.0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_single_terminal_net_allowed():
    net = Net("io", ["A"])
    assert net.degree == 1


def test_critical_flag():
    assert Net("n", ["A", "B"], critical=True).critical
    assert not Net("n", ["A", "B"]).critical
