"""Device model unit tests."""

import pytest

from repro.netlist import Device, DeviceType, Pin


def test_default_centre_pin():
    d = Device("m", DeviceType.NMOS, width=2.0, height=4.0)
    pin = d.pin("c")
    assert pin.offset_x == pytest.approx(1.0)
    assert pin.offset_y == pytest.approx(2.0)


def test_area():
    d = Device("m", DeviceType.PMOS, width=2.5, height=4.0)
    assert d.area == pytest.approx(10.0)


def test_rejects_nonpositive_dimensions():
    with pytest.raises(ValueError, match="dimensions must be positive"):
        Device("m", DeviceType.NMOS, width=0.0, height=1.0)
    with pytest.raises(ValueError):
        Device("m", DeviceType.NMOS, width=1.0, height=-2.0)


def test_rejects_pin_outside_rectangle():
    with pytest.raises(ValueError, match="outside"):
        Device("m", DeviceType.NMOS, width=2.0, height=2.0,
               pins={"p": Pin("p", 3.0, 1.0)})


def test_unknown_pin_raises_with_context():
    d = Device("m", DeviceType.NMOS, width=2.0, height=2.0)
    with pytest.raises(KeyError, match="no pin 'x'"):
        d.pin("x")


def test_pin_offset_flipping():
    d = Device("m", DeviceType.NMOS, width=4.0, height=2.0,
               pins={"p": Pin("p", 1.0, 0.5)})
    assert d.pin_offset("p") == (1.0, 0.5)
    assert d.pin_offset("p", flip_x=True) == (3.0, 0.5)
    assert d.pin_offset("p", flip_y=True) == (1.0, 1.5)
    assert d.pin_offset("p", flip_x=True, flip_y=True) == (3.0, 1.5)


def test_double_flip_is_identity():
    d = Device("m", DeviceType.NMOS, width=4.0, height=2.0,
               pins={"p": Pin("p", 0.8, 1.7)})
    ox, oy = d.pin_offset("p")
    fx, fy = d.pin_offset("p", flip_x=True)
    fx2 = d.width - fx
    assert fx2 == pytest.approx(ox)
    assert fy == pytest.approx(oy)


def test_device_type_index_stable():
    indices = {t.index for t in DeviceType}
    assert indices == set(range(len(DeviceType)))
