"""Constraint model unit tests."""

import pytest

from repro.netlist import (
    AlignmentPair,
    Axis,
    ConstraintSet,
    OrderingChain,
    SymmetryGroup,
)


class TestSymmetryGroup:
    def test_devices_flattened(self):
        g = SymmetryGroup("g", pairs=(("A", "B"), ("C", "D")),
                          self_symmetric=("E",))
        assert g.devices == ("A", "B", "C", "D", "E")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SymmetryGroup("g")

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            SymmetryGroup("g", pairs=(("A", "A"),))

    def test_duplicate_device_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            SymmetryGroup("g", pairs=(("A", "B"),),
                          self_symmetric=("A",))

    def test_default_axis_vertical(self):
        g = SymmetryGroup("g", pairs=(("A", "B"),))
        assert g.axis is Axis.VERTICAL


class TestAlignmentPair:
    def test_kinds(self):
        for kind in ("bottom", "vcenter", "hcenter"):
            AlignmentPair("A", "B", kind)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="alignment kind"):
            AlignmentPair("A", "B", "top")

    def test_same_device_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            AlignmentPair("A", "A")


class TestOrderingChain:
    def test_pairs(self):
        chain = OrderingChain(("A", "B", "C"))
        assert chain.pairs == (("A", "B"), ("B", "C"))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            OrderingChain(("A",))

    def test_repeat_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            OrderingChain(("A", "B", "A"))


class TestConstraintSet:
    def test_constrained_devices(self):
        cs = ConstraintSet(
            symmetry_groups=[SymmetryGroup("g", pairs=(("A", "B"),))],
            alignments=[AlignmentPair("C", "D")],
            orderings=[OrderingChain(("E", "F"))],
        )
        assert cs.constrained_devices() == {"A", "B", "C", "D", "E", "F"}

    def test_is_empty(self):
        assert ConstraintSet().is_empty()
        cs = ConstraintSet(alignments=[AlignmentPair("A", "B")])
        assert not cs.is_empty()
