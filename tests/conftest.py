"""Shared fixtures: small circuits and fast placer configurations."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Randomized property search is the default again: the two pre-seed
# solver bugs it had found (ILP seed-1482 infeasibility, Steiner
# translation variance) are fixed with regression tests, so fresh
# entropy hunts new counterexamples instead of rediscovering known
# ones.  HYPOTHESIS_PROFILE=ci pins the derandomized profile for
# bisection and flake reproduction.
settings.register_profile("ci", derandomize=True)
settings.register_profile("explore", derandomize=False)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "explore"))

from repro import sanitize
from repro.annealing import SAParams
from repro.circuits import adder, cc_ota, comp1, vco1
from repro.eplace import EPlaceParams
from repro.legalize import DetailedParams
from repro.netlist import (
    Circuit,
    Device,
    DeviceType,
    Net,
    Pin,
    SymmetryGroup,
)


if sanitize.enabled():
    # CI's sanitize job exports REPRO_SANITIZE=1: register the at-fork
    # guard once, and isolate the global lock-order graph per test so
    # one test's lock nesting cannot poison another's
    sanitize.install()

    @pytest.fixture(autouse=True)
    def _reset_sanitizer():
        sanitize.reset_order_graph()
        yield
        sanitize.reset_order_graph()


@pytest.fixture
def cc_ota_circuit():
    return cc_ota()


@pytest.fixture
def comp1_circuit():
    return comp1()


@pytest.fixture
def adder_circuit():
    return adder()


@pytest.fixture
def vco1_circuit():
    return vco1()


@pytest.fixture
def fast_gp_params():
    """Global-placement settings tuned for test speed, not quality."""
    return EPlaceParams(max_iters=120, min_iters=20, bins=16)


@pytest.fixture
def fast_dp_params():
    """Detailed-placement settings without the LNS refinement."""
    return DetailedParams(iterate_rounds=1, refine_rounds=0,
                          time_limit_s=20.0)


@pytest.fixture
def fast_sa_params():
    return SAParams(iterations=1500, seed=2)


@pytest.fixture
def tiny_circuit():
    """Four devices, two nets, one symmetry pair — hand-checkable."""
    circuit = Circuit(name="tiny")
    for name in ("A", "B"):
        circuit.add_device(Device(
            name=name, dtype=DeviceType.NMOS, width=2.0, height=2.0,
            pins={"p": Pin("p", 0.4, 1.0)},
        ))
    circuit.add_device(Device(
        name="C", dtype=DeviceType.CAPACITOR, width=4.0, height=2.0,
        pins={"p": Pin("p", 0.4, 1.0), "n": Pin("n", 3.6, 1.0)},
    ))
    circuit.add_device(Device(
        name="D", dtype=DeviceType.RESISTOR, width=2.0, height=4.0,
        pins={"p": Pin("p", 1.0, 3.6), "n": Pin("n", 1.0, 0.4)},
    ))
    circuit.add_net(Net("n1", [("A", "p"), ("C", "p")]))
    circuit.add_net(Net("n2", [("B", "p"), ("C", "n"), ("D", "p")],
                        weight=2.0, critical=True))
    circuit.constraints.symmetry_groups.append(
        SymmetryGroup(name="s", pairs=(("A", "B"),))
    )
    circuit.validate()
    return circuit


@pytest.fixture
def rng():
    return np.random.default_rng(42)
