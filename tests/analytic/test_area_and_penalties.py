"""Area-term and constraint-penalty tests."""

import numpy as np
import pytest

from repro.analytic import (
    ConstraintPenalties,
    area_term,
    max_grad_error,
)
from repro.placement import Placement, bounding_area


class TestAreaTerm:
    def test_gradient_exact(self, cc_ota_circuit, rng):
        w, h = cc_ota_circuit.sizes()
        n = cc_ota_circuit.num_devices
        v = rng.uniform(0.0, 10.0, 2 * n)

        def fun(vec):
            value, gx, gy = area_term(vec[:n], vec[n:], w, h, 1.0)
            return value, np.concatenate([gx, gy])

        assert max_grad_error(fun, v) < 1e-6

    def test_underestimates_true_area(self, cc_ota_circuit, rng):
        w, h = cc_ota_circuit.sizes()
        n = cc_ota_circuit.num_devices
        x = rng.uniform(0.0, 10.0, n)
        y = rng.uniform(0.0, 10.0, n)
        smoothed = area_term(x, y, w, h, 0.5)[0]
        exact = bounding_area(Placement(cc_ota_circuit, x, y))
        # WA softmax underestimates the max-extent, so area is below
        assert smoothed <= exact + 1e-9
        assert smoothed > 0.5 * exact

    def test_gradient_pulls_outliers_inward(self, cc_ota_circuit):
        w, h = cc_ota_circuit.sizes()
        n = cc_ota_circuit.num_devices
        x = np.full(n, 5.0)
        y = np.full(n, 5.0)
        x[0] = 20.0  # far-right outlier
        _, gx, _ = area_term(x, y, w, h, 0.5)
        assert gx[0] > 0  # descending moves it left, shrinking area
        assert abs(gx[0]) > abs(gx[1:]).max()


class TestPenalties:
    def test_gradients_exact(self, vco1_circuit, rng):
        pen = ConstraintPenalties(vco1_circuit)
        n = vco1_circuit.num_devices
        v = rng.uniform(0.0, 10.0, 2 * n)

        def fun(vec):
            value, gx, gy = pen.total(vec[:n], vec[n:])
            return value, np.concatenate([gx, gy])

        assert max_grad_error(fun, v) < 1e-6

    def test_zero_on_satisfying_placement(self, tiny_circuit):
        pen = ConstraintPenalties(tiny_circuit)
        # A and B symmetric about x=3: (0,0), (6,0)
        x = np.array([0.0, 6.0, 10.0, 15.0])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        value, gx, gy = pen.symmetry(x, y)
        assert value == pytest.approx(0.0)
        assert np.allclose(gx, 0.0)
        assert np.allclose(gy, 0.0)

    def test_symmetry_penalty_positive_on_violation(self, tiny_circuit):
        pen = ConstraintPenalties(tiny_circuit)
        x = np.array([0.0, 6.0, 10.0, 15.0])
        y = np.array([0.0, 2.0, 5.0, 5.0])  # y mismatch
        value, _, _ = pen.symmetry(x, y)
        assert value == pytest.approx(4.0)  # (y_a - y_b)^2

    def test_axis_is_free_variable(self, tiny_circuit):
        """Translating a whole group keeps the penalty at zero."""
        pen = ConstraintPenalties(tiny_circuit)
        for shift in (0.0, 5.0, -3.0):
            x = np.array([0.0 + shift, 6.0 + shift, 10.0, 15.0])
            y = np.array([1.0, 1.0, 5.0, 5.0])
            assert pen.symmetry(x, y)[0] == pytest.approx(0.0)

    def test_ordering_hinge_one_sided(self, vco1_circuit):
        pen = ConstraintPenalties(vco1_circuit)
        n = vco1_circuit.num_devices
        index = vco1_circuit.device_index()
        x = np.zeros(n)
        y = np.zeros(n)
        # spread ring devices far apart in chain order: no violation
        for k, name in enumerate(f"MN{i}" for i in range(3)):
            x[index[name]] = 10.0 * k
        value, _, _ = pen.ordering(x, y)
        assert value == pytest.approx(0.0)
        # reverse the order: violations appear
        for k, name in enumerate(f"MN{i}" for i in range(3)):
            x[index[name]] = -10.0 * k
        value, _, _ = pen.ordering(x, y)
        assert value > 0.0

    def test_alignment_kinds(self, cc_ota_circuit):
        pen = ConstraintPenalties(cc_ota_circuit)
        n = cc_ota_circuit.num_devices
        index = cc_ota_circuit.device_index()
        x = np.arange(n, dtype=float) * 5
        y = np.zeros(n)
        # M5/M6 are vcenter-aligned in CC-OTA
        x[index["M6"]] = x[index["M5"]]
        base, _, _ = pen.alignment(x, y)
        assert base == pytest.approx(0.0)
        x[index["M6"]] += 2.0
        moved, _, _ = pen.alignment(x, y)
        assert moved == pytest.approx(4.0)
