"""NetArrays segment-machinery tests."""

import numpy as np
import pytest

from repro.analytic import NetArrays


def test_excludes_singleton_nets(cc_ota_circuit):
    arrays = NetArrays(cc_ota_circuit)
    wire_nets = [n for n in cc_ota_circuit.nets if n.degree >= 2]
    assert arrays.num_nets == len(wire_nets)
    assert arrays.num_pins == sum(n.degree for n in wire_nets)


def test_include_filter(cc_ota_circuit):
    crit = NetArrays(cc_ota_circuit, include=lambda n: n.critical)
    assert crit.num_nets == sum(
        1 for n in cc_ota_circuit.nets if n.critical and n.degree >= 2)
    assert set(crit.net_names) <= {
        n.name for n in cc_ota_circuit.nets if n.critical}


def test_pin_net_segments_consistent(cc_ota_circuit):
    arrays = NetArrays(cc_ota_circuit)
    # pin_net must be non-decreasing and match starts
    assert np.all(np.diff(arrays.pin_net) >= 0)
    for k, start in enumerate(arrays.starts):
        assert arrays.pin_net[start] == k


def test_segment_reductions(tiny_circuit):
    arrays = NetArrays(tiny_circuit)
    values = np.arange(arrays.num_pins, dtype=float)
    sums = arrays.segment_sum(values)
    maxs = arrays.segment_max(values)
    mins = arrays.segment_min(values)
    # net n1 has 2 pins, net n2 has 3
    assert sums.tolist() == [0 + 1, 2 + 3 + 4]
    assert maxs.tolist() == [1, 4]
    assert mins.tolist() == [0, 2]


def test_scatter_to_devices(tiny_circuit):
    arrays = NetArrays(tiny_circuit)
    ones = np.ones(arrays.num_pins)
    per_device = arrays.scatter_to_devices(ones)
    # device pin counts: A=1, B=1, C=2, D=1
    assert per_device.tolist() == [1.0, 1.0, 2.0, 1.0]


def test_exact_hpwl_weighted(tiny_circuit, rng):
    from repro.placement import Placement, hpwl

    arrays = NetArrays(tiny_circuit)
    x = rng.uniform(0, 10, 4)
    y = rng.uniform(0, 10, 4)
    assert arrays.exact_hpwl(x, y) == pytest.approx(
        hpwl(Placement(tiny_circuit, x, y)))
