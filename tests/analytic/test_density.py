"""Electrostatic (eDensity) and bell-shaped density tests."""

import numpy as np
import pytest

from repro.analytic import BellDensityGrid, DensityGrid, bell_profile, \
    poisson_solve_dct


class TestPoissonSolve:
    def test_discrete_laplacian_recovered(self, rng):
        """psi solves the 5-point Neumann Laplacian exactly."""
        m = 16
        rho = rng.normal(0.0, 1.0, (m, m))
        rho -= rho.mean()
        hx = hy = 0.5
        psi = poisson_solve_dct(rho, hx, hy)
        # apply the Neumann 5-point Laplacian via reflect padding
        padded = np.pad(psi, 1, mode="edge")
        lap = (
            padded[2:, 1:-1] + padded[:-2, 1:-1] - 2 * psi
        ) / hx ** 2 + (
            padded[1:-1, 2:] + padded[1:-1, :-2] - 2 * psi
        ) / hy ** 2
        assert np.abs(lap + rho).max() < 1e-9

    def test_zero_density_zero_potential(self):
        psi = poisson_solve_dct(np.zeros((8, 8)), 1.0, 1.0)
        assert np.abs(psi).max() < 1e-12


class TestDensityGrid:
    def _grid(self, n=4):
        widths = np.full(n, 2.0)
        heights = np.full(n, 2.0)
        return DensityGrid(widths, heights, 12.0, 12.0, bins=24)

    def test_rasterize_conserves_area(self, rng):
        grid = self._grid()
        x = rng.uniform(1.0, 11.0, 4)
        y = rng.uniform(1.0, 11.0, 4)
        charge = grid.rasterize(x, y)
        assert charge.sum() == pytest.approx(4 * 4.0)

    def test_rasterize_clamps_strays_with_full_charge(self):
        grid = self._grid(1)
        charge = grid.rasterize(np.array([-5.0]), np.array([20.0]))
        assert charge.sum() == pytest.approx(4.0)

    def test_clustered_energy_exceeds_spread(self):
        grid = self._grid(4)
        clustered = grid.energy_and_grad(
            np.full(4, 6.0), np.full(4, 6.0))
        spread = grid.energy_and_grad(
            np.array([2.0, 10.0, 2.0, 10.0]),
            np.array([2.0, 2.0, 10.0, 10.0]))
        assert clustered[0] > spread[0]
        assert clustered[3] > spread[3]  # overflow too

    def test_overlapping_pair_repels(self):
        grid = self._grid(2)
        x = np.array([5.5, 6.5])
        y = np.array([6.0, 6.0])
        _, gx, _, _ = grid.energy_and_grad(x, y)
        # descending the gradient should push them apart
        assert gx[0] > 0.0  # left device pushed further left
        assert gx[1] < 0.0

    def test_rejects_empty_region(self):
        with pytest.raises(ValueError, match="positive"):
            DensityGrid(np.ones(1), np.ones(1), 0.0, 5.0)


class TestVectorizedKernelAgreement:
    """The batched matmul kernels vs the per-device reference loops.

    The vectorised ``rasterize``/``energy_and_grad`` must reproduce
    ``rasterize_loop``/``energy_and_grad_loop`` to numerical round-off
    (summation order differs, exact bitwise equality is not expected);
    the fixtures cover in-region, clamped-stray and degenerate cases.
    """

    def _fixtures(self):
        rng = np.random.default_rng(123)
        for n, bins, rw, rh in [(1, 8, 4.0, 4.0), (4, 24, 12.0, 12.0),
                                (13, 16, 10.0, 7.0), (40, 64, 20.0, 20.0)]:
            widths = rng.uniform(0.5, 3.0, n)
            heights = rng.uniform(0.5, 3.0, n)
            grid = DensityGrid(widths, heights, rw, rh, bins=bins)
            # positions straddle the region so clamping paths run too
            x = rng.uniform(-2.0, rw + 2.0, n)
            y = rng.uniform(-2.0, rh + 2.0, n)
            yield grid, x, y

    def test_rasterize_matches_loop(self):
        for grid, x, y in self._fixtures():
            fast = grid.rasterize(x, y)
            ref = grid.rasterize_loop(x, y)
            assert np.abs(fast - ref).max() < 1e-10

    def test_energy_and_grad_match_loop(self):
        for grid, x, y in self._fixtures():
            e_f, gx_f, gy_f, of_f = grid.energy_and_grad(x, y)
            e_r, gx_r, gy_r, of_r = grid.energy_and_grad_loop(x, y)
            scale = max(abs(e_r), 1.0)
            assert abs(e_f - e_r) < 1e-10 * scale
            assert np.abs(gx_f - gx_r).max() < 1e-10
            assert np.abs(gy_f - gy_r).max() < 1e-10
            assert abs(of_f - of_r) < 1e-12

    def test_energy_descent_direction(self, rng):
        """The batched gradient still points downhill in energy."""
        widths = np.full(6, 2.0)
        heights = np.full(6, 2.0)
        grid = DensityGrid(widths, heights, 12.0, 12.0, bins=24)
        x = rng.uniform(4.0, 8.0, 6)
        y = rng.uniform(4.0, 8.0, 6)
        energy, gx, gy, _ = grid.energy_and_grad(x, y)
        step = 1e-3
        moved, *_ = grid.energy_and_grad(x - step * gx, y - step * gy)
        assert moved < energy


class TestBellDensity:
    def test_profile_continuity_and_support(self):
        size, bin_size = 2.0, 0.5
        knee = size / 2 + bin_size
        cutoff = size / 2 + 2 * bin_size
        d = np.array([0.0, knee - 1e-9, knee + 1e-9, cutoff - 1e-9,
                      cutoff + 1e-9, 10.0])
        value, _ = bell_profile(d, size, bin_size)
        assert value[0] == pytest.approx(1.0)
        assert value[1] == pytest.approx(value[2], abs=1e-6)
        assert value[4] == 0.0
        assert value[5] == 0.0

    def test_profile_even_derivative_odd(self):
        v_pos, d_pos = bell_profile(np.array([0.7]), 2.0, 0.5)
        v_neg, d_neg = bell_profile(np.array([-0.7]), 2.0, 0.5)
        assert v_pos == pytest.approx(v_neg)
        assert d_pos == pytest.approx(-d_neg)

    def test_penalty_prefers_spread(self):
        widths = np.full(4, 2.0)
        heights = np.full(4, 2.0)
        grid = BellDensityGrid(widths, heights, 12.0, 12.0, bins=12)
        clustered = grid.penalty_and_grad(
            np.full(4, 6.0), np.full(4, 6.0))[0]
        spread = grid.penalty_and_grad(
            np.array([2.0, 10.0, 2.0, 10.0]),
            np.array([2.0, 2.0, 10.0, 10.0]))[0]
        assert clustered > spread

    def test_gradient_direction(self):
        widths = np.full(2, 2.0)
        heights = np.full(2, 2.0)
        grid = BellDensityGrid(widths, heights, 12.0, 12.0, bins=12)
        x = np.array([5.6, 6.4])
        y = np.array([6.0, 6.0])
        _, gx, _ = grid.penalty_and_grad(x, y)
        assert gx[0] > 0.0
        assert gx[1] < 0.0
