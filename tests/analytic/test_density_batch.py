"""Batched eDensity kernels: per-instance agreement with the loop spec.

The 1e-10 contract: for every instance in a batch,
:class:`BatchedDensityGrid` must reproduce the retained per-device
loop reference (:meth:`DensityGrid.rasterize_loop` /
:meth:`DensityGrid.energy_and_grad_loop`) — the same bar the
single-instance vectorised kernels are held to.
"""

import numpy as np
import pytest

from repro.analytic import BatchedDensityGrid, DensityGrid, \
    poisson_solve_dct, poisson_solve_dct_batch

TOL = 1e-10


def _grid(rng, n=12, bins=24):
    widths = rng.uniform(0.8, 3.0, n)
    heights = rng.uniform(0.8, 3.0, n)
    return DensityGrid(widths, heights, 15.0, 12.0, bins=bins)


def _positions(rng, grid, batch):
    n = len(grid.widths)
    # include strays outside the region: the clamp path must agree too
    xs = rng.uniform(-2.0, grid.region_w + 2.0, (batch, n))
    ys = rng.uniform(-2.0, grid.region_h + 2.0, (batch, n))
    return xs, ys


class TestPoissonBatch:
    def test_matches_single_instance_solver(self, rng):
        rho = rng.normal(0.0, 1.0, (5, 16, 16))
        rho -= rho.mean(axis=(1, 2), keepdims=True)
        batch = poisson_solve_dct_batch(rho, 0.5, 0.75)
        for b in range(5):
            single = poisson_solve_dct(rho[b], 0.5, 0.75)
            assert np.abs(batch[b] - single).max() < TOL

    def test_precomputed_denominator_matches(self, rng):
        rho = rng.normal(0.0, 1.0, (3, 8, 8))
        grid = _grid(rng, bins=8)
        batched = BatchedDensityGrid(grid)
        with_cache = poisson_solve_dct_batch(
            rho, grid.hx, grid.hy, denom=batched._denom
        )
        without = poisson_solve_dct_batch(rho, grid.hx, grid.hy)
        assert np.array_equal(with_cache, without)


class TestBatchedRasterize:
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_agrees_with_loop_reference(self, rng, batch):
        grid = _grid(rng)
        batched = BatchedDensityGrid(grid)
        xs, ys = _positions(rng, grid, batch)
        stack = batched.rasterize(xs, ys)
        assert stack.shape == (batch, grid.bins, grid.bins)
        for b in range(batch):
            ref = grid.rasterize_loop(xs[b], ys[b])
            assert np.abs(stack[b] - ref).max() < TOL

    def test_conserves_total_area(self, rng):
        grid = _grid(rng)
        batched = BatchedDensityGrid(grid)
        xs, ys = _positions(rng, grid, 4)
        stack = batched.rasterize(xs, ys)
        total = float(grid.areas.sum())
        for b in range(4):
            assert stack[b].sum() == pytest.approx(total, rel=1e-9)


class TestBatchedEnergyAndGrad:
    @pytest.mark.parametrize("batch", [1, 2, 6])
    def test_agrees_with_loop_reference(self, rng, batch):
        grid = _grid(rng)
        batched = BatchedDensityGrid(grid)
        xs, ys = _positions(rng, grid, batch)
        energy, gx, gy, overflow = batched.energy_and_grad(xs, ys)
        assert energy.shape == (batch,)
        assert gx.shape == (batch, len(grid.widths))
        for b in range(batch):
            e_ref, gx_ref, gy_ref, ov_ref = grid.energy_and_grad_loop(
                xs[b], ys[b]
            )
            scale = max(abs(e_ref), 1.0)
            assert abs(energy[b] - e_ref) / scale < TOL
            assert np.abs(gx[b] - gx_ref).max() < TOL
            assert np.abs(gy[b] - gy_ref).max() < TOL
            assert abs(overflow[b] - ov_ref) < TOL

    def test_agrees_with_vectorised_kernel(self, rng):
        """The production single-instance kernel is also a valid ref."""
        grid = _grid(rng, n=20, bins=16)
        batched = BatchedDensityGrid(grid)
        xs, ys = _positions(rng, grid, 5)
        energy, gx, gy, overflow = batched.energy_and_grad(xs, ys)
        for b in range(5):
            e_ref, gx_ref, gy_ref, ov_ref = grid.energy_and_grad(
                xs[b], ys[b]
            )
            assert abs(energy[b] - e_ref) / max(abs(e_ref), 1.0) < TOL
            assert np.abs(gx[b] - gx_ref).max() < TOL
            assert np.abs(gy[b] - gy_ref).max() < TOL
            assert abs(overflow[b] - ov_ref) < TOL

    def test_batch_order_irrelevant(self, rng):
        """Each instance's result is independent of its batch slot."""
        grid = _grid(rng)
        batched = BatchedDensityGrid(grid)
        xs, ys = _positions(rng, grid, 4)
        energy, gx, _, _ = batched.energy_and_grad(xs, ys)
        perm = np.array([2, 0, 3, 1])
        energy_p, gx_p, _, _ = batched.energy_and_grad(
            xs[perm], ys[perm]
        )
        for slot, b in enumerate(perm):
            assert abs(energy_p[slot] - energy[b]) < TOL
            assert np.abs(gx_p[slot] - gx[b]).max() < TOL

    def test_shape_validation(self, rng):
        grid = _grid(rng)
        batched = BatchedDensityGrid(grid)
        with pytest.raises(ValueError, match="matching"):
            batched.energy_and_grad(
                np.zeros((2, 12)), np.zeros((3, 12))
            )
        with pytest.raises(ValueError, match="devices"):
            batched.energy_and_grad(np.zeros((2, 5)), np.zeros((2, 5)))
        with pytest.raises(ValueError, match="matching"):
            batched.rasterize(np.zeros(12), np.zeros(12))
