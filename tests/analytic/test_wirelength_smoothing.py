"""WA/LSE smoothing tests: gradient exactness and bounding behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    NetArrays,
    lse_wirelength,
    max_grad_error,
    wa_wirelength,
)


@pytest.fixture
def arrays(cc_ota_circuit):
    return NetArrays(cc_ota_circuit)


def _pack(fun, n):
    def packed(v):
        value, gx, gy = fun(v[:n], v[n:])
        return value, np.concatenate([gx, gy])
    return packed


class TestGradients:
    @pytest.mark.parametrize("smoother", [wa_wirelength, lse_wirelength])
    @pytest.mark.parametrize("gamma", [0.3, 1.0, 5.0])
    def test_analytic_gradient_matches_fd(self, arrays, rng, smoother,
                                          gamma):
        n = arrays.circuit.num_devices
        v = rng.uniform(0.0, 10.0, 2 * n)
        err = max_grad_error(
            _pack(lambda x, y: smoother(arrays, x, y, gamma), n),
            v, eps=1e-6,
        )
        assert err < 1e-6


class TestBounds:
    def test_wa_underestimates_lse_overestimates(self, arrays, rng):
        """WA <= exact HPWL <= LSE for every gamma (known property)."""
        n = arrays.circuit.num_devices
        x = rng.uniform(0.0, 12.0, n)
        y = rng.uniform(0.0, 12.0, n)
        exact = arrays.exact_hpwl(x, y)
        for gamma in (0.2, 1.0, 3.0):
            wa = wa_wirelength(arrays, x, y, gamma)[0]
            lse = lse_wirelength(arrays, x, y, gamma)[0]
            assert wa <= exact + 1e-9
            assert lse >= exact - 1e-9

    def test_convergence_to_exact_as_gamma_shrinks(self, arrays, rng):
        n = arrays.circuit.num_devices
        x = rng.uniform(0.0, 12.0, n)
        y = rng.uniform(0.0, 12.0, n)
        exact = arrays.exact_hpwl(x, y)
        gaps_wa = []
        gaps_lse = []
        for gamma in (2.0, 1.0, 0.5, 0.25):
            gaps_wa.append(exact - wa_wirelength(arrays, x, y, gamma)[0])
            gaps_lse.append(lse_wirelength(arrays, x, y, gamma)[0] - exact)
        assert all(np.diff(gaps_wa) < 1e-9)
        assert all(np.diff(gaps_lse) < 1e-9)

    def test_wa_smaller_error_than_lse(self, arrays, rng):
        """The paper's cited reason [23] for choosing WA over LSE."""
        n = arrays.circuit.num_devices
        wa_err = 0.0
        lse_err = 0.0
        for seed in range(10):
            local = np.random.default_rng(seed)
            x = local.uniform(0.0, 12.0, n)
            y = local.uniform(0.0, 12.0, n)
            exact = arrays.exact_hpwl(x, y)
            wa_err += abs(exact - wa_wirelength(arrays, x, y, 1.0)[0])
            lse_err += abs(exact - lse_wirelength(arrays, x, y, 1.0)[0])
        assert wa_err < lse_err


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.floats(0.2, 4.0))
def test_property_translation_invariance(seed, gamma):
    """Smoothed wirelength is invariant under rigid translation."""
    from repro.circuits import comp1

    circuit = comp1()
    arrays = NetArrays(circuit)
    local = np.random.default_rng(seed)
    n = circuit.num_devices
    x = local.uniform(0.0, 10.0, n)
    y = local.uniform(0.0, 10.0, n)
    for smoother in (wa_wirelength, lse_wirelength):
        base = smoother(arrays, x, y, gamma)[0]
        moved = smoother(arrays, x + 7.3, y - 2.1, gamma)[0]
        assert moved == pytest.approx(base, rel=1e-9, abs=1e-9)


def test_exact_hpwl_matches_metrics(arrays):
    """NetArrays.exact_hpwl agrees with the Placement metric."""
    from repro.placement import Placement, hpwl

    circuit = arrays.circuit
    local = np.random.default_rng(3)
    n = circuit.num_devices
    x = local.uniform(0.0, 10.0, n)
    y = local.uniform(0.0, 10.0, n)
    placement = Placement(circuit, x, y)
    assert arrays.exact_hpwl(x, y) == pytest.approx(hpwl(placement))
