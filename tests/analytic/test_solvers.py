"""Nesterov and conjugate-gradient solver tests."""

import numpy as np

from repro.analytic import NesterovOptimizer, conjugate_gradient


def _quadratic(n=12, cond=50.0, seed=0):
    rng = np.random.default_rng(seed)
    eigs = np.linspace(1.0, cond, n)
    q = np.diag(eigs)
    b = rng.normal(0.0, 1.0, n)
    solution = np.linalg.solve(q, b)

    def fun(v):
        return 0.5 * v @ q @ v - b @ v, q @ v - b

    return fun, solution


class TestNesterov:
    def test_converges_on_quadratic(self):
        fun, solution = _quadratic()
        opt = NesterovOptimizer(np.zeros(12), fun, alpha0=1e-3)
        opt.run(400)
        assert np.abs(opt.v - solution).max() < 1e-6

    def test_faster_than_plain_descent(self):
        """Acceleration beats fixed-step gradient descent markedly."""
        fun, solution = _quadratic(cond=200.0)
        opt = NesterovOptimizer(np.zeros(12), fun, alpha0=1e-3)
        opt.run(150)
        nesterov_err = np.abs(opt.v - solution).max()

        v = np.zeros(12)
        for _ in range(150):
            _, g = fun(v)
            v = v - (1.0 / 200.0) * g  # 1/L step
        plain_err = np.abs(v - solution).max()
        assert nesterov_err < plain_err / 10.0

    def test_projection_respected(self):
        fun, _ = _quadratic()
        lo, hi = -0.1, 0.1
        opt = NesterovOptimizer(
            np.zeros(12), fun,
            projection=lambda v: np.clip(v, lo, hi),
            alpha0=1e-3,
        )
        opt.run(100)
        assert opt.v.min() >= lo - 1e-12
        assert opt.v.max() <= hi + 1e-12

    def test_restart_reported_on_objective_change(self):
        """Swapping the objective mid-run (as the placer's weight
        schedule does) raises the value and triggers a restart."""
        def f1(v):
            return float(v @ v), 2 * v

        def f2(v):
            d = v - 10.0
            return float(d @ d), 2 * d

        opt = NesterovOptimizer(np.ones(4), f1, alpha0=1e-2)
        for _ in range(10):
            assert not opt.step().restarted or True
        opt.objective = f2  # value at current point jumps upward
        restarts = sum(opt.step().restarted for _ in range(5))
        assert restarts > 0

    def test_telemetry_fields(self):
        fun, _ = _quadratic()
        opt = NesterovOptimizer(np.zeros(12), fun, alpha0=1e-3)
        info = opt.step()
        assert info.iteration == 1
        assert info.grad_norm > 0
        assert info.step_length > 0


class TestConjugateGradient:
    def test_converges_on_quadratic(self):
        fun, solution = _quadratic()
        result = conjugate_gradient(fun, np.zeros(12), iterations=400,
                                    tol=1e-6)
        assert result.converged
        assert np.abs(result.v - solution).max() < 1e-5

    def test_rosenbrock(self):
        def rosen(v):
            x, y = v
            value = (1 - x) ** 2 + 100 * (y - x * x) ** 2
            grad = np.array([
                -2 * (1 - x) - 400 * x * (y - x * x),
                200 * (y - x * x),
            ])
            return value, grad

        result = conjugate_gradient(rosen, np.array([-1.2, 1.0]),
                                    iterations=5000, tol=1e-8,
                                    alpha0=1e-3)
        assert np.abs(result.v - 1.0).max() < 1e-3

    def test_monotone_descent(self):
        fun, _ = _quadratic()
        values = []
        v = np.full(12, 3.0)
        for _ in range(5):
            result = conjugate_gradient(fun, v, iterations=10)
            values.append(result.value)
            v = result.v
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_zero_gradient_immediate_convergence(self):
        fun, solution = _quadratic()
        result = conjugate_gradient(fun, solution, iterations=10,
                                    tol=1e-6)
        assert result.converged
        assert result.iterations == 0
