"""ILP and two-stage-LP detailed placement tests."""

import numpy as np
import pytest

from repro.eplace import eplace_global
from repro.legalize import (
    DetailedParams,
    detailed_place,
    ilp_detailed_placement,
    lp_two_stage_detailed_placement,
    presymmetrize,
)
from repro.placement import (
    Placement,
    audit_constraints,
    hpwl,
    total_overlap,
)


@pytest.fixture(scope="module")
def ccota_gp():
    """One shared global placement for the module's DP tests."""
    from repro.circuits import cc_ota
    from repro.eplace import EPlaceParams

    circuit = cc_ota()
    result = eplace_global(
        circuit, EPlaceParams(max_iters=150, min_iters=30, bins=16))
    return result.placement


class TestILP:
    def test_legal_and_constraint_exact(self, ccota_gp, fast_dp_params):
        result = ilp_detailed_placement(ccota_gp, fast_dp_params)
        assert total_overlap(result.placement) == pytest.approx(0.0)
        assert audit_constraints(result.placement).ok

    def test_grid_alignment(self, ccota_gp, fast_dp_params):
        result = ilp_detailed_placement(ccota_gp, fast_dp_params)
        grid = fast_dp_params.grid
        # centres land on the grid after normalisation
        offsets_x = result.placement.x / grid
        offsets_y = result.placement.y / grid
        assert np.allclose(offsets_x, np.round(offsets_x), atol=1e-6)
        assert np.allclose(offsets_y, np.round(offsets_y), atol=1e-6)

    def test_flipping_improves_or_ties_hpwl(self, ccota_gp):
        with_flip = ilp_detailed_placement(
            ccota_gp, DetailedParams(allow_flipping=True,
                                     iterate_rounds=1, refine_rounds=0))
        without = ilp_detailed_placement(
            ccota_gp, DetailedParams(allow_flipping=False,
                                     iterate_rounds=1, refine_rounds=0))
        assert hpwl(with_flip.placement) <= hpwl(without.placement) + 1e-6

    def test_detailed_place_pipeline_improves_score(self, ccota_gp):
        single = ilp_detailed_placement(
            ccota_gp, DetailedParams(iterate_rounds=1, refine_rounds=0))
        refined = detailed_place(
            ccota_gp, DetailedParams(iterate_rounds=3, refine_rounds=4))
        from repro.legalize.ilp import _score
        params = DetailedParams()
        assert _score(refined.placement, params) <= \
            _score(single.placement, params) + 1e-6
        assert audit_constraints(refined.placement).ok

    def test_displacement_anchor_stays_close(self, ccota_gp):
        anchored = ilp_detailed_placement(
            ccota_gp, DetailedParams(displacement_weight=5.0,
                                     iterate_rounds=1, refine_rounds=0))
        free = ilp_detailed_placement(
            ccota_gp, DetailedParams(iterate_rounds=1, refine_rounds=0))
        ref = presymmetrize(ccota_gp)

        def disp(p):
            # compare modulo the normalising translation
            dx = p.x - ref.x
            dy = p.y - ref.y
            return float(np.abs(dx - dx.mean()).sum()
                         + np.abs(dy - dy.mean()).sum())

        assert disp(anchored.placement) <= disp(free.placement) + 1e-6

    def test_stats_populated(self, ccota_gp, fast_dp_params):
        result = ilp_detailed_placement(ccota_gp, fast_dp_params)
        for key in ("objective", "num_vars", "num_rows", "outline_w",
                    "outline_h"):
            assert key in result.stats


class TestLPTwoStage:
    def test_legal_and_constraint_exact(self, ccota_gp):
        result = lp_two_stage_detailed_placement(ccota_gp)
        assert total_overlap(result.placement) == pytest.approx(
            0.0, abs=1e-6)
        assert audit_constraints(result.placement, tolerance=1e-5).ok

    def test_stage1_outline_respected(self, ccota_gp):
        result = lp_two_stage_detailed_placement(ccota_gp)
        xlo, ylo, xhi, yhi = result.placement.bounding_box()
        assert xhi - xlo <= result.stats["outline_w"] + 1e-6
        assert yhi - ylo <= result.stats["outline_h"] + 1e-6

    def test_ilp_with_flipping_beats_lp_hpwl(self, ccota_gp):
        """The paper's Table IV comparison, on one circuit."""
        lp = lp_two_stage_detailed_placement(ccota_gp)
        ilp = detailed_place(
            ccota_gp, DetailedParams(iterate_rounds=1, refine_rounds=0))
        assert hpwl(ilp.placement) <= hpwl(lp.placement) + 1e-6


class TestPresymmetrize:
    def test_snaps_to_exact_symmetry(self, cc_ota_circuit, rng):
        n = cc_ota_circuit.num_devices
        p = Placement(cc_ota_circuit, rng.uniform(0, 10, n),
                      rng.uniform(0, 10, n))
        snapped = presymmetrize(p)
        audit = audit_constraints(snapped)
        assert audit.symmetry == pytest.approx(0.0, abs=1e-9)
        assert audit.alignment == pytest.approx(0.0, abs=1e-9)

    def test_already_symmetric_unchanged(self, ccota_gp, fast_dp_params):
        legal = ilp_detailed_placement(ccota_gp, fast_dp_params).placement
        snapped = presymmetrize(legal)
        assert np.allclose(snapped.x, legal.x)
        assert np.allclose(snapped.y, legal.y)
