"""Separation-direction derivation tests (paper Fig. 4a rule)."""

import numpy as np

from repro.legalize import HORIZONTAL, VERTICAL, separation_constraints
from repro.netlist import (
    AlignmentPair,
    Axis,
    Circuit,
    Device,
    DeviceType,
    OrderingChain,
    SymmetryGroup,
)
from repro.placement import Placement


def _pair_circuit(constraints=None):
    c = Circuit("c")
    for name in ("A", "B", "C"):
        c.add_device(Device(name, DeviceType.NMOS, 2.0, 2.0))
    if constraints:
        constraints(c)
    return c


def _find(seps, i, j):
    for sep in seps:
        if {sep.low, sep.high} == {i, j}:
            return sep
    raise AssertionError(f"no constraint for pair ({i}, {j})")


def test_overlap_smaller_penetration_axis_wins():
    """Overlapping with dx < dy separates horizontally (paper rule)."""
    c = _pair_circuit()
    p = Placement(c, np.array([0.0, 1.5, 10.0]),
                  np.array([0.0, 0.5, 10.0]))
    sep = _find(separation_constraints(p), 0, 1)
    # dx = 0.5, dy = 1.5 -> gap_x (-0.5) > gap_y (-1.5): horizontal
    assert sep.direction == HORIZONTAL
    assert (sep.low, sep.high) == (0, 1)


def test_disjoint_larger_gap_axis_wins():
    c = _pair_circuit()
    p = Placement(c, np.array([0.0, 10.0, 20.0]),
                  np.array([0.0, 3.0, 20.0]))
    sep = _find(separation_constraints(p), 0, 1)
    assert sep.direction == HORIZONTAL  # x-gap 8 > y-gap 1


def test_vertical_when_y_gap_larger():
    c = _pair_circuit()
    p = Placement(c, np.array([0.0, 1.0, 20.0]),
                  np.array([0.0, 10.0, 20.0]))
    sep = _find(separation_constraints(p), 0, 1)
    assert sep.direction == VERTICAL
    assert (sep.low, sep.high) == (0, 1)


def test_every_pair_constrained():
    c = _pair_circuit()
    p = Placement(c, np.array([0.0, 5.0, 10.0]),
                  np.array([0.0, 5.0, 10.0]))
    assert len(separation_constraints(p)) == 3


def test_symmetry_pair_forced_horizontal():
    def add(c):
        c.constraints.symmetry_groups.append(
            SymmetryGroup("g", pairs=(("A", "B"),)))

    c = _pair_circuit(add)
    # geometrically they'd separate vertically, but symmetry wins
    p = Placement(c, np.array([0.0, 0.5, 10.0]),
                  np.array([0.0, 8.0, 10.0]))
    sep = _find(separation_constraints(p), 0, 1)
    assert sep.direction == HORIZONTAL


def test_vcenter_alignment_forced_vertical():
    def add(c):
        c.constraints.alignments.append(AlignmentPair("A", "B", "vcenter"))

    c = _pair_circuit(add)
    p = Placement(c, np.array([0.0, 8.0, 20.0]),
                  np.array([0.0, 0.5, 20.0]))
    sep = _find(separation_constraints(p), 0, 1)
    assert sep.direction == VERTICAL


def test_ordering_chain_forces_order_even_against_geometry():
    def add(c):
        c.constraints.orderings.append(
            OrderingChain(("A", "B", "C"), axis=Axis.VERTICAL))

    c = _pair_circuit(add)
    # place them geometrically in reverse order
    p = Placement(c, np.array([10.0, 5.0, 0.0]),
                  np.array([0.0, 0.0, 0.0]))
    seps = separation_constraints(p)
    for left, right in ((0, 1), (1, 2), (0, 2)):
        sep = _find(seps, left, right)
        assert sep.direction == HORIZONTAL
        assert (sep.low, sep.high) == (left, right)
