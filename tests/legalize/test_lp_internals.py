"""Two-stage LP internals and edge-case tests."""

import numpy as np
import pytest

from repro.legalize import (
    DetailedParams,
    DetailedPlacementError,
    lp_two_stage_detailed_placement,
)
from repro.legalize.lp_twostage import _LPModel
from repro.netlist import Circuit, Device, DeviceType, Net
from repro.placement import Placement, total_overlap


def _two_device_circuit():
    c = Circuit("c")
    c.add_device(Device("A", DeviceType.NMOS, 2.0, 2.0))
    c.add_device(Device("B", DeviceType.NMOS, 2.0, 2.0))
    c.add_net(Net("n", ["A", "B"]))
    return c


def test_model_variable_layout(cc_ota_circuit):
    placement = Placement.zeros(cc_ota_circuit)
    placement.x += 5.0
    placement.y += 5.0
    model = _LPModel(placement, DetailedParams(allow_flipping=False))
    n = cc_ota_circuit.num_devices
    e = len(model.wire_nets)
    groups = len(cc_ota_circuit.constraints.symmetry_groups)
    assert model.num_vars == 2 * n + 4 * e + 2 + groups


def test_two_device_compaction():
    """Two overlapping devices compact to an abutted pair."""
    c = _two_device_circuit()
    p = Placement(c, np.array([5.0, 5.5]), np.array([5.0, 5.2]))
    result = lp_two_stage_detailed_placement(p)
    assert total_overlap(result.placement) == pytest.approx(0.0,
                                                            abs=1e-9)
    # stage 1 minimises the outline: devices abut
    xlo, ylo, xhi, yhi = result.placement.bounding_box()
    assert (xhi - xlo) * (yhi - ylo) == pytest.approx(8.0, rel=1e-6)


def test_stage2_shrinks_wirelength_within_outline():
    """Stage 2 pulls pins together without growing stage 1's outline."""
    c = Circuit("c")
    for name in ("A", "B", "C"):
        c.add_device(Device(name, DeviceType.NMOS, 2.0, 2.0))
    c.add_net(Net("n", ["A", "C"]))
    p = Placement(c, np.array([0.0, 10.0, 20.0]),
                  np.array([1.0, 1.0, 1.0]))
    result = lp_two_stage_detailed_placement(p)
    from repro.placement import hpwl

    assert hpwl(result.placement) <= hpwl(p) + 1e-6
    assert total_overlap(result.placement) == pytest.approx(0.0,
                                                            abs=1e-9)


def test_runtime_stats(cc_ota_circuit, rng):
    n = cc_ota_circuit.num_devices
    p = Placement(cc_ota_circuit, rng.uniform(2, 8, n),
                  rng.uniform(2, 8, n))
    result = lp_two_stage_detailed_placement(p)
    assert result.method == "lp2-dp"
    assert result.stats["outline_w"] > 0
    assert result.stats["num_rows"] > 0


def test_odd_grid_dimension_rejected_by_ilp():
    """The ILP needs even grid dims; the error names the device."""
    from repro.legalize import ilp_detailed_placement

    c = Circuit("c")
    c.add_device(Device("ODD", DeviceType.NMOS, 2.1, 2.0))
    c.add_device(Device("B", DeviceType.NMOS, 2.0, 2.0))
    c.add_net(Net("n", ["ODD", "B"]))
    p = Placement(c, np.array([1.0, 4.0]), np.array([1.0, 1.0]))
    with pytest.raises(DetailedPlacementError, match="ODD"):
        ilp_detailed_placement(p)
