"""Pre-solve constraint-consistency check for the detailed placer.

Covers the latent bug from ROADMAP: ``random_circuit(1482)`` made the
ILP infeasible (HiGHS status 8) because a derived horizontal separation
chain, coupled through two symmetry-axis equalities, needed more width
than the ``region_slack`` coordinate bound allowed.  The per-axis LP in
:mod:`repro.legalize.consistency` now certifies feasibility and widens
the bound from the exact minimal extents.
"""

import numpy as np
import pytest

from repro.circuits import cc_ota, random_circuit
from repro.eplace import EPlaceParams, eplace_global
from repro.legalize import DetailedParams, ilp_detailed_placement
from repro.legalize.consistency import AxisReport, check_consistency
from repro.legalize.ilp import _steps
from repro.legalize.pairs import (
    HORIZONTAL,
    SeparationConstraint,
    separation_constraints,
)
from repro.legalize.presym import presymmetrize
from repro.netlist import AlignmentPair
from repro.placement import audit_constraints, total_overlap

_FAST_GP = EPlaceParams(max_iters=60, min_iters=15, bins=12)
_FAST_DP = DetailedParams(iterate_rounds=1, refine_rounds=0,
                          time_limit_s=30.0)


def _halves(circuit, grid=0.1):
    widths, heights = circuit.sizes()
    half_w = np.array([_steps(w, grid) for w in widths]) // 2
    half_h = np.array([_steps(h, grid) for h in heights]) // 2
    return half_w, half_h


class TestCheckConsistency:
    def test_feasible_on_real_circuit(self, fast_gp_params):
        circuit = cc_ota()
        gp = eplace_global(circuit, fast_gp_params).placement
        seps = separation_constraints(presymmetrize(gp))
        half_w, half_h = _halves(circuit)
        rx, ry = check_consistency(circuit, seps, half_w, half_h)
        assert rx.feasible and ry.feasible
        assert rx.conflict == () and ry.conflict == ()
        # minimal extents fit at least the widest/tallest device
        assert rx.min_extent >= 2 * half_w.max()
        assert ry.min_extent >= 2 * half_h.max()

    def test_min_extent_covers_separation_chain(self):
        """A forced left-to-right chain needs the sum of widths."""
        circuit = cc_ota()
        n = circuit.num_devices
        half_w, half_h = _halves(circuit)
        chain = [SeparationConstraint(i, i + 1, HORIZONTAL)
                 for i in range(n - 1)]
        # drop symmetry/alignment so the chain is the only x coupling
        circuit.constraints.symmetry_groups.clear()
        circuit.constraints.alignments.clear()
        rx, _ = check_consistency(circuit, chain, half_w, half_h)
        assert rx.feasible
        assert rx.min_extent == pytest.approx(float(2 * half_w.sum()))

    def test_infeasible_names_conflicting_rows(self):
        """vcenter alignment + horizontal separation cannot coexist."""
        circuit = cc_ota()
        names = circuit.device_names
        circuit.constraints.symmetry_groups.clear()
        circuit.constraints.alignments.clear()
        circuit.constraints.alignments.append(
            AlignmentPair(names[0], names[1], kind="vcenter"))
        half_w, half_h = _halves(circuit)
        sep = SeparationConstraint(0, 1, HORIZONTAL)
        rx, ry = check_consistency(circuit, [sep], half_w, half_h)
        assert not rx.feasible
        assert ry.feasible
        labels = " ".join(rx.conflict)
        assert f"separation[{names[0]} left-of {names[1]}]" in labels
        assert f"align-vcenter[{names[0]} = {names[1]}]" in labels
        # the subset is irreducible: exactly the two clashing rows
        assert len(rx.conflict) == 2

    def test_report_is_frozen_record(self):
        report = AxisReport("x", True, 12.0, ())
        with pytest.raises(AttributeError):
            report.feasible = False


class TestSeed1482Regression:
    """The fuzz-found infeasibility must stay fixed."""

    def test_ilp_feasible_after_bound_widening(self):
        circuit = random_circuit(1482, max_devices=16)
        gp = eplace_global(circuit, _FAST_GP).placement
        result = ilp_detailed_placement(gp, _FAST_DP)
        assert total_overlap(result.placement) == pytest.approx(0.0)
        assert audit_constraints(result.placement).ok

    def test_minimal_extent_exceeds_slack_bound(self):
        """The widening path is actually exercised on this seed."""
        circuit = random_circuit(1482, max_devices=16)
        gp = eplace_global(circuit, _FAST_GP).placement
        seps = separation_constraints(presymmetrize(gp))
        half_w, half_h = _halves(circuit)
        rx, ry = check_consistency(circuit, seps, half_w, half_h)
        assert rx.feasible and ry.feasible
        params = DetailedParams()
        pseudo_steps = float(np.sqrt(
            circuit.total_device_area() / params.zeta)) / params.grid
        slack_bound = int(np.ceil(
            params.region_slack * pseudo_steps)) + 1
        assert max(rx.min_extent, ry.min_extent) > slack_bound
