"""Runtime race sanitizer: lock order, fork safety, shared writes.

The static rules in :mod:`repro.lint` (RPR4xx) prove what they can see
in the call graph; this module catches what they cannot — the actual
interleavings of a live run.  It is **off by default and free when
off**: every entry point checks ``REPRO_SANITIZE=1`` once and falls
back to plain :mod:`threading` primitives, so production runs carry no
instrumentation cost.  CI runs the obs/parallel/racing test subset
with the sanitizer active.

Three checkers:

* **Lock order** — :func:`make_lock` returns a :class:`TrackedLock`
  that records, per thread, the stack of held sanitized locks and
  feeds every acquisition into a global lock-order graph.  Acquiring
  ``B`` while holding ``A`` adds the edge ``A -> B``; if ``B -> A`` is
  already reachable, two threads could interleave into a deadlock and
  :class:`LockOrderError` is raised *deterministically* on the first
  inverted acquisition — no unlucky scheduling needed.
* **Fork safety** — :func:`check_fork_safety` asserts no live
  non-daemon thread and no live :class:`~repro.obs.live.ResourceSampler`
  thread at fork time (a forked child inherits a snapshot of the
  parent's memory but *none* of its threads: locks held by those
  threads stay locked forever in the child).  ``repro.parallel`` calls
  it inside its ``live.suspend_samplers()`` guard before every fork;
  :func:`install` additionally registers a best-effort
  ``os.register_at_fork`` hook (exceptions raised there are swallowed
  by CPython as unraisable, so the hook records violations in
  :data:`fork_violations` and prints to stderr instead of raising).
* **Shared writes** — :func:`shared_list` returns a list that, when
  the sanitizer is active, raises :class:`SharedWriteError` on
  unsynchronized cross-thread mutation: a second thread may only write
  after taking the structure's associated sanitized lock (or, with no
  lock registered, never).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Callable, Iterable

_ENV_VAR = "REPRO_SANITIZE"


def enabled() -> bool:
    """True when the sanitizer is switched on (``REPRO_SANITIZE=1``)."""
    return os.environ.get(_ENV_VAR, "") == "1"


class LockOrderError(RuntimeError):
    """Two sanitized locks were acquired in inconsistent orders."""


class ForkSafetyError(RuntimeError):
    """A fork was attempted while hazardous threads were alive."""


class SharedWriteError(RuntimeError):
    """A registered shared structure was mutated cross-thread
    without synchronization."""


# ---------------------------------------------------------------------------
# lock-order tracking

#: per-thread stack of held sanitized lock names (innermost last)
_HELD = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


class _OrderGraph:
    """Global directed graph of observed lock-acquisition orders."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[str, set[str]] = {}

    def _reaches(self, src: str, dst: str) -> bool:
        """Is ``dst`` reachable from ``src`` (existing edges only)?"""
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def record(self, held: Iterable[str], new: str) -> None:
        """Add ``held -> new`` edges; raise on an order inversion."""
        with self._lock:
            for outer in held:
                if outer == new:
                    continue  # re-entrant acquire of the same RLock
                if self._reaches(new, outer):
                    raise LockOrderError(
                        f"lock-order inversion: acquiring {new!r} "
                        f"while holding {outer!r}, but the opposite "
                        f"nesting ({new!r} before {outer!r}) was "
                        "already observed; two threads taking these "
                        "paths concurrently can deadlock"
                    )
                self._edges.setdefault(outer, set()).add(new)

    def reset(self) -> None:
        """Forget all recorded orders (test isolation)."""
        with self._lock:
            self._edges.clear()


_ORDER = _OrderGraph()

_NAME_LOCK = threading.Lock()
_NAME_COUNTER = 0


def _auto_name() -> str:
    global _NAME_COUNTER
    with _NAME_LOCK:
        _NAME_COUNTER += 1
        return f"lock-{_NAME_COUNTER}"


class TrackedLock:
    """A lock recording per-thread acquisition order.

    Drop-in for the ``threading.Lock``/``RLock`` surface this codebase
    uses (``with lock:``, ``acquire``/``release``).  Every acquisition
    is checked against the global order graph *before* blocking, so an
    inversion fails fast instead of deadlocking the test run.
    """

    def __init__(self, name: str | None = None,
                 reentrant: bool = False) -> None:
        self.name = name or _auto_name()
        self.reentrant = bool(reentrant)
        self._inner: Any = (
            threading.RLock() if reentrant else threading.Lock()
        )

    def held_by_current_thread(self) -> bool:
        """True when this thread currently holds the lock."""
        return self.name in _held_stack()

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        stack = _held_stack()
        if not (self.reentrant and self.name in stack):
            _ORDER.record(list(stack), self.name)
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack = _held_stack()
        # remove the innermost occurrence (re-entrant locks stack)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break

    def __enter__(self) -> TrackedLock:
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False


def make_lock(name: str | None = None,
              reentrant: bool = False) -> Any:
    """A lock: plain when the sanitizer is off, tracked when on.

    This is the factory the obs stack uses for every internal lock, so
    a single environment variable arms order checking across the whole
    process without touching call sites.
    """
    if not enabled():
        return threading.RLock() if reentrant else threading.Lock()
    return TrackedLock(name, reentrant)


def reset_order_graph() -> None:
    """Clear recorded lock orders (between independent tests)."""
    _ORDER.reset()


# ---------------------------------------------------------------------------
# fork safety

#: thread-name prefixes that must never be alive across a fork even
#: though they are daemons (they hold buffers/locks mid-publish)
_HAZARD_THREAD_PREFIXES = ("repro-resource-sampler",)

#: violations recorded by the best-effort at-fork hook (the hook
#: cannot raise — CPython swallows at-fork exceptions as unraisable)
fork_violations: list[str] = []

_INSTALLED = False


def _hazardous_threads() -> list[threading.Thread]:
    current = threading.current_thread()
    main = threading.main_thread()
    hazards = []
    for thread in threading.enumerate():
        if thread is current or not thread.is_alive():
            continue
        if thread is main:
            # The main thread cannot be stopped before forking (it *is*
            # the process), so "stop it first" is unsatisfiable advice;
            # forks from server worker threads necessarily coexist with
            # it.  Its lock exposure is covered by the order-graph and
            # suspend_samplers checks instead.
            continue
        if not thread.daemon:
            hazards.append(thread)
        elif thread.name.startswith(_HAZARD_THREAD_PREFIXES):
            hazards.append(thread)
    return hazards


#: extra fork-time hazard probes registered by other subsystems; each
#: returns a violation message, or None when its resource is clean
_EXTRA_FORK_CHECKS: "list[Callable[[], str | None]]" = []


def register_fork_check(probe: "Callable[[], str | None]") -> None:
    """Register an extra fork-time hazard probe (idempotent).

    ``repro.parallel`` uses this for shared-memory segment lifecycle:
    a fork while this process holds open segment handles would leak
    the child a mapping it never closes.  Probes run inside
    :func:`check_fork_safety`, i.e. only when the sanitizer is on.
    """
    if probe not in _EXTRA_FORK_CHECKS:
        _EXTRA_FORK_CHECKS.append(probe)


def check_fork_safety() -> None:
    """Raise :class:`ForkSafetyError` on fork-hostile live threads.

    No-op when the sanitizer is off.  Called by ``repro.parallel``
    inside its ``live.suspend_samplers()`` block, i.e. *after*
    samplers have been paused — anything still alive here is a real
    hazard, not the sanctioned sampler being about to stop.
    """
    if not enabled():
        return
    hazards = _hazardous_threads()
    if hazards:
        names = ", ".join(
            f"{t.name}{'' if t.daemon else ' (non-daemon)'}"
            for t in hazards
        )
        raise ForkSafetyError(
            f"fork attempted with live hazardous thread(s): {names}; "
            "a forked child inherits their locks in a locked state "
            "but not the threads themselves — stop them (or use "
            "live.suspend_samplers()) before forking"
        )
    for probe in _EXTRA_FORK_CHECKS:
        message = probe()
        if message:
            raise ForkSafetyError(message)


def _at_fork_check() -> None:
    if not enabled():
        return
    hazards = _hazardous_threads()
    if hazards:
        message = (
            "repro.sanitize: fork with live hazardous thread(s): "
            + ", ".join(t.name for t in hazards)
        )
        fork_violations.append(message)
        sys.stderr.write(message + "\n")


def install() -> None:
    """Register the best-effort ``os.register_at_fork`` guard (once).

    The hook cannot raise (CPython reports at-fork exceptions as
    unraisable and continues), so it appends to
    :data:`fork_violations` and prints to stderr; the raising check is
    the explicit :func:`check_fork_safety` call in ``repro.parallel``.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    os.register_at_fork(before=_at_fork_check)
    _INSTALLED = True


# ---------------------------------------------------------------------------
# cross-thread write detection


class SanitizedList(list):
    """A list that detects unsynchronized cross-thread mutation.

    Reads are unrestricted.  Writes are owned by the first writing
    thread; another thread may write only while holding the associated
    :class:`TrackedLock` (when one was registered), which also
    transfers ownership.  Instances with ``lock=None`` stay picklable
    (the extra state is a name and thread id).
    """

    def __init__(self, iterable: Iterable[Any] = (),
                 name: str = "shared-list",
                 lock: TrackedLock | None = None) -> None:
        super().__init__(iterable)
        self._san_name = name
        self._san_lock = lock
        self._san_writer: int | None = None

    def _check_write(self) -> None:
        me = threading.get_ident()
        lock = self._san_lock
        if lock is not None and lock.held_by_current_thread():
            self._san_writer = me
            return
        if self._san_writer is None or self._san_writer == me:
            self._san_writer = me
            return
        raise SharedWriteError(
            f"unsynchronized cross-thread write to "
            f"{self._san_name!r}: thread {me} wrote while thread "
            f"{self._san_writer} owns it"
            + (
                f"; take lock {lock.name!r} around the write"
                if lock is not None else
                "; register a lock for this structure or confine "
                "writes to one thread"
            )
        )

    def append(self, item: Any) -> None:
        self._check_write()
        super().append(item)

    def extend(self, iterable: Iterable[Any]) -> None:
        self._check_write()
        super().extend(iterable)

    def insert(self, index: int, item: Any) -> None:
        self._check_write()
        super().insert(index, item)

    def pop(self, index: int = -1) -> Any:
        self._check_write()
        return super().pop(index)

    def remove(self, item: Any) -> None:
        self._check_write()
        super().remove(item)

    def clear(self) -> None:
        self._check_write()
        super().clear()

    def sort(self, **kwargs: Any) -> None:
        self._check_write()
        super().sort(**kwargs)

    def __setitem__(self, index: Any, value: Any) -> None:
        self._check_write()
        super().__setitem__(index, value)

    def __reduce__(self) -> Any:
        # pickle as a plain list: the sanitizer state is per-process
        return (list, (list(self),))


def shared_list(name: str = "shared-list",
                lock: TrackedLock | None = None) -> Any:
    """A write-checked list when sanitizing, a plain list otherwise."""
    if not enabled():
        return []
    return SanitizedList((), name=name, lock=lock)
