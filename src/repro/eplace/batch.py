"""Lockstep multi-instance ePlace-A global placement.

Runs B seeded instances of one circuit's global placement *together*:
every Nesterov evaluation round stacks the instances' positions and
runs one shared batched spectral solve
(:class:`repro.analytic.BatchedDensityGrid`) instead of B independent
processes redoing identical FFT plans.  This is the batch entry point
behind ``place_multiseed(batch=True)``, convergence racing over a
shared grid, and the ``density``/``density-scale`` bench engines.

Semantics contract
------------------
Each instance advances through *exactly* the evaluation sequence a
sequential :class:`repro.eplace.EPlaceGlobalPlacer` run would perform:
per-instance Nesterov state (momentum, Lipschitz step prediction,
backtracking halvings, adaptive restart), per-instance multiplier
annealing and per-instance early stopping are all preserved — only
the density-term evaluations are grouped across instances per
backtracking round.  The batched density kernel agrees with the
per-instance kernels to 1e-10 (bit-identical gradients in practice),
so lockstep results match sequential runs to numerical round-off;
they are *not* guaranteed byte-identical across platforms, which is
why the default ``place_multiseed`` path stays per-process and batch
mode is opt-in.

Live telemetry and racing mirror
:func:`repro.parallel.parallel_map_live`'s inline path: each instance
publishes its progress/health events on its own bus stamped with the
instance index as ``source``, a :class:`repro.parallel.LiveHandle`
cancels instances cooperatively (observed at the next progress
publication, resolving that slot to
:class:`repro.parallel.CancelledTask`), and ``task`` start/end phase
markers bracket every instance's stream.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Sequence

import numpy as np

from ..analytic import BatchedDensityGrid
from ..netlist import Circuit
from ..obs import diagnose, health, live, memory, metrics, trace
from ..obs.log import get_logger
from ..parallel import CancelledTask, LiveHandle
from ..placement import Placement, PlacerResult
from .global_place import EPlaceGlobalPlacer
from .params import EPlaceParams

logger = get_logger("eplace.batch")

#: EPlaceParams fields allowed to differ across a batch — everything
#: else shapes the shared grid/objective and must match instance 0
_PER_INSTANCE_FIELDS = ("seed",)


def batch_params(
    base: "EPlaceParams | None", seeds: "Sequence[int]"
) -> "list[EPlaceParams]":
    """Per-seed parameter list sharing every non-seed field of ``base``."""
    base = base or EPlaceParams()
    return [dataclasses.replace(base, seed=int(s)) for s in seeds]


def _check_params(params_list: "Sequence[EPlaceParams]") -> None:
    """Every instance must share the grid-shaping parameters."""
    if not params_list:
        raise ValueError("batch needs at least one instance")
    first = params_list[0]
    if first.symmetry_mode != "soft":
        raise ValueError(
            "batched global placement supports symmetry_mode='soft' "
            "only (hard mode reparameterises the coordinate space)"
        )
    for index, params in enumerate(params_list[1:], start=1):
        for name in vars(first):
            if name in _PER_INSTANCE_FIELDS:
                continue
            if getattr(params, name) != getattr(first, name):
                raise ValueError(
                    f"batch instance {index} differs from instance 0 "
                    f"in {name!r}; only {_PER_INSTANCE_FIELDS} may "
                    "vary across a lockstep batch"
                )


class _Instance:
    """One seeded placement run's state inside the lockstep batch.

    Mirrors :class:`repro.analytic.NesterovOptimizer`'s fields (same
    names, same initial values) so the lockstep driver replays the
    optimiser's exact update sequence with the density evaluations
    hoisted out.
    """

    def __init__(
        self,
        index: int,
        placer: EPlaceGlobalPlacer,
        tracer: "trace.Tracer",
        bus: "live.EventBus",
    ) -> None:
        self.index = index
        self.placer = placer
        self.tracer = tracer
        self.bus = bus
        n = placer.circuit.num_devices
        self.n = n
        x, y = placer.initial_positions()
        placer._init_weights(x, y)
        self.half_w = placer.widths / 2.0
        self.half_h = placer.heights / 2.0
        self.region = placer.region
        # NesterovOptimizer state
        self.v = self.project(np.concatenate([x, y]))
        self.u = self.v.copy()
        self.a = 1.0
        self.alpha = placer.bin_size * 0.5
        self.backtrack = 12
        self.iteration = 0
        self.prev_u: "np.ndarray | None" = None
        self.prev_grad_u: "np.ndarray | None" = None
        self.prev_value = np.inf
        # lockstep bookkeeping
        self.active = True
        self.history: "list[tuple[float, float]]" = []
        self.result: "CancelledTask | None" = None
        # per-step scratch (reset every outer iteration)
        self.value_u = 0.0
        self.grad_u = np.zeros(2 * n)
        self.grad_norm = 0.0
        self.alpha_pred = 0.0
        self.alpha_try = 0.0
        self.attempt = 0
        self.fallback = False
        self.candidate = np.zeros(2 * n)
        self.v_new: "np.ndarray | None" = None
        self.value_new = np.inf
        self.backtracks = 0
        self.restarted = False
        #: task end marker published (early stop or batch drain)
        self.ended = False

    def project(self, vec: np.ndarray) -> np.ndarray:
        """Clamp device centres into the placement region."""
        out = vec.copy()
        n = self.n
        out[:n] = np.clip(out[:n], self.half_w,
                          self.region - self.half_w)
        out[n:] = np.clip(out[n:], self.half_h,
                          self.region - self.half_h)
        return out

    def lipschitz_alpha(self) -> float:
        """Mirror of ``NesterovOptimizer._lipschitz_alpha``."""
        if self.prev_u is None:
            return self.alpha
        du = self.u - self.prev_u
        dg = self.grad_u - self.prev_grad_u
        dg_norm = float(np.linalg.norm(dg))
        if dg_norm <= 1e-30:
            return self.alpha * 2.0
        return float(np.linalg.norm(du)) / dg_norm


def _batched_objective(
    density: BatchedDensityGrid,
    pairs: "Sequence[tuple[_Instance, np.ndarray]]",
) -> "list[tuple[float, np.ndarray]]":
    """Evaluate each instance's full objective at its given vector.

    The density term for the whole group comes from one shared
    spectral solve; every other term runs through the instance's own
    :meth:`EPlaceGlobalPlacer._objective_with_density`, under the
    instance's live session so per-instance annealing state and
    telemetry stay independent.  Returns ``(value, flat_gradient)``
    per pair, in pair order.
    """
    n = pairs[0][0].n
    xs = np.stack([vec[:n] for _, vec in pairs])
    ys = np.stack([vec[n:] for _, vec in pairs])
    with trace.timer("eplace.gp.density"):
        energy, dgx, dgy, overflow = density.energy_and_grad(xs, ys)
    out: "list[tuple[float, np.ndarray]]" = []
    for b, (inst, vec) in enumerate(pairs):
        den = (float(energy[b]), dgx[b], dgy[b], float(overflow[b]))
        with live.session(inst.bus):
            value, gx, gy = inst.placer._objective_with_density(
                vec[:n], vec[n:], den
            )
        out.append((value, np.concatenate([gx, gy])))
    return out


def eplace_global_batch(
    circuit: Circuit,
    params_list: "Sequence[EPlaceParams]",
    bus: "live.EventBus | None" = None,
    handle_ready: "Callable[[LiveHandle], None] | None" = None,
) -> "list[PlacerResult | CancelledTask]":
    """Run B seeded global placements in lockstep; results in order.

    ``params_list`` holds one :class:`EPlaceParams` per instance; all
    entries must match except ``seed`` (build one with
    :func:`batch_params`).  Returns one :class:`PlacerResult` per
    instance — or a :class:`repro.parallel.CancelledTask` marker for
    instances whose cancellation landed — in input order: the same
    contract as ``parallel_map_live`` over per-seed workers, minus
    the processes.

    ``bus`` receives every instance's live events (stamped with the
    instance index as ``source``); ``handle_ready`` receives the
    cancellation :class:`LiveHandle` before the first iteration,
    which is where a :class:`repro.obs.racing.RaceController` binds.
    """
    _check_params(params_list)
    parent_tracer = trace.current()
    traced = parent_tracer.enabled
    publish = (
        bus is not None or handle_ready is not None or live.active()
    )
    parent_bus = bus if bus is not None else live.current()
    if publish and parent_bus is None:
        parent_bus = live.EventBus()

    clock = trace.Stopwatch()
    placers = [
        EPlaceGlobalPlacer(circuit, params) for params in params_list
    ]
    density = BatchedDensityGrid(placers[0].density)
    p = params_list[0]

    tokens = [threading.Event() for _ in placers]
    handle = LiveHandle(tokens)
    if handle_ready is not None:
        handle_ready(handle)

    instances: "list[_Instance]" = []
    iteration = 0
    with parent_tracer.span(
        "eplace.gp.batch", circuit=circuit.name, batch=len(placers)
    ), memory.phase_peak("eplace.gp.batch"):
        with parent_tracer.span("eplace.gp.init"):
            for index, placer in enumerate(placers):
                tracer = trace.Tracer(enabled=traced)
                task_bus = live.EventBus(
                    source=index, cancel_check=tokens[index].is_set
                )
                if parent_bus is not None:
                    task_bus.subscribe(parent_bus.publish)
                instances.append(
                    _Instance(index, placer, tracer, task_bus)
                )
        if publish:
            for inst in instances:
                with live.session(inst.bus):
                    live.phase("task", "start")
        recording = traced or publish

        with parent_tracer.span("eplace.gp.nesterov"):
            while iteration < p.max_iters and any(
                inst.active for inst in instances
            ):
                iteration += 1
                group = [inst for inst in instances if inst.active]
                _lockstep_iteration(density, group, iteration)
                for inst in group:
                    _finish_iteration(
                        inst, iteration, p, recording, publish
                    )

    runtime = clock.elapsed()
    results: "list[PlacerResult | CancelledTask]" = []
    for inst in instances:
        if inst.result is not None:
            results.append(inst.result)
            continue
        _end_task(inst, publish)
        results.append(_build_result(inst, runtime))
    metrics.counter("repro.global_placements").inc(len(placers))
    logger.debug(
        "eplace batch GP %s: %d instances, %d iterations, %.3fs",
        circuit.name, len(placers), iteration, runtime,
    )
    return results


def _lockstep_iteration(
    density: BatchedDensityGrid,
    group: "list[_Instance]",
    iteration: int,
) -> None:
    """One Nesterov step for every active instance, density-batched.

    Replays ``NesterovOptimizer.step`` per instance: reference-point
    evaluation, Lipschitz step prediction, Armijo backtracking (each
    halving round grouped into one batched evaluation across the
    instances still searching, including the post-exhaustion tiny-step
    fallback evaluation), adaptive restart and the momentum update.
    """
    for inst, (value_u, grad_u) in zip(
        group, _batched_objective(
            density, [(inst, inst.u) for inst in group]
        )
    ):
        inst.value_u = value_u
        inst.grad_u = grad_u
        inst.grad_norm = float(np.linalg.norm(grad_u))
        inst.alpha_pred = inst.lipschitz_alpha()
        inst.alpha_try = inst.alpha_pred
        inst.attempt = 0
        inst.fallback = False
        inst.v_new = None
        inst.backtracks = 0

    searching = list(group)
    while searching:
        for inst in searching:
            inst.candidate = inst.project(
                inst.u - inst.alpha_try * inst.grad_u
            )
        evals = _batched_objective(
            density, [(inst, inst.candidate) for inst in searching]
        )
        still: "list[_Instance]" = []
        for inst, (value_c, _grad) in zip(searching, evals):
            if inst.fallback:
                # objective too rough locally: accept the tiny step
                inst.v_new = inst.candidate
                inst.value_new = value_c
                continue
            armijo = (
                inst.value_u
                - 0.25 * inst.alpha_try * inst.grad_norm ** 2
            )
            if value_c <= armijo or inst.grad_norm == 0.0:
                inst.v_new = inst.candidate
                inst.value_new = value_c
                inst.backtracks = inst.attempt
                continue
            inst.attempt += 1
            inst.alpha_try *= 0.5
            if inst.attempt > inst.backtrack:
                inst.fallback = True
            still.append(inst)
        searching = still

    for inst in group:
        inst.restarted = inst.value_new > inst.prev_value
        if inst.restarted:
            inst.a = 1.0
        a_next = (1.0 + np.sqrt(4.0 * inst.a * inst.a + 1.0)) / 2.0
        momentum = (inst.a - 1.0) / a_next
        assert inst.v_new is not None
        u_new = inst.project(
            inst.v_new + momentum * (inst.v_new - inst.v)
        )
        inst.prev_u = inst.u
        inst.prev_grad_u = inst.grad_u
        inst.prev_value = inst.value_new
        inst.v = inst.v_new
        inst.u = u_new
        inst.a = a_next
        inst.alpha = inst.alpha_try
        inst.iteration = iteration


def _finish_iteration(
    inst: _Instance,
    iteration: int,
    p: EPlaceParams,
    recording: bool,
    publish: bool,
) -> None:
    """Post-step bookkeeping: annealing, telemetry, stop conditions."""
    placer = inst.placer
    placer._lambda *= p.lambda_mult
    inst.history.append((inst.value_new, placer._overflow))
    if recording:
        n = inst.n
        cx, cy = inst.v[:n], inst.v[n:]
        values = dict(
            value=inst.value_new,
            grad_norm=inst.grad_norm,
            step_length=inst.alpha,
            overflow=placer._overflow,
            density_weight=placer._lambda,
            hpwl=placer._exact_hpwl(cx, cy),
            **getattr(placer, "_terms", {}),
        )
        hvalues = dict(
            grad_norm=inst.grad_norm,
            step_length=inst.alpha,
            step_predicted=inst.alpha_pred,
            backtracks=float(inst.backtracks),
            restarted=float(inst.restarted),
            density_weight=placer._lambda,
            tau=placer._tau_scaled,
            eta=placer._eta_scaled,
            overflow=placer._overflow,
            **getattr(placer, "_health", {}),
        )
        inst.tracer.record("eplace.nesterov", iteration, **values)
        inst.tracer.record(
            "eplace.nesterov" + health.HEALTH_SUFFIX, iteration,
            **hvalues,
        )
        if publish:
            try:
                with live.session(inst.bus):
                    live.progress(
                        "eplace.nesterov", iteration, **values
                    )
                    health.sample(
                        "eplace.nesterov", iteration, **hvalues
                    )
            except live.CancelledRun as exc:
                inst.result = CancelledTask(
                    inst.index, exc.phase, exc.iteration
                )
                inst.active = False
                return
    if iteration >= p.min_iters and placer._overflow < p.overflow_stop:
        inst.active = False
        # converged instances end their stream immediately so racing's
        # finished-seed barrier advances without waiting for the batch
        _end_task(inst, publish)


def _end_task(inst: _Instance, publish: bool) -> None:
    """Publish the instance's ``task`` end marker exactly once."""
    if inst.ended or not publish:
        return
    inst.ended = True
    with live.session(inst.bus):
        live.phase("task", "end")


def _build_result(inst: _Instance, runtime: float) -> PlacerResult:
    """Materialise one instance's :class:`PlacerResult`.

    ``runtime_s`` is the whole batch's wall time — lockstep instances
    share the clock, so per-instance timings are not separable (the
    batch exists to make their *sum* cheaper).
    """
    placer = inst.placer
    n = inst.n
    x, y = inst.v[:n], inst.v[n:]
    result = PlacerResult(
        placement=Placement(placer.circuit, x, y),
        runtime_s=runtime,
        method=f"eplace-gp[{placer.params.symmetry_mode},batch]",
        stats={
            "iterations": inst.iteration,
            "final_overflow": placer._overflow,
            "final_lambda": placer._lambda,
            "region": placer.region,
            "history": inst.history,
            "batch_index": inst.index,
        },
    )
    result.trace = inst.tracer.to_trace()
    diagnose.attach(result)
    return result
