"""Hard symmetry constraints in global placement via reparameterisation.

The paper's Table I studies enforcing symmetry *exactly* during global
placement (:math:`y_i = y_j`, :math:`x_i + x_j = 2 x_m`) instead of the
soft penalty.  We realise the hard mode by optimising a reduced variable
vector: for each vertical-axis pair only :math:`(x_a, y_a)` is free and
the partner is mirrored through the group's (free) axis variable;
self-symmetric devices keep only their cross coordinate.  The mapping
from reduced to full coordinates is linear, so gradients pull back
through its transpose.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Axis, Circuit


class HardSymmetryMap:
    """Linear (re)parameterisation enforcing symmetry exactly.

    Reduced vector layout (in order):

    * free devices (not in any symmetry group): x then y interleaved as
      the mapping dictates below;
    * for each group: its axis coordinate, then for each pair the
      representative's (along, across) coordinates, then each
      self-symmetric device's across coordinate.

    ``expand`` produces full ``(x, y)`` arrays; ``pullback`` maps a full
    gradient onto the reduced space.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        index = circuit.device_index()
        n = circuit.num_devices
        self.n = n

        in_group = set()
        for group in circuit.constraints.symmetry_groups:
            in_group.update(group.devices)
        self.free_idx = np.array(
            [i for name, i in index.items() if name not in in_group],
            dtype=int,
        )

        # compile per-group structures
        self.groups = []
        size = 2 * len(self.free_idx)
        for group in circuit.constraints.symmetry_groups:
            pa = np.array([index[a] for a, _ in group.pairs], dtype=int)
            pb = np.array([index[b] for _, b in group.pairs], dtype=int)
            selfs = np.array(
                [index[s] for s in group.self_symmetric], dtype=int
            )
            axis_slot = size
            size += 1
            pair_slots = np.arange(
                size, size + 2 * len(pa)
            ).reshape(-1, 2)
            size += 2 * len(pa)
            self_slots = np.arange(size, size + len(selfs))
            size += len(selfs)
            self.groups.append(
                (pa, pb, selfs, group.axis, axis_slot, pair_slots,
                 self_slots)
            )
        self.size = size

    # ------------------------------------------------------------------
    def reduce(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Project a full placement onto the reduced space.

        Pairs keep their first member; the axis starts at the group's
        least-squares axis position.
        """
        v = np.zeros(self.size)
        nf = len(self.free_idx)
        v[0:nf] = x[self.free_idx]
        v[nf:2 * nf] = y[self.free_idx]
        for pa, pb, selfs, axis, axis_slot, pair_slots, self_slots in (
                self.groups):
            along, across = (x, y) if axis is Axis.VERTICAL else (y, x)
            mids = (along[pa] + along[pb]) / 2.0 if len(pa) else np.empty(0)
            denom = 4.0 * len(pa) + len(selfs)
            v[axis_slot] = (
                4.0 * mids.sum() + along[selfs].sum()
            ) / denom
            for k in range(len(pa)):
                v[pair_slots[k, 0]] = along[pa[k]]
                v[pair_slots[k, 1]] = across[pa[k]]
            for k in range(len(selfs)):
                v[self_slots[k]] = across[selfs[k]]
        return v

    def expand(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full symmetric ``(x, y)`` coordinates from reduced variables."""
        x = np.zeros(self.n)
        y = np.zeros(self.n)
        nf = len(self.free_idx)
        x[self.free_idx] = v[0:nf]
        y[self.free_idx] = v[nf:2 * nf]
        for pa, pb, selfs, axis, axis_slot, pair_slots, self_slots in (
                self.groups):
            along, across = (x, y) if axis is Axis.VERTICAL else (y, x)
            axis_pos = v[axis_slot]
            for k in range(len(pa)):
                a_along = v[pair_slots[k, 0]]
                a_across = v[pair_slots[k, 1]]
                along[pa[k]] = a_along
                along[pb[k]] = 2.0 * axis_pos - a_along
                across[pa[k]] = a_across
                across[pb[k]] = a_across
            for k in range(len(selfs)):
                along[selfs[k]] = axis_pos
                across[selfs[k]] = v[self_slots[k]]
        return x, y

    def pullback(self, gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
        """Chain rule: gradient w.r.t. reduced variables."""
        g = np.zeros(self.size)
        nf = len(self.free_idx)
        g[0:nf] = gx[self.free_idx]
        g[nf:2 * nf] = gy[self.free_idx]
        for pa, pb, selfs, axis, axis_slot, pair_slots, self_slots in (
                self.groups):
            g_along, g_across = (gx, gy) if axis is Axis.VERTICAL else (
                gy, gx)
            axis_grad = 0.0
            for k in range(len(pa)):
                g[pair_slots[k, 0]] = g_along[pa[k]] - g_along[pb[k]]
                g[pair_slots[k, 1]] = g_across[pa[k]] + g_across[pb[k]]
                axis_grad += 2.0 * g_along[pb[k]]
            for k in range(len(selfs)):
                axis_grad += g_along[selfs[k]]
                g[self_slots[k]] = g_across[selfs[k]]
            g[axis_slot] = axis_grad
        return g
