"""ePlace-A global placement (paper Sec. IV-A).

Solves

.. math::
    \\min_v W(v) + \\lambda N(v) + \\tau Sym(v) + \\eta Area(v)

with WA wirelength smoothing, the electrostatic eDensity overlap model,
soft (or optionally hard) symmetry handling, the explicit analog area
term, and Nesterov's method — the combination that distinguishes
ePlace-A from the NTUplace3-based prior work [11].
"""

from __future__ import annotations

import numpy as np

from ..analytic import (
    ConstraintPenalties,
    DensityGrid,
    NesterovOptimizer,
    NetArrays,
    area_term,
    wa_wirelength,
)
from ..netlist import Circuit
from ..obs import diagnose, health, live, memory, metrics, trace
from ..obs.log import get_logger
from ..placement import Placement, PlacerResult
from .hard_symmetry import HardSymmetryMap
from .params import EPlaceParams

logger = get_logger("eplace")


def _grad_norm(gx: np.ndarray, gy: np.ndarray) -> float:
    """Euclidean norm of a stacked (gx, gy) gradient."""
    return float(np.hypot(np.linalg.norm(gx), np.linalg.norm(gy)))


#: solver internals published on the health channel each iteration
HEALTH_FIELDS = (
    "grad_norm", "grad_wl_norm", "grad_density_norm",
    "grad_penalty_norm", "step_length", "step_predicted",
    "backtracks", "restarted", "density_weight", "tau", "eta",
    "overflow",
)


class EPlaceGlobalPlacer:
    """Global placement engine for one circuit."""

    def __init__(
        self, circuit: Circuit, params: EPlaceParams | None = None
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.params = params or EPlaceParams()
        self.arrays = NetArrays(circuit)
        self.penalties = ConstraintPenalties(circuit)
        self.widths, self.heights = circuit.sizes()

        # region: square sized by total device area over utilisation
        side = float(
            np.sqrt(circuit.total_device_area() / self.params.utilization)
        )
        self.region = side
        self.density = DensityGrid(
            self.widths, self.heights, side, side, bins=self.params.bins
        )
        self.bin_size = side / self.params.bins
        self._lambda = 0.0
        self._overflow = 1.0
        self._hard_map = (
            HardSymmetryMap(circuit)
            if self.params.symmetry_mode == "hard"
            else None
        )

    # ------------------------------------------------------------------
    def initial_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Devices clustered at the region centre with small jitter."""
        rng = np.random.default_rng(self.params.seed)
        n = self.circuit.num_devices
        centre = self.region / 2.0
        spread = self.region * 0.08
        x = centre + rng.uniform(-spread, spread, n)
        y = centre + rng.uniform(-spread, spread, n)
        return x, y

    # ------------------------------------------------------------------
    def _gamma(self) -> float:
        """WA smoothing parameter annealed with density overflow."""
        base = self.params.gamma_scale * self.bin_size
        return base * (1.0 + 19.0 * min(self._overflow, 1.0))

    def _objective_xy(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Full objective terms and gradient in device-coordinate space."""
        with trace.timer("eplace.gp.density"):
            den = self.density.energy_and_grad(x, y)
        return self._objective_with_density(x, y, den)

    def _objective_with_density(
        self,
        x: np.ndarray,
        y: np.ndarray,
        den: tuple[float, np.ndarray, np.ndarray, float],
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Objective terms around a precomputed density evaluation.

        ``den`` is :meth:`DensityGrid.energy_and_grad`'s result at
        ``(x, y)`` — the split lets the lockstep batch driver
        (:mod:`repro.eplace.batch`) evaluate the density term for all
        instances in one shared spectral solve and feed each
        instance's slice through the identical remaining terms.  Note
        the WA ``gamma`` reads ``self._overflow`` from the *previous*
        evaluation (annealing), so the density result must always come
        from the positions passed here.
        """
        p = self.params
        gamma = self._gamma()
        observing = trace.active() or live.active()
        with trace.timer("eplace.gp.wirelength"):
            value_w, gx, gy = wa_wirelength(self.arrays, x, y, gamma)
        value = value_w
        wl_gnorm = _grad_norm(gx, gy) if observing else 0.0

        value_n, dgx, dgy, overflow = den
        self._overflow = overflow
        value += self._lambda * value_n
        gx = gx + self._lambda * dgx
        gy = gy + self._lambda * dgy
        if observing:
            den_gnorm = self._lambda * _grad_norm(dgx, dgy)
            pre_pen_gx, pre_pen_gy = gx.copy(), gy.copy()

        value_a = 0.0
        if p.eta > 0.0:
            with trace.timer("eplace.gp.area"):
                value_a, agx, agy = area_term(
                    x, y, self.widths, self.heights, gamma
                )
            value += self._eta_scaled * value_a
            gx += self._eta_scaled * agx
            gy += self._eta_scaled * agy

        value_s = 0.0
        with trace.timer("eplace.gp.penalties"):
            if self._hard_map is None:
                tau = self._tau_scaled
                value_s, sgx, sgy = self.penalties.symmetry(x, y)
                value += tau * value_s
                gx += tau * sgx
                gy += tau * sgy
            value_al, algx, algy = self.penalties.alignment(x, y)
            value_o, ogx, ogy = self.penalties.ordering(x, y)
        value += p.align_weight * value_al + p.order_weight * value_o
        gx += p.align_weight * algx + p.order_weight * ogx
        gy += p.align_weight * algy + p.order_weight * ogy
        if observing:
            # last-evaluation term values for the convergence recorder
            self._terms = {
                "wirelength": float(value_w),
                "density": float(value_n),
                "area": float(value_a),
                "symmetry": float(value_s),
                "alignment": float(value_al),
                "ordering": float(value_o),
            }
            # per-term gradient magnitudes for the health channel: the
            # penalty norm covers everything added after density
            # (area, symmetry, alignment, ordering)
            self._health = {
                "grad_wl_norm": wl_gnorm,
                "grad_density_norm": den_gnorm,
                "grad_penalty_norm": _grad_norm(
                    gx - pre_pen_gx, gy - pre_pen_gy
                ),
            }
        return value, gx, gy

    def _exact_hpwl(self, x: np.ndarray, y: np.ndarray) -> float:
        """Exact (non-smoothed) weighted HPWL at unflipped positions."""
        a = self.arrays
        px = x[a.pin_dev] + a.pin_offx
        py = y[a.pin_dev] + a.pin_offy
        spans = (
            a.segment_max(px) - a.segment_min(px)
            + a.segment_max(py) - a.segment_min(py)
        )
        return float(np.dot(a.weights, spans))

    # ------------------------------------------------------------------
    def _init_weights(self, x: np.ndarray, y: np.ndarray) -> None:
        """ePlace-style self-scaling of the multipliers.

        The density weight starts at ``lambda_init_ratio`` times the
        wirelength/density gradient-norm ratio; the symmetry and area
        weights are scaled to comparable gradient magnitudes so the
        user-facing ``tau``/``eta`` knobs stay O(1).
        """
        gamma = self._gamma()
        _, gx, gy = wa_wirelength(self.arrays, x, y, gamma)
        wl_norm = float(np.linalg.norm(np.concatenate([gx, gy])))
        self._wl_norm0 = wl_norm  # reused by performance-driven subclass
        _, dgx, dgy, _ = self.density.energy_and_grad(x, y)
        den_norm = float(
            np.linalg.norm(np.concatenate([dgx, dgy]))
        )
        self._lambda = (
            self.params.lambda_init_ratio * wl_norm / max(den_norm, 1e-12)
        )
        # area gradient scale
        _, agx, agy = area_term(x, y, self.widths, self.heights, gamma)
        area_norm = float(np.linalg.norm(np.concatenate([agx, agy])))
        self._eta_scaled = (
            self.params.eta * wl_norm / max(area_norm, 1e-12)
            if self.params.eta > 0 else 0.0
        )
        # symmetry scale: gradients vanish at symmetric starts, so scale
        # by value curvature instead — unit residual costs tau * wl_norm
        self._tau_scaled = self.params.tau * max(wl_norm, 1.0)

    # ------------------------------------------------------------------
    def place(self) -> PlacerResult:
        """Run global placement; returns centre coordinates (no flips)."""
        tracer = trace.current()
        clock = trace.Stopwatch()
        with tracer.span("eplace.gp", circuit=self.circuit.name), \
                memory.phase_peak("eplace.gp"):
            result = self._place(tracer, clock)
        metrics.counter("repro.global_placements").inc()
        result.trace = tracer.to_trace()  # now includes the root span
        diagnose.attach(result)
        return result

    def _place(
        self, tracer: trace.Tracer, clock: trace.Stopwatch
    ) -> PlacerResult:
        p = self.params
        with tracer.span("eplace.gp.init"):
            x, y = self.initial_positions()
            self._init_weights(x, y)
        n = self.circuit.num_devices

        half_w, half_h = self.widths / 2.0, self.heights / 2.0

        if self._hard_map is None:
            def objective(v: np.ndarray) -> tuple[float, np.ndarray]:
                value, gx, gy = self._objective_xy(v[:n], v[n:])
                return value, np.concatenate([gx, gy])

            def projection(v: np.ndarray) -> np.ndarray:
                out = v.copy()
                out[:n] = np.clip(out[:n], half_w, self.region - half_w)
                out[n:] = np.clip(out[n:], half_h, self.region - half_h)
                return out

            v0 = np.concatenate([x, y])
        else:
            hard = self._hard_map

            def objective(v: np.ndarray) -> tuple[float, np.ndarray]:
                fx, fy = hard.expand(v)
                value, gx, gy = self._objective_xy(fx, fy)
                return value, hard.pullback(gx, gy)

            def projection(v: np.ndarray) -> np.ndarray:
                fx, fy = hard.expand(v)
                fx = np.clip(fx, half_w, self.region - half_w)
                fy = np.clip(fy, half_h, self.region - half_h)
                return hard.reduce(fx, fy)

            v0 = hard.reduce(x, y)

        optimizer = NesterovOptimizer(
            v0, objective, projection=projection,
            alpha0=self.bin_size * 0.5,
        )
        history = []
        iterations = 0
        recording = tracer.enabled or live.active()
        with tracer.span("eplace.gp.nesterov"):
            for iterations in range(1, p.max_iters + 1):
                info = optimizer.step()
                self._lambda *= p.lambda_mult
                history.append((info.value, self._overflow))
                if recording:
                    if self._hard_map is None:
                        cx, cy = optimizer.v[:n], optimizer.v[n:]
                    else:
                        cx, cy = self._hard_map.expand(optimizer.v)
                    values = dict(
                        value=info.value,
                        grad_norm=info.grad_norm,
                        step_length=info.step_length,
                        overflow=self._overflow,
                        density_weight=self._lambda,
                        hpwl=self._exact_hpwl(cx, cy),
                        **getattr(self, "_terms", {}),
                    )
                    tracer.record(
                        "eplace.nesterov", iterations, **values
                    )
                    live.progress(
                        "eplace.nesterov", iterations, **values
                    )
                    hvalues = dict(
                        grad_norm=info.grad_norm,
                        step_length=info.step_length,
                        step_predicted=info.step_predicted,
                        backtracks=float(info.backtracks),
                        restarted=float(info.restarted),
                        density_weight=self._lambda,
                        tau=self._tau_scaled,
                        eta=self._eta_scaled,
                        overflow=self._overflow,
                        **getattr(self, "_health", {}),
                    )
                    tracer.record(
                        "eplace.nesterov" + health.HEALTH_SUFFIX,
                        iterations, **hvalues,
                    )
                    health.sample(
                        "eplace.nesterov", iterations, **hvalues
                    )
                if (
                    iterations >= p.min_iters
                    and self._overflow < p.overflow_stop
                ):
                    break

        if self._hard_map is None:
            x, y = optimizer.v[:n], optimizer.v[n:]
        else:
            x, y = self._hard_map.expand(optimizer.v)
        placement = Placement(self.circuit, x, y)
        logger.debug(
            "eplace GP %s: %d iterations, overflow %.4f",
            self.circuit.name, iterations, self._overflow,
        )
        return PlacerResult(
            placement=placement,
            runtime_s=clock.elapsed(),
            method=f"eplace-gp[{p.symmetry_mode}]",
            stats={
                "iterations": iterations,
                "final_overflow": self._overflow,
                "final_lambda": self._lambda,
                "region": self.region,
                "history": history,
            },
        )


def eplace_global(
    circuit: Circuit, params: EPlaceParams | None = None
) -> PlacerResult:
    """Convenience wrapper: run ePlace-A global placement once."""
    return EPlaceGlobalPlacer(circuit, params).place()
