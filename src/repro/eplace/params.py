"""Parameters for ePlace-A global placement."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EPlaceParams:
    """Tuning knobs for :class:`repro.eplace.EPlaceGlobalPlacer`.

    Attributes
    ----------
    utilization:
        Target chip-area utilisation :math:`\\zeta`; the placement
        region is the square of side
        :math:`\\sqrt{\\sum_i s_i / \\zeta}` (paper Sec. IV-B).
    bins:
        Density-grid resolution per axis.
    gamma_scale:
        WA smoothing parameter as a multiple of the density bin size;
        annealed towards this floor as overflow falls.
    lambda_init_ratio:
        Initial density multiplier as a fraction of the
        wirelength-to-density gradient-norm ratio (ePlace's
        self-scaling initialisation).
    lambda_mult:
        Per-iteration multiplier on the density weight.
    tau:
        Symmetry penalty weight (relative to the same gradient
        scaling).  Ignored when ``symmetry_mode='hard'``.
    eta:
        Area-term weight relative to the wirelength gradient scale.
        ``eta=0`` reproduces the paper's Fig. 2 ablation.
    align_weight, order_weight:
        Weights for the remaining soft geometric penalties.
    symmetry_mode:
        ``'soft'`` (penalty, the paper's default) or ``'hard'``
        (exact reparameterisation, Table I's comparison arm).
    max_iters, min_iters:
        Nesterov iteration budget.
    overflow_stop:
        Density-overflow threshold ending global placement.
    seed:
        Seed for the initial placement jitter.
    """

    utilization: float = 0.6
    bins: int = 32
    gamma_scale: float = 1.0
    lambda_init_ratio: float = 0.1
    lambda_mult: float = 1.05
    tau: float = 4.0
    eta: float = 0.15
    align_weight: float = 2.0
    order_weight: float = 2.0
    symmetry_mode: str = "soft"
    max_iters: int = 500
    min_iters: int = 50
    overflow_stop: float = 0.08
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if self.symmetry_mode not in ("soft", "hard"):
            raise ValueError("symmetry_mode must be 'soft' or 'hard'")
        if self.eta < 0 or self.tau < 0:
            raise ValueError("weights must be non-negative")
