"""ePlace-A global placement (the paper's new analytical technique)."""

from .global_place import EPlaceGlobalPlacer, eplace_global
from .hard_symmetry import HardSymmetryMap
from .params import EPlaceParams

__all__ = [
    "EPlaceGlobalPlacer",
    "EPlaceParams",
    "HardSymmetryMap",
    "eplace_global",
]
