"""ePlace-A global placement (the paper's new analytical technique)."""

from .batch import batch_params, eplace_global_batch
from .global_place import EPlaceGlobalPlacer, eplace_global
from .hard_symmetry import HardSymmetryMap
from .params import EPlaceParams

__all__ = [
    "EPlaceGlobalPlacer",
    "EPlaceParams",
    "HardSymmetryMap",
    "batch_params",
    "eplace_global",
    "eplace_global_batch",
]
