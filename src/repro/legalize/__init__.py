"""Legalization and detailed placement: single-stage ILP (ePlace-A) and
two-stage LP (the previous analytical work [11])."""

from .ilp import (
    DEFAULT_GRID,
    DetailedParams,
    DetailedPlacementError,
    ilp_detailed_placement,
    detailed_place,
    iterate_directions,
    refine_directions,
)
from .lp_twostage import lp_two_stage_detailed_placement
from .pairs import (
    HORIZONTAL,
    VERTICAL,
    SeparationConstraint,
    separation_constraints,
)
from .presym import presymmetrize

__all__ = [
    "DEFAULT_GRID",
    "DetailedParams",
    "DetailedPlacementError",
    "HORIZONTAL",
    "SeparationConstraint",
    "VERTICAL",
    "detailed_place",
    "ilp_detailed_placement",
    "iterate_directions",
    "refine_directions",
    "lp_two_stage_detailed_placement",
    "presymmetrize",
    "separation_constraints",
]
