"""Snap a global placement onto exact symmetry/alignment geometry.

Detailed placement enforces symmetry and alignment as *hard* equalities
while deriving pairwise separation directions from the incoming global
placement.  If that placement grossly violated a symmetry (e.g. both
pair members on the same side of the axis), the derived directions could
contradict the equalities and make the ILP infeasible.  Snapping each
group to its least-squares axis first guarantees the direction
derivation sees geometry consistent with every hard equality.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Axis
from ..placement import Placement


def presymmetrize(placement: Placement) -> Placement:
    """Return a copy with symmetry groups and alignments snapped exact."""
    circuit = placement.circuit
    index = circuit.device_index()
    x = placement.x.copy()
    y = placement.y.copy()
    widths, heights = circuit.sizes()

    for group in circuit.constraints.symmetry_groups:
        if group.axis is Axis.VERTICAL:
            along, across = x, y
        else:
            along, across = y, x
        pa = np.array([index[a] for a, _ in group.pairs], dtype=int)
        pb = np.array([index[b] for _, b in group.pairs], dtype=int)
        selfs = np.array([index[s] for s in group.self_symmetric],
                         dtype=int)
        mids = (along[pa] + along[pb]) / 2.0 if len(pa) else np.empty(0)
        axis_pos = (4.0 * mids.sum() + along[selfs].sum()) / (
            4.0 * len(pa) + len(selfs)
        )
        if len(pa):
            # keep each pair's half-spacing, mirror exactly about axis
            half = np.abs(along[pa] - along[pb]) / 2.0
            left_is_a = along[pa] <= along[pb]
            along[pa] = np.where(left_is_a, axis_pos - half,
                                 axis_pos + half)
            along[pb] = np.where(left_is_a, axis_pos + half,
                                 axis_pos - half)
            mean_across = (across[pa] + across[pb]) / 2.0
            across[pa] = mean_across
            across[pb] = mean_across
        if len(selfs):
            along[selfs] = axis_pos

    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "bottom":
            bottom = ((y[ia] - heights[ia] / 2)
                      + (y[ib] - heights[ib] / 2)) / 2.0
            y[ia] = bottom + heights[ia] / 2
            y[ib] = bottom + heights[ib] / 2
        elif pair.kind == "vcenter":
            mid = (x[ia] + x[ib]) / 2.0
            x[ia] = mid
            x[ib] = mid
        else:  # hcenter
            mid = (y[ia] + y[ib]) / 2.0
            y[ia] = mid
            y[ib] = mid

    return Placement(circuit, x, y, placement.flip_x, placement.flip_y)
