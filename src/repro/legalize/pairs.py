"""Pairwise separation directions derived from a global placement.

The ILP/LP detailed placers remove overlap with *linear* constraints by
fixing, per device pair, a separation direction and relative order taken
from the global-placement geometry (paper Fig. 4a): a pair overlapping
with :math:`\\Delta x < \\Delta y` separates horizontally in its current
x-order, otherwise vertically.  We extend the same rule to
non-overlapping pairs (direction of the larger existing gap) so the
solvers cannot re-introduce overlap while compacting — the paper only
discusses the overlapping set :math:`P^H`, but without constraints on
the remaining pairs a compaction step would collide them.

Constraint-implied directions override the geometric rule:

* symmetric pairs share a y (vertical axis), so they must separate
  horizontally (mirrored groups for a horizontal axis);
* vertical-centre-aligned pairs share an x, so they separate vertically;
* bottom/horizontal-centre-aligned pairs separate horizontally;
* ordering-chain neighbours keep the chain's direction and order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Axis
from ..placement import Placement

HORIZONTAL = "h"
VERTICAL = "v"


@dataclass(frozen=True)
class SeparationConstraint:
    """``low`` must end left of (or below) ``high`` along ``direction``."""

    low: int
    high: int
    direction: str


def _constraint_overrides(
    circuit,
) -> dict[tuple[int, int], tuple[str, tuple[int, int] | None]]:
    """Directions (and possibly orders) forced by constraint semantics.

    Values are ``(direction, order)`` where ``order`` is a mandatory
    ``(low, high)`` index pair, or ``None`` when the order may follow
    the global-placement geometry.
    """
    index = circuit.device_index()
    overrides: dict[tuple[int, int], tuple[str, tuple[int, int] | None]] = {}

    def put(a: int, b: int, direction: str,
            order: tuple[int, int] | None = None) -> None:
        overrides[(min(a, b), max(a, b))] = (direction, order)

    for group in circuit.constraints.symmetry_groups:
        direction = (
            HORIZONTAL if group.axis is Axis.VERTICAL else VERTICAL
        )
        for a, b in group.pairs:
            put(index[a], index[b], direction)
        # every *other* pair of group members separates along the axis
        # direction (rows of a vertical-axis island stack vertically):
        # a separation along the mirror normal would couple through the
        # shared axis variable — e.g. with pairs (a0,b0), (a1,b1)
        # mirrored about y-axis value T, demanding a0 below b1 AND b0
        # above a1 bounds T from both sides and can be infeasible
        stack = VERTICAL if group.axis is Axis.VERTICAL else HORIZONTAL
        members = [index[d] for d in group.devices]
        mirrored = {frozenset((index[a], index[b]))
                    for a, b in group.pairs}
        for pos, a in enumerate(members):
            for b in members[pos + 1:]:
                if frozenset((a, b)) in mirrored:
                    continue
                put(a, b, stack)
    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "vcenter":
            put(ia, ib, VERTICAL)
        else:  # bottom or hcenter: same row, so side by side
            put(ia, ib, HORIZONTAL)
    # ordering chains force both direction and order, so they are
    # applied last and win over any earlier entry; every pair within a
    # chain (not just consecutive ones) is fixed, otherwise a
    # geometry-derived order between distant chain members could
    # contradict the chain's transitive order
    for chain in circuit.constraints.orderings:
        direction = (
            HORIZONTAL if chain.axis is Axis.VERTICAL else VERTICAL
        )
        for pos, left in enumerate(chain.devices):
            for right in chain.devices[pos + 1:]:
                put(index[left], index[right], direction,
                    order=(index[left], index[right]))
    return overrides


def _equality_classes(circuit) -> tuple[list[int], list[int]]:
    """Union-find representatives of coordinate-equality classes.

    Devices whose x (resp. y) centres are *forced equal* by a hard
    constraint — vertical-centre alignment pairs and horizontal-axis
    symmetry pairs for x; horizontal-centre alignment pairs,
    equal-height bottom alignments and vertical-axis symmetry pairs for
    y — must break coordinate ties identically against any third
    device, or the derived orders contradict the equality (e.g. a tied
    device ordered strictly *between* two devices that share an x).
    """
    n = circuit.num_devices
    index = circuit.device_index()
    parent_x = list(range(n))
    parent_y = list(range(n))

    def find(parent: list[int], a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(parent: list[int], a: int, b: int) -> None:
        ra, rb = find(parent, a), find(parent, b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for group in circuit.constraints.symmetry_groups:
        parent = parent_y if group.axis is Axis.VERTICAL else parent_x
        for a, b in group.pairs:
            union(parent, index[a], index[b])
    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "vcenter":
            union(parent_x, ia, ib)
        elif pair.kind == "hcenter":
            union(parent_y, ia, ib)
        else:
            # bottom alignment couples the y-interval start exactly;
            # the pair must be rank-adjacent regardless of heights
            union(parent_y, ia, ib)
    return ([find(parent_x, i) for i in range(n)],
            [find(parent_y, i) for i in range(n)])


def _global_rank(
    n: int,
    keys: list[tuple],
    forced_edges: list[tuple[int, int]],
) -> list[int]:
    """Total device order respecting forced edges, keyed by geometry.

    A topological sort over the ordering-chain edges with the
    geometric key as tie-priority yields one global order per axis, so
    *every* derived pairwise order is transitively consistent — a
    per-pair decision could cycle (chain forces F5<F10, geometry says
    F10<F6<F5).
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(forced_edges)
    rank = [0] * n
    try:
        order = nx.lexicographical_topological_sort(
            graph, key=lambda node: keys[node])
        for position, node in enumerate(order):
            rank[node] = position
    except nx.NetworkXUnfeasible as exc:
        raise ValueError(
            "ordering chains are cyclic; no placement can satisfy them"
        ) from exc
    return rank


def separation_constraints(
    placement: Placement,
) -> list[SeparationConstraint]:
    """One separation constraint per device pair, from GP geometry."""
    circuit = placement.circuit
    n = circuit.num_devices
    x, y = placement.x, placement.y
    widths, heights = circuit.sizes()
    overrides = _constraint_overrides(circuit)
    class_x, class_y = _equality_classes(circuit)
    index = circuit.device_index()

    # one global total order per axis: geometric keys (ties broken by
    # coordinate-equality class, then index) + ordering-chain edges
    forced_x: list[tuple[int, int]] = []
    forced_y: list[tuple[int, int]] = []
    for chain in circuit.constraints.orderings:
        edges = [(index[a], index[b]) for a, b in chain.pairs]
        (forced_x if chain.axis is Axis.VERTICAL else forced_y).extend(
            edges)
    # rank keys anchor at the *shared* coordinate of each equality
    # class (bottom edge for bottom-aligned devices), so no third
    # device can rank strictly between two coupled devices — a device
    # ordered "between" them would face contradictory separations
    anchor_y = y.astype(float).copy()
    for pair in circuit.constraints.alignments:
        if pair.kind == "bottom":
            for name in (pair.a, pair.b):
                k = index[name]
                anchor_y[k] = y[k] - heights[k] / 2.0
    keys_x = [(x[i], class_x[i], i) for i in range(n)]
    keys_y = [(anchor_y[i], class_y[i], i) for i in range(n)]
    rank_x = _global_rank(n, keys_x, forced_x)
    rank_y = _global_rank(n, keys_y, forced_y)

    out: list[SeparationConstraint] = []
    for i in range(n):
        for j in range(i + 1, n):
            # gaps are negative when the pair overlaps on that axis
            gap_x = abs(x[i] - x[j]) - (widths[i] + widths[j]) / 2
            gap_y = abs(y[i] - y[j]) - (heights[i] + heights[j]) / 2
            direction, order = overrides.get((i, j), (None, None))
            if direction is None:
                direction = HORIZONTAL if gap_x >= gap_y else VERTICAL
            if order is not None:
                low, high = order
            elif direction == HORIZONTAL:
                low, high = (i, j) if rank_x[i] < rank_x[j] else (j, i)
            else:
                low, high = (i, j) if rank_y[i] < rank_y[j] else (j, i)
            out.append(SeparationConstraint(low, high, direction))
    return out
