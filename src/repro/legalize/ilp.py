"""Integrated ILP legalization + detailed placement (paper Sec. IV-B).

Implements formulation (4a)-(4j): a single-stage integer linear program
that simultaneously minimises wirelength and area subject to

* net bounding boxes (4b) over pin coordinates with optional device
  flipping (4d),
* the layout outline (4c) with variable width/height,
* pairwise non-overlap with directions fixed from the incoming global
  placement (4e, see :mod:`repro.legalize.pairs`),
* hard symmetry with a free axis per group (4f),
* alignment (4g, 4h) and ordering (4i),
* integral device coordinates on the placement grid (4j).

Solved with HiGHS branch-and-bound through :func:`scipy.optimize.milp`.
As the paper notes, ILP does not scale to digital netlists but the
dozens-of-devices sizes of analog circuits keep it tractable.

Two refinement layers sit on top of the single solve:

* :func:`iterate_directions` — re-derive the separation directions from
  the legal solution and re-solve until a fixpoint; the GP geometry is
  only a heuristic for the direction choice, and a legal placement is a
  better oracle.
* :func:`refine_directions` — large-neighbourhood rounds that *free*
  the direction decision of a few nearby pairs (big-M disjunctions over
  two binaries per pair) and accept improvements.  This exploits the
  integer programming capability the paper's formulation pays for.

:func:`detailed_place` chains all three and is what the end-to-end
ePlace-A flow uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..netlist import Axis
from ..obs import memory, metrics, trace
from ..obs.log import get_logger
from ..placement import Placement, PlacerResult, summarize
from .consistency import check_consistency
from .pairs import HORIZONTAL, _constraint_overrides, separation_constraints
from .presym import presymmetrize

logger = get_logger("legalize.ilp")

#: default placement grid pitch in µm (matches the testcase generators)
DEFAULT_GRID = 0.1


class DetailedPlacementError(RuntimeError):
    """Raised when the detailed-placement (M)ILP cannot be solved."""


@dataclass
class DetailedParams:
    """Knobs for the ILP detailed placer.

    ``mu`` is the HPWL-area weighting of objective (4a); ``zeta`` the
    chip-area utilisation factor defining the constant pseudo-extents
    :math:`\\tilde W = \\tilde H = \\sqrt{\\sum_i s_i / \\zeta}`.

    ``displacement_weight`` > 0 adds an L1 anchor to the incoming
    global placement (per-axis displacement variables in the
    objective).  Performance-driven flows use it so legalization
    preserves the geometry the performance gradient produced instead of
    re-optimising it away; conventional flows leave it at 0.

    The refinement knobs control :func:`detailed_place`:
    ``iterate_rounds`` fixpoint re-solves, then ``refine_rounds`` LNS
    rounds each freeing ``free_pairs`` of the ``candidate_pool`` nearest
    unconstrained pairs.
    """

    mu: float = 0.3
    zeta: float = 0.6
    grid: float = DEFAULT_GRID
    allow_flipping: bool = True
    time_limit_s: float = 60.0
    region_slack: float = 3.0  # upper coordinate bound as multiple of W~
    iterate_rounds: int = 3
    refine_rounds: int = 6
    free_pairs: int = 10
    candidate_pool: int = 25
    refine_time_limit_s: float = 5.0
    seed: int = 7
    displacement_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError("mu must be non-negative")
        if not 0 < self.zeta <= 1:
            raise ValueError("zeta must be in (0, 1]")
        if self.grid <= 0:
            raise ValueError("grid must be positive")


class _Rows:
    """Sparse constraint-row accumulator for scipy's LinearConstraint."""

    def __init__(self) -> None:
        self.data: list[float] = []
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.lb: list[float] = []
        self.ub: list[float] = []
        self.count = 0

    def add(self, entries: list[tuple[int, float]],
            lb: float, ub: float) -> None:
        for col, val in entries:
            self.rows.append(self.count)
            self.cols.append(col)
            self.data.append(val)
        self.lb.append(lb)
        self.ub.append(ub)
        self.count += 1

    def build(self, num_vars: int) -> LinearConstraint:
        matrix = sparse.coo_matrix(
            (self.data, (self.rows, self.cols)),
            shape=(self.count, num_vars),
        ).tocsr()
        return LinearConstraint(matrix, self.lb, self.ub)


def _steps(value: float, grid: float) -> int:
    """Convert a µm quantity to integer grid steps (must be integral)."""
    steps = value / grid
    rounded = round(steps)
    if abs(steps - rounded) > 1e-6:
        raise DetailedPlacementError(
            f"dimension {value} µm is not a multiple of the {grid} µm grid"
        )
    return int(rounded)


class _Model:
    """Assembled (M)ILP instance: objective, rows, bounds, var layout."""

    __slots__ = ("c", "rows", "lower", "upper", "integrality",
                 "num_vars", "vx", "vy", "vfx", "vfy", "flips",
                 "v_width", "v_height", "free_list")


def _solve_model(
    placement: Placement,
    params: DetailedParams,
    free_keys: frozenset[tuple[int, int]] = frozenset(),
    time_limit: float | None = None,
) -> tuple[Placement, dict]:
    """Build and solve one (M)ILP instance; returns placement + stats.

    ``free_keys`` are device-index pairs whose separation direction and
    order become MILP decisions (four big-M rows over two binaries);
    every other pair keeps the direction derived from ``placement``.
    """
    circuit = placement.circuit
    n = circuit.num_devices
    grid = params.grid
    with trace.span("legalize.ilp.model", circuit=circuit.name):
        m = _build_model(placement, params, free_keys)
    with trace.span("legalize.ilp.solve", num_vars=m.num_vars,
                    num_rows=m.rows.count):
        result = milp(
            m.c,
            constraints=m.rows.build(m.num_vars),
            bounds=Bounds(m.lower, m.upper),
            integrality=m.integrality,
            options={"time_limit": time_limit or params.time_limit_s,
                     "mip_rel_gap": 1e-4},
        )
    metrics.counter("repro.milp_solves").inc()
    if result.x is None:
        logger.info(
            "ILP detailed placement infeasible/unsolved for %s: %s",
            circuit.name, result.message,
        )
        raise DetailedPlacementError(
            f"ILP detailed placement failed for {circuit.name!r}: "
            f"{result.message}"
        )
    logger.debug(
        "ILP %s: status %d, %d vars, %d rows, objective %.4g",
        circuit.name, int(result.status), m.num_vars, m.rows.count,
        float(result.fun),
    )

    x = np.round(result.x[m.vx]) * grid
    y = np.round(result.x[m.vy]) * grid
    if m.flips:
        flip_x = np.round(result.x[m.vfx]).astype(bool)
        flip_y = np.round(result.x[m.vfy]).astype(bool)
    else:
        flip_x = np.zeros(n, dtype=bool)
        flip_y = np.zeros(n, dtype=bool)
    placed = Placement(circuit, x, y, flip_x, flip_y).normalized()
    stats = {
        "objective": float(result.fun),
        "mip_status": int(result.status),
        "num_vars": m.num_vars,
        "num_rows": m.rows.count,
        "freed_pairs": len(m.free_list),
        "outline_w": float(result.x[m.v_width]) * grid,
        "outline_h": float(result.x[m.v_height]) * grid,
    }
    return placed, stats


def _build_model(
    placement: Placement,
    params: DetailedParams,
    free_keys: frozenset[tuple[int, int]],
) -> _Model:
    """Assemble formulation (4a)-(4j) for one placement snapshot."""
    circuit = placement.circuit
    n = circuit.num_devices
    grid = params.grid
    widths_um, heights_um = circuit.sizes()

    snapped = presymmetrize(placement)
    separations = separation_constraints(snapped)

    half_w = np.array([_steps(w, grid) for w in widths_um])
    half_h = np.array([_steps(h, grid) for h in heights_um])
    if np.any(half_w % 2) or np.any(half_h % 2):
        odd = [circuit.device_names[i] for i in
               np.nonzero((half_w % 2) | (half_h % 2))[0]]
        raise DetailedPlacementError(
            f"devices {odd} have odd grid dimensions; centre "
            "coordinates would be half-integral"
        )
    half_w //= 2
    half_h //= 2

    pseudo = float(np.sqrt(circuit.total_device_area() / params.zeta))
    pseudo_steps = pseudo / grid
    ub_coord = int(np.ceil(params.region_slack * pseudo_steps)) + 1

    # pre-solve consistency certificate: the rows are axis-decoupled,
    # so a per-axis LP decides feasibility exactly and yields the
    # minimal outline extent the derived constraints require.  An
    # inconsistent system fails here with the conflicting rows named;
    # a consistent one widens ub_coord when separation chains (coupled
    # through symmetry axes) need more room than the slack default.
    report_x, report_y = check_consistency(
        circuit, separations, half_w, half_h
    )
    bad = [r for r in (report_x, report_y) if not r.feasible]
    if bad:
        detail = "; ".join(
            f"{r.axis}-axis conflict: " + ", ".join(r.conflict)
            for r in bad
        )
        raise DetailedPlacementError(
            f"inconsistent detailed-placement constraints for "
            f"{circuit.name!r}: {detail}"
        )
    needed = max(report_x.min_extent, report_y.min_extent)
    if np.isfinite(needed):
        widened = int(np.ceil(needed)) + 4
        if widened > ub_coord:
            logger.debug(
                "ILP %s: widening coordinate bound %d -> %d steps to "
                "fit minimal extents (x %.1f, y %.1f)",
                circuit.name, ub_coord, widened,
                report_x.min_extent, report_y.min_extent,
            )
            ub_coord = widened

    # ------------------------------------------------------------------
    # variable layout
    # ------------------------------------------------------------------
    num_vars = 0

    def var_block(count: int) -> slice:
        nonlocal num_vars
        block = slice(num_vars, num_vars + count)
        num_vars += count
        return block

    vx = var_block(n)
    vy = var_block(n)
    flips = params.allow_flipping
    vfx = var_block(n) if flips else None
    vfy = var_block(n) if flips else None
    wire_nets = [net for net in circuit.nets if net.degree >= 2]
    nets_lo_x = var_block(len(wire_nets))
    nets_hi_x = var_block(len(wire_nets))
    nets_lo_y = var_block(len(wire_nets))
    nets_hi_y = var_block(len(wire_nets))
    v_width = var_block(1).start
    v_height = var_block(1).start
    groups = circuit.constraints.symmetry_groups
    v_axis = var_block(len(groups))  # 2x axis position per group
    free_list = sorted(free_keys)
    free_index = {key: t for t, key in enumerate(free_list)}
    v_p = var_block(len(free_list))  # direction bit per freed pair
    v_q = var_block(len(free_list))  # order bit per freed pair
    anchored = params.displacement_weight > 0.0
    v_dx = var_block(n) if anchored else None  # |X - X_anchor| slack
    v_dy = var_block(n) if anchored else None

    lower = np.zeros(num_vars)
    upper = np.full(num_vars, float(ub_coord))
    integrality = np.zeros(num_vars)

    lower[vx] = half_w
    lower[vy] = half_h
    upper[vx] = ub_coord - half_w
    upper[vy] = ub_coord - half_h
    integrality[vx] = 1
    integrality[vy] = 1
    if flips:
        upper[vfx] = 1.0
        upper[vfy] = 1.0
        integrality[vfx] = 1
        integrality[vfy] = 1
    lower[v_width] = float(2 * half_w.max())
    lower[v_height] = float(2 * half_h.max())
    integrality[v_width] = 1
    integrality[v_height] = 1
    upper[v_axis] = 2.0 * ub_coord
    integrality[v_axis] = 1
    upper[v_p] = 1.0
    upper[v_q] = 1.0
    integrality[v_p] = 1
    integrality[v_q] = 1

    # ------------------------------------------------------------------
    # objective (4a)
    # ------------------------------------------------------------------
    c = np.zeros(num_vars)
    for k, net in enumerate(wire_nets):
        c[nets_hi_x.start + k] += net.weight
        c[nets_lo_x.start + k] -= net.weight
        c[nets_hi_y.start + k] += net.weight
        c[nets_lo_y.start + k] -= net.weight
    c[v_width] += params.mu * pseudo_steps / 2.0
    c[v_height] += params.mu * pseudo_steps / 2.0
    if anchored:
        c[v_dx] = params.displacement_weight
        c[v_dy] = params.displacement_weight

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    rows = _Rows()
    index = circuit.device_index()
    big = np.inf

    # (4b) + (4d): net bounds over (possibly flipped) pin coordinates
    for k, net in enumerate(wire_nets):
        for term in net.terminals:
            i = index[term.device]
            device = circuit.devices[term.device]
            pin = device.pin(term.pin)
            ox = pin.offset_x / grid
            oy = pin.offset_y / grid
            # pin_x = X_i - hw_i + ox + FX_i * (W_i - 2 ox)
            const_x = -half_w[i] + ox
            coeff_fx = (2 * half_w[i]) - 2 * ox
            const_y = -half_h[i] + oy
            coeff_fy = (2 * half_h[i]) - 2 * oy

            lo_x = [(nets_lo_x.start + k, 1.0), (vx.start + i, -1.0)]
            hi_x = [(vx.start + i, 1.0), (nets_hi_x.start + k, -1.0)]
            lo_y = [(nets_lo_y.start + k, 1.0), (vy.start + i, -1.0)]
            hi_y = [(vy.start + i, 1.0), (nets_hi_y.start + k, -1.0)]
            if flips:
                lo_x.append((vfx.start + i, -coeff_fx))
                hi_x.append((vfx.start + i, coeff_fx))
                lo_y.append((vfy.start + i, -coeff_fy))
                hi_y.append((vfy.start + i, coeff_fy))
            rows.add(lo_x, -big, const_x)   # lo - pin <= 0
            rows.add(hi_x, -big, -const_x)  # pin - hi <= 0
            rows.add(lo_y, -big, const_y)
            rows.add(hi_y, -big, -const_y)

    # (4c): outline bounds X_i + hw_i <= W, Y_i + hh_i <= H
    for i in range(n):
        rows.add([(vx.start + i, 1.0), (v_width, -1.0)],
                 -big, -float(half_w[i]))
        rows.add([(vy.start + i, 1.0), (v_height, -1.0)],
                 -big, -float(half_h[i]))

    # (4e) + (4i): pairwise separation; freed pairs get the four-way
    # big-M disjunction over (p, q) = direction, order bits
    big_m = float(2 * ub_coord)
    for sep in separations:
        key = (min(sep.low, sep.high), max(sep.low, sep.high))
        if key in free_index:
            t = free_index[key]
            a, b = key
            gap_x = float(half_w[a] + half_w[b])
            gap_y = float(half_h[a] + half_h[b])
            p = v_p.start + t
            q = v_q.start + t
            # (p,q)=(0,0): a left of b; (0,1): b left of a;
            # (1,0): a below b;        (1,1): b below a
            rows.add([(vx.start + a, 1.0), (vx.start + b, -1.0),
                      (p, -big_m), (q, -big_m)], -big, -gap_x)
            rows.add([(vx.start + b, 1.0), (vx.start + a, -1.0),
                      (p, big_m), (q, -big_m)], -big, -gap_x + big_m)
            rows.add([(vy.start + a, 1.0), (vy.start + b, -1.0),
                      (p, -big_m), (q, big_m)], -big, -gap_y + big_m)
            rows.add([(vy.start + b, 1.0), (vy.start + a, -1.0),
                      (p, big_m), (q, big_m)], -big, -gap_y + 2 * big_m)
            continue
        if sep.direction == HORIZONTAL:
            gap = float(half_w[sep.low] + half_w[sep.high])
            rows.add([(vx.start + sep.low, 1.0),
                      (vx.start + sep.high, -1.0)], -big, -gap)
        else:
            gap = float(half_h[sep.low] + half_h[sep.high])
            rows.add([(vy.start + sep.low, 1.0),
                      (vy.start + sep.high, -1.0)], -big, -gap)

    # (4f): hard symmetry (axis var stores 2x the axis position)
    for g, group in enumerate(groups):
        axis_col = v_axis.start + g
        along, across = (
            (vx, vy) if group.axis is Axis.VERTICAL else (vy, vx)
        )
        for a, b in group.pairs:
            ia, ib = index[a], index[b]
            rows.add([(along.start + ia, 1.0), (along.start + ib, 1.0),
                      (axis_col, -1.0)], 0.0, 0.0)
            rows.add([(across.start + ia, 1.0),
                      (across.start + ib, -1.0)], 0.0, 0.0)
        for s in group.self_symmetric:
            rows.add([(along.start + index[s], 2.0), (axis_col, -1.0)],
                     0.0, 0.0)

    # optional displacement anchor: dx_i >= |X_i - X_anchor,i|
    if anchored:
        ax_steps = snapped.x / grid
        ay_steps = snapped.y / grid
        for i in range(n):
            rows.add([(vx.start + i, 1.0), (v_dx.start + i, -1.0)],
                     -big, float(ax_steps[i]))
            rows.add([(vx.start + i, -1.0), (v_dx.start + i, -1.0)],
                     -big, -float(ax_steps[i]))
            rows.add([(vy.start + i, 1.0), (v_dy.start + i, -1.0)],
                     -big, float(ay_steps[i]))
            rows.add([(vy.start + i, -1.0), (v_dy.start + i, -1.0)],
                     -big, -float(ay_steps[i]))

    # (4g)/(4h): alignment equalities
    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "bottom":
            delta = float(half_h[ia] - half_h[ib])
            rows.add([(vy.start + ia, 1.0), (vy.start + ib, -1.0)],
                     delta, delta)
        elif pair.kind == "vcenter":
            rows.add([(vx.start + ia, 1.0), (vx.start + ib, -1.0)],
                     0.0, 0.0)
        else:  # hcenter
            rows.add([(vy.start + ia, 1.0), (vy.start + ib, -1.0)],
                     0.0, 0.0)

    model = _Model()
    model.c = c
    model.rows = rows
    model.lower = lower
    model.upper = upper
    model.integrality = integrality
    model.num_vars = num_vars
    model.vx = vx
    model.vy = vy
    model.vfx = vfx
    model.vfy = vfy
    model.flips = flips
    model.v_width = v_width
    model.v_height = v_height
    model.free_list = free_list
    return model


def _score(placement: Placement, params: DetailedParams) -> float:
    """The (4a) objective evaluated exactly, for accept/reject tests."""
    m = summarize(placement)
    pseudo = float(np.sqrt(
        placement.circuit.total_device_area() / params.zeta
    ))
    xlo, ylo, xhi, yhi = placement.bounding_box()
    return m["hpwl"] + params.mu * pseudo * (
        (xhi - xlo) + (yhi - ylo)
    ) / 2.0


def ilp_detailed_placement(
    placement: Placement,
    params: DetailedParams | None = None,
) -> PlacerResult:
    """One ILP solve with directions fixed from the input placement."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    params = params or DetailedParams()
    with tracer.span("legalize.ilp",
                     circuit=placement.circuit.name):
        placed, stats = _solve_model(placement, params)
    return PlacerResult(
        placement=placed,
        runtime_s=clock.elapsed(),
        method="ilp-dp",
        stats=stats,
        trace=tracer.to_trace(),
    )


def iterate_directions(
    placement: Placement,
    params: DetailedParams,
) -> tuple[Placement, int]:
    """Re-solve with directions re-derived from each legal solution.

    Stops at a fixpoint (no score improvement) or after
    ``params.iterate_rounds`` rounds; returns the best placement seen.
    """
    best = placement
    best_score = np.inf
    rounds = 0
    current = placement
    for rounds in range(1, params.iterate_rounds + 1):
        current, _ = _solve_model(current, params)
        score = _score(current, params)
        if score >= best_score - 1e-9:
            if score < best_score:
                best, best_score = current, score
            break
        best, best_score = current, score
    return best, rounds


def _nearest_free_pairs(
    placement: Placement,
    pool: int,
    count: int,
    rng: np.random.Generator,
) -> frozenset[tuple[int, int]]:
    """Random ``count`` of the ``pool`` nearest unconstrained pairs."""
    circuit = placement.circuit
    overrides = _constraint_overrides(circuit)
    widths, heights = circuit.sizes()
    x, y = placement.x, placement.y
    n = circuit.num_devices
    scored = []
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) in overrides:
                continue
            gap_x = abs(x[i] - x[j]) - (widths[i] + widths[j]) / 2
            gap_y = abs(y[i] - y[j]) - (heights[i] + heights[j]) / 2
            scored.append((max(gap_x, gap_y), (i, j)))
    scored.sort()
    near = [key for _, key in scored[:pool]]
    if not near:
        return frozenset()
    picks = rng.choice(len(near), size=min(count, len(near)),
                       replace=False)
    return frozenset(near[p] for p in picks)


def refine_directions(
    placement: Placement,
    params: DetailedParams,
) -> tuple[Placement, int]:
    """Large-neighbourhood direction refinement.

    Each round frees a random subset of the nearest pairs (big-M
    disjunctions) and keeps the solution when the exact objective
    improves.  Returns the best placement and the number of improving
    rounds.
    """
    rng = np.random.default_rng(params.seed)
    best = placement
    best_score = _score(placement, params)
    improved = 0
    for _ in range(params.refine_rounds):
        freed = _nearest_free_pairs(
            presymmetrize(best), params.candidate_pool,
            params.free_pairs, rng,
        )
        if not freed:
            break
        try:
            candidate, _ = _solve_model(
                best, params, free_keys=freed,
                time_limit=params.refine_time_limit_s,
            )
        except DetailedPlacementError:
            logger.debug(
                "LNS refinement round rejected: freed MILP unsolved "
                "within %.1fs", params.refine_time_limit_s,
            )
            continue
        score = _score(candidate, params)
        if score < best_score - 1e-9:
            best, best_score = candidate, score
            improved += 1
    return best, improved


def detailed_place(
    placement: Placement,
    params: DetailedParams | None = None,
) -> PlacerResult:
    """Full ePlace-A detailed placement: solve, iterate, refine."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    params = params or DetailedParams()
    with tracer.span("legalize.ilp",
                     circuit=placement.circuit.name), \
            memory.phase_peak("legalize.ilp"):
        placed, stats = _solve_model(placement, params)
        if params.iterate_rounds > 1:
            with tracer.span("legalize.ilp.iterate"):
                placed, iterated = iterate_directions(placed, params)
            stats["iterate_rounds"] = iterated
        if params.refine_rounds > 0:
            with tracer.span("legalize.ilp.refine"):
                placed, improved = refine_directions(placed, params)
            stats["refine_improvements"] = improved
        stats["score"] = _score(placed, params)
    logger.info(
        "ILP detailed placement %s: score %.4g, %d vars, %d rows",
        placement.circuit.name, stats["score"], stats["num_vars"],
        stats["num_rows"],
    )
    return PlacerResult(
        placement=placed,
        runtime_s=clock.elapsed(),
        method="ilp-dp",
        stats=stats,
        trace=tracer.to_trace(),
    )
