"""Pre-solve consistency check for the detailed-placement ILP.

The (4a)-(4j) constraint system is *axis-decoupled*: every separation,
symmetry, alignment, and outline row involves only x-variables or only
y-variables.  A per-axis LP over (coordinates, symmetry axes, extent)
therefore gives an exact feasibility certificate and the exact minimal
layout extent implied by the rows — before the branch-and-bound solve
ever runs.  Two uses:

* infeasible systems are caught up front and reported with an
  irreducible infeasible subset (deletion filtering), naming the
  conflicting rows instead of surfacing HiGHS's bare "infeasible"
  status message;
* the minimal extents widen the coordinate upper bound when a derived
  separation chain — coupled through symmetry-axis equalities — needs
  more room than the ``region_slack`` default allows.  This was the
  latent failure on ``random_circuit(1482)``: the horizontal chain
  through both symmetry groups forced a minimal width above the slack
  bound, so the model was infeasible even though the constraints were
  mutually consistent.

Each LP has one variable per device coordinate, one per symmetry-group
axis (storing 2x the axis position, as in the ILP), and one extent
variable that the objective minimises.  With a few dozen devices these
solves are microseconds next to the MILP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np
from scipy.optimize import linprog

from ..netlist import Axis
from .pairs import HORIZONTAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..netlist import Circuit
    from .pairs import SeparationConstraint


@dataclass(frozen=True)
class _Row:
    """One LP row ``lb <= sum(coef * var) <= ub`` with a display label."""

    entries: tuple[tuple[int, float], ...]
    lb: float
    ub: float
    label: str


@dataclass(frozen=True)
class AxisReport:
    """Feasibility verdict for one axis of the constraint system.

    ``min_extent`` is the smallest outline extent (in grid steps) that
    admits a solution; it is only meaningful when ``feasible``.  When
    infeasible, ``conflict`` holds the labels of an irreducible
    infeasible subset of rows.
    """

    axis: str
    feasible: bool
    min_extent: float
    conflict: tuple[str, ...]


def _axis_rows(
    circuit: "Circuit",
    separations: Sequence["SeparationConstraint"],
    half: np.ndarray,
    axis: str,
) -> tuple[list[_Row], int]:
    """Rows + variable count of one axis' subsystem.

    Variable layout: ``n`` device coordinates, then one axis variable
    per symmetry group *on this axis*, then the extent variable last.
    """
    n = circuit.num_devices
    names = circuit.device_names
    index = circuit.device_index()
    groups = [
        g for g in circuit.constraints.symmetry_groups
        if (g.axis is Axis.VERTICAL) == (axis == "x")
    ]
    v_extent = n + len(groups)
    rows: list[_Row] = []

    want_dir = axis == "x"
    arrow = "left-of" if want_dir else "below"
    for sep in separations:
        if (sep.direction == HORIZONTAL) != want_dir:
            continue
        gap = float(half[sep.low] + half[sep.high])
        rows.append(_Row(
            ((sep.low, 1.0), (sep.high, -1.0)), -np.inf, -gap,
            f"separation[{names[sep.low]} {arrow} {names[sep.high]}]",
        ))

    for g, group in enumerate(groups):
        axis_col = n + g
        for a, b in group.pairs:
            rows.append(_Row(
                ((index[a], 1.0), (index[b], 1.0), (axis_col, -1.0)),
                0.0, 0.0, f"symmetry[{a} ~ {b}]",
            ))
        for s in group.self_symmetric:
            rows.append(_Row(
                ((index[s], 2.0), (axis_col, -1.0)),
                0.0, 0.0, f"symmetry[{s} self]",
            ))

    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "vcenter" and axis == "x":
            rows.append(_Row(
                ((ia, 1.0), (ib, -1.0)), 0.0, 0.0,
                f"align-vcenter[{pair.a} = {pair.b}]",
            ))
        elif pair.kind == "hcenter" and axis == "y":
            rows.append(_Row(
                ((ia, 1.0), (ib, -1.0)), 0.0, 0.0,
                f"align-hcenter[{pair.a} = {pair.b}]",
            ))
        elif pair.kind == "bottom" and axis == "y":
            delta = float(half[ia] - half[ib])
            rows.append(_Row(
                ((ia, 1.0), (ib, -1.0)), delta, delta,
                f"align-bottom[{pair.a} = {pair.b}]",
            ))

    for i in range(n):
        rows.append(_Row(
            ((i, 1.0), (v_extent, -1.0)), -np.inf, -float(half[i]),
            f"outline[{names[i]}]",
        ))
    return rows, v_extent + 1


def _solve(
    rows: Sequence[_Row],
    num_vars: int,
    bounds: list[tuple[float, float | None]],
    objective_var: int | None = None,
):
    """Solve min(extent | rows, bounds); feasibility check if no var."""
    c = np.zeros(num_vars)
    if objective_var is not None:
        c[objective_var] = 1.0
    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for row in rows:
        vec = np.zeros(num_vars)
        for col, val in row.entries:
            vec[col] = val
        if row.lb == row.ub:
            a_eq.append(vec)
            b_eq.append(row.lb)
            continue
        if np.isfinite(row.ub):
            a_ub.append(vec)
            b_ub.append(row.ub)
        if np.isfinite(row.lb):
            a_ub.append(-vec)
            b_ub.append(-row.lb)
    return linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )


def _irreducible_conflict(
    rows: list[_Row],
    num_vars: int,
    bounds: list[tuple[float, float | None]],
) -> tuple[str, ...]:
    """Deletion-filter an infeasible row set down to an IIS.

    Drop each row in turn; if the rest stays infeasible the row is
    redundant to the conflict and removed permanently.  What survives
    is irreducible: removing any single member restores feasibility.
    """
    active = list(rows)
    i = 0
    while i < len(active):
        trial = active[:i] + active[i + 1:]
        if _solve(trial, num_vars, bounds).status == 2:
            active = trial
        else:
            i += 1
    return tuple(row.label for row in active)


def check_consistency(
    circuit: "Circuit",
    separations: Sequence["SeparationConstraint"],
    half_w: np.ndarray,
    half_h: np.ndarray,
) -> tuple[AxisReport, AxisReport]:
    """Exact per-axis feasibility + minimal-extent analysis.

    Returns one :class:`AxisReport` per axis.  Extents are in grid
    steps, directly comparable to the ILP's coordinate upper bound.
    """
    reports = []
    for axis, half in (("x", half_w), ("y", half_h)):
        rows, num_vars = _axis_rows(circuit, separations, half, axis)
        bounds: list[tuple[float, float | None]] = [
            (float(half[i]), None) for i in range(circuit.num_devices)
        ]
        bounds += [(0.0, None)] * (num_vars - circuit.num_devices - 1)
        min_extent = float(2 * half.max()) if len(half) else 0.0
        bounds.append((min_extent, None))
        result = _solve(rows, num_vars, bounds,
                        objective_var=num_vars - 1)
        if result.status == 2:
            conflict = _irreducible_conflict(rows, num_vars, bounds)
            reports.append(AxisReport(axis, False, np.inf, conflict))
        else:
            reports.append(AxisReport(
                axis, True, float(result.fun), ()
            ))
    return reports[0], reports[1]
