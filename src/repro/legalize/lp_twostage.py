"""Two-stage LP legalization + detailed placement (previous work [11]).

Xu et al. (ISPD'19) legalise analog global placements with linear
programming in two sequential stages:

1. **area compaction** — minimise the layout outline subject to the
   non-overlap/symmetry/alignment/ordering constraints;
2. **wirelength refinement** — freeze the stage-1 outline and minimise
   total net bounding-box spans inside it.

Contrasts with ePlace-A's detailed placer (paper Sec. IV-B): two
lexicographic stages instead of a single weighted objective, continuous
LP instead of integer programming, and *no device flipping* — Table IV
attributes ePlace-A's detailed-placement wirelength edge mainly to
flipping.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, milp

from ..netlist import Axis
from ..obs import memory, metrics, trace
from ..obs.log import get_logger
from ..placement import Placement, PlacerResult
from .ilp import DetailedParams, DetailedPlacementError, _Rows
from .pairs import HORIZONTAL, separation_constraints
from .presym import presymmetrize

logger = get_logger("legalize.lp2")


class _LPModel:
    """Shared variable layout and constraint rows for both stages."""

    def __init__(self, placement: Placement, params: DetailedParams):
        circuit = placement.circuit
        self.circuit = circuit
        self.params = params
        self.n = circuit.num_devices
        widths, heights = circuit.sizes()
        self.half_w = widths / 2.0
        self.half_h = heights / 2.0
        self.pseudo = float(
            np.sqrt(circuit.total_device_area() / params.zeta)
        )

        snapped = presymmetrize(placement)
        self.separations = separation_constraints(snapped)

        n = self.n
        self.wire_nets = [net for net in circuit.nets if net.degree >= 2]
        e = len(self.wire_nets)
        # variable layout: x, y, net lo/hi per axis, W, H, axes
        self.vx = 0
        self.vy = n
        self.lo_x = 2 * n
        self.hi_x = 2 * n + e
        self.lo_y = 2 * n + 2 * e
        self.hi_y = 2 * n + 3 * e
        self.vw = 2 * n + 4 * e
        self.vh = self.vw + 1
        self.vaxis = self.vh + 1
        groups = circuit.constraints.symmetry_groups
        self.num_vars = self.vaxis + len(groups)

        ub = params.region_slack * self.pseudo
        self.lower = np.zeros(self.num_vars)
        self.upper = np.full(self.num_vars, ub)
        self.lower[self.vx:self.vx + n] = self.half_w
        self.lower[self.vy:self.vy + n] = self.half_h
        self.upper[self.vx:self.vx + n] = ub - self.half_w
        self.upper[self.vy:self.vy + n] = ub - self.half_h
        self.lower[self.vw] = 2 * self.half_w.max()
        self.lower[self.vh] = 2 * self.half_h.max()
        self.upper[self.vaxis:] = 2 * ub

        self.rows = _Rows()
        self._build_rows()

    def _build_rows(self) -> None:
        circuit = self.circuit
        rows = self.rows
        index = circuit.device_index()
        big = np.inf

        # net bounds (no flipping: pins at fixed offsets)
        for k, net in enumerate(self.wire_nets):
            for term in net.terminals:
                i = index[term.device]
                device = circuit.devices[term.device]
                pin = device.pin(term.pin)
                const_x = pin.offset_x - self.half_w[i]
                const_y = pin.offset_y - self.half_h[i]
                rows.add([(self.lo_x + k, 1.0), (self.vx + i, -1.0)],
                         -big, const_x)
                rows.add([(self.vx + i, 1.0), (self.hi_x + k, -1.0)],
                         -big, -const_x)
                rows.add([(self.lo_y + k, 1.0), (self.vy + i, -1.0)],
                         -big, const_y)
                rows.add([(self.vy + i, 1.0), (self.hi_y + k, -1.0)],
                         -big, -const_y)

        # outline
        for i in range(self.n):
            rows.add([(self.vx + i, 1.0), (self.vw, -1.0)],
                     -big, -self.half_w[i])
            rows.add([(self.vy + i, 1.0), (self.vh, -1.0)],
                     -big, -self.half_h[i])

        # separations
        for sep in self.separations:
            if sep.direction == HORIZONTAL:
                gap = self.half_w[sep.low] + self.half_w[sep.high]
                rows.add([(self.vx + sep.low, 1.0),
                          (self.vx + sep.high, -1.0)], -big, -gap)
            else:
                gap = self.half_h[sep.low] + self.half_h[sep.high]
                rows.add([(self.vy + sep.low, 1.0),
                          (self.vy + sep.high, -1.0)], -big, -gap)

        # symmetry
        for g, group in enumerate(circuit.constraints.symmetry_groups):
            axis_col = self.vaxis + g
            along, across = (
                (self.vx, self.vy) if group.axis is Axis.VERTICAL
                else (self.vy, self.vx)
            )
            for a, b in group.pairs:
                ia, ib = index[a], index[b]
                rows.add([(along + ia, 1.0), (along + ib, 1.0),
                          (axis_col, -1.0)], 0.0, 0.0)
                rows.add([(across + ia, 1.0), (across + ib, -1.0)],
                         0.0, 0.0)
            for s in group.self_symmetric:
                rows.add([(along + index[s], 2.0), (axis_col, -1.0)],
                         0.0, 0.0)

        # alignment
        for pair in circuit.constraints.alignments:
            ia, ib = index[pair.a], index[pair.b]
            if pair.kind == "bottom":
                delta = self.half_h[ia] - self.half_h[ib]
                rows.add([(self.vy + ia, 1.0), (self.vy + ib, -1.0)],
                         delta, delta)
            elif pair.kind == "vcenter":
                rows.add([(self.vx + ia, 1.0), (self.vx + ib, -1.0)],
                         0.0, 0.0)
            else:
                rows.add([(self.vy + ia, 1.0), (self.vy + ib, -1.0)],
                         0.0, 0.0)

    # ------------------------------------------------------------------
    def solve(self, c: np.ndarray, extra_rows=()) -> np.ndarray:
        """Solve one LP stage; ``extra_rows`` are (entries, lb, ub)."""
        rows = self.rows
        saved = (list(rows.data), list(rows.rows), list(rows.cols),
                 list(rows.lb), list(rows.ub), rows.count)
        for entries, lb, ub in extra_rows:
            rows.add(entries, lb, ub)
        constraint = rows.build(self.num_vars)
        (rows.data, rows.rows, rows.cols, rows.lb, rows.ub,
         rows.count) = saved
        result = milp(
            c,
            constraints=constraint,
            bounds=Bounds(self.lower, self.upper),
            integrality=np.zeros(self.num_vars),
            options={"time_limit": self.params.time_limit_s},
        )
        metrics.counter("repro.lp_solves").inc()
        if result.x is None:
            logger.info(
                "two-stage LP infeasible/unsolved for %s: %s",
                self.circuit.name, result.message,
            )
            raise DetailedPlacementError(
                f"two-stage LP failed for {self.circuit.name!r}: "
                f"{result.message}"
            )
        return result.x


def lp_two_stage_detailed_placement(
    placement: Placement,
    params: DetailedParams | None = None,
) -> PlacerResult:
    """Run [11]'s area-then-wirelength LP detailed placement."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    params = params or DetailedParams(allow_flipping=False)
    with tracer.span("legalize.lp2",
                     circuit=placement.circuit.name), \
            memory.phase_peak("legalize.lp2"):
        with tracer.span("legalize.lp2.model"):
            model = _LPModel(placement, params)

        # stage 1: area compaction — minimise (H~ W + W~ H)/2
        c1 = np.zeros(model.num_vars)
        c1[model.vw] = model.pseudo / 2.0
        c1[model.vh] = model.pseudo / 2.0
        with tracer.span("legalize.lp2.stage1",
                         num_vars=model.num_vars,
                         num_rows=model.rows.count):
            x1 = model.solve(c1)
        w_star, h_star = x1[model.vw], x1[model.vh]
        logger.debug(
            "two-stage LP %s: stage-1 outline %.2f x %.2f um",
            placement.circuit.name, float(w_star), float(h_star),
        )

        # stage 2: wirelength inside the frozen outline
        c2 = np.zeros(model.num_vars)
        for k, net in enumerate(model.wire_nets):
            c2[model.hi_x + k] += net.weight
            c2[model.lo_x + k] -= net.weight
            c2[model.hi_y + k] += net.weight
            c2[model.lo_y + k] -= net.weight
        freeze = [
            ([(model.vw, 1.0)], 0.0, w_star + 1e-9),
            ([(model.vh, 1.0)], 0.0, h_star + 1e-9),
        ]
        with tracer.span("legalize.lp2.stage2"):
            x2 = model.solve(c2, extra_rows=freeze)

        n = model.n
        placed = Placement(
            placement.circuit, x2[model.vx:model.vx + n],
            x2[model.vy:model.vy + n],
        ).normalized()
    logger.info(
        "two-stage LP %s: outline %.2f x %.2f um, %d vars, %d rows",
        placement.circuit.name, float(w_star), float(h_star),
        model.num_vars, model.rows.count,
    )
    return PlacerResult(
        placement=placed,
        runtime_s=clock.elapsed(),
        method="lp2-dp",
        stats={
            "outline_w": float(w_star),
            "outline_h": float(h_star),
            "num_vars": model.num_vars,
            "num_rows": model.rows.count,
        },
        trace=tracer.to_trace(),
    )
