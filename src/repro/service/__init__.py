"""Placement-as-a-service: an async job API over the repro engines.

A stdlib-only HTTP/JSON service (``repro serve``) that queues
placement requests, executes them in forked worker processes through
:mod:`repro.parallel`, dedupes identical work through a content
fingerprint cache, refuses over-budget jobs at admission, streams each
job's live telemetry as NDJSON, and finalizes every execution into the
persistent run registry so ``repro runs doctor|report|compare`` treat
service output exactly like local ``--save-run`` runs.

Layout:

- :mod:`repro.service.protocol` — request parsing, job states, and
  the sha256 content fingerprint (canonical netlist + constraints +
  engine + resolved params + seed) that keys the dedupe cache;
- :mod:`repro.service.admission` — the cost model and the 429 gate;
- :mod:`repro.service.cache` — the fingerprint-keyed result cache
  (memory + optional on-disk layer);
- :mod:`repro.service.queue` — job records and the bounded FIFO;
- :mod:`repro.service.app` — the service core, worker pool, timeout
  watchdog, and the HTTP shim.

See docs/SERVICE.md for the API reference and the job lifecycle
state machine.
"""

from .admission import (
    ENGINE_COST_WEIGHTS,
    AdmissionDecision,
    AdmissionPolicy,
    estimate_cost,
)
from .app import (
    ROUTES,
    PlacementService,
    ServiceConfig,
    make_server,
    serve,
)
from .cache import ResultCache
from .protocol import (
    CANCELLED,
    DONE,
    EVICTED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRequest,
    ProtocolError,
    build_place_kwargs,
    canonical_circuit,
    engine_params_doc,
    fingerprint_request,
    parse_job_request,
    resolve_circuit,
)
from .queue import Job, JobQueue, QueueFull

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "CANCELLED",
    "DONE",
    "ENGINE_COST_WEIGHTS",
    "EVICTED",
    "FAILED",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "PlacementService",
    "ProtocolError",
    "QUEUED",
    "QueueFull",
    "ROUTES",
    "RUNNING",
    "ResultCache",
    "ServiceConfig",
    "TERMINAL_STATES",
    "build_place_kwargs",
    "canonical_circuit",
    "engine_params_doc",
    "estimate_cost",
    "fingerprint_request",
    "make_server",
    "parse_job_request",
    "resolve_circuit",
    "serve",
]
