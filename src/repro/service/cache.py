"""Result cache keyed by request content fingerprints.

One entry per :func:`repro.service.protocol.fingerprint_request`
value, holding the completed job's result document.  The memory map
answers repeats within a server's lifetime; the optional on-disk
layer (``--cache-dir``) survives restarts.  Disk writes go through a
temp-file rename so a crashed write can never leave a half-parsable
entry, and unreadable entries are treated as misses, never as errors.

Invalidation is by content: the fingerprint covers the canonical
netlist, constraints, engine, resolved params and seed, so any change
to what would be computed produces a *different* key — stale entries
cannot be returned, only orphaned.  Orphans are bounded by ``prune``,
whose victim order follows the cache ``policy``: disk entries are
always dropped oldest-mtime-first, and under the default ``"lru"``
policy every hit refreshes the entry's mtime, so recently *used*
entries survive; under ``"fifo"`` hits leave mtimes alone and victims
are simply the oldest *writes* (the pre-policy behaviour, kept for
workloads where replaying old requests must not pin them forever).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .. import sanitize
from ..obs.log import get_logger

logger = get_logger("service.cache")


#: recognised eviction policies (see module docstring)
CACHE_POLICIES: tuple[str, ...] = ("fifo", "lru")


class ResultCache:
    """Fingerprint-keyed store of completed result documents."""

    def __init__(
        self,
        cache_dir: "str | os.PathLike[str] | None" = None,
        policy: str = "lru",
    ) -> None:
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"cache policy must be one of {CACHE_POLICIES}, "
                f"got {policy!r}"
            )
        self._lock = sanitize.make_lock("service.cache.ResultCache")
        self._memory: "dict[str, dict[str, Any]]" = {}
        self.policy = policy
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _disk_path(self, fingerprint: str) -> "Path | None":
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _touch(self, fingerprint: str) -> None:
        """Refresh the disk entry's mtime so LRU pruning spares it."""
        path = self._disk_path(fingerprint)
        if path is None:
            return
        try:
            os.utime(path)
        except OSError:
            pass  # pruned or never written to disk: nothing to renew

    def get(self, fingerprint: str) -> "dict[str, Any] | None":
        """The cached result document, or ``None`` on a miss."""
        with self._lock:
            hit = self._memory.get(fingerprint)
        if hit is not None:
            if self.policy == "lru":
                self._touch(fingerprint)
            return hit
        path = self._disk_path(fingerprint)
        if path is None or not path.is_file():
            return None
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            logger.warning("dropping unreadable cache entry %s", path)
            return None
        if not isinstance(doc, dict):
            return None
        with self._lock:
            self._memory[fingerprint] = doc
        if self.policy == "lru":
            self._touch(fingerprint)
        return doc

    def put(self, fingerprint: str, doc: "dict[str, Any]") -> None:
        """Store ``doc`` under ``fingerprint`` (memory, then disk)."""
        with self._lock:
            self._memory[fingerprint] = doc
        path = self._disk_path(fingerprint)
        if path is None:
            return
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True,
                      default=float)
            handle.write("\n")
        os.replace(tmp, path)

    def __len__(self) -> int:
        with self._lock:
            entries = set(self._memory)
        if self.cache_dir is not None and self.cache_dir.is_dir():
            entries.update(
                path.stem for path in self.cache_dir.glob("*.json")
            )
        return len(entries)

    def prune(self, keep: int = 256) -> int:
        """Drop oldest disk entries beyond ``keep``; returns removals.

        Memory entries are kept (they are bounded by the job store's
        own retention).  Age is mtime — content keys carry no ordering
        of their own — so under the ``"lru"`` policy (hits refresh
        mtimes) the victims are the least recently *used* entries,
        while under ``"fifo"`` they are the oldest *writes*.
        """
        if self.cache_dir is None:
            return 0
        entries = sorted(
            self.cache_dir.glob("*.json"),
            key=lambda path: (path.stat().st_mtime, path.name),
        )
        victims = entries[: max(0, len(entries) - keep)]
        for path in victims:
            try:
                path.unlink()
            except OSError:
                logger.warning("could not prune cache entry %s", path)
        return len(victims)
