"""Wire protocol for the placement service.

Request parsing, the job lifecycle states, and the content
fingerprint that keys the service's dedupe cache.  Everything here is
pure data plumbing — no sockets, no threads — so the protocol can be
unit-tested without a server.

The fingerprint generalises the
:class:`repro.gnn.batched.FeatureCache` idiom: identity is a sha256
over *content*, never over object identity or request arrival order.
Two submissions whose canonical netlist, constraints, engine, params
and seed all match are by construction the same computation, so the
service answers the second one from the first one's execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

from ..api import METHODS, _reseed_kwargs
from ..circuits import PAPER_TESTCASES, make
from ..netlist import Circuit

#: schema tag stamped on every fingerprinted payload
FINGERPRINT_SCHEMA = "repro.service.fingerprint/1"

#: schema tag for job records returned by the HTTP API
JOB_SCHEMA = "repro.service.job/1"

#: schema tag for cached/returned result documents
RESULT_SCHEMA = "repro.service.result/1"

# -- job lifecycle states --------------------------------------------------
#: waiting in the FIFO queue (admission already passed)
QUEUED = "queued"
#: claimed by a worker; the placement is executing in a forked child
RUNNING = "running"
#: finished successfully; the record carries a result document
DONE = "done"
#: the execution raised (or timed out); the record carries an error
FAILED = "failed"
#: cancelled via ``DELETE /jobs/<id>`` before or during execution
CANCELLED = "cancelled"
#: the terminal record itself was dropped (DELETE on a finished job,
#: or the bounded job store trimming old records); ``GET`` returns 410
EVICTED = "evicted"

#: every state a job record can report
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, EVICTED)

#: states after which a job can never run (again)
TERMINAL_STATES = (DONE, FAILED, CANCELLED, EVICTED)


class ProtocolError(ValueError):
    """A request document is malformed; maps to HTTP 400."""


def _normalize_name(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


#: forgiving circuit lookup, mirroring the CLI ("comp1" == "Comp1")
_CIRCUIT_ALIASES = {
    _normalize_name(name): name for name in PAPER_TESTCASES
}


def resolve_circuit(name: str) -> str:
    """Canonical testcase name for ``name``; raises ProtocolError."""
    canonical = _CIRCUIT_ALIASES.get(_normalize_name(str(name)))
    if canonical is None:
        raise ProtocolError(
            f"unknown circuit {name!r}; choose from "
            f"{', '.join(PAPER_TESTCASES)}"
        )
    return canonical


@dataclass(frozen=True)
class JobRequest:
    """One validated placement request.

    ``params`` holds engine-specific overrides applied on top of the
    same defaults :func:`repro.api.place` uses (``SAParams`` fields
    for annealing, ``EPlaceParams``/``XuParams`` fields for the
    analytical flows).  ``timeout_s`` bounds the execution wall time
    and is deliberately *not* part of the fingerprint: it changes when
    a job is killed, never what it computes.
    """

    circuit: str
    method: str
    seed: int
    params: "dict[str, Any]" = field(default_factory=dict)
    timeout_s: "float | None" = None


def parse_job_request(doc: Any) -> JobRequest:
    """Validate a ``POST /jobs`` JSON body into a :class:`JobRequest`.

    Raises :class:`ProtocolError` with a client-facing message on any
    malformed field; never raises anything else on bad input.
    """
    if not isinstance(doc, Mapping):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(doc) - {
        "circuit", "method", "seed", "params", "timeout_s"
    }
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {sorted(unknown)}"
        )
    if "circuit" not in doc:
        raise ProtocolError("missing required field 'circuit'")
    circuit = resolve_circuit(doc["circuit"])
    method = str(doc.get("method", "eplace-a"))
    if method not in METHODS:
        raise ProtocolError(
            f"unknown method {method!r}; choose one of "
            f"{', '.join(METHODS)}"
        )
    seed_raw = doc.get("seed", 1)
    if isinstance(seed_raw, bool) or not isinstance(seed_raw, int):
        raise ProtocolError(f"seed must be an integer, got {seed_raw!r}")
    params_raw = doc.get("params") or {}
    if not isinstance(params_raw, Mapping):
        raise ProtocolError("params must be a JSON object")
    params: "dict[str, Any]" = {}
    for key, value in params_raw.items():
        if key == "seed":
            raise ProtocolError(
                "set the seed via the top-level 'seed' field, "
                "not params.seed"
            )
        if isinstance(value, bool) or not isinstance(
            value, (int, float, str)
        ):
            raise ProtocolError(
                f"params.{key} must be a number or string, "
                f"got {value!r}"
            )
        params[str(key)] = value
    timeout_raw = doc.get("timeout_s")
    timeout_s: "float | None" = None
    if timeout_raw is not None:
        if isinstance(timeout_raw, bool) or not isinstance(
            timeout_raw, (int, float)
        ):
            raise ProtocolError(
                f"timeout_s must be a number, got {timeout_raw!r}"
            )
        timeout_s = float(timeout_raw)
        if timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive")
    return JobRequest(
        circuit=circuit, method=method, seed=int(seed_raw),
        params=params, timeout_s=timeout_s,
    )


def build_place_kwargs(request: JobRequest) -> "dict[str, Any]":
    """Engine kwargs for :func:`repro.api.place`, seeded and overridden.

    Built through :func:`repro.api._reseed_kwargs` — the exact helper
    the multiseed fan-out uses — so a service execution and a direct
    ``place(circuit, method, **kwargs)`` call with the same request
    are the same computation, bit for bit.  Raises
    :class:`ProtocolError` on unknown param fields or values the
    engine's own validation rejects.
    """
    kwargs = _reseed_kwargs(request.method, {}, request.seed)
    if request.params:
        key = "params" if request.method == "annealing" else "gp_params"
        try:
            kwargs[key] = replace(kwargs[key], **request.params)
        except TypeError as exc:
            raise ProtocolError(
                f"unknown engine param for {request.method}: {exc}"
            ) from None
        except ValueError as exc:
            raise ProtocolError(
                f"invalid engine param value: {exc}"
            ) from None
    return kwargs


def engine_params_doc(request: JobRequest) -> "dict[str, Any]":
    """The fully-resolved engine parameter document for ``request``.

    Defaults are made explicit (a request that spells out a default
    value fingerprints identically to one that omits it) and the seed
    is folded in, so this document *is* the params+seed part of the
    job identity.
    """
    kwargs = build_place_kwargs(request)
    key = "params" if request.method == "annealing" else "gp_params"
    return asdict(kwargs[key])


def canonical_circuit(circuit: Circuit) -> "dict[str, Any]":
    """Content-complete, order-canonical netlist document.

    Devices keep index order (it fixes the coordinate layout every
    engine uses); pins and electrical parameters are sorted by name so
    construction-order noise never changes the fingerprint.
    Constraints are included in full — two requests differing only in
    a symmetry pair are different placement problems.
    """
    devices = []
    for name in circuit.device_names:
        device = circuit.devices[name]
        devices.append({
            "name": name,
            "dtype": device.dtype.value,
            "width": device.width,
            "height": device.height,
            "pins": [
                {
                    "name": pin.name,
                    "x": pin.offset_x,
                    "y": pin.offset_y,
                }
                for pin in sorted(
                    device.pins.values(), key=lambda p: p.name
                )
            ],
            "electrical": {
                key: device.electrical[key]
                for key in sorted(device.electrical)
            },
        })
    nets = [
        {
            "name": net.name,
            "weight": net.weight,
            "critical": net.critical,
            "terminals": [
                [term.device, term.pin] for term in net.terminals
            ],
        }
        for net in circuit.nets
    ]
    constraints = circuit.constraints
    return {
        "name": circuit.name,
        "devices": devices,
        "nets": nets,
        "constraints": {
            "symmetry_groups": [
                {
                    "name": group.name,
                    "axis": group.axis.value,
                    "pairs": [list(pair) for pair in group.pairs],
                    "self_symmetric": list(group.self_symmetric),
                }
                for group in constraints.symmetry_groups
            ],
            "alignments": [
                {"a": al.a, "b": al.b, "kind": al.kind}
                for al in constraints.alignments
            ],
            "orderings": [
                {
                    "name": chain.name,
                    "axis": chain.axis.value,
                    "devices": list(chain.devices),
                }
                for chain in constraints.orderings
            ],
        },
    }


def fingerprint_request(
    request: JobRequest, circuit: "Circuit | None" = None
) -> str:
    """sha256 hex fingerprint of a request's *computation* identity.

    Digests the canonical netlist + constraints (not just the circuit
    name), the engine, and the fully-resolved engine params including
    the seed.  ``timeout_s`` is excluded — see :class:`JobRequest`.
    """
    if circuit is None:
        circuit = make(request.circuit)
    payload = {
        "schema": FINGERPRINT_SCHEMA,
        "circuit": canonical_circuit(circuit),
        "engine": request.method,
        "seed": request.seed,
        "params": engine_params_doc(request),
    }
    blob = json.dumps(payload, sort_keys=True, default=float)
    return hashlib.sha256(blob.encode()).hexdigest()
