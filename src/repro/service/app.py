"""Placement-as-a-service: the HTTP application and worker pool.

Stdlib only: :class:`http.server.ThreadingHTTPServer` accepts
connections on daemon threads, a fixed pool of daemon worker threads
drains the bounded FIFO queue, and each job executes in a *forked
child process* through :func:`repro.parallel.parallel_map_live` with
``always_fork=True`` — CPU-bound engine code never runs on a server
thread, the fork happens under the sanctioned
``live.suspend_samplers()`` discipline inside ``repro.parallel``, and
the child's live events stream back over the bridge into the job's
buffer (served as NDJSON) and the run registry.

Request flow (see docs/SERVICE.md for the full state machine)::

    POST /jobs
      -> dedupe: same fingerprint already queued/running?  coalesce.
      -> cache:  fingerprint completed before?  answer from cache.
      -> admission: estimated cost over budget?  429 + Retry-After.
      -> queue:  full?  503 + Retry-After.  else enqueue (202).

Every *executed* job is finalized into the persistent run registry
(:mod:`repro.obs.registry`), so ``repro runs doctor|report|compare``
work identically on service output and local ``--save-run`` runs.
Coalesced and cache-hit submissions create **no** new registry run —
one execution, one run directory.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..api import place
from ..circuits import make
from ..obs import tracing
from ..obs.live import EventBus
from ..obs.log import get_logger
from ..obs.registry import RunRegistry
from ..obs.trace import Stopwatch
from ..parallel import CancelledTask, parallel_map_live
from ..placement import PlacerResult
from ..placement.io import placement_to_dict
from .admission import AdmissionPolicy
from .cache import CACHE_POLICIES, ResultCache
from .protocol import (
    CANCELLED,
    DONE,
    EVICTED,
    FAILED,
    RESULT_SCHEMA,
    RUNNING,
    JobRequest,
    ProtocolError,
    build_place_kwargs,
    fingerprint_request,
    parse_job_request,
)
from .queue import Job, JobQueue, QueueFull

logger = get_logger("service.app")

#: every route the server registers: (HTTP method, path template,
#: one-line description).  docs/SERVICE.md must document each entry —
#: a test enumerates this table against the doc.
ROUTES: "tuple[tuple[str, str, str], ...]" = (
    ("POST", "/jobs",
     "submit a placement job (dedupe/cache/admission, then queue)"),
    ("GET", "/jobs/<id>",
     "fetch one job's full record (state, result, run_id)"),
    ("GET", "/jobs/<id>/events",
     "stream the job's live telemetry as NDJSON until it finishes"),
    ("DELETE", "/jobs/<id>",
     "cancel a queued/running job, or evict a finished record"),
    ("GET", "/healthz", "liveness probe with queue/worker gauges"),
    ("GET", "/stats", "service counters and configuration"),
)

#: schema tag on /stats documents
STATS_SCHEMA = "repro.service.stats/1"

#: schema tag on /healthz documents
HEALTH_SCHEMA = "repro.service.health/1"

#: schema tag on error response bodies
ERROR_SCHEMA = "repro.service.error/1"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`PlacementService` instance."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_depth: int = 16
    max_cost: "float | None" = None
    cache_dir: "str | None" = None
    #: result-cache eviction policy: "lru" (hits renew entries) or
    #: "fifo" (oldest writes evicted first); see repro.service.cache
    cache_policy: str = "lru"
    runs_root: "str | None" = None
    #: default per-job wall-time budget (requests may set their own)
    timeout_s: "float | None" = None
    #: terminal job records kept before eviction
    retain_jobs: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.retain_jobs < 1:
            raise ValueError(
                f"retain_jobs must be >= 1, got {self.retain_jobs}"
            )
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be one of {CACHE_POLICIES}, "
                f"got {self.cache_policy!r}"
            )


def _job_worker(
    payload: "tuple[str, str, int, dict[str, Any]]",
) -> PlacerResult:
    """Forked-child body: one traced placement run.

    Module-level so the fork bridge can reference it; runs under its
    own tracer so the parent can persist the trace into the registry.
    Building the kwargs through the same protocol helper the
    fingerprint uses guarantees a service execution is bit-identical
    to a direct :func:`repro.api.place` call with the same request.
    """
    circuit_name, method, seed, params = payload
    request = JobRequest(
        circuit=circuit_name, method=method, seed=seed, params=params
    )
    kwargs = build_place_kwargs(request)
    circuit = make(circuit_name)
    with tracing():
        return place(circuit, method, **kwargs)


class PlacementService:
    """The service core: queue, worker pool, cache, admission, registry.

    HTTP-free by design — every endpoint maps to one method returning
    ``(status_code, document, extra_headers)``, so the whole protocol
    surface is unit-testable without a socket and the handler class
    below stays a thin shim.
    """

    #: watchdog poll interval for per-job timeouts
    WATCHDOG_INTERVAL_S = 0.1

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config or ServiceConfig()
        self.queue = JobQueue(self.config.queue_depth)
        self.cache = ResultCache(self.config.cache_dir,
                                 policy=self.config.cache_policy)
        self.admission = AdmissionPolicy(self.config.max_cost)
        self.registry = RunRegistry(self.config.runs_root)
        self._lock = threading.Lock()
        self._jobs: "dict[str, Job]" = {}
        #: fingerprint -> live (queued/running) job, for coalescing
        self._active: "dict[str, Job]" = {}
        #: jobs currently executing, for the timeout watchdog
        self._running: "set[Job]" = set()
        #: terminal job ids in completion order, for eviction
        self._finished: "deque[str]" = deque()
        #: evicted ids still answering GET with 410
        self._tombstones: "deque[str]" = deque(maxlen=4096)
        self._next_id = 0
        self._uptime = Stopwatch()
        self._shutdown = threading.Event()
        self._threads: "list[threading.Thread]" = []
        self.stats: "dict[str, int]" = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timeouts": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "rejected_cost": 0,
            "rejected_queue_full": 0,
            "evicted": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and the timeout watchdog (daemons)."""
        if self._threads:
            return
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        watchdog = threading.Thread(
            target=self._watchdog_loop,
            name="repro-service-watchdog",
            daemon=True,
        )
        watchdog.start()
        self._threads.append(watchdog)
        logger.info(
            "service started: %d workers, queue depth %d",
            self.config.workers, self.config.queue_depth,
        )

    def stop(self) -> None:
        """Stop accepting queue pops and join the pool."""
        self._shutdown.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []

    # -- endpoint: POST /jobs ------------------------------------------
    def submit(
        self, doc: Any
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Handle one submission; returns (status, body, headers)."""
        try:
            request = parse_job_request(doc)
            circuit = make(request.circuit)
            fingerprint = fingerprint_request(request, circuit)
        except ProtocolError as exc:
            return 400, _error_doc(str(exc)), {}
        with self._lock:
            existing = self._active.get(fingerprint)
            if existing is not None:
                return self._coalesce(existing)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            return self._answer_from_cache(
                request, fingerprint, cached
            )
        backlog = len(self.queue) + self._running_count()
        decision = self.admission.check(
            circuit.num_devices, request, backlog
        )
        if not decision.admitted:
            with self._lock:
                self.stats["rejected_cost"] += 1
            return 429, _error_doc(
                decision.reason, cost=decision.cost
            ), {"Retry-After": str(decision.retry_after_s)}
        with self._lock:
            existing = self._active.get(fingerprint)
            if existing is not None:
                return self._coalesce(existing)
            job = Job(
                self._make_id(fingerprint), request, fingerprint,
                decision.cost,
            )
            try:
                self.queue.put(job)
            except QueueFull as exc:
                self.stats["rejected_queue_full"] += 1
                retry = self.admission.retry_after_s(
                    self.queue.depth + len(self._running)
                )
                return 503, _error_doc(str(exc)), {
                    "Retry-After": str(retry)
                }
            self._jobs[job.job_id] = job
            self._active[fingerprint] = job
            self.stats["submitted"] += 1
        logger.info(
            "job %s queued: %s/%s seed=%d cost=%.1f",
            job.job_id, request.circuit, request.method,
            request.seed, decision.cost,
        )
        return 202, job.to_doc(), {
            "Location": f"/jobs/{job.job_id}"
        }

    def _coalesce(
        self, job: Job
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Answer a duplicate submission with the in-flight job."""
        with job.cond:
            job.coalesced += 1
        self.stats["coalesced"] += 1
        doc = job.to_doc()
        doc["deduped"] = True
        return 200, doc, {"Location": f"/jobs/{job.job_id}"}

    def _answer_from_cache(
        self,
        request: JobRequest,
        fingerprint: str,
        cached: "dict[str, Any]",
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Materialise a done job record around a cached result."""
        with self._lock:
            job = Job(
                self._make_id(fingerprint), request, fingerprint,
                cost=0.0, state=DONE,
            )
            job.cache_hit = True
            job.result = cached
            job.run_id = cached.get("run_id")
            self._jobs[job.job_id] = job
            self._finished.append(job.job_id)
            self.stats["cache_hits"] += 1
            self._evict_locked()
        logger.info("job %s answered from cache", job.job_id)
        return 200, job.to_doc(), {
            "Location": f"/jobs/{job.job_id}"
        }

    # -- endpoint: GET /jobs/<id> --------------------------------------
    def job_doc(
        self, job_id: str
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """The job record, a 410 tombstone, or a 404."""
        with self._lock:
            job = self._jobs.get(job_id)
            evicted = job is None and job_id in self._tombstones
        if job is not None:
            return 200, job.to_doc(), {}
        if evicted:
            return 410, {
                "schema": ERROR_SCHEMA,
                "id": job_id,
                "state": EVICTED,
                "error": "job record was evicted",
            }, {}
        return 404, _error_doc(f"unknown job {job_id!r}"), {}

    def get_job(self, job_id: str) -> "Job | None":
        """The live job object (for event streaming), or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    # -- endpoint: DELETE /jobs/<id> -----------------------------------
    def cancel(
        self, job_id: str
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Cancel a live job; evict a terminal record."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            with self._lock:
                if job_id in self._tombstones:
                    return 410, {
                        "schema": ERROR_SCHEMA,
                        "id": job_id,
                        "state": EVICTED,
                        "error": "job record was evicted",
                    }, {}
            return 404, _error_doc(f"unknown job {job_id!r}"), {}
        if job.request_cancel():
            # a still-queued job never reaches a worker: release its
            # queue slot and close out its registry bookkeeping here
            if self.queue.remove(job):
                self._finalize_bookkeeping(job)
                with self._lock:
                    self.stats["cancelled"] += 1
            logger.info("job %s cancellation requested", job.job_id)
            return 200, job.to_doc(), {}
        # terminal record: DELETE evicts it
        with self._lock:
            self._jobs.pop(job_id, None)
            if job_id in self._finished:
                self._finished.remove(job_id)
            self._tombstones.append(job_id)
            self.stats["evicted"] += 1
        return 200, {
            "schema": ERROR_SCHEMA,
            "id": job_id,
            "state": EVICTED,
        }, {}

    # -- endpoints: GET /healthz, GET /stats ---------------------------
    def health_doc(
        self,
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Liveness probe body."""
        return 200, {
            "schema": HEALTH_SCHEMA,
            "status": "ok",
            "workers": self.config.workers,
            "queued": len(self.queue),
            "running": self._running_count(),
            "queue_depth": self.config.queue_depth,
        }, {}

    def stats_doc(
        self,
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Counters + configuration snapshot."""
        with self._lock:
            counters = dict(self.stats)
            retained = len(self._jobs)
        doc: "dict[str, Any]" = {
            "schema": STATS_SCHEMA,
            "uptime_s": self._uptime.elapsed(),
            "queued": len(self.queue),
            "running": self._running_count(),
            "jobs_retained": retained,
            "cache_entries": len(self.cache),
            "config": {
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "max_cost": self.config.max_cost,
                "timeout_s": self.config.timeout_s,
                "cache_dir": self.config.cache_dir,
                "cache_policy": self.config.cache_policy,
            },
        }
        doc.update(counters)
        return 200, doc, {}

    # -- worker pool ---------------------------------------------------
    def _worker_loop(self) -> None:
        """Daemon worker body: drain the queue until shutdown."""
        while not self._shutdown.is_set():
            job = self.queue.get(timeout=0.5)
            if job is None:
                continue
            if not job.mark_running():
                # cancelled while queued; bookkeeping already done
                continue
            with self._lock:
                self._running.add(job)
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running.discard(job)
                self._finalize_bookkeeping(job)

    def _execute(self, job: Job) -> None:
        """Run one job in a forked child and finalize its registry run."""
        request = job.request
        bus = EventBus()
        bus.subscribe(job.publish)
        writer = self.registry.create(
            "service",
            f"{request.circuit}:{request.method}",
            config={
                "circuit": request.circuit,
                "method": request.method,
                "seed": request.seed,
                "params": dict(request.params),
                "fingerprint": job.fingerprint,
                "job_id": job.job_id,
            },
        )
        bus.subscribe(writer.event_subscriber())
        payload = (
            request.circuit, request.method, request.seed,
            dict(request.params),
        )
        try:
            raw = parallel_map_live(
                _job_worker, [payload], jobs=1, bus=bus,
                handle_ready=job.bind_handle, always_fork=True,
            )
        except RuntimeError as exc:
            writer.finalize(status="failed")
            job.finish(FAILED, error=str(exc), run_id=writer.run_id)
            with self._lock:
                self.stats["failed"] += 1
            logger.warning("job %s failed: %s", job.job_id, exc)
            return
        item = raw[0]
        if isinstance(item, CancelledTask):
            if job.timed_out:
                writer.finalize(status="failed")
                job.finish(
                    FAILED,
                    error=(
                        f"timed out after {job.effective_timeout_s(self.config.timeout_s)}s "
                        f"at {item.phase}[{item.iteration}]"
                    ),
                    run_id=writer.run_id,
                )
                with self._lock:
                    self.stats["failed"] += 1
                    self.stats["timeouts"] += 1
                logger.warning("job %s timed out", job.job_id)
            else:
                writer.finalize(status="cancelled")
                job.finish(CANCELLED, run_id=writer.run_id)
                with self._lock:
                    self.stats["cancelled"] += 1
                logger.info("job %s cancelled mid-run", job.job_id)
            return
        result: PlacerResult = item
        metrics = result.metrics()
        writer.write_trace(
            result.trace,
            method=result.method,
            circuit=request.circuit,
            runtime_s=result.runtime_s,
        )
        writer.finalize(metrics=dict(metrics))
        doc: "dict[str, Any]" = {
            "schema": RESULT_SCHEMA,
            "circuit": request.circuit,
            "method": request.method,
            "seed": request.seed,
            "fingerprint": job.fingerprint,
            "placement": placement_to_dict(result.placement),
            "metrics": {
                key: float(value) for key, value in metrics.items()
            },
            "run_id": writer.run_id,
        }
        self.cache.put(job.fingerprint, doc)
        job.finish(DONE, result=doc, run_id=writer.run_id)
        with self._lock:
            self.stats["completed"] += 1
        logger.info(
            "job %s done: hpwl=%.2f run=%s",
            job.job_id, metrics.get("hpwl", float("nan")),
            writer.run_id,
        )

    def _watchdog_loop(self) -> None:
        """Cancel running jobs that exceed their wall-time budget."""
        while not self._shutdown.wait(self.WATCHDOG_INTERVAL_S):
            with self._lock:
                running = list(self._running)
            for job in running:
                timeout = job.effective_timeout_s(
                    self.config.timeout_s
                )
                if timeout is None:
                    continue
                with job.cond:
                    expired = (
                        job.state == RUNNING
                        and job.stopwatch is not None
                        and job.stopwatch.elapsed() > timeout
                        and not job.timed_out
                    )
                    if expired:
                        job.timed_out = True
                        handle = job.handle
                if expired and handle is not None:
                    handle.cancel(0)
                    logger.warning(
                        "job %s exceeded %.1fs; cancelling",
                        job.job_id, timeout,
                    )

    # -- internals -----------------------------------------------------
    def _running_count(self) -> int:
        with self._lock:
            return len(self._running)

    def _make_id(self, fingerprint: str) -> str:
        """Next job id (caller holds the service lock)."""
        self._next_id += 1
        return f"job-{self._next_id:06d}-{fingerprint[:8]}"

    def _finalize_bookkeeping(self, job: Job) -> None:
        """Drop a finished job from the active index; trim old records."""
        with self._lock:
            if self._active.get(job.fingerprint) is job:
                del self._active[job.fingerprint]
            self._finished.append(job.job_id)
            self._evict_locked()

    def _evict_locked(self) -> None:
        """Trim terminal records beyond ``retain_jobs`` (lock held)."""
        while len(self._finished) > self.config.retain_jobs:
            victim = self._finished.popleft()
            if self._jobs.pop(victim, None) is not None:
                self._tombstones.append(victim)
                self.stats["evicted"] += 1


def _error_doc(message: str, **extra: Any) -> "dict[str, Any]":
    doc: "dict[str, Any]" = {
        "schema": ERROR_SCHEMA, "error": message,
    }
    doc.update(extra)
    return doc


# ---------------------------------------------------------------------------
# HTTP shim


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :class:`PlacementService` methods."""

    #: bound by :func:`make_server`
    service: PlacementService
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr by default; route through
    # the repro logging hierarchy instead (RPR202 discipline)
    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("http: " + format, *args)

    def _send_json(
        self,
        status: int,
        doc: "dict[str, Any]",
        headers: "dict[str, str] | None" = None,
    ) -> None:
        body = json.dumps(doc, sort_keys=True, default=float)
        payload = (body + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            return None

    # -- verbs ---------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, _error_doc("unknown endpoint"))
            return
        doc = self._read_body()
        if doc is None:
            self._send_json(
                400, _error_doc("request body must be JSON")
            )
            return
        status, body, headers = self.service.submit(doc)
        self._send_json(status, body, headers)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(*self.service.health_doc())
            return
        if path == "/stats":
            self._send_json(*self.service.stats_doc())
            return
        parts = path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "jobs":
            self._send_json(*self.service.job_doc(parts[1]))
            return
        if (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "events"
        ):
            self._stream_events(parts[1])
            return
        self._send_json(404, _error_doc("unknown endpoint"))

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        parts = self.path.rstrip("/").strip("/").split("/")
        if len(parts) == 2 and parts[0] == "jobs":
            self._send_json(*self.service.cancel(parts[1]))
            return
        self._send_json(404, _error_doc("unknown endpoint"))

    # -- streaming -----------------------------------------------------
    def _stream_events(self, job_id: str) -> None:
        """NDJSON event stream: one live event per line, then EOF.

        Close-delimited (``Connection: close``): the stream ends when
        the job reaches a terminal state and every buffered event has
        been written.  Lines round-trip through
        :func:`repro.obs.live.event_from_record`.
        """
        job = self.service.get_job(job_id)
        if job is None:
            self._send_json(404, _error_doc(f"unknown job {job_id!r}"))
            return
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        start = 0
        try:
            while True:
                events, finished = job.wait_events(start)
                if events:
                    lines = "".join(
                        json.dumps(record, default=float) + "\n"
                        for record in job.event_records(events)
                    )
                    self.wfile.write(lines.encode())
                    self.wfile.flush()
                    start += len(events)
                if finished:
                    return
        except (BrokenPipeError, ConnectionResetError):
            logger.debug(
                "event stream for %s dropped by client", job_id
            )


def make_server(
    config: "ServiceConfig | None" = None,
    service: "PlacementService | None" = None,
) -> "tuple[PlacementService, ThreadingHTTPServer]":
    """Build (but do not start) the service and its HTTP server.

    The caller owns both lifecycles: ``service.start()`` spawns the
    worker pool, ``server.serve_forever()`` accepts requests, and
    :func:`serve` wires the two together for the CLI.
    """
    if service is None:
        service = PlacementService(config)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer(
        (service.config.host, service.config.port), handler
    )
    server.daemon_threads = True
    return service, server


def serve(config: "ServiceConfig | None" = None) -> int:
    """Run the service until interrupted (the ``repro serve`` body)."""
    service, server = make_server(config)
    host, port = server.server_address[:2]
    service.start()
    logger.info("listening on http://%s:%s", host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down")
    finally:
        server.server_close()
        service.stop()
    return 0
