"""Admission control: estimated-cost gating for placement jobs.

The service refuses work it can predict it cannot afford instead of
letting the queue absorb it — the quality-per-CPU-second framing: a
bounded worker pool's throughput is spent where the estimate says it
buys the most, and over-budget requests fail fast with ``429`` so
clients can re-plan (smaller circuit, cheaper engine, fewer
iterations) rather than wait out a doomed queue slot.

The cost model is deliberately coarse: *device count x engine weight
x iteration budget*.  It only has to rank requests consistently with
how the engines actually scale — SA cost grows with the move budget,
the analytical flows with their iteration caps — not predict seconds.
Units are "cost points"; the service's ``--max-cost`` is expressed in
the same points and documented in docs/SERVICE.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..annealing import SAParams
from ..eplace import EPlaceParams
from ..xu_ispd19 import XuParams
from .protocol import JobRequest, build_place_kwargs

#: relative per-device cost of one *default-budget* run, by engine.
#: Calibrated against the smoke-suite runtimes: SA's pure-Python move
#: loop dominates, ePlace-A's Nesterov iterations beat Xu's CG stages.
ENGINE_COST_WEIGHTS: "dict[str, float]" = {
    "annealing": 4.0,
    "eplace-a": 2.0,
    "xu-ispd19": 1.0,
}


def _budget_scale(method: str, params: Any) -> float:
    """Iteration budget relative to the engine's default budget."""
    if method == "annealing":
        default = SAParams()
        return (params.iterations + params.polish_evals) / float(
            default.iterations + default.polish_evals
        )
    if method == "eplace-a":
        return params.max_iters / float(EPlaceParams().max_iters)
    if method == "xu-ispd19":
        default = XuParams()
        return (params.stages * params.cg_iterations) / float(
            default.stages * default.cg_iterations
        )
    raise ValueError(f"unknown method {method!r}")


def estimate_cost(num_devices: int, request: JobRequest) -> float:
    """Estimated cost points for running ``request``.

    ``devices x engine weight x (iteration budget / default budget)``
    — the ranking the admission gate and the ``Retry-After`` hint are
    built on.
    """
    kwargs = build_place_kwargs(request)
    key = "params" if request.method == "annealing" else "gp_params"
    weight = ENGINE_COST_WEIGHTS[request.method]
    scale = _budget_scale(request.method, kwargs[key])
    return float(num_devices) * weight * scale


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    cost: float
    reason: str = ""
    retry_after_s: int = 0


class AdmissionPolicy:
    """Cost gate applied to every submission before it is queued.

    ``max_cost`` caps the estimated cost of a *single* job
    (``None`` disables the gate).  Rejections carry an advisory
    ``Retry-After`` derived from the current backlog — over-budget
    work stays over budget, but the hint tells batch clients how long
    the current congestion is likely to persist.
    """

    #: advisory seconds of Retry-After per queued/running job
    RETRY_AFTER_PER_JOB_S = 2

    def __init__(self, max_cost: "float | None" = None) -> None:
        if max_cost is not None and max_cost <= 0:
            raise ValueError(
                f"max_cost must be positive, got {max_cost}"
            )
        self.max_cost = max_cost

    def retry_after_s(self, backlog: int) -> int:
        """Advisory retry delay for a backlog of that many jobs."""
        return max(1, self.RETRY_AFTER_PER_JOB_S * max(1, backlog))

    def check(
        self, num_devices: int, request: JobRequest, backlog: int = 0
    ) -> AdmissionDecision:
        """Admit or reject ``request`` for a circuit of that size."""
        cost = estimate_cost(num_devices, request)
        if self.max_cost is not None and cost > self.max_cost:
            return AdmissionDecision(
                admitted=False,
                cost=cost,
                reason=(
                    f"estimated cost {cost:.1f} exceeds the "
                    f"admission budget {self.max_cost:.1f}; reduce "
                    "the iteration budget or use a cheaper engine"
                ),
                retry_after_s=self.retry_after_s(backlog),
            )
        return AdmissionDecision(admitted=True, cost=cost)
