"""Job records and the bounded FIFO queue behind the service.

A :class:`Job` is the unit the HTTP layer, the worker pool and the
event streamers all share, so it owns its own condition variable:
state transitions and live-event appends happen under ``job.cond``
and wake every waiter (pollers time out, streamers are notified).
The service-wide structures (job index, fingerprint index, queue)
are guarded separately by the service's lock — the ordering
discipline is *service lock before job condition, never the
reverse*, which keeps the lock graph acyclic (RPR404).

The queue itself is a plain bounded FIFO: admission control decides
*whether* work enters, the queue only decides *when* it runs.  A
full queue refuses immediately (:class:`QueueFull`, HTTP 503) —
backpressure by rejection, mirroring the live bus's shed-don't-block
policy.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any

from ..obs.live import event_to_record
from ..obs.trace import Stopwatch
from .protocol import (
    CANCELLED,
    JOB_SCHEMA,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRequest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import LiveHandle


class QueueFull(RuntimeError):
    """The bounded job queue is at capacity; maps to HTTP 503."""


class Job:
    """One submitted placement job and its full lifecycle record."""

    def __init__(
        self,
        job_id: str,
        request: JobRequest,
        fingerprint: str,
        cost: float,
        state: str = QUEUED,
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.fingerprint = fingerprint
        self.cost = cost
        #: guards every mutable field below; notify_all on any change
        self.cond = threading.Condition()
        self.state = state
        self.events: "list[Any]" = []
        self.result: "dict[str, Any] | None" = None
        self.error: "str | None" = None
        self.run_id: "str | None" = None
        self.cache_hit = False
        #: submissions answered by this job beyond the first
        self.coalesced = 0
        self.cancel_requested = False
        self.timed_out = False
        self.handle: "LiveHandle | None" = None
        #: running-time clock, started by :meth:`mark_running`
        self.stopwatch: "Stopwatch | None" = None

    # -- live-event sink ----------------------------------------------
    def publish(self, event: Any) -> None:
        """Bus subscriber: buffer ``event`` and wake the streamers."""
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    def wait_events(
        self, start: int, timeout: float = 0.25
    ) -> "tuple[list[Any], bool]":
        """Events from index ``start``; blocks briefly when none yet.

        Returns ``(new_events, finished)`` — ``finished`` is true once
        the job is terminal and every buffered event has been handed
        out, i.e. the stream is complete.
        """
        with self.cond:
            if (
                len(self.events) <= start
                and self.state not in TERMINAL_STATES
            ):
                self.cond.wait(timeout)
            new = list(self.events[start:])
            finished = (
                self.state in TERMINAL_STATES
                and start + len(new) >= len(self.events)
            )
            return new, finished

    # -- lifecycle -----------------------------------------------------
    def bind_handle(self, handle: "LiveHandle") -> None:
        """Receive the fan-out cancellation handle (pre-execution)."""
        with self.cond:
            self.handle = handle
            if self.cancel_requested:
                handle.cancel(0)

    def mark_running(self) -> bool:
        """QUEUED -> RUNNING; false when the job was cancelled first."""
        with self.cond:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            self.stopwatch = Stopwatch()
            self.cond.notify_all()
            return True

    def finish(
        self,
        state: str,
        result: "dict[str, Any] | None" = None,
        error: "str | None" = None,
        run_id: "str | None" = None,
    ) -> None:
        """Enter a terminal state and wake every waiter."""
        assert state in TERMINAL_STATES, state
        with self.cond:
            self.state = state
            self.result = result
            self.error = error
            self.run_id = run_id
            self.cond.notify_all()

    def effective_timeout_s(
        self, default: "float | None"
    ) -> "float | None":
        """The wall-time budget in force: per-request, else service-wide."""
        if self.request.timeout_s is not None:
            return self.request.timeout_s
        return default

    def request_cancel(self) -> bool:
        """Ask the job to stop; true when the request was accepted.

        A queued job is cancelled immediately; a running job gets its
        fan-out cancel token set and reaches ``cancelled`` at its next
        progress publication.  Terminal jobs refuse.
        """
        with self.cond:
            if self.state in TERMINAL_STATES:
                return False
            self.cancel_requested = True
            if self.state == QUEUED:
                self.state = CANCELLED
                self.cond.notify_all()
                return True
            if self.handle is not None:
                self.handle.cancel(0)
            return True

    # -- serialisation -------------------------------------------------
    def to_doc(self) -> "dict[str, Any]":
        """The job record returned by ``GET /jobs/<id>``."""
        with self.cond:
            doc: "dict[str, Any]" = {
                "schema": JOB_SCHEMA,
                "id": self.job_id,
                "state": self.state,
                "fingerprint": self.fingerprint,
                "cost": self.cost,
                "cache_hit": self.cache_hit,
                "coalesced": self.coalesced,
                "events": len(self.events),
                "request": {
                    "circuit": self.request.circuit,
                    "method": self.request.method,
                    "seed": self.request.seed,
                    "params": dict(self.request.params),
                    "timeout_s": self.request.timeout_s,
                },
            }
            if self.error is not None:
                doc["error"] = self.error
            if self.run_id is not None:
                doc["run_id"] = self.run_id
            if self.result is not None:
                doc["result"] = self.result
            return doc

    def event_records(self, events: "list[Any]") -> "list[dict[str, Any]]":
        """JSONL-able dicts for ``events`` (the NDJSON line payloads)."""
        return [event_to_record(event) for event in events]


class JobQueue:
    """Bounded FIFO of :class:`Job` with blocking, closable pops."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self._cond = threading.Condition()
        self._items: "deque[Job]" = deque()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def put(self, job: Job) -> None:
        """Append ``job``; raises :class:`QueueFull` at capacity."""
        with self._cond:
            if len(self._items) >= self.depth:
                raise QueueFull(
                    f"job queue is full ({self.depth} deep)"
                )
            self._items.append(job)
            self._cond.notify()

    def get(self, timeout: float = 0.5) -> "Job | None":
        """Pop the oldest job, waiting up to ``timeout`` for one.

        Returns ``None`` on timeout or when the queue has been
        closed — workers treat both as "check for shutdown, retry".
        """
        with self._cond:
            if not self._items and not self._closed:
                self._cond.wait(timeout)
            if self._items:
                return self._items.popleft()
            return None

    def remove(self, job: Job) -> bool:
        """Drop a queued job (freed capacity); false when not queued."""
        with self._cond:
            try:
                self._items.remove(job)
            except ValueError:
                return False
            return True

    def close(self) -> None:
        """Wake every blocked :meth:`get`; subsequent pops drain only."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
