"""Nesterov's accelerated gradient method with Lipschitz step prediction.

ePlace [15] distinguishes itself from earlier analytical placers by
solving the placement NLP with Nesterov's method [24]; the step length
is predicted from a local Lipschitz estimate
:math:`\\hat L = \\lVert \\nabla f(u_k) - \\nabla f(u_{k-1}) \\rVert /
\\lVert u_k - u_{k-1} \\rVert` with backtracking, and the iteration
restarts when the objective rises (adaptive restart, standard for
non-convex placement landscapes).

The optimiser is a *stepper*: callers invoke :meth:`step` once per
placement iteration and may change the objective between steps (ePlace
re-weights its density multiplier every iteration).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

Objective = Callable[[np.ndarray], tuple[float, np.ndarray]]
Projection = Callable[[np.ndarray], np.ndarray]


@dataclass
class StepInfo:
    """Telemetry for one Nesterov step.

    ``step_predicted`` is the inverse-Lipschitz step before the
    backtracking line search touched it and ``backtracks`` counts the
    halvings it took — together they say how often the local curvature
    estimate overshoots (the health channel publishes both).
    """

    iteration: int
    value: float
    grad_norm: float
    step_length: float
    restarted: bool
    step_predicted: float = 0.0
    backtracks: int = 0


class NesterovOptimizer:
    """Accelerated gradient descent over a flat parameter vector.

    Parameters
    ----------
    v0:
        Initial parameter vector (copied).
    objective:
        Callable returning ``(value, gradient)``.
    projection:
        Optional feasible-set projection applied to every major iterate
        (e.g. clamping device centres into the placement region).
    alpha0:
        Initial step length before a Lipschitz estimate exists.
    backtrack:
        Maximum halvings per step when the predicted step overshoots.
    """

    def __init__(
        self,
        v0: np.ndarray,
        objective: Objective,
        projection: Projection | None = None,
        alpha0: float = 1e-2,
        backtrack: int = 12,
    ) -> None:
        self.objective = objective
        self.projection = projection if projection is not None else lambda v: v
        self.v = self.projection(np.asarray(v0, dtype=float).copy())
        self.u = self.v.copy()  # reference (look-ahead) solution
        self.a = 1.0  # Nesterov momentum coefficient
        self.alpha = float(alpha0)
        self.backtrack = int(backtrack)
        self.iteration = 0
        self._prev_u: np.ndarray | None = None
        self._prev_grad_u: np.ndarray | None = None
        self._prev_value = np.inf

    # ------------------------------------------------------------------
    def _lipschitz_alpha(self, grad_u: np.ndarray) -> float:
        """Inverse local Lipschitz constant from consecutive gradients."""
        if self._prev_u is None:
            return self.alpha
        du = self.u - self._prev_u
        dg = grad_u - self._prev_grad_u
        dg_norm = float(np.linalg.norm(dg))
        if dg_norm <= 1e-30:
            return self.alpha * 2.0
        return float(np.linalg.norm(du)) / dg_norm

    def step(self) -> StepInfo:
        """Perform one accelerated step; returns step telemetry."""
        value_u, grad_u = self.objective(self.u)
        grad_norm = float(np.linalg.norm(grad_u))
        alpha = self._lipschitz_alpha(grad_u)
        alpha_predicted = alpha

        # backtracking on the major solution: require simple descent
        # relative to the reference value (Armijo-like with c=0.25)
        v_new = None
        value_new = np.inf
        backtracks = 0
        for attempt in range(self.backtrack + 1):
            candidate = self.projection(self.u - alpha * grad_u)
            value_c, _ = self.objective(candidate)
            if value_c <= value_u - 0.25 * alpha * grad_norm ** 2 \
                    or grad_norm == 0.0:
                v_new, value_new = candidate, value_c
                backtracks = attempt
                break
            alpha *= 0.5
        if v_new is None:  # objective too rough locally: take tiny step
            v_new = self.projection(self.u - alpha * grad_u)
            value_new, _ = self.objective(v_new)

        restarted = False
        if value_new > self._prev_value:
            # adaptive restart: drop momentum, fall back to plain descent
            self.a = 1.0
            restarted = True

        a_next = (1.0 + np.sqrt(4.0 * self.a * self.a + 1.0)) / 2.0
        momentum = (self.a - 1.0) / a_next
        u_new = self.projection(v_new + momentum * (v_new - self.v))

        self._prev_u = self.u
        self._prev_grad_u = grad_u
        self._prev_value = value_new
        self.v = v_new
        self.u = u_new
        self.a = a_next
        self.alpha = alpha
        self.iteration += 1
        return StepInfo(
            iteration=self.iteration,
            value=value_new,
            grad_norm=grad_norm,
            step_length=alpha,
            restarted=restarted,
            step_predicted=alpha_predicted,
            backtracks=backtracks,
        )

    # ------------------------------------------------------------------
    def run(self, iterations: int, tol: float = 0.0) -> StepInfo:
        """Run up to ``iterations`` steps; stop early below ``tol``."""
        info = None
        for _ in range(iterations):
            info = self.step()
            if tol > 0.0 and info.grad_norm < tol:
                break
        if info is None:
            value, grad = self.objective(self.v)
            info = StepInfo(0, value, float(np.linalg.norm(grad)),
                            self.alpha, False)
        return info
