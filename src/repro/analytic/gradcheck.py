"""Finite-difference gradient verification used by the test suite."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def finite_difference_grad(
    fun: Callable[[np.ndarray], float],
    v: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar function."""
    v = np.asarray(v, dtype=float)
    grad = np.zeros_like(v)
    for i in range(v.size):
        bump = np.zeros_like(v)
        bump[i] = eps
        grad[i] = (fun(v + bump) - fun(v - bump)) / (2.0 * eps)
    return grad


def max_grad_error(
    fun_and_grad: Callable[[np.ndarray], tuple[float, np.ndarray]],
    v: np.ndarray,
    eps: float = 1e-6,
) -> float:
    """Max abs difference between analytic and numerical gradients,
    normalised by the gradient scale (so the tolerance is relative)."""
    _, analytic = fun_and_grad(v)
    numeric = finite_difference_grad(lambda w: fun_and_grad(w)[0], v, eps)
    scale = max(float(np.abs(numeric).max()), 1e-12)
    return float(np.abs(analytic - numeric).max()) / scale
