"""Polak-Ribiere conjugate gradient with Armijo line search.

NTUplace3 [10] — the digital placer underlying the previous analytical
analog work [11] — solves its unconstrained smoothed objective with
conjugate gradient.  We implement PR+ (the Polak-Ribiere variant with
non-negativity reset), a standard robust choice for the non-convex
placement objective.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

Objective = Callable[[np.ndarray], tuple[float, np.ndarray]]


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient run."""

    v: np.ndarray
    value: float
    grad_norm: float
    iterations: int
    converged: bool


def _armijo(
    objective: Objective,
    v: np.ndarray,
    value: float,
    grad: np.ndarray,
    direction: np.ndarray,
    alpha0: float,
    c1: float = 1e-4,
    max_halvings: int = 20,
) -> tuple[np.ndarray, float, float, int]:
    """Backtracking line search.

    Returns ``(v_new, value_new, alpha, halvings)`` where ``halvings``
    counts the backtracking steps the search needed — zero means the
    doubled previous step was immediately acceptable.
    """
    slope = float(np.dot(grad, direction))
    if slope >= 0.0:  # not a descent direction: fall back to steepest
        direction = -grad
        slope = -float(np.dot(grad, grad))
    alpha = alpha0
    for halvings in range(max_halvings):
        candidate = v + alpha * direction
        value_c, _ = objective(candidate)
        if value_c <= value + c1 * alpha * slope:
            return candidate, value_c, alpha, halvings
        alpha *= 0.5
    candidate = v + alpha * direction
    value_c, _ = objective(candidate)
    return candidate, value_c, alpha, max_halvings


def conjugate_gradient(
    objective: Objective,
    v0: np.ndarray,
    iterations: int = 200,
    tol: float = 1e-6,
    alpha0: float = 1.0,
    callback: Callable[..., None] | None = None,
) -> CGResult:
    """Minimise ``objective`` from ``v0`` with PR+ conjugate gradient.

    The initial line-search step adapts: each iteration starts from
    twice the previous accepted step, which keeps the search cheap once
    the scale of the landscape is known.

    ``callback``, when given, is invoked after every *accepted* step as
    ``callback(iteration, value, grad_norm, step_length, halvings,
    restarts)`` — ``halvings`` is the line-search backtrack count for
    this step and ``restarts`` the cumulative steepest-descent /
    conjugacy resets so far, the solver internals the health channel
    publishes; ``None`` (the default) costs nothing.
    """
    v = np.asarray(v0, dtype=float).copy()
    value, grad = objective(v)
    direction = -grad
    alpha = alpha0
    iteration = 0
    restarts = 0
    for iteration in range(1, iterations + 1):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < tol:
            return CGResult(v, value, grad_norm, iteration - 1, True)
        v_new, value_new, alpha_used, halvings = _armijo(
            objective, v, value, grad, direction, alpha
        )
        if not np.isfinite(value_new) or value_new > value:
            # rejected step: restart from steepest descent, smaller step
            direction = -grad
            alpha = max(alpha * 0.25, 1e-15)
            restarts += 1
            continue
        _, grad_new = objective(v_new)
        if callback is not None:
            callback(
                iteration, value_new,
                float(np.linalg.norm(grad_new)), alpha_used,
                halvings, restarts,
            )
        # Polak-Ribiere+ coefficient with automatic reset
        y = grad_new - grad
        denom = float(np.dot(grad, grad))
        beta = max(0.0, float(np.dot(grad_new, y)) / max(denom, 1e-30))
        if not np.isfinite(beta) or beta > 1e3:
            beta = 0.0
        direction = -grad_new + beta * direction
        dir_norm = float(np.linalg.norm(direction))
        new_norm = float(np.linalg.norm(grad_new))
        if not np.isfinite(dir_norm) or dir_norm > 1e6 * max(new_norm,
                                                             1e-12):
            direction = -grad_new  # runaway conjugacy: reset
            restarts += 1
        v, value, grad = v_new, value_new, grad_new
        alpha = max(alpha_used * 2.0, 1e-12)
    return CGResult(v, value, float(np.linalg.norm(grad)), iteration, False)
