"""Bell-shaped density smoothing (NTUplace3 [10], used by baseline [11]).

Each device spreads its area into bins through a separable bell-shaped
kernel :math:`p_x(d) \\cdot p_y(d)`; the density penalty is
:math:`\\sum_b (D_b - D_{target})^2`.  Following NTUplace3, along one
axis with device size :math:`w_i` and bin size :math:`w_b`:

.. math::
    p(d) = \\begin{cases}
      1 - a d^2 & 0 \\le d \\le w_i/2 + w_b \\\\
      b (d - w_i/2 - 2 w_b)^2 & w_i/2 + w_b \\le d \\le w_i/2 + 2 w_b \\\\
      0 & \\text{otherwise}
    \\end{cases}

with :math:`a = 4 / ((w_i + 2 w_b)(w_i + 4 w_b))` and
:math:`b = 2 / (w_b (w_i + 4 w_b))`, which makes :math:`p` continuous
and differentiable at both junctions.  ``d`` is the distance between
the device centre and the bin centre.
"""

from __future__ import annotations

import numpy as np


def bell_profile(
    d: np.ndarray, size: float, bin_size: float
) -> tuple[np.ndarray, np.ndarray]:
    """Bell value and derivative w.r.t. signed distance ``d``.

    ``d`` may be signed; the bell is even, so the derivative is odd.
    """
    ad = np.abs(d)
    sign = np.sign(d)
    knee = size / 2 + bin_size
    cutoff = size / 2 + 2 * bin_size
    a = 4.0 / ((size + 2 * bin_size) * (size + 4 * bin_size))
    b = 2.0 / (bin_size * (size + 4 * bin_size))

    value = np.zeros_like(ad)
    deriv = np.zeros_like(ad)

    inner = ad <= knee
    value[inner] = 1.0 - a * ad[inner] ** 2
    deriv[inner] = -2.0 * a * ad[inner]

    outer = (ad > knee) & (ad <= cutoff)
    value[outer] = b * (ad[outer] - cutoff) ** 2
    deriv[outer] = 2.0 * b * (ad[outer] - cutoff)

    return value, deriv * sign


class BellDensityGrid:
    """Bin grid evaluating the NTUplace3 quadratic density penalty."""

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        region_w: float,
        region_h: float,
        bins: int = 32,
    ) -> None:
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.areas = self.widths * self.heights
        self.region_w = float(region_w)
        self.region_h = float(region_h)
        self.bins = int(bins)
        self.hx = self.region_w / self.bins
        self.hy = self.region_h / self.bins
        self.centers_x = (np.arange(self.bins) + 0.5) * self.hx
        self.centers_y = (np.arange(self.bins) + 0.5) * self.hy
        self.target = self.areas.sum() / (self.bins * self.bins)

    def _windows(self, xc: float, yc: float, i: int):
        """Bin index ranges covered by device i's bell support."""
        rx = self.widths[i] / 2 + 2 * self.hx
        ry = self.heights[i] / 2 + 2 * self.hy
        bx0 = max(int((xc - rx) / self.hx), 0)
        bx1 = min(int(np.ceil((xc + rx) / self.hx)), self.bins)
        by0 = max(int((yc - ry) / self.hy), 0)
        by1 = min(int(np.ceil((yc + ry) / self.hy)), self.bins)
        return bx0, max(bx1, bx0), by0, max(by1, by0)

    def penalty_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Quadratic density penalty and its analytic gradient.

        The device's bell mass is normalised so its total deposited area
        equals the true device area (NTUplace3's :math:`c_i` factor).
        """
        n = len(x)
        density = np.full((self.bins, self.bins), 0.0)
        # cache per-device window data for the gradient pass
        cache = []
        for i in range(n):
            bx0, bx1, by0, by1, px, dpx, py, dpy, c = self._device_bells(
                float(x[i]), float(y[i]), i
            )
            if px.size == 0 or py.size == 0:
                cache.append(None)
                continue
            density[bx0:bx1, by0:by1] += c * np.outer(px, py)
            cache.append((bx0, bx1, by0, by1, px, dpx, py, dpy, c))

        resid = density - self.target
        penalty = float((resid ** 2).sum())

        grad_x = np.zeros(n)
        grad_y = np.zeros(n)
        for i in range(n):
            if cache[i] is None:
                continue
            bx0, bx1, by0, by1, px, dpx, py, dpy, c = cache[i]
            window = resid[bx0:bx1, by0:by1]
            grad_x[i] = 2.0 * c * float(np.einsum(
                "xy,x,y->", window, dpx, py))
            grad_y[i] = 2.0 * c * float(np.einsum(
                "xy,x,y->", window, px, dpy))
        return penalty, grad_x, grad_y

    def _device_bells(self, xc: float, yc: float, i: int):
        bx0, bx1, by0, by1 = self._windows(xc, yc, i)
        dx = xc - self.centers_x[bx0:bx1]
        dy = yc - self.centers_y[by0:by1]
        px, dpx_d = bell_profile(dx, self.widths[i], self.hx)
        py, dpy_d = bell_profile(dy, self.heights[i], self.hy)
        # d(profile)/d(xc): distance d = xc - center, so same sign
        total = px.sum() * py.sum()
        c = self.areas[i] / total if total > 0 else 0.0
        return bx0, bx1, by0, by1, px, dpx_d, py, dpy_d, c
