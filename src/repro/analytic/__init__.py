"""Differentiable building blocks for analytical placement.

Smoothers (WA/LSE wirelength, WA area), constraint penalties, the two
density models (electrostatic eDensity and NTUplace3 bell-shaped), and
the NLP solvers (Nesterov, conjugate gradient).
"""

from .area import area_term
from .bell import BellDensityGrid, bell_profile
from .cg import CGResult, conjugate_gradient
from .density import BatchedDensityGrid, DensityGrid, \
    poisson_solve_dct, poisson_solve_dct_batch
from .gradcheck import finite_difference_grad, max_grad_error
from .lse import lse_wirelength
from .nesterov import NesterovOptimizer, StepInfo
from .netarrays import NetArrays
from .penalties import ConstraintPenalties
from .wa import wa_wirelength

__all__ = [
    "BatchedDensityGrid",
    "BellDensityGrid",
    "CGResult",
    "ConstraintPenalties",
    "DensityGrid",
    "NesterovOptimizer",
    "NetArrays",
    "StepInfo",
    "area_term",
    "bell_profile",
    "conjugate_gradient",
    "finite_difference_grad",
    "lse_wirelength",
    "max_grad_error",
    "poisson_solve_dct",
    "poisson_solve_dct_batch",
    "wa_wirelength",
]
