"""Numerically-guarded primitives for the smoothing kernels.

The LSE/WA/area kernels shift every exponent by the per-net extremum,
so arguments are ≤ 0 *by construction* — but that invariant lives three
expressions away from the ``np.exp`` call and silently breaks when a
kernel is edited (a sign slip turns the shift into an amplifier and
``exp`` overflows to ``inf``, which then propagates ``nan`` through
the gradient without failing a single assertion).  These helpers make
the guard part of the call site, which is what the ``RPR101``/
``RPR102`` lint rules enforce.

The clip bounds are far outside the kernels' operating range (shifted
exponents live in ``[-span/gamma, 0]`` and the sums they feed are
``≥ 1``), so guarded and unguarded results are bit-identical on valid
inputs; the guards only change behaviour once the maths has already
gone wrong, converting overflow into saturation.
"""

from __future__ import annotations

import numpy as np

#: exponent clip bound: exp(±60) spans ~1e-27..1e26, far beyond any
#: shifted-softmax operating range yet safely inside double range
EXP_CLIP = 60.0

#: generic positive-denominator floor
DIV_EPS = 1e-30


def clipped_exp(
    a: np.ndarray | float, bound: float = EXP_CLIP
) -> np.ndarray:
    """``exp(a)`` with the argument clipped into ``[-bound, bound]``."""
    return np.exp(np.clip(a, -bound, bound))


def safe_log(
    a: np.ndarray | float, eps: float = DIV_EPS
) -> np.ndarray:
    """``log(max(a, eps))`` — never ``-inf``/``nan`` on zero input."""
    return np.log(np.maximum(a, eps))


def safe_div(
    num: np.ndarray | float,
    den: np.ndarray | float,
    eps: float = DIV_EPS,
) -> np.ndarray:
    """``num / den`` with a positive denominator floored at ``eps``.

    Intended for denominators that are non-negative by construction
    (sums of exponentials, masses, norms); for signed denominators
    guard the sign explicitly at the call site.
    """
    return np.asarray(num) / np.maximum(den, eps)
