"""Smoothed total-area term (paper Sec. IV-A).

:math:`Area(v) = WA_{V,x}(v) \\cdot WA_{V,y}(v)` where the WA functions
smooth the layout extents :math:`\\max_i (x_i + w_i/2) - \\min_i
(x_i - w_i/2)` over *all* devices.  Digital placers ignore area, but in
analog circuits the placement area drives parasitics, so the paper adds
this term to the global-placement objective; removing it costs >20% area
and wirelength (paper Fig. 2).
"""

from __future__ import annotations

import numpy as np

from .stable import clipped_exp, safe_div


def _wa_extent(
    hi: np.ndarray, lo: np.ndarray, gamma: float
) -> tuple[float, np.ndarray]:
    """WA-smoothed extent ``softmax(hi) - softmin(lo)`` and its gradient.

    ``hi``/``lo`` are per-device upper/lower boundary coordinates along
    one axis; both depend on the same centre coordinate with unit
    derivative, so the returned gradient is per-device.  Exponents are
    shifted by the extremum (≤ 0), so each sum is ≥ 1 and the guards
    are no-ops on valid input.
    """
    m = hi.max()
    a = clipped_exp((hi - m) / gamma)
    sum_a = a.sum()
    f_max = float(safe_div(np.dot(hi, a), sum_a))
    grad_max = safe_div(a, sum_a) * (1.0 + (hi - f_max) / gamma)

    m = lo.min()
    b = clipped_exp(-(lo - m) / gamma)
    sum_b = b.sum()
    f_min = float(safe_div(np.dot(lo, b), sum_b))
    grad_min = safe_div(b, sum_b) * (1.0 - (lo - f_min) / gamma)

    return f_max - f_min, grad_max - grad_min


def area_term(
    x: np.ndarray,
    y: np.ndarray,
    widths: np.ndarray,
    heights: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Smoothed bounding-box area and its gradient w.r.t. centres.

    Returns ``(value, grad_x, grad_y)``.  The product rule couples the
    axes: widening the layout horizontally is penalised in proportion to
    its current height and vice versa, which is what steers the
    optimiser toward square-ish compact layouts.
    """
    extent_x, grad_ex = _wa_extent(x + widths / 2, x - widths / 2, gamma)
    extent_y, grad_ey = _wa_extent(y + heights / 2, y - heights / 2, gamma)
    value = extent_x * extent_y
    return value, extent_y * grad_ex, extent_x * grad_ey
