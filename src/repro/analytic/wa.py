"""Weighted-Average (WA) wirelength smoothing (paper eq. 2, from [15], [23]).

For a net :math:`e` the span :math:`\\max_{i \\in e} x_i - \\min_{i \\in e}
x_i` is approximated by

.. math::
    WA_e(x) = \\frac{\\sum_i x_i e^{x_i/\\gamma}}{\\sum_i e^{x_i/\\gamma}}
            - \\frac{\\sum_i x_i e^{-x_i/\\gamma}}{\\sum_i e^{-x_i/\\gamma}}

which overestimates neither bound and has the analytic gradient

.. math::
    \\frac{\\partial WA^{max}}{\\partial x_k}
        = \\frac{e^{x_k/\\gamma}}{\\sum_i e^{x_i/\\gamma}}
          \\left(1 + \\frac{x_k - WA^{max}}{\\gamma}\\right)

(and the mirrored expression for the min estimator).  All exponentials
are computed relative to the per-net extremum for numerical stability.
"""

from __future__ import annotations

import numpy as np

from .netarrays import NetArrays
from .stable import clipped_exp, safe_div


def _wa_axis(
    arrays: NetArrays, coords: np.ndarray, gamma: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-net WA span and per-pin gradient along one axis.

    Exponents are shifted by the per-net extremum (≤ 0), so each
    denominator contains a unit term and is ≥ 1; the stable-helper
    guards are no-ops on valid input and only catch kernel bugs.
    """
    seg = arrays.pin_net

    # -- max estimator ------------------------------------------------
    seg_max = arrays.segment_max(coords)
    a = clipped_exp((coords - seg_max[seg]) / gamma)
    denom_max = arrays.segment_sum(a)
    numer_max = arrays.segment_sum(coords * a)
    f_max = safe_div(numer_max, denom_max)
    grad_max = safe_div(a, denom_max[seg]) * (
        1.0 + (coords - f_max[seg]) / gamma
    )

    # -- min estimator ------------------------------------------------
    seg_min = arrays.segment_min(coords)
    b = clipped_exp(-(coords - seg_min[seg]) / gamma)
    denom_min = arrays.segment_sum(b)
    numer_min = arrays.segment_sum(coords * b)
    f_min = safe_div(numer_min, denom_min)
    grad_min = safe_div(b, denom_min[seg]) * (
        1.0 - (coords - f_min[seg]) / gamma
    )

    return f_max - f_min, grad_max - grad_min


def wa_wirelength(
    arrays: NetArrays,
    x: np.ndarray,
    y: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Smoothed weighted HPWL and its gradient w.r.t. device centres.

    Returns ``(value, grad_x, grad_y)`` where the gradients have one
    entry per device (pin gradients accumulated through the rigid
    pin-offset attachment).
    """
    px, py = arrays.pin_coords(x, y)
    span_x, pin_grad_x = _wa_axis(arrays, px, gamma)
    span_y, pin_grad_y = _wa_axis(arrays, py, gamma)

    w = arrays.weights
    value = float(np.dot(w, span_x + span_y))
    w_per_pin = w[arrays.pin_net]
    grad_x = arrays.scatter_to_devices(w_per_pin * pin_grad_x, len(x))
    grad_y = arrays.scatter_to_devices(w_per_pin * pin_grad_y, len(y))
    return value, grad_x, grad_y
