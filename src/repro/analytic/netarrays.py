"""Flattened net/pin arrays for vectorised wirelength computation.

Analytical placers evaluate smoothed wirelength (and its gradient)
hundreds of times; this precomputes a segment layout so each evaluation
is a handful of numpy segmented reductions instead of per-net Python
loops.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Circuit


class NetArrays:
    """Flattened pin arrays with per-net segment boundaries.

    Only nets of degree >= 2 contribute (singletons have zero HPWL).
    Pin offsets are measured from device centres at unflipped
    orientation — global placement decides positions; flipping is an ILP
    detailed-placement decision (paper Sec. IV-B).

    Attributes
    ----------
    pin_dev:
        ``(P,)`` device index of each pin.
    pin_offx, pin_offy:
        ``(P,)`` pin offsets from the owning device's centre.
    starts:
        ``(E,)`` index of each net's first pin in the flattened arrays.
    weights:
        ``(E,)`` net weights.
    """

    def __init__(self, circuit: Circuit, include=None) -> None:
        """``include``: optional predicate ``net -> bool`` selecting the
        nets to compile (e.g. only performance-critical nets)."""
        self.circuit = circuit
        dev_idx: list[int] = []
        offx: list[float] = []
        offy: list[float] = []
        starts: list[int] = []
        weights: list[float] = []
        names: list[str] = []
        for net, (idx, ox, oy) in zip(circuit.nets,
                                      circuit.net_pin_arrays()):
            if net.degree < 2:
                continue
            if include is not None and not include(net):
                continue
            starts.append(len(dev_idx))
            weights.append(net.weight)
            names.append(net.name)
            dev_idx.extend(idx.tolist())
            offx.extend(ox.tolist())
            offy.extend(oy.tolist())
        self.pin_dev = np.asarray(dev_idx, dtype=int)
        self.pin_offx = np.asarray(offx, dtype=float)
        self.pin_offy = np.asarray(offy, dtype=float)
        self.starts = np.asarray(starts, dtype=int)
        self.weights = np.asarray(weights, dtype=float)
        self.net_names = names
        self.num_pins = len(self.pin_dev)
        self.num_nets = len(self.starts)
        # segment id of each pin, for broadcasting per-net values to pins
        self.pin_net = np.repeat(
            np.arange(self.num_nets),
            np.diff(np.append(self.starts, self.num_pins)),
        )

    def pin_coords(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates for device centres ``(x, y)``."""
        return (
            x[self.pin_dev] + self.pin_offx,
            y[self.pin_dev] + self.pin_offy,
        )

    def segment_max(self, values: np.ndarray) -> np.ndarray:
        """Per-net maximum of a per-pin array."""
        return np.maximum.reduceat(values, self.starts)

    def segment_min(self, values: np.ndarray) -> np.ndarray:
        """Per-net minimum of a per-pin array."""
        return np.minimum.reduceat(values, self.starts)

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-net sum of a per-pin array."""
        return np.add.reduceat(values, self.starts)

    def scatter_to_devices(
        self, pin_values: np.ndarray, n: int | None = None
    ) -> np.ndarray:
        """Accumulate per-pin values onto their owning devices."""
        if n is None:
            n = self.circuit.num_devices
        out = np.zeros(n)
        np.add.at(out, self.pin_dev, pin_values)
        return out

    def exact_hpwl(self, x: np.ndarray, y: np.ndarray) -> float:
        """Weighted exact HPWL from device centres (pins at offsets)."""
        px, py = self.pin_coords(x, y)
        spans = (
            self.segment_max(px) - self.segment_min(px)
            + self.segment_max(py) - self.segment_min(py)
        )
        return float(np.dot(self.weights, spans))
