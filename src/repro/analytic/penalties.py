"""Soft analog-constraint penalties for global placement (paper eq. 3).

``Sym(v)`` penalises symmetry violations: for a pair :math:`(i, j)`
mirrored about a vertical axis at :math:`x_m` the term is
:math:`(y_i - y_j)^2 + (x_i + x_j - 2 x_m)^2`.  The axis position is a
free variable; we substitute its closed-form optimum (the least-squares
axis of the group) at every evaluation.  By the envelope theorem the
gradient w.r.t. device coordinates equals the partial gradient at the
fitted axis, so the penalty stays smooth and exactly differentiable.

Alignment penalties are squared residuals of eqs. (4g)/(4h); ordering
penalties are squared hinge violations of eq. (4i).  All are *soft*
here — the ILP detailed placer enforces them exactly later (the paper's
Table I shows soft GP constraints beat hard ones end to end).
"""

from __future__ import annotations

import numpy as np

from ..netlist import Axis, Circuit


class ConstraintPenalties:
    """Precompiled index arrays for fast penalty/gradient evaluation."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        index = circuit.device_index()
        widths, heights = circuit.sizes()
        self.widths, self.heights = widths, heights

        # symmetry groups: (pair_a, pair_b) indices + self indices + axis
        self.sym_groups = []
        for group in circuit.constraints.symmetry_groups:
            pa = np.array([index[a] for a, _ in group.pairs], dtype=int)
            pb = np.array([index[b] for _, b in group.pairs], dtype=int)
            selfs = np.array(
                [index[s] for s in group.self_symmetric], dtype=int
            )
            self.sym_groups.append((pa, pb, selfs, group.axis))

        # alignment pairs by kind
        self.align_bottom = []
        self.align_vcenter = []
        self.align_hcenter = []
        for pair in circuit.constraints.alignments:
            ia, ib = index[pair.a], index[pair.b]
            if pair.kind == "bottom":
                self.align_bottom.append((ia, ib))
            elif pair.kind == "vcenter":
                self.align_vcenter.append((ia, ib))
            else:
                self.align_hcenter.append((ia, ib))

        # ordering chains as consecutive pairs
        self.order_pairs_h = []
        self.order_pairs_v = []
        for chain in circuit.constraints.orderings:
            for left, right in chain.pairs:
                il, ir = index[left], index[right]
                if chain.axis is Axis.VERTICAL:
                    self.order_pairs_h.append((il, ir))
                else:
                    self.order_pairs_v.append((il, ir))

    # ------------------------------------------------------------------
    def symmetry(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Sym(v) and its gradient with per-group least-squares axes."""
        value = 0.0
        gx = np.zeros_like(x)
        gy = np.zeros_like(y)
        for pa, pb, selfs, axis in self.sym_groups:
            if axis is Axis.VERTICAL:
                along, across = x, y
                g_along, g_across = gx, gy
            else:
                along, across = y, x
                g_along, g_across = gy, gx

            # least-squares axis: minimising sum (a+b-2m)^2 + (s-m)^2
            # weights pair midpoints 4x self-symmetric devices
            mids = (along[pa] + along[pb]) / 2.0 if len(pa) else np.empty(0)
            axis_pos = (4.0 * mids.sum() + along[selfs].sum()) / (
                4.0 * len(pa) + len(selfs)
            )

            if len(pa):
                r_axis = along[pa] + along[pb] - 2.0 * axis_pos
                r_cross = across[pa] - across[pb]
                value += float(np.dot(r_axis, r_axis))
                value += float(np.dot(r_cross, r_cross))
                np.add.at(g_along, pa, 2.0 * r_axis)
                np.add.at(g_along, pb, 2.0 * r_axis)
                np.add.at(g_across, pa, 2.0 * r_cross)
                np.add.at(g_across, pb, -2.0 * r_cross)
            if len(selfs):
                r_self = along[selfs] - axis_pos
                value += float(np.dot(r_self, r_self))
                np.add.at(g_along, selfs, 2.0 * r_self)
        return value, gx, gy

    # ------------------------------------------------------------------
    def alignment(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Quadratic alignment penalty and gradient."""
        value = 0.0
        gx = np.zeros_like(x)
        gy = np.zeros_like(y)
        h = self.heights
        for ia, ib in self.align_bottom:
            r = (y[ia] - h[ia] / 2) - (y[ib] - h[ib] / 2)
            value += r * r
            gy[ia] += 2 * r
            gy[ib] -= 2 * r
        for ia, ib in self.align_vcenter:
            r = x[ia] - x[ib]
            value += r * r
            gx[ia] += 2 * r
            gx[ib] -= 2 * r
        for ia, ib in self.align_hcenter:
            r = y[ia] - y[ib]
            value += r * r
            gy[ia] += 2 * r
            gy[ib] -= 2 * r
        return float(value), gx, gy

    # ------------------------------------------------------------------
    def ordering(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Squared-hinge ordering penalty and gradient."""
        value = 0.0
        gx = np.zeros_like(x)
        gy = np.zeros_like(y)
        w, h = self.widths, self.heights
        for il, ir in self.order_pairs_h:
            # violation when right edge of left device passes left edge
            # of right device
            viol = (x[il] + w[il] / 2) - (x[ir] - w[ir] / 2)
            if viol > 0:
                value += viol * viol
                gx[il] += 2 * viol
                gx[ir] -= 2 * viol
        for il, ir in self.order_pairs_v:
            viol = (y[il] + h[il] / 2) - (y[ir] - h[ir] / 2)
            if viol > 0:
                value += viol * viol
                gy[il] += 2 * viol
                gy[ir] -= 2 * viol
        return float(value), gx, gy

    # ------------------------------------------------------------------
    def total(
        self, x: np.ndarray, y: np.ndarray,
        w_sym: float = 1.0, w_align: float = 1.0, w_order: float = 1.0,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Weighted sum of the three penalty classes and its gradient."""
        vs, gxs, gys = self.symmetry(x, y)
        va, gxa, gya = self.alignment(x, y)
        vo, gxo, gyo = self.ordering(x, y)
        value = w_sym * vs + w_align * va + w_order * vo
        gx = w_sym * gxs + w_align * gxa + w_order * gxo
        gy = w_sym * gys + w_align * gya + w_order * gyo
        return value, gx, gy
