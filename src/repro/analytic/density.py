"""Electrostatic density model (eDensity) from ePlace [15].

Devices are positive charges whose density over a bin grid defines a
Poisson problem :math:`\\nabla^2 \\psi = -\\rho`.  The system's potential
energy :math:`N(v) = \\tfrac12 \\sum_i q_i \\psi_i` is the smoothed
overlap penalty of paper eq. (3); its gradient is the electric field
scaled by each device's charge (area).  Like ePlace we obtain
frequency-domain solutions: the Poisson problem is solved spectrally
with a DCT (Neumann boundaries), using the *discrete* Laplacian
eigenvalues so the bin-level solve is exact.

The mean charge is subtracted before solving (a pure-Neumann Poisson
problem requires a neutral system), which makes uniform spreading the
zero-energy state: clustered devices are pushed apart, voids attract.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn


def _laplacian_denominator(
    m: int, n: int, hx: float, hy: float
) -> np.ndarray:
    """DCT-II eigenvalue denominator of the discrete 5-point Laplacian.

    The DC entry is pinned to 1.0 so callers can divide first and zero
    the (undefined up to a constant) DC coefficient afterwards.
    """
    eig_x = (2.0 - 2.0 * np.cos(np.pi * np.arange(m) / m)) / (hx * hx)
    eig_y = (2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)) / (hy * hy)
    denom = eig_x[:, None] + eig_y[None, :]
    denom[0, 0] = 1.0  # DC mode: undefined up to a constant; pin to zero
    return denom


def poisson_solve_dct(
    rho: np.ndarray, hx: float, hy: float,
    denom: "np.ndarray | None" = None,
) -> np.ndarray:
    """Solve ``laplacian(psi) = -rho`` with Neumann BCs on a regular grid.

    Uses DCT-II diagonalisation of the 5-point Laplacian, so the result
    is the exact solution of the discretised system (up to an additive
    constant, fixed by zeroing the DC term).  ``denom`` may carry a
    precomputed :func:`_laplacian_denominator` (nonzero by
    construction: the DC mode is pinned to 1.0) to skip rebuilding it
    on every solve.
    """
    m, n = rho.shape
    if denom is None:
        denom = _laplacian_denominator(m, n, hx, hy)
    coeff = dctn(rho, type=2)
    coeff = coeff / denom
    coeff[0, 0] = 0.0
    return idctn(coeff, type=2)


def poisson_solve_dct_batch(
    rho: np.ndarray, hx: float, hy: float,
    denom: "np.ndarray | None" = None,
) -> np.ndarray:
    """Batched :func:`poisson_solve_dct` over a ``(B, m, n)`` stack.

    One ``dctn``/``idctn`` call transforms every instance (the 1-D
    line transforms are independent, so each slice's solution matches
    the single-instance solver); ``denom`` may carry a precomputed
    :func:`_laplacian_denominator` to keep the per-iteration cost to
    the transforms themselves.
    """
    _, m, n = rho.shape
    if denom is None:
        denom = _laplacian_denominator(m, n, hx, hy)
    coeff = dctn(rho, type=2, axes=(1, 2))
    coeff = coeff / denom
    coeff[:, 0, 0] = 0.0
    return idctn(coeff, type=2, axes=(1, 2))


class DensityGrid:
    """Bin grid over the placement region with rasterisation helpers.

    Parameters
    ----------
    widths, heights:
        Device dimensions, one entry per device.
    region_w, region_h:
        Placement region extents; the region's lower-left corner is the
        origin.  Device parts outside the region are clamped into the
        boundary bins (they still carry charge, so the field pushes
        strays back inside).
    bins:
        Number of bins per axis.
    """

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        region_w: float,
        region_h: float,
        bins: int = 64,
    ) -> None:
        if region_w <= 0 or region_h <= 0:
            raise ValueError("placement region must have positive extents")
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.areas = self.widths * self.heights
        self.region_w = float(region_w)
        self.region_h = float(region_h)
        self.bins = int(bins)
        self.hx = self.region_w / self.bins
        self.hy = self.region_h / self.bins
        self.bin_area = self.hx * self.hy
        # bin edge coordinates
        self.edges_x = np.linspace(0.0, self.region_w, self.bins + 1)
        self.edges_y = np.linspace(0.0, self.region_h, self.bins + 1)

    # ------------------------------------------------------------------
    def _device_window(self, xc: float, yc: float, i: int):
        """Covered bin index range and 1-D overlap weights for device i.

        Device extents are clamped to the region so every device always
        deposits its full charge somewhere.
        """
        half_w, half_h = self.widths[i] / 2, self.heights[i] / 2
        xlo = np.clip(xc - half_w, 0.0, self.region_w - 1e-12)
        xhi = np.clip(xc + half_w, xlo + 1e-12, self.region_w)
        ylo = np.clip(yc - half_h, 0.0, self.region_h - 1e-12)
        yhi = np.clip(yc + half_h, ylo + 1e-12, self.region_h)

        bx0 = int(xlo / self.hx)
        bx1 = min(int(np.ceil(xhi / self.hx)), self.bins)
        by0 = int(ylo / self.hy)
        by1 = min(int(np.ceil(yhi / self.hy)), self.bins)

        ex = self.edges_x
        ov_x = np.minimum(xhi, ex[bx0 + 1:bx1 + 1]) - np.maximum(
            xlo, ex[bx0:bx1]
        )
        ey = self.edges_y
        ov_y = np.minimum(yhi, ey[by0 + 1:by1 + 1]) - np.maximum(
            ylo, ey[by0:by1]
        )
        ov_x = np.clip(ov_x, 0.0, None)
        ov_y = np.clip(ov_y, 0.0, None)
        # rescale so the clamped footprint still deposits the full area
        sum_x, sum_y = ov_x.sum(), ov_y.sum()
        if sum_x > 0:
            ov_x *= self.widths[i] / sum_x
        if sum_y > 0:
            ov_y *= self.heights[i] / sum_y
        return bx0, bx1, by0, by1, ov_x, ov_y

    def _overlap_matrices(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-axis bin overlaps for *all* devices: two ``(n, bins)``
        matrices.

        Row ``i`` holds the same overlap weights
        :meth:`_device_window` computes for device ``i`` (zero outside
        its covered window — bins beyond the window clamp to a
        non-positive overlap, which the clip removes), so the batched
        kernels below are algebraically identical to the loop kernel.
        """
        half_w, half_h = self.widths / 2, self.heights / 2
        xlo = np.clip(x - half_w, 0.0, self.region_w - 1e-12)
        xhi = np.clip(x + half_w, xlo + 1e-12, self.region_w)
        ylo = np.clip(y - half_h, 0.0, self.region_h - 1e-12)
        yhi = np.clip(y + half_h, ylo + 1e-12, self.region_h)

        ex, ey = self.edges_x, self.edges_y
        ov_x = np.clip(
            np.minimum(xhi[:, None], ex[None, 1:])
            - np.maximum(xlo[:, None], ex[None, :-1]),
            0.0, None,
        )
        ov_y = np.clip(
            np.minimum(yhi[:, None], ey[None, 1:])
            - np.maximum(ylo[:, None], ey[None, :-1]),
            0.0, None,
        )
        # rescale so clamped footprints still deposit the full area
        sum_x = ov_x.sum(axis=1)
        sum_y = ov_y.sum(axis=1)
        ov_x *= np.where(
            sum_x > 0, self.widths / np.where(sum_x > 0, sum_x, 1.0), 1.0
        )[:, None]
        ov_y *= np.where(
            sum_y > 0, self.heights / np.where(sum_y > 0, sum_y, 1.0), 1.0
        )[:, None]
        return ov_x, ov_y

    def rasterize(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Charge (area) deposited per bin by all devices.

        One matmul over the per-axis overlap matrices:
        ``grid[bx, by] = sum_i ov_x[i, bx] * ov_y[i, by]`` — each
        device's contribution is the outer product the loop kernel
        deposits, summed over devices in a single pass.
        """
        ov_x, ov_y = self._overlap_matrices(x, y)
        return ov_x.T @ ov_y

    def rasterize_loop(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Reference per-device loop kernel (see :meth:`rasterize`).

        Kept for regression tests: the vectorised kernel must agree
        with this one to numerical round-off.
        """
        grid = np.zeros((self.bins, self.bins))
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            grid[bx0:bx1, by0:by1] += np.outer(ov_x, ov_y)
        return grid

    # ------------------------------------------------------------------
    def energy_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray, float]:
        """Potential energy, gradient per device, and density overflow.

        Returns ``(energy, grad_x, grad_y, overflow)`` where ``overflow``
        is the fraction of total device area sitting above the uniform
        target density — ePlace's global-placement stop metric.

        Per-device sampling of the potential / field is batched: with
        separable weights the double sum over a device's bin window
        factorises as ``ov_x[i] @ field @ ov_y[i]``, evaluated for all
        devices via two matmuls per field.
        """
        ov_x, ov_y = self._overlap_matrices(x, y)
        charge = ov_x.T @ ov_y
        rho = charge / self.bin_area  # area density per bin
        rho_neutral = rho - rho.mean()
        psi = poisson_solve_dct(rho_neutral, self.hx, self.hy)
        # field from the (smooth) potential; np.gradient axis0 = x bins
        dpsi_dx, dpsi_dy = np.gradient(psi, self.hx, self.hy)

        totals = ov_x.sum(axis=1) * ov_y.sum(axis=1)
        safe = np.where(totals > 0, totals, 1.0)
        scale = np.where(totals > 0, self.areas / safe, 0.0)
        psi_i = ((ov_x @ psi) * ov_y).sum(axis=1)
        energy = 0.5 * float(np.dot(scale, psi_i))
        grad_x = scale * ((ov_x @ dpsi_dx) * ov_y).sum(axis=1)
        grad_y = scale * ((ov_x @ dpsi_dy) * ov_y).sum(axis=1)

        overflow = self._overflow(rho)
        return energy, grad_x, grad_y, overflow

    def energy_and_grad_loop(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray, float]:
        """Reference per-device loop kernel (see :meth:`energy_and_grad`).

        Kept for regression tests: the vectorised kernel must agree
        with this one to numerical round-off.
        """
        charge = self.rasterize_loop(x, y)
        rho = charge / self.bin_area
        rho_neutral = rho - rho.mean()
        psi = poisson_solve_dct(rho_neutral, self.hx, self.hy)
        dpsi_dx, dpsi_dy = np.gradient(psi, self.hx, self.hy)

        energy = 0.0
        grad_x = np.zeros_like(x)
        grad_y = np.zeros_like(y)
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            weights = np.outer(ov_x, ov_y)
            total = weights.sum()
            if total <= 0:
                continue
            weights = weights / total
            win = (slice(bx0, bx1), slice(by0, by1))
            psi_i = float((psi[win] * weights).sum())
            energy += 0.5 * self.areas[i] * psi_i
            grad_x[i] = self.areas[i] * float((dpsi_dx[win] * weights).sum())
            grad_y[i] = self.areas[i] * float((dpsi_dy[win] * weights).sum())

        return float(energy), grad_x, grad_y, self._overflow(rho)

    def _overflow(self, rho: np.ndarray) -> float:
        """Fraction of device area above the uniform target density."""
        target = self.areas.sum() / (self.region_w * self.region_h)
        excess = np.clip(rho - max(target, 1.0), 0.0, None)
        return float(
            excess.sum() * self.bin_area
            / max(float(self.areas.sum()), 1e-30)
        )


class BatchedDensityGrid:
    """Batched eDensity kernels over B same-grid placement instances.

    Wraps one :class:`DensityGrid` (one device set, one region, one
    bin resolution) and evaluates B placement instances of it at once:
    bin tensors are stacked into ``(B, bins, bins)`` arrays so every
    iteration runs *one* DCT/IDCT Poisson solve and one overlap-matrix
    matmul pass for the whole batch, instead of B independent spectral
    solves redoing identical transform plans.

    Numerics contract: each instance's result agrees with
    :meth:`DensityGrid.energy_and_grad_loop` — the retained reference
    spec — to 1e-10 (the agreement tests pin this).  The per-axis
    overlap weights are computed by the exact expressions of
    :meth:`DensityGrid._overlap_matrices` broadcast over the batch
    axis, and the batched DCT transforms each slice's independent 1-D
    lines, so gradients are bit-identical to the single-instance
    vectorised kernel in practice; only summation order in the scalar
    energy reduction may differ at round-off level.

    Positions arrive as ``(B, n)`` arrays; results are stacked along
    the leading batch axis.  ``B = 1`` degenerates to the
    single-instance kernels (useful for lockstep drivers that shrink
    the batch as instances converge).
    """

    def __init__(self, grid: DensityGrid) -> None:
        self.grid = grid
        #: cached Laplacian eigenvalue denominator (grid-constant)
        self._denom = _laplacian_denominator(
            grid.bins, grid.bins, grid.hx, grid.hy
        )
        target = grid.areas.sum() / (grid.region_w * grid.region_h)
        self._target = max(float(target), 1.0)
        self._total_area = max(float(grid.areas.sum()), 1e-30)

    # ------------------------------------------------------------------
    def _check_batch(self, xs: np.ndarray, ys: np.ndarray) -> None:
        if xs.shape != ys.shape or xs.ndim != 2:
            raise ValueError(
                f"batched positions must be matching (B, n) arrays, "
                f"got {xs.shape} and {ys.shape}"
            )
        if xs.shape[1] != len(self.grid.widths):
            raise ValueError(
                f"positions have {xs.shape[1]} devices, grid has "
                f"{len(self.grid.widths)}"
            )

    def overlap_matrices(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-axis bin overlaps for all instances: ``(B, n, bins)``.

        Row ``[b, i]`` equals :meth:`DensityGrid._overlap_matrices`'s
        row ``i`` at instance ``b``'s positions — the same clamp,
        clip and full-area rescale expressions broadcast over the
        batch axis.
        """
        grid = self.grid
        half_w, half_h = grid.widths / 2, grid.heights / 2
        xlo = np.clip(xs - half_w, 0.0, grid.region_w - 1e-12)
        xhi = np.clip(xs + half_w, xlo + 1e-12, grid.region_w)
        ylo = np.clip(ys - half_h, 0.0, grid.region_h - 1e-12)
        yhi = np.clip(ys + half_h, ylo + 1e-12, grid.region_h)

        ex, ey = grid.edges_x, grid.edges_y
        ov_x = np.clip(
            np.minimum(xhi[..., None], ex[None, None, 1:])
            - np.maximum(xlo[..., None], ex[None, None, :-1]),
            0.0, None,
        )
        ov_y = np.clip(
            np.minimum(yhi[..., None], ey[None, None, 1:])
            - np.maximum(ylo[..., None], ey[None, None, :-1]),
            0.0, None,
        )
        # rescale so clamped footprints still deposit the full area
        sum_x = ov_x.sum(axis=2)
        sum_y = ov_y.sum(axis=2)
        ov_x *= np.where(
            sum_x > 0, grid.widths / np.where(sum_x > 0, sum_x, 1.0),
            1.0,
        )[..., None]
        ov_y *= np.where(
            sum_y > 0, grid.heights / np.where(sum_y > 0, sum_y, 1.0),
            1.0,
        )[..., None]
        return ov_x, ov_y

    def rasterize(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Charge grids for all instances: one ``(B, bins, bins)`` stack.

        The per-instance matmul is the same contraction
        :meth:`DensityGrid.rasterize` performs; looping the B GEMMs
        into a preallocated output measures faster than one strided
        batch-matmul at placement-sized operands.
        """
        self._check_batch(xs, ys)
        ov_x, ov_y = self.overlap_matrices(xs, ys)
        return self._rasterize_from(ov_x, ov_y)

    def _rasterize_from(
        self, ov_x: np.ndarray, ov_y: np.ndarray
    ) -> np.ndarray:
        bins = self.grid.bins
        charge = np.empty((ov_x.shape[0], bins, bins))
        for b in range(ov_x.shape[0]):
            np.matmul(ov_x[b].T, ov_y[b], out=charge[b])
        return charge

    # ------------------------------------------------------------------
    def energy_and_grad(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched potential energy, gradients and density overflow.

        Returns ``(energy, grad_x, grad_y, overflow)`` with shapes
        ``(B,)``, ``(B, n)``, ``(B, n)``, ``(B,)`` — instance ``b``'s
        entries match :meth:`DensityGrid.energy_and_grad` at
        ``(xs[b], ys[b])`` (and therefore the loop reference spec to
        1e-10).  The whole batch shares one spectral solve and one
        field-sampling matmul pass.
        """
        self._check_batch(xs, ys)
        grid = self.grid
        ov_x, ov_y = self.overlap_matrices(xs, ys)
        charge = self._rasterize_from(ov_x, ov_y)
        rho = charge / grid.bin_area
        rho_neutral = rho - rho.mean(axis=(1, 2), keepdims=True)
        psi = poisson_solve_dct_batch(
            rho_neutral, grid.hx, grid.hy, denom=self._denom
        )
        dpsi_dx, dpsi_dy = np.gradient(
            psi, grid.hx, grid.hy, axis=(1, 2)
        )

        totals = ov_x.sum(axis=2) * ov_y.sum(axis=2)
        safe = np.where(totals > 0, totals, 1.0)
        scale = np.where(totals > 0, grid.areas / safe, 0.0)
        psi_i = (np.matmul(ov_x, psi) * ov_y).sum(axis=2)
        grad_x = scale * (np.matmul(ov_x, dpsi_dx) * ov_y).sum(axis=2)
        grad_y = scale * (np.matmul(ov_x, dpsi_dy) * ov_y).sum(axis=2)

        # scalar reductions per instance use the single-instance
        # kernel's exact ops (np.dot / full-slice sum) so a lockstep
        # batch diverges from a sequential run as little as possible
        batch = xs.shape[0]
        energy = np.empty(batch)
        overflow = np.empty(batch)
        excess = np.clip(rho - self._target, 0.0, None)
        for b in range(batch):
            energy[b] = 0.5 * float(np.dot(scale[b], psi_i[b]))
            overflow[b] = float(
                excess[b].sum() * grid.bin_area / self._total_area
            )
        return energy, grad_x, grad_y, overflow
