"""Electrostatic density model (eDensity) from ePlace [15].

Devices are positive charges whose density over a bin grid defines a
Poisson problem :math:`\\nabla^2 \\psi = -\\rho`.  The system's potential
energy :math:`N(v) = \\tfrac12 \\sum_i q_i \\psi_i` is the smoothed
overlap penalty of paper eq. (3); its gradient is the electric field
scaled by each device's charge (area).  Like ePlace we obtain
frequency-domain solutions: the Poisson problem is solved spectrally
with a DCT (Neumann boundaries), using the *discrete* Laplacian
eigenvalues so the bin-level solve is exact.

The mean charge is subtracted before solving (a pure-Neumann Poisson
problem requires a neutral system), which makes uniform spreading the
zero-energy state: clustered devices are pushed apart, voids attract.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn


def poisson_solve_dct(rho: np.ndarray, hx: float, hy: float) -> np.ndarray:
    """Solve ``laplacian(psi) = -rho`` with Neumann BCs on a regular grid.

    Uses DCT-II diagonalisation of the 5-point Laplacian, so the result
    is the exact solution of the discretised system (up to an additive
    constant, fixed by zeroing the DC term).
    """
    m, n = rho.shape
    coeff = dctn(rho, type=2)
    eig_x = (2.0 - 2.0 * np.cos(np.pi * np.arange(m) / m)) / (hx * hx)
    eig_y = (2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)) / (hy * hy)
    denom = eig_x[:, None] + eig_y[None, :]
    denom[0, 0] = 1.0  # DC mode: undefined up to a constant; pin to zero
    coeff = coeff / denom
    coeff[0, 0] = 0.0
    return idctn(coeff, type=2)


class DensityGrid:
    """Bin grid over the placement region with rasterisation helpers.

    Parameters
    ----------
    widths, heights:
        Device dimensions, one entry per device.
    region_w, region_h:
        Placement region extents; the region's lower-left corner is the
        origin.  Device parts outside the region are clamped into the
        boundary bins (they still carry charge, so the field pushes
        strays back inside).
    bins:
        Number of bins per axis.
    """

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        region_w: float,
        region_h: float,
        bins: int = 64,
    ) -> None:
        if region_w <= 0 or region_h <= 0:
            raise ValueError("placement region must have positive extents")
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.areas = self.widths * self.heights
        self.region_w = float(region_w)
        self.region_h = float(region_h)
        self.bins = int(bins)
        self.hx = self.region_w / self.bins
        self.hy = self.region_h / self.bins
        self.bin_area = self.hx * self.hy
        # bin edge coordinates
        self.edges_x = np.linspace(0.0, self.region_w, self.bins + 1)
        self.edges_y = np.linspace(0.0, self.region_h, self.bins + 1)

    # ------------------------------------------------------------------
    def _device_window(self, xc: float, yc: float, i: int):
        """Covered bin index range and 1-D overlap weights for device i.

        Device extents are clamped to the region so every device always
        deposits its full charge somewhere.
        """
        half_w, half_h = self.widths[i] / 2, self.heights[i] / 2
        xlo = np.clip(xc - half_w, 0.0, self.region_w - 1e-12)
        xhi = np.clip(xc + half_w, xlo + 1e-12, self.region_w)
        ylo = np.clip(yc - half_h, 0.0, self.region_h - 1e-12)
        yhi = np.clip(yc + half_h, ylo + 1e-12, self.region_h)

        bx0 = int(xlo / self.hx)
        bx1 = min(int(np.ceil(xhi / self.hx)), self.bins)
        by0 = int(ylo / self.hy)
        by1 = min(int(np.ceil(yhi / self.hy)), self.bins)

        ex = self.edges_x
        ov_x = np.minimum(xhi, ex[bx0 + 1:bx1 + 1]) - np.maximum(
            xlo, ex[bx0:bx1]
        )
        ey = self.edges_y
        ov_y = np.minimum(yhi, ey[by0 + 1:by1 + 1]) - np.maximum(
            ylo, ey[by0:by1]
        )
        ov_x = np.clip(ov_x, 0.0, None)
        ov_y = np.clip(ov_y, 0.0, None)
        # rescale so the clamped footprint still deposits the full area
        sum_x, sum_y = ov_x.sum(), ov_y.sum()
        if sum_x > 0:
            ov_x *= self.widths[i] / sum_x
        if sum_y > 0:
            ov_y *= self.heights[i] / sum_y
        return bx0, bx1, by0, by1, ov_x, ov_y

    def rasterize(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Charge (area) deposited per bin by all devices."""
        grid = np.zeros((self.bins, self.bins))
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            grid[bx0:bx1, by0:by1] += np.outer(ov_x, ov_y)
        return grid

    # ------------------------------------------------------------------
    def energy_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray, float]:
        """Potential energy, gradient per device, and density overflow.

        Returns ``(energy, grad_x, grad_y, overflow)`` where ``overflow``
        is the fraction of total device area sitting above the uniform
        target density — ePlace's global-placement stop metric.
        """
        charge = self.rasterize(x, y)
        rho = charge / self.bin_area  # area density per bin
        rho_neutral = rho - rho.mean()
        psi = poisson_solve_dct(rho_neutral, self.hx, self.hy)
        # field from the (smooth) potential; np.gradient axis0 = x bins
        dpsi_dx, dpsi_dy = np.gradient(psi, self.hx, self.hy)

        energy = 0.0
        grad_x = np.zeros_like(x)
        grad_y = np.zeros_like(y)
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            weights = np.outer(ov_x, ov_y)
            total = weights.sum()
            if total <= 0:
                continue
            weights = weights / total
            win = (slice(bx0, bx1), slice(by0, by1))
            psi_i = float((psi[win] * weights).sum())
            energy += 0.5 * self.areas[i] * psi_i
            grad_x[i] = self.areas[i] * float((dpsi_dx[win] * weights).sum())
            grad_y[i] = self.areas[i] * float((dpsi_dy[win] * weights).sum())

        target = self.areas.sum() / (self.region_w * self.region_h)
        excess = np.clip(rho - max(target, 1.0), 0.0, None)
        overflow = float(
            excess.sum() * self.bin_area
            / max(float(self.areas.sum()), 1e-30)
        )
        return float(energy), grad_x, grad_y, overflow
