"""Electrostatic density model (eDensity) from ePlace [15].

Devices are positive charges whose density over a bin grid defines a
Poisson problem :math:`\\nabla^2 \\psi = -\\rho`.  The system's potential
energy :math:`N(v) = \\tfrac12 \\sum_i q_i \\psi_i` is the smoothed
overlap penalty of paper eq. (3); its gradient is the electric field
scaled by each device's charge (area).  Like ePlace we obtain
frequency-domain solutions: the Poisson problem is solved spectrally
with a DCT (Neumann boundaries), using the *discrete* Laplacian
eigenvalues so the bin-level solve is exact.

The mean charge is subtracted before solving (a pure-Neumann Poisson
problem requires a neutral system), which makes uniform spreading the
zero-energy state: clustered devices are pushed apart, voids attract.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn


def poisson_solve_dct(rho: np.ndarray, hx: float, hy: float) -> np.ndarray:
    """Solve ``laplacian(psi) = -rho`` with Neumann BCs on a regular grid.

    Uses DCT-II diagonalisation of the 5-point Laplacian, so the result
    is the exact solution of the discretised system (up to an additive
    constant, fixed by zeroing the DC term).
    """
    m, n = rho.shape
    coeff = dctn(rho, type=2)
    eig_x = (2.0 - 2.0 * np.cos(np.pi * np.arange(m) / m)) / (hx * hx)
    eig_y = (2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)) / (hy * hy)
    denom = eig_x[:, None] + eig_y[None, :]
    denom[0, 0] = 1.0  # DC mode: undefined up to a constant; pin to zero
    coeff = coeff / denom
    coeff[0, 0] = 0.0
    return idctn(coeff, type=2)


class DensityGrid:
    """Bin grid over the placement region with rasterisation helpers.

    Parameters
    ----------
    widths, heights:
        Device dimensions, one entry per device.
    region_w, region_h:
        Placement region extents; the region's lower-left corner is the
        origin.  Device parts outside the region are clamped into the
        boundary bins (they still carry charge, so the field pushes
        strays back inside).
    bins:
        Number of bins per axis.
    """

    def __init__(
        self,
        widths: np.ndarray,
        heights: np.ndarray,
        region_w: float,
        region_h: float,
        bins: int = 64,
    ) -> None:
        if region_w <= 0 or region_h <= 0:
            raise ValueError("placement region must have positive extents")
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.areas = self.widths * self.heights
        self.region_w = float(region_w)
        self.region_h = float(region_h)
        self.bins = int(bins)
        self.hx = self.region_w / self.bins
        self.hy = self.region_h / self.bins
        self.bin_area = self.hx * self.hy
        # bin edge coordinates
        self.edges_x = np.linspace(0.0, self.region_w, self.bins + 1)
        self.edges_y = np.linspace(0.0, self.region_h, self.bins + 1)

    # ------------------------------------------------------------------
    def _device_window(self, xc: float, yc: float, i: int):
        """Covered bin index range and 1-D overlap weights for device i.

        Device extents are clamped to the region so every device always
        deposits its full charge somewhere.
        """
        half_w, half_h = self.widths[i] / 2, self.heights[i] / 2
        xlo = np.clip(xc - half_w, 0.0, self.region_w - 1e-12)
        xhi = np.clip(xc + half_w, xlo + 1e-12, self.region_w)
        ylo = np.clip(yc - half_h, 0.0, self.region_h - 1e-12)
        yhi = np.clip(yc + half_h, ylo + 1e-12, self.region_h)

        bx0 = int(xlo / self.hx)
        bx1 = min(int(np.ceil(xhi / self.hx)), self.bins)
        by0 = int(ylo / self.hy)
        by1 = min(int(np.ceil(yhi / self.hy)), self.bins)

        ex = self.edges_x
        ov_x = np.minimum(xhi, ex[bx0 + 1:bx1 + 1]) - np.maximum(
            xlo, ex[bx0:bx1]
        )
        ey = self.edges_y
        ov_y = np.minimum(yhi, ey[by0 + 1:by1 + 1]) - np.maximum(
            ylo, ey[by0:by1]
        )
        ov_x = np.clip(ov_x, 0.0, None)
        ov_y = np.clip(ov_y, 0.0, None)
        # rescale so the clamped footprint still deposits the full area
        sum_x, sum_y = ov_x.sum(), ov_y.sum()
        if sum_x > 0:
            ov_x *= self.widths[i] / sum_x
        if sum_y > 0:
            ov_y *= self.heights[i] / sum_y
        return bx0, bx1, by0, by1, ov_x, ov_y

    def _overlap_matrices(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-axis bin overlaps for *all* devices: two ``(n, bins)``
        matrices.

        Row ``i`` holds the same overlap weights
        :meth:`_device_window` computes for device ``i`` (zero outside
        its covered window — bins beyond the window clamp to a
        non-positive overlap, which the clip removes), so the batched
        kernels below are algebraically identical to the loop kernel.
        """
        half_w, half_h = self.widths / 2, self.heights / 2
        xlo = np.clip(x - half_w, 0.0, self.region_w - 1e-12)
        xhi = np.clip(x + half_w, xlo + 1e-12, self.region_w)
        ylo = np.clip(y - half_h, 0.0, self.region_h - 1e-12)
        yhi = np.clip(y + half_h, ylo + 1e-12, self.region_h)

        ex, ey = self.edges_x, self.edges_y
        ov_x = np.clip(
            np.minimum(xhi[:, None], ex[None, 1:])
            - np.maximum(xlo[:, None], ex[None, :-1]),
            0.0, None,
        )
        ov_y = np.clip(
            np.minimum(yhi[:, None], ey[None, 1:])
            - np.maximum(ylo[:, None], ey[None, :-1]),
            0.0, None,
        )
        # rescale so clamped footprints still deposit the full area
        sum_x = ov_x.sum(axis=1)
        sum_y = ov_y.sum(axis=1)
        ov_x *= np.where(
            sum_x > 0, self.widths / np.where(sum_x > 0, sum_x, 1.0), 1.0
        )[:, None]
        ov_y *= np.where(
            sum_y > 0, self.heights / np.where(sum_y > 0, sum_y, 1.0), 1.0
        )[:, None]
        return ov_x, ov_y

    def rasterize(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Charge (area) deposited per bin by all devices.

        One matmul over the per-axis overlap matrices:
        ``grid[bx, by] = sum_i ov_x[i, bx] * ov_y[i, by]`` — each
        device's contribution is the outer product the loop kernel
        deposits, summed over devices in a single pass.
        """
        ov_x, ov_y = self._overlap_matrices(x, y)
        return ov_x.T @ ov_y

    def rasterize_loop(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Reference per-device loop kernel (see :meth:`rasterize`).

        Kept for regression tests: the vectorised kernel must agree
        with this one to numerical round-off.
        """
        grid = np.zeros((self.bins, self.bins))
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            grid[bx0:bx1, by0:by1] += np.outer(ov_x, ov_y)
        return grid

    # ------------------------------------------------------------------
    def energy_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray, float]:
        """Potential energy, gradient per device, and density overflow.

        Returns ``(energy, grad_x, grad_y, overflow)`` where ``overflow``
        is the fraction of total device area sitting above the uniform
        target density — ePlace's global-placement stop metric.

        Per-device sampling of the potential / field is batched: with
        separable weights the double sum over a device's bin window
        factorises as ``ov_x[i] @ field @ ov_y[i]``, evaluated for all
        devices via two matmuls per field.
        """
        ov_x, ov_y = self._overlap_matrices(x, y)
        charge = ov_x.T @ ov_y
        rho = charge / self.bin_area  # area density per bin
        rho_neutral = rho - rho.mean()
        psi = poisson_solve_dct(rho_neutral, self.hx, self.hy)
        # field from the (smooth) potential; np.gradient axis0 = x bins
        dpsi_dx, dpsi_dy = np.gradient(psi, self.hx, self.hy)

        totals = ov_x.sum(axis=1) * ov_y.sum(axis=1)
        safe = np.where(totals > 0, totals, 1.0)
        scale = np.where(totals > 0, self.areas / safe, 0.0)
        psi_i = ((ov_x @ psi) * ov_y).sum(axis=1)
        energy = 0.5 * float(np.dot(scale, psi_i))
        grad_x = scale * ((ov_x @ dpsi_dx) * ov_y).sum(axis=1)
        grad_y = scale * ((ov_x @ dpsi_dy) * ov_y).sum(axis=1)

        overflow = self._overflow(rho)
        return energy, grad_x, grad_y, overflow

    def energy_and_grad_loop(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray, float]:
        """Reference per-device loop kernel (see :meth:`energy_and_grad`).

        Kept for regression tests: the vectorised kernel must agree
        with this one to numerical round-off.
        """
        charge = self.rasterize_loop(x, y)
        rho = charge / self.bin_area
        rho_neutral = rho - rho.mean()
        psi = poisson_solve_dct(rho_neutral, self.hx, self.hy)
        dpsi_dx, dpsi_dy = np.gradient(psi, self.hx, self.hy)

        energy = 0.0
        grad_x = np.zeros_like(x)
        grad_y = np.zeros_like(y)
        for i in range(len(x)):
            bx0, bx1, by0, by1, ov_x, ov_y = self._device_window(
                float(x[i]), float(y[i]), i
            )
            weights = np.outer(ov_x, ov_y)
            total = weights.sum()
            if total <= 0:
                continue
            weights = weights / total
            win = (slice(bx0, bx1), slice(by0, by1))
            psi_i = float((psi[win] * weights).sum())
            energy += 0.5 * self.areas[i] * psi_i
            grad_x[i] = self.areas[i] * float((dpsi_dx[win] * weights).sum())
            grad_y[i] = self.areas[i] * float((dpsi_dy[win] * weights).sum())

        return float(energy), grad_x, grad_y, self._overflow(rho)

    def _overflow(self, rho: np.ndarray) -> float:
        """Fraction of device area above the uniform target density."""
        target = self.areas.sum() / (self.region_w * self.region_h)
        excess = np.clip(rho - max(target, 1.0), 0.0, None)
        return float(
            excess.sum() * self.bin_area
            / max(float(self.areas.sum()), 1e-30)
        )
