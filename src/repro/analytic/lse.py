"""Log-Sum-Exponential (LSE) wirelength smoothing (NTUplace3 [10]).

The span of net :math:`e` along x is approximated by

.. math::
    LSE_e(x) = \\gamma \\ln \\sum_i e^{x_i/\\gamma}
             + \\gamma \\ln \\sum_i e^{-x_i/\\gamma}

which *over*-estimates the true span (by up to
:math:`2\\gamma\\ln d` for degree :math:`d`); the paper's Table III
discussion credits part of ePlace-A's quality edge over [11] to WA's
smaller estimation error [23].  Gradients are the softmax weights.
"""

from __future__ import annotations

import numpy as np

from .netarrays import NetArrays
from .stable import clipped_exp, safe_div, safe_log


def _lse_axis(
    arrays: NetArrays, coords: np.ndarray, gamma: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-net LSE span and per-pin gradient along one axis.

    Exponents are shifted by the per-net extremum (≤ 0), so each
    segment sum contains a unit term and is ≥ 1; the stable-helper
    guards are no-ops on valid input and only catch kernel bugs.
    """
    seg = arrays.pin_net

    seg_max = arrays.segment_max(coords)
    a = clipped_exp((coords - seg_max[seg]) / gamma)
    sum_a = arrays.segment_sum(a)
    lse_max = seg_max + gamma * safe_log(sum_a)
    grad_max = safe_div(a, sum_a[seg])

    seg_min = arrays.segment_min(coords)
    b = clipped_exp(-(coords - seg_min[seg]) / gamma)
    sum_b = arrays.segment_sum(b)
    lse_min = -seg_min + gamma * safe_log(sum_b)
    grad_min = -safe_div(b, sum_b[seg])

    return lse_max + lse_min, grad_max + grad_min


def lse_wirelength(
    arrays: NetArrays,
    x: np.ndarray,
    y: np.ndarray,
    gamma: float,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Smoothed weighted HPWL (LSE model) and gradient per device."""
    px, py = arrays.pin_coords(x, y)
    span_x, pin_grad_x = _lse_axis(arrays, px, gamma)
    span_y, pin_grad_y = _lse_axis(arrays, py, gamma)

    w = arrays.weights
    value = float(np.dot(w, span_x + span_y))
    w_per_pin = w[arrays.pin_net]
    grad_x = arrays.scatter_to_devices(w_per_pin * pin_grad_x, len(x))
    grad_y = arrays.scatter_to_devices(w_per_pin * pin_grad_y, len(y))
    return value, grad_x, grad_y
