"""Process-parallel fan-out with deterministic result ordering.

The paper's experiments are embarrassingly parallel at the *task*
level: benchmark cases, SA seeds and testcase rows never share state —
each worker builds its own circuit and engine from a picklable payload.
This module is the one place that owns the fork/join mechanics so
every fan-out site (``repro.bench run --jobs``, ``place_multiseed``,
the experiments drivers) behaves identically:

* **Deterministic ordering** — results come back in *input* order
  regardless of worker scheduling, so a parallel run is byte-for-byte
  the concatenation a sequential run would have produced.
* **Seed sharding** — parallelism never splits one seeded run; the
  unit of distribution is an entire seeded task, so per-task RNG
  streams are untouched and ``jobs=N`` output equals ``jobs=1``.
* **Inline fallback** — ``jobs<=1`` (or a single task) runs in the
  calling process with no pool, keeping debuggers, coverage and
  profilers usable on the exact production code path.

Workers are separate *processes* (the engines are CPU-bound Python and
numpy, so threads would serialise on the GIL for the pure-Python SA
hot loop).  Worker functions must be module-level (picklable) and take
a single payload argument.

Tracing: a worker process starts with no active tracer.  Fan-out sites
that want per-worker traces activate ``obs.tracing()`` inside the
worker, ship the :class:`repro.obs.Trace` back in the result (traces
are plain picklable dataclasses), and merge them into the parent's
tracer with :meth:`repro.obs.trace.Tracer.absorb`.

Live telemetry: :func:`parallel_map_live` is the streaming variant —
each worker runs under its own :class:`repro.obs.live.EventBus` whose
events are forwarded over a pipe and republished on the parent's bus
as they arrive, stamped with the worker's task index (``source``).
Per-task event order is preserved end to end, so the canonical merged
stream (stable sort by source) is bit-identical for any job count.
The handle passed to ``handle_ready`` cancels individual tasks
cooperatively: the worker's next progress publication raises
:class:`repro.obs.live.CancelledRun`, and the task resolves to a
:class:`CancelledTask` marker instead of a result — the mechanism the
convergence racer (:mod:`repro.obs.racing`) kills dominated seeds
with.
"""

from __future__ import annotations

import io
import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from . import sanitize
from .obs import live
from .obs.log import get_logger

logger = get_logger("parallel")

_T = TypeVar("_T")
_R = TypeVar("_R")


# ---------------------------------------------------------------------------
# shared-memory array transport
#
# Large ndarray payloads (placements, traces, bin tensors) cross the
# worker->parent boundary through named POSIX shared-memory segments
# instead of being pickled through a pipe: the worker writes each big
# array into a segment and the pickle channel carries only a
# descriptor (name, shape, dtype).  One write + one read replaces
# pickle-serialise + two pipe copies + deserialise.  Everything below
# the size threshold keeps the plain pickle path — segment setup costs
# more than piping a small array.
#
# Lifecycle contract: the *creating* process unregisters the segment
# from its own resource tracker (ownership transfers with the
# descriptor); the *receiving* process copies the data out and unlinks
# during unpickling.  Failure paths (worker death, cancellation races,
# parent-side errors) are covered by draining the channel and sweeping
# the per-worker name prefix — segment names are deterministic
# (pid + counter, never random) precisely so the parent can enumerate
# a dead worker's leftovers.

#: arrays below this many bytes ride the ordinary pickle channel
SHM_THRESHOLD_BYTES = 64 * 1024

#: prefix of every segment this library creates (swept on failure)
_SHM_PREFIX = "repro-shm-"

#: open SharedMemory handles in this process; must be empty at fork
#: (the sanitizer's fork check probes this via register_fork_check)
_OPEN_HANDLES: "set[str]" = set()

_SHM_COUNTER = itertools.count()


def _shm_name() -> str:
    """Deterministic segment name: creator pid + per-process counter."""
    return f"{_SHM_PREFIX}{os.getpid()}-{next(_SHM_COUNTER)}"


@dataclass(frozen=True)
class ShmBlob:
    """A pickled payload whose large arrays live in named segments.

    ``data`` is the pickle stream (small: descriptors in place of
    array bodies); ``segments`` names every segment the payload
    references, so failure paths can discard a blob without loading
    it.  Produced by :func:`shm_dumps`, consumed by :func:`shm_loads`.
    """

    data: bytes
    segments: "tuple[str, ...]"


class _ShmPickler(pickle.Pickler):
    """Pickler hoisting big ndarrays into shared-memory segments."""

    def __init__(self, buffer: "io.BytesIO", threshold: int) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.threshold = int(threshold)
        self.segments: "list[str]" = []

    def reducer_override(self, obj: Any) -> Any:
        if (
            type(obj) is np.ndarray
            and not obj.dtype.hasobject
            and obj.nbytes >= self.threshold
            and obj.nbytes > 0
        ):
            order = (
                "F" if obj.flags.f_contiguous
                and not obj.flags.c_contiguous else "C"
            )
            name = _create_segment(obj, order)
            self.segments.append(name)
            return (
                _restore_array,
                (name, obj.shape, obj.dtype.str, order),
            )
        return NotImplemented


def _create_segment(array: np.ndarray, order: str) -> str:
    """Write ``array`` into a fresh segment; returns its name.

    The segment is immediately unregistered from this process's
    resource tracker: ownership rides with the descriptor, and the
    receiver (usually the parent process) unlinks after reading.
    """
    name = _shm_name()
    seg = shared_memory.SharedMemory(
        name=name, create=True, size=array.nbytes
    )
    _OPEN_HANDLES.add(name)
    try:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=seg.buf, order=order
        )
        view[...] = array
    finally:
        seg.close()
        _OPEN_HANDLES.discard(name)
    resource_tracker.unregister(seg._name, "shared_memory")
    return name


def _restore_array(
    name: str, shape: "tuple[int, ...]", dtype: str, order: str
) -> np.ndarray:
    """Copy an array out of its segment and unlink it (receiver side)."""
    seg = shared_memory.SharedMemory(name=name)
    _OPEN_HANDLES.add(name)
    try:
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf, order=order)
        array = view.copy(order=order)
    finally:
        seg.close()
        _OPEN_HANDLES.discard(name)
        seg.unlink()
    return array


def shm_dumps(obj: Any, threshold: int = SHM_THRESHOLD_BYTES) -> ShmBlob:
    """Pickle ``obj`` with arrays >= ``threshold`` bytes hoisted to shm.

    On any serialisation error the already-created segments are
    unlinked before the exception propagates — a failed dump leaks
    nothing.
    """
    buffer = io.BytesIO()
    pickler = _ShmPickler(buffer, threshold)
    try:
        pickler.dump(obj)
    except BaseException:
        for name in pickler.segments:
            discard_segment(name)
        raise
    return ShmBlob(buffer.getvalue(), tuple(pickler.segments))


def shm_loads(blob: ShmBlob) -> Any:
    """Inverse of :func:`shm_dumps`; unlinks the blob's segments."""
    return pickle.loads(blob.data)


def discard_segment(name: str) -> None:
    """Unlink a segment without reading it (failure-path cleanup)."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def discard_blob(payload: Any) -> None:
    """Release a blob's segments without materialising its payload."""
    if isinstance(payload, ShmBlob):
        for name in payload.segments:
            discard_segment(name)


def shm_segments(pid: "int | None" = None) -> "list[str]":
    """Live repro segment names on this host — the leak registry.

    ``pid`` narrows to segments created by one process.  Tests assert
    this is unchanged across a fan-out; failure paths sweep it.
    """
    prefix = _SHM_PREFIX if pid is None else f"{_SHM_PREFIX}{pid}-"
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def _sweep_worker_segments(pids: "Sequence[int]") -> None:
    """Unlink every segment left behind by the given (dead) workers."""
    for pid in pids:
        for name in shm_segments(pid):
            logger.warning(
                "discarding leaked shared-memory segment %s", name
            )
            discard_segment(name)


def _shm_fork_hazard() -> "str | None":
    """Fork-time probe: no segment handle may be open across a fork."""
    if _OPEN_HANDLES:
        return (
            "fork attempted with open shared-memory handle(s): "
            + ", ".join(sorted(_OPEN_HANDLES))
            + "; a forked child would inherit mappings it never "
            "closes — finish the transfer before forking"
        )
    return None


sanitize.register_fork_check(_shm_fork_hazard)


@dataclass(frozen=True)
class _ShmTask:
    """Picklable wrapper running ``fn`` and shm-encoding its result."""

    fn: "Callable[[Any], Any]"
    threshold: int

    def __call__(self, item: Any) -> ShmBlob:
        return shm_dumps(self.fn(item), self.threshold)


def normalize_jobs(jobs: "int | None") -> int:
    """Clamp a ``--jobs`` value to ``[1, cpu_count]``.

    ``None`` and ``0`` mean "use every core"; negative values raise.
    """
    cpus = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cpus
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(int(jobs), cpus)


def parallel_map(
    fn: "Callable[[_T], _R]",
    items: "Sequence[_T]",
    jobs: "int | None" = 1,
    shm: bool = True,
    shm_threshold: int = SHM_THRESHOLD_BYTES,
) -> "list[_R]":
    """Map ``fn`` over ``items`` with up to ``jobs`` worker processes.

    Results are returned in input order.  With ``jobs<=1`` or fewer
    than two items the map runs inline in the calling process —
    no pool, no pickling — so the sequential path stays the reference
    behaviour the parallel path must reproduce.

    ``fn`` must be a module-level function and each item picklable; a
    worker exception propagates to the caller (the pool is torn down,
    remaining tasks are abandoned).

    ``shm`` routes result arrays of at least ``shm_threshold`` bytes
    through the shared-memory transport (see the module section
    above); results are value-identical either way — the transport
    changes how bytes move, never what they are.
    """
    effective = normalize_jobs(jobs)
    if effective <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(effective, len(items))
    task: "Callable[[Any], Any]" = (
        _ShmTask(fn, shm_threshold) if shm else fn
    )
    # fork keeps loaded modules (numpy, scipy) instead of re-importing
    # them per worker; every platform this repo targets supports it
    context = multiprocessing.get_context("fork")
    logger.info(
        "parallel map: %d tasks on %d workers", len(items), workers
    )
    # no sampler thread may be alive while the pool forks: a forked
    # child would inherit the thread's locks mid-publish but not the
    # thread itself (see RPR402 / docs/STATIC_ANALYSIS.md)
    pids: "list[int]" = []
    with live.suspend_samplers():
        sanitize.check_fork_safety()
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                try:
                    raw = list(pool.map(task, items, chunksize=1))
                finally:
                    pids = list(getattr(pool, "_processes", None) or ())
        except BaseException:
            # a failed map abandons completed-but-unread results; the
            # pool has joined its workers, so sweep their segments
            _sweep_worker_segments(pids)
            raise
    return [
        shm_loads(blob) if isinstance(blob, ShmBlob) else blob
        for blob in raw
    ]


# ---------------------------------------------------------------------------
# streaming fan-out: the worker -> parent live-event bridge


@dataclass
class CancelledTask:
    """Marker result for a task killed through its cancel token.

    ``phase``/``iteration`` name the progress publication that observed
    the cancellation — how far the run got before it was stopped.
    """

    index: int
    phase: str
    iteration: int


class LiveHandle:
    """Cancellation handle for one :func:`parallel_map_live` fan-out.

    ``cancel(i)`` sets task ``i``'s token; the worker's next progress
    publication raises :class:`repro.obs.live.CancelledRun` and the
    task resolves to :class:`CancelledTask`.  Cancellation is
    cooperative and idempotent; cancelling a finished task is a no-op.
    """

    def __init__(self, tokens: "Sequence[Any]") -> None:
        self._tokens = list(tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def cancel(self, index: int) -> None:
        """Request cooperative cancellation of task ``index``."""
        self._tokens[index].set()

    def cancelled(self, index: int) -> bool:
        """True when task ``index`` has been asked to stop."""
        return bool(self._tokens[index].is_set())


def _execute_task(
    fn: "Callable[[_T], _R]",
    index: int,
    item: "_T",
    task_bus: "live.EventBus",
) -> "tuple[str, Any]":
    """Run one task under its own live bus; shared by both paths.

    Inline and worker-process execution publish byte-identical event
    sequences because they run this exact function: a ``task``
    start marker, the engine's own events, and an ``end`` marker on
    success (a cancelled task ends with its last progress event
    instead).  Returns ``("done", result)`` or ``("cancelled",
    CancelledTask)``.
    """
    with live.session(task_bus):
        live.phase("task", "start")
        try:
            result: Any = fn(item)
        except live.CancelledRun as exc:
            return ("cancelled",
                    CancelledTask(index, exc.phase, exc.iteration))
        live.phase("task", "end")
        return ("done", result)


def _live_worker(
    fn: "Callable[[Any], Any]",
    index: int,
    item: Any,
    channel: Any,
    token: Any,
    shm_threshold: int,
) -> None:
    """Child-process body: forward events, then the task's outcome.

    Runs under a fork context, so ``fn``/``item`` arrive by memory
    inheritance (never pickled); events and results return through
    ``channel`` and are pickled there.  Message order per task is
    guaranteed by the queue's FIFO discipline: every event precedes
    the final ``done``/``cancelled``/``error`` message.

    ``shm_threshold > 0`` shm-encodes the outcome payload: its large
    arrays go to named segments and only an :class:`ShmBlob`
    descriptor rides the queue.  A dump failure cleans its own
    segments (see :func:`shm_dumps`) and reports as a task error.
    """
    try:
        task_bus = live.EventBus(
            source=index, cancel_check=token.is_set
        )
        task_bus.subscribe(
            lambda event: channel.put(("event", index, event))
        )
        kind, payload = _execute_task(fn, index, item, task_bus)
        if shm_threshold > 0:
            payload = shm_dumps(payload, shm_threshold)
        channel.put((kind, index, payload))
    except BaseException:
        channel.put(("error", index, traceback.format_exc()))


def parallel_map_live(
    fn: "Callable[[_T], _R]",
    items: "Sequence[_T]",
    jobs: "int | None" = 1,
    bus: "live.EventBus | None" = None,
    handle_ready: "Callable[[LiveHandle], None] | None" = None,
    always_fork: bool = False,
    shm: bool = True,
    shm_threshold: int = SHM_THRESHOLD_BYTES,
) -> "list[Any]":
    """:func:`parallel_map` with live event streaming and cancellation.

    Each task runs under its own :class:`repro.obs.live.EventBus`;
    events are republished on ``bus`` (the parent's) as they arrive,
    stamped with the task index as ``source``.  Results come back in
    input order; a cancelled task's slot holds a
    :class:`CancelledTask` marker instead of ``fn``'s return value.

    ``handle_ready`` (if given) receives the :class:`LiveHandle`
    before any task starts — subscribe a controller to ``bus`` first,
    then cancel tasks from its event callbacks.

    ``always_fork`` routes even a single task through a worker
    process instead of the inline path.  The placement service uses
    this: a job must not run CPU-bound engine code on a server
    thread, and its cancel token must be able to interrupt an
    in-flight run from another process.  Event streams stay
    bit-identical either way (both paths run :func:`_execute_task`).

    Ordering contract: per-task event order is preserved in both the
    inline and the worker-process path, so sorting the merged stream
    stably by ``source`` yields the same canonical sequence for any
    ``jobs`` — the bridge bit-identity tests pin this.  Cross-*task*
    interleaving is scheduling-dependent (that is what makes the
    stream live).

    ``shm`` enables the shared-memory result transport (worker
    outcomes with arrays >= ``shm_threshold`` bytes move through
    named segments; the queue carries descriptors).  Event and result
    *values* are bit-identical with the transport on or off; failure
    and cancellation paths drain the channel and sweep dead workers'
    segments so nothing is left in ``/dev/shm``.
    """
    if bus is None:
        bus = live.EventBus()
    effective = normalize_jobs(jobs)
    n = len(items)
    if not always_fork and (effective <= 1 or n <= 1):
        tokens = [threading.Event() for _ in range(n)]
        handle = LiveHandle(tokens)
        if handle_ready is not None:
            handle_ready(handle)
        results: "list[Any]" = []
        for index, item in enumerate(items):
            task_bus = live.EventBus(
                source=index, cancel_check=tokens[index].is_set
            )
            task_bus.subscribe(bus.publish)
            _, payload = _execute_task(fn, index, item, task_bus)
            results.append(payload)
        return results

    workers = min(effective, n)
    context = multiprocessing.get_context("fork")
    channel: Any = context.Queue()
    tokens = [context.Event() for _ in range(n)]
    handle = LiveHandle(tokens)
    if handle_ready is not None:
        handle_ready(handle)
    logger.info(
        "live parallel map: %d tasks on %d workers", n, workers
    )

    running: "dict[int, Any]" = {}
    out: "list[Any]" = [None] * n
    finished = [False] * n
    next_task = 0
    pids: "list[int]" = []
    threshold = shm_threshold if shm else 0
    failure: "str | None" = None
    #: consecutive empty polls seen after every running worker died —
    #: lets in-flight messages drain before declaring a lost worker
    dead_polls = 0
    while (next_task < n or running) and failure is None:
        while len(running) < workers and next_task < n:
            # pause samplers only around the fork itself so resource
            # telemetry keeps flowing while workers run
            with live.suspend_samplers():
                sanitize.check_fork_safety()
                proc = context.Process(
                    target=_live_worker,
                    args=(fn, next_task, items[next_task],
                          channel, tokens[next_task], threshold),
                    daemon=True,
                )
                proc.start()
            running[next_task] = proc
            pids.append(proc.pid)
            next_task += 1
        try:
            message = channel.get(timeout=0.1)
        except queue_mod.Empty:
            if any(p.is_alive() for p in running.values()):
                dead_polls = 0
                continue
            dead_polls += 1
            if dead_polls >= 20:
                lost = sorted(running)
                failure = (
                    f"worker process(es) for task(s) {lost} exited "
                    "without reporting a result"
                )
            continue
        dead_polls = 0
        kind, index, payload = message
        if kind == "event":
            bus.publish(payload)
        elif kind in ("done", "cancelled"):
            if isinstance(payload, ShmBlob):
                payload = shm_loads(payload)
            out[index] = payload
            finished[index] = True
            proc = running.pop(index)
            proc.join()
        else:  # "error": fail fast, stop the rest of the fleet
            failure = f"task {index} failed:\n{payload}"
    if failure is not None:
        for token in tokens:
            token.set()
        for proc in running.values():
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        # release segments referenced by still-queued results, then
        # sweep anything the dead workers created but never reported
        _drain_channel(channel)
        _sweep_worker_segments(pids)
        raise RuntimeError(failure)
    # belt and braces: every blob restored above unlinked its own
    # segments; anything left under a worker's prefix is a leak
    _sweep_worker_segments(pids)
    return out


def _drain_channel(channel: Any) -> None:
    """Empty the queue, releasing any shm blobs still in flight."""
    while True:
        try:
            message = channel.get_nowait()
        except queue_mod.Empty:
            return
        if isinstance(message, tuple) and len(message) == 3:
            discard_blob(message[2])
