"""Process-parallel fan-out with deterministic result ordering.

The paper's experiments are embarrassingly parallel at the *task*
level: benchmark cases, SA seeds and testcase rows never share state —
each worker builds its own circuit and engine from a picklable payload.
This module is the one place that owns the fork/join mechanics so
every fan-out site (``repro.bench run --jobs``, ``place_multiseed``,
the experiments drivers) behaves identically:

* **Deterministic ordering** — results come back in *input* order
  regardless of worker scheduling, so a parallel run is byte-for-byte
  the concatenation a sequential run would have produced.
* **Seed sharding** — parallelism never splits one seeded run; the
  unit of distribution is an entire seeded task, so per-task RNG
  streams are untouched and ``jobs=N`` output equals ``jobs=1``.
* **Inline fallback** — ``jobs<=1`` (or a single task) runs in the
  calling process with no pool, keeping debuggers, coverage and
  profilers usable on the exact production code path.

Workers are separate *processes* (the engines are CPU-bound Python and
numpy, so threads would serialise on the GIL for the pure-Python SA
hot loop).  Worker functions must be module-level (picklable) and take
a single payload argument.

Tracing: a worker process starts with no active tracer.  Fan-out sites
that want per-worker traces activate ``obs.tracing()`` inside the
worker, ship the :class:`repro.obs.Trace` back in the result (traces
are plain picklable dataclasses), and merge them into the parent's
tracer with :meth:`repro.obs.trace.Tracer.absorb`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

from .obs.log import get_logger

logger = get_logger("parallel")

_T = TypeVar("_T")
_R = TypeVar("_R")


def normalize_jobs(jobs: "int | None") -> int:
    """Clamp a ``--jobs`` value to ``[1, cpu_count]``.

    ``None`` and ``0`` mean "use every core"; negative values raise.
    """
    cpus = os.cpu_count() or 1
    if jobs is None or jobs == 0:
        return cpus
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return min(int(jobs), cpus)


def parallel_map(
    fn: "Callable[[_T], _R]",
    items: "Sequence[_T]",
    jobs: "int | None" = 1,
) -> "list[_R]":
    """Map ``fn`` over ``items`` with up to ``jobs`` worker processes.

    Results are returned in input order.  With ``jobs<=1`` or fewer
    than two items the map runs inline in the calling process —
    no pool, no pickling — so the sequential path stays the reference
    behaviour the parallel path must reproduce.

    ``fn`` must be a module-level function and each item picklable; a
    worker exception propagates to the caller (the pool is torn down,
    remaining tasks are abandoned).
    """
    effective = normalize_jobs(jobs)
    if effective <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(effective, len(items))
    # fork keeps loaded modules (numpy, scipy) instead of re-importing
    # them per worker; every platform this repo targets supports it
    context = multiprocessing.get_context("fork")
    logger.info(
        "parallel map: %d tasks on %d workers", len(items), workers
    )
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        return list(pool.map(fn, items, chunksize=1))
