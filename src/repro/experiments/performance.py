"""Drivers for the performance-driven experiments.

Covers Table V (FOM across 3 methods x {conventional, perf-driven}),
Table VI (CC-OTA detailed metrics), Table VII (area/HPWL/runtime of the
perf-driven methods) and Fig. 6 (FOM-area trade-off sweep).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..annealing import anneal_place
from ..api import place_eplace_a, place_xu_ispd19
from ..circuits import PAPER_TESTCASES, make
from ..gnn import PerformanceModel
from ..obs import trace
from ..obs.trace import Trace, tracing
from ..parallel import parallel_map
from ..perf_driven import (
    RefineParams,
    place_eplace_ap,
    place_perf_sa,
    place_perf_xu,
    train_model_for,
)
from ..simulate import fom, simulate, spec_of
from .common import Budgets, format_table, quick_mode_default


def _train_worker(
    payload: tuple[str, Budgets, bool],
) -> tuple[str, PerformanceModel, "Trace | None"]:
    """Train one circuit's model (module-level for fork workers).

    Training is fully seeded (dataset streams, member init, epoch
    permutations), so the model is identical no matter which process
    runs it; the worker's trace rides back for the parent to absorb.
    """
    name, budgets, traced = payload
    with tracing(enabled=traced) as tracer:
        model, _ = train_model_for(
            make(name),
            samples=budgets.model_samples,
            epochs=budgets.model_epochs,
            sa_sweep_runs=budgets.model_sweep_runs,
            adversarial_rounds=budgets.model_adversarial_rounds,
        )
    return name, model, tracer.to_trace() if traced else None


def train_models(
    circuits: Sequence[str] = PAPER_TESTCASES,
    quick: bool | None = None,
    jobs: int = 1,
) -> dict[str, PerformanceModel]:
    """One GNN performance model per design (shared by all methods).

    ``jobs > 1`` shards circuits over worker processes; every training
    run is seeded end to end, so the returned models are bit-identical
    to a sequential run and worker traces merge into the caller's
    tracer in circuit order.
    """
    effective_quick = quick_mode_default() if quick is None else quick
    budgets = Budgets.select(effective_quick)
    tracer = trace.current()
    results = parallel_map(
        _train_worker,
        [(name, budgets, tracer.enabled) for name in circuits],
        jobs=jobs,
    )
    for _, _, worker_trace in results:
        if worker_trace is not None:
            tracer.absorb(worker_trace)
    return {name: model for name, model, _ in results}


def _table5_row(
    payload: tuple[str, PerformanceModel, Budgets, bool],
) -> tuple[dict, "Trace | None"]:
    """One Table V row: 3 methods x {conv, perf} on one circuit."""
    name, model, budgets, traced = payload
    with tracing(enabled=traced) as tracer:
        row: dict = {"design": name}
        row["sa_conv"] = fom(anneal_place(
            make(name), budgets.sa_params(
                iterations=budgets.perf_sa_iterations)).placement)
        row["sa_perf"] = fom(place_perf_sa(
            make(name), model,
            budgets.sa_params(iterations=budgets.perf_sa_iterations,
                              perf_weight=3.0)).placement)
        row["xu_conv"] = fom(place_xu_ispd19(
            make(name), gp_params=budgets.xu_params).placement)
        row["xu_perf"] = fom(place_perf_xu(
            make(name), model, gp_params=budgets.xu_params,
            alpha=2.0).placement)
        row["ep_conv"] = fom(place_eplace_a(
            make(name), gp_params=budgets.gp_params,
            dp_params=budgets.dp_params).placement)
        row["ep_perf"] = fom(place_eplace_ap(
            make(name), model, gp_params=budgets.gp_params,
            alpha=2.0).placement)
    return row, tracer.to_trace() if traced else None


def run_table5(
    models: dict[str, PerformanceModel] | None = None,
    quick: bool | None = None,
    circuits: Sequence[str] = PAPER_TESTCASES,
    jobs: int = 1,
) -> list[dict]:
    """Table V: FOM of 3 methods x {Conv, Perf} on every design.

    ``jobs > 1`` distributes circuits over worker processes (training,
    when needed, fans out first); every engine run is seeded, so rows
    are identical at any job count.
    """
    effective_quick = quick_mode_default() if quick is None else quick
    budgets = Budgets.select(effective_quick)
    if models is None:
        models = train_models(circuits, effective_quick, jobs=jobs)
    tracer = trace.current()
    results = parallel_map(
        _table5_row,
        [(name, models[name], budgets, tracer.enabled)
         for name in circuits],
        jobs=jobs,
    )
    for _, worker_trace in results:
        if worker_trace is not None:
            tracer.absorb(worker_trace)
    return [row for row, _ in results]


def format_table5(rows: list[dict]) -> str:
    body = [[r["design"], r["sa_conv"], r["sa_perf"], r["xu_conv"],
             r["xu_perf"], r["ep_conv"], r["ep_perf"]] for r in rows]
    if rows:
        avg = ["Avg."]
        for key in ("sa_conv", "sa_perf", "xu_conv", "xu_perf",
                    "ep_conv", "ep_perf"):
            avg.append(sum(r[key] for r in rows) / len(rows))
        body.append(avg)
    return format_table(
        ["Design", "SA conv", "SA perf", "Xu conv", "Xu perf*",
         "eP-A conv", "eP-AP"],
        body,
        title="Table V: FOM comparison (conventional vs "
              "performance-driven)",
        precision=3,
    )


def run_table6(
    model: PerformanceModel | None = None,
    quick: bool | None = None,
) -> dict:
    """Table VI: CC-OTA detailed metrics, ePlace-A vs ePlace-AP."""
    budgets = Budgets.select(quick)
    if model is None:
        model, _ = train_model_for(
            make("CC-OTA"), samples=budgets.model_samples,
            epochs=budgets.model_epochs)
    conv = place_eplace_a(make("CC-OTA"), gp_params=budgets.gp_params,
                          dp_params=budgets.dp_params)
    perf = place_eplace_ap(make("CC-OTA"), model,
                           gp_params=budgets.gp_params, alpha=2.0)
    spec = spec_of(conv.placement)
    return {
        "spec": {m.name: m.target for m in spec.metrics},
        "eplace_a": simulate(conv.placement),
        "eplace_ap": simulate(perf.placement),
        "fom_a": fom(conv.placement),
        "fom_ap": fom(perf.placement),
    }


def format_table6(data: dict) -> str:
    metrics = list(data["spec"])
    rows = []
    for arm in ("eplace_a", "eplace_ap"):
        row = [arm]
        for name in metrics:
            value = data[arm][name]
            spec_value = data["spec"][name]
            pct = min(value / spec_value, 1.0) * 100
            row.append(f"{value:.1f} ({pct:.0f}%)")
        row.append(f"{data['fom_a' if arm == 'eplace_a' else 'fom_ap']:.2f}")
        rows.append(row)
    return format_table(
        ["Method", *metrics, "FOM"],
        rows,
        title="Table VI: CC-OTA detailed performance "
              f"(spec: {data['spec']})",
    )


def _table7_row(
    payload: tuple[str, PerformanceModel, Budgets, bool],
) -> tuple[dict, "Trace | None"]:
    """One Table VII row: the three perf-driven flows on one circuit."""
    name, model, budgets, traced = payload
    with tracing(enabled=traced) as tracer:
        sa = place_perf_sa(
            make(name), model,
            budgets.sa_params(iterations=budgets.perf_sa_iterations,
                              perf_weight=3.0))
        xu = place_perf_xu(make(name), model,
                           gp_params=budgets.xu_params, alpha=2.0)
        ap = place_eplace_ap(make(name), model,
                             gp_params=budgets.gp_params, alpha=2.0)
        row: dict = {"design": name}
        for key, result in (("sa", sa), ("xu", xu), ("ap", ap)):
            metrics = result.metrics()
            row[f"area_{key}"] = metrics["area"]
            row[f"hpwl_{key}"] = metrics["hpwl"]
            row[f"runtime_{key}"] = result.runtime_s
    return row, tracer.to_trace() if traced else None


def run_table7(
    models: dict[str, PerformanceModel] | None = None,
    quick: bool | None = None,
    circuits: Sequence[str] = PAPER_TESTCASES,
    jobs: int = 1,
) -> list[dict]:
    """Table VII: area/HPWL/runtime of the performance-driven methods.

    ``jobs > 1`` shards circuits over workers; metrics are identical
    at any job count (runtimes are each flow's own stopwatch, so CPU
    contention can inflate them — use ``jobs=1`` for the paper's
    runtime columns).
    """
    effective_quick = quick_mode_default() if quick is None else quick
    budgets = Budgets.select(effective_quick)
    if models is None:
        models = train_models(circuits, effective_quick, jobs=jobs)
    tracer = trace.current()
    results = parallel_map(
        _table7_row,
        [(name, models[name], budgets, tracer.enabled)
         for name in circuits],
        jobs=jobs,
    )
    for _, worker_trace in results:
        if worker_trace is not None:
            tracer.absorb(worker_trace)
    return [row for row, _ in results]


def format_table7(rows: list[dict]) -> str:
    from .common import geometric_mean_ratio

    body = [[r["design"],
             r["area_sa"], r["hpwl_sa"], r["runtime_sa"],
             r["area_xu"], r["hpwl_xu"], r["runtime_xu"],
             r["area_ap"], r["hpwl_ap"], r["runtime_ap"]]
            for r in rows]
    if rows:
        avg = ["Avg.(X)"]
        for method in ("sa", "xu"):
            for metric in ("area", "hpwl", "runtime"):
                avg.append(geometric_mean_ratio(
                    rows, f"{metric}_{method}", f"{metric}_ap"))
        avg.extend([1.0, 1.0, 1.0])
        body.append(avg)
    return format_table(
        ["Design", "pSA area", "pSA hpwl", "pSA time",
         "Perf* area", "Perf* hpwl", "Perf* time",
         "eP-AP area", "eP-AP hpwl", "eP-AP time"],
        body,
        title="Table VII: performance-driven area/HPWL/runtime",
    )


def run_fig6(
    model: PerformanceModel | None = None,
    quick: bool | None = None,
    design: str = "CM-OTA1",
) -> list[dict]:
    """Fig. 6: FOM-area trade-off points by varying parameters."""
    budgets = Budgets.select(quick)
    if model is None:
        model, _ = train_model_for(
            make(design), samples=budgets.model_samples,
            epochs=budgets.model_epochs)
    points = []
    for alpha in (0.5, 2.0, 6.0):
        for eta in (0.15, 0.45):
            ap = place_eplace_ap(
                make(design), model,
                gp_params=replace(budgets.gp_params, eta=eta),
                alpha=alpha,
                refine_params=RefineParams(),
            )
            points.append({"method": "eplace-ap", "alpha": alpha,
                           "eta": eta, "area": ap.metrics()["area"],
                           "fom": fom(ap.placement)})
    for weight in (1.0, 3.0):
        for area_weight in (0.5, 1.0, 2.0):
            sa = place_perf_sa(
                make(design), model,
                budgets.sa_params(
                    iterations=budgets.perf_sa_iterations,
                    perf_weight=weight, area_weight=area_weight))
            points.append({"method": "perf-sa", "perf_weight": weight,
                           "area_weight": area_weight,
                           "area": sa.metrics()["area"],
                           "fom": fom(sa.placement)})
    for alpha in (0.5, 2.0, 6.0):
        xu = place_perf_xu(make(design), model,
                           gp_params=budgets.xu_params, alpha=alpha)
        points.append({"method": "perf-xu", "alpha": alpha,
                       "area": xu.metrics()["area"],
                       "fom": fom(xu.placement)})
    return points


def format_fig6(points: list[dict]) -> str:
    return format_table(
        ["Method", "Area", "FOM"],
        [[p["method"], p["area"], round(p["fom"], 3)] for p in points],
        title="Fig. 6: FOM-area trade-off points (CM-OTA1)",
        precision=3,
    )
