"""Shared infrastructure for the table/figure reproduction drivers.

Every driver returns plain data (lists of row dicts) plus a
``format_*`` helper that renders the same ASCII table the paper prints.
``quick=True`` shrinks budgets so the drivers double as integration
tests; the benchmark harness runs them at full fidelity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..annealing import SAParams
from ..eplace import EPlaceParams
from ..legalize import DetailedParams
from ..xu_ispd19 import XuParams


def quick_mode_default() -> bool:
    """Honour the REPRO_QUICK environment switch."""
    return os.environ.get("REPRO_QUICK", "") not in ("", "0", "false")


@dataclass
class Budgets:
    """Per-method effort settings used across experiments."""

    sa_iterations: int
    sa_seed: int
    gp_params: EPlaceParams
    dp_params: DetailedParams
    xu_params: XuParams
    model_samples: int
    model_epochs: int
    model_sweep_runs: int
    model_adversarial_rounds: int
    perf_sa_iterations: int

    @classmethod
    def full(cls) -> "Budgets":
        return cls(
            sa_iterations=400_000,
            sa_seed=3,
            gp_params=EPlaceParams(utilization=0.8, eta=0.3),
            dp_params=DetailedParams(),
            xu_params=XuParams(),
            model_samples=700,
            model_epochs=60,
            model_sweep_runs=16,
            model_adversarial_rounds=2,
            perf_sa_iterations=25_000,
        )

    @classmethod
    def quick(cls) -> "Budgets":
        return cls(
            sa_iterations=4_000,
            sa_seed=3,
            gp_params=EPlaceParams(utilization=0.8, eta=0.3,
                                   max_iters=150, min_iters=30, bins=16),
            dp_params=DetailedParams(iterate_rounds=2, refine_rounds=2),
            xu_params=XuParams(stages=5, cg_iterations=40),
            model_samples=160,
            model_epochs=18,
            model_sweep_runs=3,
            model_adversarial_rounds=0,
            perf_sa_iterations=4_000,
        )

    @classmethod
    def select(cls, quick: bool | None = None) -> "Budgets":
        if quick is None:
            quick = quick_mode_default()
        return cls.quick() if quick else cls.full()

    def sa_params(self, **overrides) -> SAParams:
        base = dict(iterations=self.sa_iterations, seed=self.sa_seed)
        base.update(overrides)
        return SAParams(**base)


def geometric_mean_ratio(rows, key_num: str, key_den: str) -> float:
    """Average ratio (arithmetic mean of per-row ratios, as the paper's
    'Avg. (X)' lines do)."""
    ratios = [row[key_num] / row[key_den] for row in rows
              if row[key_den] > 0]
    return float(np.mean(ratios)) if ratios else float("nan")


def format_table(headers: list[str], rows: list[list], title: str = "",
                 precision: int = 2) -> str:
    """Plain fixed-width table renderer."""
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows))
        if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)
