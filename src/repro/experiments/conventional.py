"""Drivers for the conventional-placement experiments.

Covers Table I (soft vs hard GP symmetry), Fig. 2 (area-term ablation),
Table III (main three-way comparison), Table IV (detailed-placement-only
comparison) and Fig. 5 (HPWL-area trade-off sweep).
"""

from __future__ import annotations

from dataclasses import replace

from ..annealing import anneal_place
from ..api import place_eplace_a, place_xu_ispd19
from ..circuits import PAPER_TESTCASES, make
from ..eplace import eplace_global
from ..legalize import (
    DetailedParams,
    detailed_place,
    lp_two_stage_detailed_placement,
)
from ..parallel import parallel_map
from ..placement import audit_constraints
from .common import Budgets, format_table, geometric_mean_ratio, \
    quick_mode_default

#: circuits the paper uses for Table I
TABLE1_CIRCUITS = ("CC-OTA", "Comp2", "VCO2")
#: circuits shown in Fig. 2's bars
FIG2_CIRCUITS = ("CC-OTA", "Comp2", "VCO2")
#: circuits in Table IV
TABLE4_CIRCUITS = ("VCO1", "Comp1", "SCF")


def _ablation_dp_params() -> DetailedParams:
    """Paper-faithful detailed placement for GP ablations.

    The LNS refinement layers (our extension beyond the paper's DP) can
    re-optimise away most of a global-placement difference; disabling
    them isolates the effect the ablation studies, matching how the
    paper's simpler DP exposes its GP choices.
    """
    return DetailedParams(iterate_rounds=2, refine_rounds=0)


def run_table1(quick: bool | None = None) -> list[dict]:
    """Table I: soft vs hard symmetry constraints in global placement.

    Both arms share the detailed placer; the paper's finding is that
    hard GP symmetry costs area and wirelength end to end.
    """
    budgets = Budgets.select(quick)
    rows = []
    for name in TABLE1_CIRCUITS:
        row = {"design": name}
        for mode in ("soft", "hard"):
            circuit = make(name)
            gp_params = replace(budgets.gp_params, symmetry_mode=mode)
            gp = eplace_global(circuit, gp_params)
            dp = detailed_place(gp.placement, _ablation_dp_params())
            metrics = dp.metrics()
            row[f"area_{mode}"] = metrics["area"]
            row[f"hpwl_{mode}"] = metrics["hpwl"]
            row[f"runtime_{mode}"] = gp.runtime_s + dp.runtime_s
            assert audit_constraints(dp.placement).ok
        rows.append(row)
    return rows


def format_table1(rows: list[dict]) -> str:
    return format_table(
        ["Design", "Area soft", "Area hard", "HPWL soft", "HPWL hard",
         "Time soft", "Time hard"],
        [[r["design"], r["area_soft"], r["area_hard"], r["hpwl_soft"],
          r["hpwl_hard"], r["runtime_soft"], r["runtime_hard"]]
         for r in rows],
        title="Table I: soft vs hard symmetry constraints in GP",
    )


def run_fig2(quick: bool | None = None) -> list[dict]:
    """Fig. 2: with vs without the area term in the GP objective.

    Evaluated at a low utilisation (0.4) so the placement region leaves
    room to spread — the regime where the area term matters (with a
    tight region, the density term alone confines the devices and the
    ablation is invisible).  Rows carry both global-placement metrics
    (``gp_*``, where the ablated term acts) and post-detailed-placement
    metrics (``area_*``/``hpwl_*``); our ILP compaction recovers part
    of the area loss that the paper's simpler DP could not.
    """
    budgets = Budgets.select(quick)
    rows = []
    for name in FIG2_CIRCUITS:
        row = {"design": name}
        for label, eta in (("with", budgets.gp_params.eta),
                           ("without", 0.0)):
            circuit = make(name)
            gp = eplace_global(
                circuit, replace(budgets.gp_params, eta=eta,
                                 utilization=0.4))
            from ..placement import summarize

            gp_metrics = summarize(gp.placement)
            dp = detailed_place(gp.placement, _ablation_dp_params())
            metrics = dp.metrics()
            row[f"gp_area_{label}"] = gp_metrics["area"]
            row[f"gp_hpwl_{label}"] = gp_metrics["hpwl"]
            row[f"area_{label}"] = metrics["area"]
            row[f"hpwl_{label}"] = metrics["hpwl"]
        rows.append(row)
    return rows


def format_fig2(rows: list[dict]) -> str:
    out_rows = []
    for r in rows:
        out_rows.append([
            r["design"],
            r["gp_area_with"], r["gp_area_without"],
            100.0 * (r["gp_area_without"] / r["gp_area_with"] - 1.0),
            r["area_with"], r["area_without"],
            100.0 * (r["area_without"] / r["area_with"] - 1.0),
        ])
    return format_table(
        ["Design", "GP area w/", "GP area w/o", "dGP%",
         "DP area w/", "DP area w/o", "dDP%"],
        out_rows,
        title="Fig. 2: area-term ablation (GP stage and post-DP)",
    )


def _table3_row(payload: tuple[str, "bool | None"]) -> dict:
    """One Table III row: all three engines on one circuit.

    Module-level so :func:`repro.parallel.parallel_map` can shard rows
    across worker processes; every engine run is seeded, so a row is
    identical no matter which process computes it.
    """
    name, quick = payload
    budgets = Budgets.select(quick)
    sa = anneal_place(make(name), budgets.sa_params())
    xu = place_xu_ispd19(make(name), gp_params=budgets.xu_params)
    ep = place_eplace_a(make(name), gp_params=budgets.gp_params,
                        dp_params=budgets.dp_params)
    row = {"design": name}
    for key, result in (("sa", sa), ("xu", xu), ("ep", ep)):
        metrics = result.metrics()
        assert metrics["overlap"] < 1e-6, (name, key)
        assert audit_constraints(result.placement).ok, (name, key)
        row[f"area_{key}"] = metrics["area"]
        row[f"hpwl_{key}"] = metrics["hpwl"]
        row[f"runtime_{key}"] = result.runtime_s
    return row


def run_table3(quick: bool | None = None,
               circuits=PAPER_TESTCASES, jobs: int = 1) -> list[dict]:
    """Table III: SA vs previous analytical work [11] vs ePlace-A.

    ``jobs > 1`` distributes circuits over worker processes; rows come
    back in circuit order with identical metrics (reported runtimes
    are each engine's own stopwatch, so they remain comparable, though
    CPU contention can inflate them — use ``jobs=1`` for the paper's
    runtime columns).
    """
    # resolve the env default once so worker processes cannot disagree
    # with the parent about quick mode
    effective_quick = quick_mode_default() if quick is None else quick
    return parallel_map(
        _table3_row,
        [(name, effective_quick) for name in circuits],
        jobs=jobs,
    )


def table3_ratios(rows: list[dict]) -> dict[str, float]:
    """The paper's 'Avg. (X)' line: each method relative to ePlace-A."""
    out = {}
    for method in ("sa", "xu"):
        for metric in ("area", "hpwl", "runtime"):
            out[f"{metric}_{method}_over_ep"] = geometric_mean_ratio(
                rows, f"{metric}_{method}", f"{metric}_ep")
    return out


def format_table3(rows: list[dict]) -> str:
    body = [[r["design"],
             r["area_sa"], r["hpwl_sa"], r["runtime_sa"],
             r["area_xu"], r["hpwl_xu"], r["runtime_xu"],
             r["area_ep"], r["hpwl_ep"], r["runtime_ep"]]
            for r in rows]
    ratios = table3_ratios(rows)
    body.append([
        "Avg.(X)",
        ratios["area_sa_over_ep"], ratios["hpwl_sa_over_ep"],
        ratios["runtime_sa_over_ep"],
        ratios["area_xu_over_ep"], ratios["hpwl_xu_over_ep"],
        ratios["runtime_xu_over_ep"],
        1.0, 1.0, 1.0,
    ])
    return format_table(
        ["Design", "SA area", "SA hpwl", "SA time",
         "Xu area", "Xu hpwl", "Xu time",
         "eP-A area", "eP-A hpwl", "eP-A time"],
        body,
        title="Table III: conventional comparison "
              "(SA / previous work [11] / ePlace-A)",
    )


def run_table4(quick: bool | None = None) -> list[dict]:
    """Table IV: both detailed placers from identical GP solutions."""
    budgets = Budgets.select(quick)
    rows = []
    for name in TABLE4_CIRCUITS:
        circuit = make(name)
        gp = eplace_global(circuit, budgets.gp_params)
        lp = lp_two_stage_detailed_placement(
            gp.placement, DetailedParams(allow_flipping=False))
        ilp = detailed_place(gp.placement, _ablation_dp_params())
        row = {"design": name}
        for key, result in (("lp", lp), ("ilp", ilp)):
            metrics = result.metrics()
            row[f"area_{key}"] = metrics["area"]
            row[f"hpwl_{key}"] = metrics["hpwl"]
            row[f"runtime_{key}"] = result.runtime_s
        rows.append(row)
    return rows


def format_table4(rows: list[dict]) -> str:
    return format_table(
        ["Design", "LP[11] area", "LP[11] hpwl", "LP[11] time",
         "ILP area", "ILP hpwl", "ILP time"],
        [[r["design"], r["area_lp"], r["hpwl_lp"], r["runtime_lp"],
          r["area_ilp"], r["hpwl_ilp"], r["runtime_ilp"]]
         for r in rows],
        title="Table IV: detailed placement from identical GP "
              "(runtime covers DP only)",
    )


def run_fig5(quick: bool | None = None,
             design: str = "CM-OTA1") -> list[dict]:
    """Fig. 5: HPWL-area trade-off points by varying parameters."""
    budgets = Budgets.select(quick)
    points = []

    # ePlace-A: sweep the region utilisation and the GP area weight
    # (the knobs that actually move its area/wirelength balance; the
    # DP's mu only breaks ties once the GP geometry is fixed)
    for utilization in (0.5, 0.7, 0.9):
        for eta in (0.1, 0.45):
            ep = place_eplace_a(
                make(design),
                gp_params=replace(budgets.gp_params,
                                  utilization=utilization, eta=eta),
                dp_params=budgets.dp_params,
            )
            metrics = ep.metrics()
            points.append({"method": "eplace-a", "eta": eta,
                           "utilization": utilization,
                           "area": metrics["area"],
                           "hpwl": metrics["hpwl"]})

    # SA: sweep the cost's area weight
    for weight in (0.3, 0.6, 1.0, 1.7, 3.0):
        sa = anneal_place(
            make(design), budgets.sa_params(area_weight=weight))
        metrics = sa.metrics()
        points.append({"method": "annealing", "area_weight": weight,
                       "area": metrics["area"],
                       "hpwl": metrics["hpwl"]})

    # previous work [11]: sweep its density emphasis (spreading)
    for ratio in (0.02, 0.05, 0.15):
        xu = place_xu_ispd19(
            make(design),
            gp_params=replace(budgets.xu_params,
                              lambda_init_ratio=ratio),
        )
        metrics = xu.metrics()
        points.append({"method": "xu-ispd19", "lambda_ratio": ratio,
                       "area": metrics["area"],
                       "hpwl": metrics["hpwl"]})
    return points


def pareto_front(points: list[dict]) -> list[dict]:
    """Non-dominated (area, hpwl) subset, ascending by area."""
    ordered = sorted(points, key=lambda p: (p["area"], p["hpwl"]))
    front = []
    best_hpwl = float("inf")
    for point in ordered:
        if point["hpwl"] < best_hpwl - 1e-9:
            front.append(point)
            best_hpwl = point["hpwl"]
    return front


def format_fig5(points: list[dict]) -> str:
    return format_table(
        ["Method", "Area", "HPWL"],
        [[p["method"], p["area"], p["hpwl"]] for p in points],
        title="Fig. 5: HPWL-area trade-off points (CM-OTA1)",
    )
