"""High-level placement API: one call per method.

The three conventional (performance-oblivious) flows of the paper's
Table III:

* ``eplace-a`` — ePlace-A global placement (WA + eDensity + area term,
  Nesterov) followed by the single-stage ILP detailed placement with
  flipping and direction refinement.
* ``xu-ispd19`` — the previous analytical work [11]: NTUplace3-style
  global placement (LSE + bell density, CG) followed by the two-stage
  LP detailed placement (no flipping).
* ``annealing`` — sequence-pair simulated annealing over symmetry
  islands (end to end; no separate detailed step).

Performance-driven variants live in :mod:`repro.perf_driven`.

Every flow runs under the observability layer (:mod:`repro.obs`): when
a tracer is active (``with obs.tracing():``) the returned
:class:`PlacerResult` carries a full :class:`repro.obs.Trace` with
per-phase spans and per-iteration convergence records.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from .annealing import SAParams, anneal_place
from .eplace import EPlaceParams, batch_params, eplace_global, \
    eplace_global_batch
from .legalize import DetailedParams, detailed_place, \
    lp_two_stage_detailed_placement
from .netlist import Circuit
from .obs import diagnose, live, metrics, trace, tracing
from .obs.racing import RaceController, RaceResult, RacingParams
from .parallel import CancelledTask, parallel_map, parallel_map_live
from .placement import PlacerResult
from .xu_ispd19 import XuParams, xu_global

#: methods accepted by :func:`place`
METHODS = ("eplace-a", "xu-ispd19", "annealing")


def place_eplace_a(
    circuit: Circuit,
    gp_params: EPlaceParams | None = None,
    dp_params: DetailedParams | None = None,
) -> PlacerResult:
    """End-to-end ePlace-A: global placement + ILP detailed placement."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    with tracer.span("flow.eplace-a", circuit=circuit.name):
        gp = eplace_global(circuit, gp_params or EPlaceParams(
            utilization=0.8, eta=0.3))
        dp = detailed_place(gp.placement, dp_params)
    metrics.counter("repro.placements").inc()
    result = PlacerResult(
        placement=dp.placement,
        runtime_s=clock.elapsed(),
        method="eplace-a",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )
    diagnose.attach(result)
    return result


def place_xu_ispd19(
    circuit: Circuit,
    gp_params: XuParams | None = None,
    dp_params: DetailedParams | None = None,
) -> PlacerResult:
    """End-to-end previous analytical work [11]: CG GP + two-stage LP."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    with tracer.span("flow.xu-ispd19", circuit=circuit.name):
        gp = xu_global(circuit, gp_params)
        dp_params = dp_params or DetailedParams(allow_flipping=False)
        dp = lp_two_stage_detailed_placement(gp.placement, dp_params)
    metrics.counter("repro.placements").inc()
    result = PlacerResult(
        placement=dp.placement,
        runtime_s=clock.elapsed(),
        method="xu-ispd19",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )
    diagnose.attach(result)
    return result


def place_annealing(
    circuit: Circuit,
    params: SAParams | None = None,
) -> PlacerResult:
    """End-to-end simulated-annealing placement."""
    result = anneal_place(circuit, params)
    metrics.counter("repro.placements").inc()
    return result


def _reseed_kwargs(
    method: str, kwargs: dict[str, Any], seed: int,
) -> dict[str, Any]:
    """Return ``kwargs`` with the engine's seed field set to ``seed``.

    Mirrors the parameter layout :func:`place` expects: ``params`` for
    annealing, ``gp_params`` for the analytical flows (their detailed
    stages are deterministic and carry no seed).
    """
    out = dict(kwargs)
    if method == "annealing":
        out["params"] = replace(
            out.get("params") or SAParams(), seed=seed
        )
    elif method == "eplace-a":
        out["gp_params"] = replace(
            out.get("gp_params") or EPlaceParams(
                utilization=0.8, eta=0.3),
            seed=seed,
        )
    elif method == "xu-ispd19":
        out["gp_params"] = replace(
            out.get("gp_params") or XuParams(), seed=seed
        )
    else:
        raise ValueError(
            f"unknown method {method!r}; choose one of {METHODS}"
        )
    return out


def _seed_worker(
    payload: tuple[Circuit, str, int, dict[str, Any], bool],
) -> PlacerResult:
    """One seeded :func:`place` run, optionally under its own tracer.

    Module-level so :func:`repro.parallel.parallel_map` can pickle it;
    also the inline (``jobs=1``) execution path, keeping sequential
    and parallel runs on identical code.
    """
    circuit, method, seed, kwargs, traced = payload
    kwargs = _reseed_kwargs(method, kwargs, seed)
    if traced:
        with tracing():
            return place(circuit, method, **kwargs)
    return place(circuit, method, **kwargs)


def _expected_progress_iterations(
    method: str, kwargs: dict[str, Any],
) -> int:
    """Highest progress-iteration index a seeded run can publish.

    Derived from the engine parameters that bound the instrumented
    loop (:func:`repro.obs.live.progress` sites); racing checkpoints
    are laid out against this ceiling.  Engines that stop early (CG
    convergence, overflow target) are covered by the controller's
    finished-seed barrier rule.
    """
    if method == "annealing":
        p = kwargs.get("params") or SAParams()
        stages = -(-p.iterations // p.moves_per_temp)  # ceil division
        return max(1, stages - 1)  # sa.stage indices are 0-based
    if method == "eplace-a":
        p = kwargs.get("gp_params") or EPlaceParams(
            utilization=0.8, eta=0.3)
        return max(1, p.max_iters)
    if method == "xu-ispd19":
        p = kwargs.get("gp_params") or XuParams()
        return max(1, p.stages * p.cg_iterations)
    raise ValueError(
        f"unknown method {method!r}; choose one of {METHODS}"
    )


def _batch_flow_result(
    gp: PlacerResult, dp_params: "DetailedParams | None",
) -> PlacerResult:
    """Finish one batched-GP seed: detailed placement + flow result.

    Mirrors :func:`place_eplace_a`'s result shape; ``gp_runtime_s``
    is the whole batch's shared wall time (lockstep instances are not
    separable), and the per-seed trace carries the GP convergence
    records (DP spans land on the caller's ambient tracer).
    """
    dp = detailed_place(gp.placement, dp_params)
    metrics.counter("repro.placements").inc()
    result = PlacerResult(
        placement=dp.placement,
        runtime_s=gp.runtime_s + dp.runtime_s,
        method="eplace-a",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=gp.trace,
    )
    diagnose.attach(result)
    return result


def _place_multiseed_batch(
    circuit: Circuit,
    method: str,
    seeds: "Sequence[int]",
    racing: "RacingParams | None",
    kwargs: "dict[str, Any]",
) -> "list[PlacerResult] | RaceResult":
    """Lockstep-batched :func:`place_multiseed` (eplace-a only).

    All seeds' global placements advance together through shared
    spectral solves (:func:`repro.eplace.eplace_global_batch`) in this
    process; the deterministic detailed stage then runs per seed.
    """
    if method != "eplace-a":
        raise ValueError(
            "batch=True needs method='eplace-a' (the lockstep driver "
            f"batches the eDensity solve), got {method!r}"
        )
    unknown = set(kwargs) - {"gp_params", "dp_params"}
    if unknown:
        raise TypeError(
            f"unexpected kwargs for batched eplace-a: {sorted(unknown)}"
        )
    gp_base = kwargs.get("gp_params") or EPlaceParams(
        utilization=0.8, eta=0.3)
    dp_params = kwargs.get("dp_params")
    params_list = batch_params(gp_base, seeds)
    tracer = trace.current()
    traced = tracer.enabled

    if racing is None and not live.active():
        gp_results = eplace_global_batch(circuit, params_list)
        out = []
        for gp in gp_results:
            assert isinstance(gp, PlacerResult)
            result = _batch_flow_result(gp, dp_params)
            if traced:
                tracer.absorb(result.trace)
            out.append(result)
        return out

    bus = live.current() or live.EventBus()
    controller: "RaceController | None" = None
    handle_ready = None
    if racing is not None:
        expected = racing.expected_iterations or \
            _expected_progress_iterations(method, kwargs)
        controller = RaceController(racing, seeds, expected)
        controller.attach(bus)
        handle_ready = controller.bind
    try:
        raw = eplace_global_batch(
            circuit, params_list, bus=bus, handle_ready=handle_ready,
        )
        results: "list[PlacerResult | None]" = []
        for item in raw:
            if isinstance(item, CancelledTask):
                results.append(None)
                continue
            result = _batch_flow_result(item, dp_params)
            if traced:
                tracer.absorb(result.trace)
            results.append(result)
        if controller is None:
            return results
        controller.finalize()
        return RaceResult(
            seeds=list(seeds),
            results=results,
            kills=controller.kills,
            metric=controller.metric or "",
            progress_events=controller.progress_events,
            winner_index=controller.winner_index(),
        )
    finally:
        if controller is not None:
            controller.detach()


def place_multiseed(
    circuit: Circuit,
    method: str = "annealing",
    seeds: "Sequence[int]" = (1, 2, 3),
    jobs: int = 1,
    racing: "RacingParams | None" = None,
    batch: bool = False,
    **kwargs: Any,
) -> "list[PlacerResult] | RaceResult":
    """Run :func:`place` once per seed; results come back in seed order.

    Seeds shard across up to ``jobs`` worker processes
    (:mod:`repro.parallel`); each run is an independent seeded engine
    execution, so placements and metrics are identical for any
    ``jobs``.  When the calling thread has an active tracer, every
    worker runs under its own tracer and the per-seed traces are
    absorbed back into the caller's (in seed order), so the merged
    trace matches a sequential traced run.

    Pick a winner with e.g. ``min(results, key=lambda r:
    r.metrics()["hpwl"])`` — engines normalise their cost terms
    differently, so the caller chooses the selection metric.

    Live telemetry: when the calling thread has an active
    :class:`repro.obs.live.EventBus` (``with live.session():``), the
    fan-out streams every seed's per-iteration events onto it via
    :func:`repro.parallel.parallel_map_live`, stamped with the seed's
    task index as ``source``.

    Racing: pass ``racing=RacingParams(...)`` to race the seeds — a
    :class:`repro.obs.racing.RaceController` watches the merged
    convergence stream and cancels dominated seeds once warmup has
    passed.  The return value becomes a
    :class:`~repro.obs.racing.RaceResult` whose ``results`` list holds
    ``None`` for seeds whose kill landed; ``winner`` is deterministic
    across job counts.

    Batch mode: ``batch=True`` (eplace-a only) runs every seed's
    global placement in lockstep through shared batched spectral
    solves in *this* process (``jobs`` is ignored) — see
    :mod:`repro.eplace.batch` for the exact-semantics contract.  Live
    streaming and racing work identically; the detailed stage still
    runs per seed.
    """
    if batch:
        return _place_multiseed_batch(
            circuit, method, seeds, racing, kwargs
        )
    tracer = trace.current()
    traced = tracer.enabled
    payloads = [
        (circuit, method, seed, kwargs, traced) for seed in seeds
    ]
    if racing is None and not live.active():
        results = parallel_map(_seed_worker, payloads, jobs=jobs)
        if traced:
            for result in results:
                tracer.absorb(result.trace)
        return results

    bus = live.current() or live.EventBus()
    controller: "RaceController | None" = None
    handle_ready = None
    if racing is not None:
        expected = racing.expected_iterations or \
            _expected_progress_iterations(method, kwargs)
        controller = RaceController(racing, seeds, expected)
        controller.attach(bus)
        handle_ready = controller.bind
    try:
        raw = parallel_map_live(
            _seed_worker, payloads, jobs=jobs, bus=bus,
            handle_ready=handle_ready,
        )
        results = []
        for item in raw:
            if isinstance(item, CancelledTask):
                results.append(None)
                continue
            results.append(item)
            if traced:
                tracer.absorb(item.trace)
        if controller is None:
            return results
        controller.finalize()
        return RaceResult(
            seeds=list(seeds),
            results=results,
            kills=controller.kills,
            metric=controller.metric or "",
            progress_events=controller.progress_events,
            winner_index=controller.winner_index(),
        )
    finally:
        if controller is not None:
            controller.detach()


def place(circuit: Circuit, method: str = "eplace-a",
          **kwargs: Any) -> PlacerResult:
    """Place a circuit with the named method.

    ``kwargs`` forward to the method-specific entry point
    (``gp_params``/``dp_params`` for the analytical flows, ``params``
    for annealing).
    """
    if method == "eplace-a":
        return place_eplace_a(circuit, **kwargs)
    if method == "xu-ispd19":
        return place_xu_ispd19(circuit, **kwargs)
    if method == "annealing":
        return place_annealing(circuit, **kwargs)
    raise ValueError(
        f"unknown method {method!r}; choose one of {METHODS}"
    )
