"""High-level placement API: one call per method.

The three conventional (performance-oblivious) flows of the paper's
Table III:

* ``eplace-a`` — ePlace-A global placement (WA + eDensity + area term,
  Nesterov) followed by the single-stage ILP detailed placement with
  flipping and direction refinement.
* ``xu-ispd19`` — the previous analytical work [11]: NTUplace3-style
  global placement (LSE + bell density, CG) followed by the two-stage
  LP detailed placement (no flipping).
* ``annealing`` — sequence-pair simulated annealing over symmetry
  islands (end to end; no separate detailed step).

Performance-driven variants live in :mod:`repro.perf_driven`.

Every flow runs under the observability layer (:mod:`repro.obs`): when
a tracer is active (``with obs.tracing():``) the returned
:class:`PlacerResult` carries a full :class:`repro.obs.Trace` with
per-phase spans and per-iteration convergence records.
"""

from __future__ import annotations

from typing import Any

from .annealing import SAParams, anneal_place
from .eplace import EPlaceParams, eplace_global
from .legalize import DetailedParams, detailed_place, \
    lp_two_stage_detailed_placement
from .netlist import Circuit
from .obs import metrics, trace
from .placement import PlacerResult
from .xu_ispd19 import XuParams, xu_global

#: methods accepted by :func:`place`
METHODS = ("eplace-a", "xu-ispd19", "annealing")


def place_eplace_a(
    circuit: Circuit,
    gp_params: EPlaceParams | None = None,
    dp_params: DetailedParams | None = None,
) -> PlacerResult:
    """End-to-end ePlace-A: global placement + ILP detailed placement."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    with tracer.span("flow.eplace-a", circuit=circuit.name):
        gp = eplace_global(circuit, gp_params or EPlaceParams(
            utilization=0.8, eta=0.3))
        dp = detailed_place(gp.placement, dp_params)
    metrics.counter("repro.placements").inc()
    return PlacerResult(
        placement=dp.placement,
        runtime_s=clock.elapsed(),
        method="eplace-a",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )


def place_xu_ispd19(
    circuit: Circuit,
    gp_params: XuParams | None = None,
    dp_params: DetailedParams | None = None,
) -> PlacerResult:
    """End-to-end previous analytical work [11]: CG GP + two-stage LP."""
    tracer = trace.current()
    clock = trace.Stopwatch()
    with tracer.span("flow.xu-ispd19", circuit=circuit.name):
        gp = xu_global(circuit, gp_params)
        dp_params = dp_params or DetailedParams(allow_flipping=False)
        dp = lp_two_stage_detailed_placement(gp.placement, dp_params)
    metrics.counter("repro.placements").inc()
    return PlacerResult(
        placement=dp.placement,
        runtime_s=clock.elapsed(),
        method="xu-ispd19",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )


def place_annealing(
    circuit: Circuit,
    params: SAParams | None = None,
) -> PlacerResult:
    """End-to-end simulated-annealing placement."""
    result = anneal_place(circuit, params)
    metrics.counter("repro.placements").inc()
    return result


def place(circuit: Circuit, method: str = "eplace-a",
          **kwargs: Any) -> PlacerResult:
    """Place a circuit with the named method.

    ``kwargs`` forward to the method-specific entry point
    (``gp_params``/``dp_params`` for the analytical flows, ``params``
    for annealing).
    """
    if method == "eplace-a":
        return place_eplace_a(circuit, **kwargs)
    if method == "xu-ispd19":
        return place_xu_ispd19(circuit, **kwargs)
    if method == "annealing":
        return place_annealing(circuit, **kwargs)
    raise ValueError(
        f"unknown method {method!r}; choose one of {METHODS}"
    )
