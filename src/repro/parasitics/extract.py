"""Layout parasitic extraction from routed Steiner trees.

Substitutes the paper's extraction + GF12 PDK step: per-µm wire
resistance/capacitance constants in the range of a lower-metal 12nm
stack, plus per-pin loading.  The absolute values matter less than the
*monotone* mapping from placement geometry to net RC that drives every
performance experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..placement import Placement
from .steiner import SteinerTree, steiner_tree

#: wire resistance per micrometre (ohm/µm), M2-ish 12nm value
R_PER_UM = 40.0
#: wire capacitance per micrometre (fF/µm)
C_PER_UM = 0.20
#: capacitance per connected pin (fF)
C_PER_PIN = 0.08


@dataclass(frozen=True)
class NetParasitics:
    """Lumped RC of one routed net."""

    net: str
    length_um: float
    resistance_ohm: float
    capacitance_ff: float
    tree: SteinerTree

    @property
    def elmore_ps(self) -> float:
        """Crude lumped-RC Elmore delay proxy (R*C/2) in picoseconds.

        ohm * fF = 1e-15 * ohm * F = 1e-15 s = 1e-3 ps.
        """
        return 0.5 * self.resistance_ohm * self.capacitance_ff * 1e-3


def extract_net(placement: Placement, net) -> NetParasitics:
    """Route one net and lump its parasitics."""
    points = placement.net_pin_positions(net)
    tree = steiner_tree(points)
    length = tree.length
    return NetParasitics(
        net=net.name,
        length_um=length,
        resistance_ohm=R_PER_UM * length,
        capacitance_ff=C_PER_UM * length + C_PER_PIN * net.degree,
        tree=tree,
    )


def extract(placement: Placement) -> dict[str, NetParasitics]:
    """Route and extract every net of a placement."""
    out = {}
    for net in placement.circuit.nets:
        if net.degree < 1:
            continue
        out[net.name] = extract_net(placement, net)
    return out


def critical_length(placement: Placement,
                    critical_nets=None) -> float:
    """Total routed length over the circuit's critical nets.

    ``critical_nets`` defaults to the nets flagged ``critical=True``;
    the performance models use this as their primary layout variable.
    """
    circuit = placement.circuit
    if critical_nets is None:
        names = {net.name for net in circuit.nets if net.critical}
    else:
        names = set(critical_nets)
    total = 0.0
    for net in circuit.nets:
        if net.name in names and net.degree >= 2:
            total += steiner_tree(placement.net_pin_positions(net)).length
    return total


def mismatch_distance(placement: Placement) -> float:
    """Aggregate asymmetry seen by matched pairs, in µm.

    Sums, over every symmetry pair, the deviation of the pair's centre
    distance pattern from perfect mirroring (post-detailed placements
    give 0).  Performance models translate this into offset/mismatch
    degradation for soft-symmetry (global-only) placements.
    """
    circuit = placement.circuit
    index = circuit.device_index()
    from ..placement.audit import _symmetry_residuals

    total = 0.0
    for group in circuit.constraints.symmetry_groups:
        residuals = _symmetry_residuals(
            group, index, placement.x, placement.y
        )
        total += float(np.sum([value for _, value in residuals]))
    return total
