"""Rectilinear Steiner tree construction for parasitic estimation.

The paper routes placements with an open-source router [25] before
parasitic extraction and SPICE simulation.  Offline we substitute a
classic estimation pipeline: each net is routed as a rectilinear
Steiner tree built by Prim's algorithm on the Manhattan metric followed
by greedy Hanan-point insertion (steinerisation), which typically lands
within a few percent of RSMT length — amply faithful for the monotone
wirelength→parasitics→performance mapping the experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SteinerTree:
    """A routed net: points (terminals + added Steiner points) + edges.

    ``edges`` index into ``points``; each edge is realised as an
    L-shape, so its wirelength is the Manhattan distance of its
    endpoints.
    """

    points: np.ndarray  # (m, 2)
    edges: tuple[tuple[int, int], ...]
    num_terminals: int

    @property
    def length(self) -> float:
        """Total rectilinear wirelength."""
        total = 0.0
        for a, b in self.edges:
            total += abs(self.points[a, 0] - self.points[b, 0])
            total += abs(self.points[a, 1] - self.points[b, 1])
        return float(total)


def _prim_tree(points: np.ndarray) -> list[tuple[int, int]]:
    """Minimum spanning tree edges under the Manhattan metric."""
    m = len(points)
    if m <= 1:
        return []
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best_dist = (
        np.abs(points[:, 0] - points[0, 0])
        + np.abs(points[:, 1] - points[0, 1])
    )
    best_parent = np.zeros(m, dtype=int)
    edges: list[tuple[int, int]] = []
    for _ in range(m - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((int(best_parent[nxt]), nxt))
        in_tree[nxt] = True
        dist = (
            np.abs(points[:, 0] - points[nxt, 0])
            + np.abs(points[:, 1] - points[nxt, 1])
        )
        closer = dist < best_dist
        best_dist = np.where(closer, dist, best_dist)
        best_parent = np.where(closer, nxt, best_parent)
    return edges


def _tree_length(points: np.ndarray, edges) -> float:
    total = 0.0
    for a, b in edges:
        total += abs(points[a, 0] - points[b, 0])
        total += abs(points[a, 1] - points[b, 1])
    return total


def _canonicalize(terminals: np.ndarray) -> np.ndarray:
    """Bbox-relative coordinates snapped onto a power-of-two grid.

    Translating a point set perturbs coordinates by float rounding
    (~1 ulp), which is enough to flip ``argmin`` and gain tie-breaks
    and change the constructed topology — the translation-variance bug
    from ROADMAP.  Subtracting the bbox origin and snapping to a
    power-of-two quantum (span * 2^-33, exact in binary) collapses
    that noise: translated instances map to bit-identical canonical
    sets, so every downstream comparison resolves identically.
    """
    canon = terminals - terminals.min(axis=0)
    span = float(canon.max()) if canon.size else 0.0
    if span <= 0.0:
        return canon
    quantum = float(2.0 ** (np.ceil(np.log2(span)) - 33.0))
    return np.round(canon / quantum) * quantum


def _exact_coordinates(
    terminals: np.ndarray,
    canon: np.ndarray,
    points: np.ndarray,
    num_terminals: int,
) -> np.ndarray:
    """Map a canonical point set back onto exact input coordinates.

    Every Hanan-grid point reuses an x from one canonical point and a
    y from another, so each canonical coordinate value traces back to
    (at least) one terminal; substituting that terminal's exact
    coordinate reproduces the tree's geometry in the input frame
    without any quantization residue in the reported length.
    """
    exact_x = {float(cx): float(tx)
               for cx, tx in zip(canon[::-1, 0], terminals[::-1, 0])}
    exact_y = {float(cy): float(ty)
               for cy, ty in zip(canon[::-1, 1], terminals[::-1, 1])}
    mapped = np.empty_like(points)
    mapped[:num_terminals] = terminals
    for k in range(num_terminals, len(points)):
        mapped[k, 0] = exact_x[float(points[k, 0])]
        mapped[k, 1] = exact_y[float(points[k, 1])]
    return mapped


def steiner_tree(terminals: np.ndarray) -> SteinerTree:
    """Build a rectilinear Steiner tree over terminal points.

    Starts from the Manhattan MST and greedily inserts the Hanan point
    that shortens the tree the most, re-running Prim after each
    insertion, until no candidate improves.  Complexity is fine for
    analog net degrees (< 20 pins).

    All topology decisions run in canonical (bbox-relative, quantized)
    coordinates so the result is translation-invariant; the returned
    points carry exact input-frame geometry, and a final guard falls
    back to the plain Manhattan MST if snapping ever made the
    steinerized tree measure longer on the exact coordinates.
    """
    terminals = np.asarray(terminals, dtype=float).reshape(-1, 2)
    num_terminals = len(terminals)
    if num_terminals <= 1:
        return SteinerTree(terminals, (), num_terminals)

    canon = _canonicalize(terminals)
    points = canon.copy()
    edges = _prim_tree(points)
    length = _tree_length(points, edges)

    improved = True
    while improved and len(points) < 3 * num_terminals:
        improved = False
        xs = np.unique(points[:, 0])
        ys = np.unique(points[:, 1])
        existing = {(float(px), float(py)) for px, py in points}
        best_gain = 1e-9
        best_point = None
        for hx in xs:
            for hy in ys:
                if (float(hx), float(hy)) in existing:
                    continue
                trial = np.vstack([points, [hx, hy]])
                trial_edges = _prim_tree(trial)
                trial_len = _tree_length(trial, trial_edges)
                gain = length - trial_len
                if gain > best_gain:
                    best_gain = gain
                    best_point = (hx, hy)
        if best_point is not None:
            points = np.vstack([points, best_point])
            edges = _prim_tree(points)
            # prune degree-<=1 Steiner points (useless additions)
            degree = np.zeros(len(points), dtype=int)
            for a, b in edges:
                degree[a] += 1
                degree[b] += 1
            keep = np.ones(len(points), dtype=bool)
            for k in range(num_terminals, len(points)):
                if degree[k] <= 1:
                    keep[k] = False
            if not keep.all():
                remap = np.cumsum(keep) - 1
                points = points[keep]
                edges = _prim_tree(points)
                del remap
            length = _tree_length(points, edges)
            improved = True

    exact = _exact_coordinates(terminals, canon, points, num_terminals)
    tree = SteinerTree(exact, tuple(edges), num_terminals)
    if len(points) > num_terminals:
        mst_edges = _prim_tree(terminals)
        if tree.length > _tree_length(terminals, mst_edges):
            return SteinerTree(terminals, tuple(mst_edges),
                               num_terminals)
    return tree
