"""Rectilinear Steiner tree construction for parasitic estimation.

The paper routes placements with an open-source router [25] before
parasitic extraction and SPICE simulation.  Offline we substitute a
classic estimation pipeline: each net is routed as a rectilinear
Steiner tree built by Prim's algorithm on the Manhattan metric followed
by greedy Hanan-point insertion (steinerisation), which typically lands
within a few percent of RSMT length — amply faithful for the monotone
wirelength→parasitics→performance mapping the experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SteinerTree:
    """A routed net: points (terminals + added Steiner points) + edges.

    ``edges`` index into ``points``; each edge is realised as an
    L-shape, so its wirelength is the Manhattan distance of its
    endpoints.
    """

    points: np.ndarray  # (m, 2)
    edges: tuple[tuple[int, int], ...]
    num_terminals: int

    @property
    def length(self) -> float:
        """Total rectilinear wirelength."""
        total = 0.0
        for a, b in self.edges:
            total += abs(self.points[a, 0] - self.points[b, 0])
            total += abs(self.points[a, 1] - self.points[b, 1])
        return float(total)


def _prim_tree(points: np.ndarray) -> list[tuple[int, int]]:
    """Minimum spanning tree edges under the Manhattan metric."""
    m = len(points)
    if m <= 1:
        return []
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best_dist = (
        np.abs(points[:, 0] - points[0, 0])
        + np.abs(points[:, 1] - points[0, 1])
    )
    best_parent = np.zeros(m, dtype=int)
    edges: list[tuple[int, int]] = []
    for _ in range(m - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((int(best_parent[nxt]), nxt))
        in_tree[nxt] = True
        dist = (
            np.abs(points[:, 0] - points[nxt, 0])
            + np.abs(points[:, 1] - points[nxt, 1])
        )
        closer = dist < best_dist
        best_dist = np.where(closer, dist, best_dist)
        best_parent = np.where(closer, nxt, best_parent)
    return edges


def _tree_length(points: np.ndarray, edges) -> float:
    total = 0.0
    for a, b in edges:
        total += abs(points[a, 0] - points[b, 0])
        total += abs(points[a, 1] - points[b, 1])
    return total


def steiner_tree(terminals: np.ndarray) -> SteinerTree:
    """Build a rectilinear Steiner tree over terminal points.

    Starts from the Manhattan MST and greedily inserts the Hanan point
    that shortens the tree the most, re-running Prim after each
    insertion, until no candidate improves.  Complexity is fine for
    analog net degrees (< 20 pins).
    """
    terminals = np.asarray(terminals, dtype=float).reshape(-1, 2)
    num_terminals = len(terminals)
    if num_terminals <= 1:
        return SteinerTree(terminals, (), num_terminals)

    points = terminals.copy()
    edges = _prim_tree(points)
    length = _tree_length(points, edges)

    improved = True
    while improved and len(points) < 3 * num_terminals:
        improved = False
        xs = np.unique(points[:, 0])
        ys = np.unique(points[:, 1])
        existing = {(float(px), float(py)) for px, py in points}
        best_gain = 1e-9
        best_point = None
        for hx in xs:
            for hy in ys:
                if (float(hx), float(hy)) in existing:
                    continue
                trial = np.vstack([points, [hx, hy]])
                trial_edges = _prim_tree(trial)
                trial_len = _tree_length(trial, trial_edges)
                gain = length - trial_len
                if gain > best_gain:
                    best_gain = gain
                    best_point = (hx, hy)
        if best_point is not None:
            points = np.vstack([points, best_point])
            edges = _prim_tree(points)
            # prune degree-<=1 Steiner points (useless additions)
            degree = np.zeros(len(points), dtype=int)
            for a, b in edges:
                degree[a] += 1
                degree[b] += 1
            keep = np.ones(len(points), dtype=bool)
            for k in range(num_terminals, len(points)):
                if degree[k] <= 1:
                    keep[k] = False
            if not keep.all():
                remap = np.cumsum(keep) - 1
                points = points[keep]
                edges = _prim_tree(points)
                del remap
            length = _tree_length(points, edges)
            improved = True

    return SteinerTree(points, tuple(edges), num_terminals)
