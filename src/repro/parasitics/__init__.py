"""Routing + extraction substitute: Steiner trees and lumped RC."""

from .extract import (
    C_PER_PIN,
    C_PER_UM,
    NetParasitics,
    R_PER_UM,
    critical_length,
    extract,
    extract_net,
    mismatch_distance,
)
from .steiner import SteinerTree, steiner_tree

__all__ = [
    "C_PER_PIN",
    "C_PER_UM",
    "NetParasitics",
    "R_PER_UM",
    "SteinerTree",
    "critical_length",
    "extract",
    "extract_net",
    "mismatch_distance",
    "steiner_tree",
]
