"""Trust-region performance refinement on legal placements.

The GNN performance model is trained on (perturbations of) *legal*
placements, so its failure probability is only trustworthy near that
manifold.  Driving the global-placement NLP hard against :math:`\\Phi`
can exploit the model off-manifold — overlapping configurations with
:math:`\\Phi \\approx 0` that legalization promptly destroys.

This module applies the gradient where the model is valid: starting
from a *legal* placement it takes bounded :math:`\\Phi`-descent steps
(a trust region of a few µm), re-legalizes with the
displacement-anchored ILP, and keeps the result only when the model's
prediction of the legal placement improves.  Several such rounds let
ePlace-AP follow the performance gradient without ever leaving the
region where the gradient means something.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn import PerformanceModel
from ..legalize import DetailedParams, detailed_place
from ..placement import Placement


@dataclass
class RefineParams:
    """Schedules for the performance-refinement stages.

    ``rounds``/``steps_per_round``/``step_um`` drive the gradient
    trust-region stage; ``lns_rounds``/``free_pairs`` the ILP
    large-neighbourhood stage (the analytical counterpart of SA's
    topology moves: the MILP proposes legal rearrangements by freeing a
    few pair directions, the model accepts/rejects); ``flip_passes``
    the greedy per-device flip improvement (flipping changes pin
    geometry, hence :math:`\\Phi`, but is invisible to the gradient).
    ``quality_weight`` mixes normalised HPWL+area into the acceptance
    score so performance gains cannot ride on unlimited layout bloat.
    ``accept_margin`` is the minimum score improvement for accepting a
    candidate: the surrogate carries ranking noise, and accepting
    marginal "improvements" lets that noise walk the solution downhill
    in true FOM.
    """

    rounds: int = 3
    steps_per_round: int = 10
    step_um: float = 0.05
    displacement_weight: float = 2.0
    lns_rounds: int = 6
    free_pairs: int = 10
    candidate_pool: int = 25
    flip_passes: int = 2
    quality_weight: float = 0.15
    accept_margin: float = 0.02
    seed: int = 11

    def __post_init__(self) -> None:
        if self.rounds < 0 or self.steps_per_round < 1:
            raise ValueError("rounds/steps must be non-negative/positive")
        if self.step_um <= 0:
            raise ValueError("step size must be positive")


def _descend(
    placement: Placement,
    model: PerformanceModel,
    steps: int,
    step_um: float,
) -> Placement:
    """Normalised gradient descent on Phi from a placement's coords."""
    x = placement.x.copy()
    y = placement.y.copy()
    scale = np.sqrt(len(x))
    for _ in range(steps):
        phi, gx, gy = model.phi_and_grad(x, y)
        if phi <= 1e-6:
            break
        norm = float(np.sqrt((gx * gx + gy * gy).sum()))
        if norm <= 1e-12:
            break
        x -= step_um * scale * gx / norm
        y -= step_um * scale * gy / norm
    return Placement(placement.circuit, x, y,
                     placement.flip_x, placement.flip_y)


def _score(
    placement: Placement,
    model: PerformanceModel,
    quality_weight: float,
) -> float:
    """Acceptance score: model failure probability + quality guard."""
    from ..placement import bounding_area, hpwl

    circuit = placement.circuit
    area_norm = circuit.total_device_area()
    hpwl_norm = float(
        np.sqrt(area_norm) * max(
            sum(1 for net in circuit.nets if net.degree >= 2), 1)
    )
    quality = (
        hpwl(placement) / hpwl_norm
        + bounding_area(placement) / area_norm
    )
    return model.phi_placement(placement) + quality_weight * quality


def _greedy_flips(
    placement: Placement,
    model: PerformanceModel,
    passes: int,
    quality_weight: float,
) -> Placement:
    """Toggle device flips one at a time, keeping score improvements."""
    best = placement.copy()
    best_score = _score(best, model, quality_weight)
    n = best.circuit.num_devices
    for _ in range(passes):
        improved = False
        for i in range(n):
            for attr in ("flip_x", "flip_y"):
                candidate = best.copy()
                getattr(candidate, attr)[i] ^= True
                score = _score(candidate, model, quality_weight)
                if score < best_score - 1e-12:
                    best, best_score = candidate, score
                    improved = True
        if not improved:
            break
    return best


def phi_refine(
    legal: Placement,
    model: PerformanceModel,
    params: RefineParams | None = None,
    dp_params: DetailedParams | None = None,
) -> tuple[Placement, dict]:
    """Refine a legal placement against the performance model.

    Three mechanisms, all accepted purely on the model's score of the
    *legalized* candidate (the ground-truth simulator is never
    consulted, mirroring how the paper's flow relies on its trained
    GNN at placement time):

    1. gradient trust-region rounds — bounded :math:`\\Phi` descent
       followed by anchored re-legalization;
    2. ILP large-neighbourhood rounds — legal topology rearrangements
       from freeing a few pair directions;
    3. greedy flip passes — per-device mirroring, which moves pins
       without moving rectangles.
    """
    from ..legalize.ilp import _nearest_free_pairs, _solve_model
    from ..legalize.presym import presymmetrize

    params = params or RefineParams()
    if dp_params is None:
        dp_params = DetailedParams(
            displacement_weight=params.displacement_weight,
            iterate_rounds=1, refine_rounds=0,
        )
    if model.trust < 0.5:
        # the surrogate failed validation: refining against it would
        # follow noise, so return the input unchanged
        return legal, {
            "accepted_rounds": 0,
            "final_phi": model.phi_placement(legal),
            "skipped_low_trust": True,
        }
    rng = np.random.default_rng(params.seed)
    best = legal
    best_score = _score(legal, model, params.quality_weight)
    accepted = 0

    # stage 1: gradient trust region
    for _ in range(params.rounds):
        drifted = _descend(best, model, params.steps_per_round,
                           params.step_um)
        candidate = detailed_place(drifted, dp_params).placement
        candidate = _greedy_flips(candidate, model, 1,
                                  params.quality_weight)
        score = _score(candidate, model, params.quality_weight)
        if score < best_score - params.accept_margin:
            best, best_score = candidate, score
            accepted += 1

    # stage 2: ILP large-neighbourhood topology moves (lighter anchor so
    # the freed pairs can genuinely rearrange)
    from dataclasses import replace as dc_replace

    lns_params = dc_replace(dp_params, displacement_weight=0.3)
    for _ in range(params.lns_rounds):
        freed = _nearest_free_pairs(
            presymmetrize(best), params.candidate_pool,
            params.free_pairs, rng,
        )
        if not freed:
            break
        try:
            candidate, _ = _solve_model(
                best, lns_params, free_keys=freed, time_limit=5.0,
            )
        except Exception:
            continue
        candidate = _greedy_flips(candidate, model, 1,
                                  params.quality_weight)
        score = _score(candidate, model, params.quality_weight)
        if score < best_score - params.accept_margin:
            best, best_score = candidate, score
            accepted += 1

    # stage 3: final flip polish
    best = _greedy_flips(best, model, params.flip_passes,
                         params.quality_weight)
    return best, {
        "accepted_rounds": accepted,
        "final_phi": model.phi_placement(best),
        "final_score": _score(best, model, params.quality_weight),
    }
