"""Performance-driven placement: ePlace-AP, Perf* [11], perf-SA [19]."""

from .eplace_ap import EPlaceAPGlobalPlacer, eplace_ap_global
from .flows import (
    PERF_METHODS,
    place_eplace_ap,
    place_perf_sa,
    place_perf_xu,
    place_performance_driven,
    train_model_for,
)
from .perf_xu import XuPerfGlobalPlacer
from .refine import RefineParams, phi_refine

__all__ = [
    "EPlaceAPGlobalPlacer",
    "PERF_METHODS",
    "RefineParams",
    "XuPerfGlobalPlacer",
    "eplace_ap_global",
    "place_eplace_ap",
    "place_perf_sa",
    "place_perf_xu",
    "phi_refine",
    "place_performance_driven",
    "train_model_for",
]
