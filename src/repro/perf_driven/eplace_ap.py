"""ePlace-AP: performance-driven ePlace-A (paper Sec. V, eq. 5).

Adds :math:`\\alpha \\Phi(\\mathcal{G})` to the ePlace-A global
objective, where :math:`\\Phi` is the GNN's probability that the
placement misses its performance threshold.  The defining difference
from the simulated-annealing use of the same model [19] is that the
NLP consumes the *gradient* :math:`\\partial \\Phi / \\partial v`
(paper: TensorFlow autodiff; here: our numpy GNN's exact manual
backprop) rather than just the inference value.  Legalization and
detailed placement are identical to ePlace-A.
"""

from __future__ import annotations

import numpy as np

from ..eplace import EPlaceGlobalPlacer, EPlaceParams
from ..gnn import PerformanceModel
from ..netlist import Circuit
from ..obs import live, trace
from ..placement import PlacerResult


class EPlaceAPGlobalPlacer(EPlaceGlobalPlacer):
    """ePlace-A global placement with the GNN performance term."""

    def __init__(
        self,
        circuit: Circuit,
        perf_model: PerformanceModel,
        params: EPlaceParams | None = None,
        alpha: float = 1.0,
    ) -> None:
        super().__init__(circuit, params)
        if perf_model.circuit.name != circuit.name:
            raise ValueError(
                "performance model was trained for "
                f"{perf_model.circuit.name!r}, not {circuit.name!r}"
            )
        self.perf_model = perf_model
        self.alpha = float(alpha)
        self._alpha_scaled = 0.0

    # ------------------------------------------------------------------
    def _init_weights(self, x: np.ndarray, y: np.ndarray) -> None:
        super()._init_weights(x, y)
        _, gx, gy = self.perf_model.phi_and_grad(x, y)
        phi_norm = float(np.linalg.norm(np.concatenate([gx, gy])))
        # a model that failed validation earns proportionally less
        # influence on the placement (see PerformanceModel.trust)
        self._alpha_scaled = (
            self.alpha * self.perf_model.trust
            * self._wl_norm0 / max(phi_norm, 1e-12)
        )

    def _objective_xy(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        value, gx, gy = super()._objective_xy(x, y)
        phi, pgx, pgy = self.perf_model.phi_and_grad(x, y)
        value += self._alpha_scaled * phi
        gx = gx + self._alpha_scaled * pgx
        gy = gy + self._alpha_scaled * pgy
        if trace.active() or live.active():
            # extend the base health terms with the GNN contribution
            hterms = dict(getattr(self, "_health", {}))
            hterms["grad_phi_norm"] = self._alpha_scaled * float(
                np.hypot(np.linalg.norm(pgx), np.linalg.norm(pgy))
            )
            self._health = hterms
        return value, gx, gy

    def place(self) -> PlacerResult:
        """Run global placement with the performance term blended in."""
        result = super().place()
        result.method = f"eplace-ap-gp[{self.params.symmetry_mode}]"
        result.stats["alpha_scaled"] = self._alpha_scaled
        result.stats["final_phi"] = self.perf_model.phi(
            result.placement.x, result.placement.y
        )
        return result


def eplace_ap_global(
    circuit: Circuit,
    perf_model: PerformanceModel,
    params: EPlaceParams | None = None,
    alpha: float = 1.0,
) -> PlacerResult:
    """Convenience wrapper: one ePlace-AP global placement run."""
    return EPlaceAPGlobalPlacer(circuit, perf_model, params, alpha).place()
