"""End-to-end performance-driven placement flows (paper Tables V/VII).

Three methods, each the performance-driven variant of a Table III flow:

* :func:`place_eplace_ap` — ePlace-AP global placement (gradient of the
  GNN term inside Nesterov) + the ePlace-A ILP detailed placement;
* :func:`place_perf_xu` — the "Perf*" extension of [11] + two-stage LP;
* :func:`place_perf_sa` — performance-driven simulated annealing [19]:
  GNN *inference* added to the SA cost.

:func:`train_model_for` builds the shared GNN model the three flows
consume (seeded from a conventional ePlace-A placement); the paper
likewise trains one model per design and uses it across methods.
"""

from __future__ import annotations

from typing import Any

from ..annealing import SAParams, SimulatedAnnealingPlacer, anneal_place
from ..api import place_eplace_a
from ..eplace import EPlaceParams, eplace_global
from ..gnn import PerformanceModel, TrainReport, train_performance_model
from ..legalize import DetailedParams, detailed_place, \
    lp_two_stage_detailed_placement
from ..netlist import Circuit
from ..obs import trace
from ..placement import PlacerResult
from ..xu_ispd19 import XuParams
from .eplace_ap import EPlaceAPGlobalPlacer
from .perf_xu import XuPerfGlobalPlacer
from .refine import RefineParams, phi_refine

#: methods accepted by :func:`place_performance_driven`
PERF_METHODS = ("eplace-ap", "perf-xu", "perf-sa")


def train_model_for(
    circuit: Circuit,
    samples: int = 600,
    epochs: int = 60,
    seed: int = 0,
    jobs: int = 1,
    **train_kwargs: Any,
) -> tuple[PerformanceModel, TrainReport]:
    """Train the per-design GNN from a conventional seed placement.

    ``jobs`` fans the dataset-generation stages across processes
    (bit-identical to sequential); ``train_kwargs`` forward to
    :func:`repro.gnn.train_performance_model` (e.g. ``sa_sweep_runs``,
    ``adversarial_rounds``, ``hidden``, ``kernel``).
    """
    seed_result = place_eplace_a(circuit)
    return train_performance_model(
        seed_result.placement, samples=samples, epochs=epochs,
        seed=seed, jobs=jobs, **train_kwargs
    )


def place_eplace_ap(
    circuit: Circuit,
    perf_model: PerformanceModel,
    gp_params: EPlaceParams | None = None,
    dp_params: DetailedParams | None = None,
    alpha: float = 1.0,
    refine_params: RefineParams | None = None,
) -> PlacerResult:
    """End-to-end ePlace-AP.

    Three stages: global placement with the GNN gradient term (eq. 5),
    displacement-anchored ILP legalization (so the DP cannot
    re-optimise the performance-driven structure away), then the
    trust-region :func:`repro.perf_driven.refine.phi_refine` rounds
    that apply the gradient where the model is on-manifold.
    """
    from .refine import _score

    tracer = trace.current()
    clock = trace.Stopwatch()
    gp_params = gp_params or EPlaceParams(utilization=0.8, eta=0.3)
    gp = EPlaceAPGlobalPlacer(circuit, perf_model, gp_params,
                              alpha=alpha).place()
    if dp_params is None:
        dp_params = DetailedParams(
            displacement_weight=1.0, iterate_rounds=1, refine_rounds=0,
        )
    dp = detailed_place(gp.placement, dp_params)

    # model-scored guard: the GNN term can distort global placement on
    # circuits where its gradient is weak; if the model itself scores a
    # conventional baseline better, refine from that instead (still no
    # ground-truth access — the model is the only judge)
    refine_params = refine_params or RefineParams()
    baseline_gp = eplace_global(circuit, gp_params)
    baseline = detailed_place(baseline_gp.placement)
    started_from = "ap-gp"
    seed_placement = dp.placement
    if _score(baseline.placement, perf_model,
              refine_params.quality_weight) < _score(
                  dp.placement, perf_model,
                  refine_params.quality_weight):
        seed_placement = baseline.placement
        started_from = "conventional"

    refined, refine_stats = phi_refine(
        seed_placement, perf_model, refine_params, dp_params,
    )
    refine_stats["started_from"] = started_from
    return PlacerResult(
        placement=refined,
        runtime_s=clock.elapsed(),
        method="eplace-ap",
        stats={"gp": gp.stats, "dp": dp.stats, "refine": refine_stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )


def place_perf_xu(
    circuit: Circuit,
    perf_model: PerformanceModel,
    gp_params: XuParams | None = None,
    dp_params: DetailedParams | None = None,
    alpha: float = 1.0,
) -> PlacerResult:
    """End-to-end Perf* (performance extension of [11])."""
    from ..xu_ispd19 import xu_global
    from .refine import _score

    tracer = trace.current()
    clock = trace.Stopwatch()
    dp_params = dp_params or DetailedParams(allow_flipping=False)
    gp = XuPerfGlobalPlacer(circuit, perf_model, gp_params,
                            alpha=alpha).place()
    dp = lp_two_stage_detailed_placement(gp.placement, dp_params)

    # same model-scored guard as ePlace-AP, against the [11] baseline
    baseline = lp_two_stage_detailed_placement(
        xu_global(circuit, gp_params).placement, dp_params)
    chosen = dp.placement
    if _score(baseline.placement, perf_model, 0.15) < _score(
            dp.placement, perf_model, 0.15):
        chosen = baseline.placement
    return PlacerResult(
        placement=chosen,
        runtime_s=clock.elapsed(),
        method="perf-xu",
        stats={"gp": gp.stats, "dp": dp.stats,
               "gp_runtime_s": gp.runtime_s, "dp_runtime_s": dp.runtime_s},
        trace=tracer.to_trace(),
    )


def place_perf_sa(
    circuit: Circuit,
    perf_model: PerformanceModel,
    params: SAParams | None = None,
) -> PlacerResult:
    """End-to-end performance-driven simulated annealing [19].

    The GNN enters the cost by plain inference (no gradients), exactly
    the asymmetry the paper uses to explain why analytical methods lose
    part of their speed advantage in performance-driven mode — each SA
    move pays one forward pass.
    """
    params = params or SAParams(perf_weight=1.0)
    if params.perf_weight <= 0:
        raise ValueError(
            "perf-driven SA requires SAParams.perf_weight > 0"
        )
    from dataclasses import replace as dc_replace

    effective = dc_replace(
        params, perf_weight=params.perf_weight * perf_model.trust
    ) if perf_model.trust < 1.0 else params
    if effective.perf_weight <= 0.0:
        effective = dc_replace(effective, perf_weight=1e-9)
    from dataclasses import replace as _dc_replace

    from .refine import _score

    clock = trace.Stopwatch()
    placer = SimulatedAnnealingPlacer(
        circuit, effective, cost_hook=perf_model.phi_placement
    )
    result = placer.place()

    # model-scored guard against a plain (conventional) SA run — the
    # surrogate term can mislead the annealer on circuits where the
    # model is weak, and the model itself can tell
    baseline = anneal_place(
        circuit, _dc_replace(effective, perf_weight=0.0))
    if _score(baseline.placement, perf_model, 0.15) < _score(
            result.placement, perf_model, 0.15):
        result = PlacerResult(
            placement=baseline.placement,
            runtime_s=0.0,
            method="perf-sa",
            stats=dict(baseline.stats, fallback="conventional"),
        )
    result.runtime_s = clock.elapsed()
    result.method = "perf-sa"
    return result


def place_performance_driven(
    circuit: Circuit,
    perf_model: PerformanceModel,
    method: str = "eplace-ap",
    **kwargs: Any,
) -> PlacerResult:
    """Dispatch one of the three performance-driven flows."""
    if method == "eplace-ap":
        return place_eplace_ap(circuit, perf_model, **kwargs)
    if method == "perf-xu":
        return place_perf_xu(circuit, perf_model, **kwargs)
    if method == "perf-sa":
        return place_perf_sa(circuit, perf_model, **kwargs)
    raise ValueError(
        f"unknown method {method!r}; choose one of {PERF_METHODS}"
    )
