"""Perf*: the performance-driven extension of the previous work [11].

The paper's Table V/VII column "Perf*" extends [11] "in the same way as
ePlace-AP": the GNN term :math:`\\alpha \\Phi` joins the [11]-style
global objective (solved with conjugate gradient, so the gradient of
:math:`\\Phi` is needed here too), while the two-stage LP detailed
placement stays unchanged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..gnn import PerformanceModel
from ..netlist import Circuit
from ..obs import live, trace
from ..placement import PlacerResult
from ..xu_ispd19 import XuGlobalPlacer, XuParams


class XuPerfGlobalPlacer(XuGlobalPlacer):
    """[11]-style global placement with the GNN performance term."""

    def __init__(
        self,
        circuit: Circuit,
        perf_model: PerformanceModel,
        params: XuParams | None = None,
        alpha: float = 1.0,
    ) -> None:
        super().__init__(circuit, params)
        if perf_model.circuit.name != circuit.name:
            raise ValueError(
                "performance model was trained for "
                f"{perf_model.circuit.name!r}, not {circuit.name!r}"
            )
        self.perf_model = perf_model
        self.alpha = float(alpha)
        # scale alpha from the initial-position gradient magnitudes
        x0, y0 = self.initial_positions()
        from ..analytic import lse_wirelength

        _, gx, gy = lse_wirelength(self.arrays, x0, y0, self.gamma)
        wl_norm = float(np.linalg.norm(np.concatenate([gx, gy])))
        _, pgx, pgy = perf_model.phi_and_grad(x0, y0)
        phi_norm = float(np.linalg.norm(np.concatenate([pgx, pgy])))
        self._alpha_scaled = (
            self.alpha * wl_norm / max(phi_norm, 1e-12)
        )

    def _objective(
        self, lam: float, tau: float
    ) -> Callable[[np.ndarray], tuple[float, np.ndarray]]:
        base = super()._objective(lam, tau)
        n = self.circuit.num_devices

        def fun(v: np.ndarray) -> tuple[float, np.ndarray]:
            value, grad = base(v)
            phi, pgx, pgy = self.perf_model.phi_and_grad(v[:n], v[n:])
            value += self._alpha_scaled * phi
            grad = grad + self._alpha_scaled * np.concatenate([pgx, pgy])
            if trace.active() or live.active():
                # GNN-term contribution for the health channel
                self._health = {
                    "grad_phi_norm": self._alpha_scaled * float(
                        np.hypot(
                            np.linalg.norm(pgx), np.linalg.norm(pgy)
                        )
                    ),
                }
            return value, grad

        return fun

    def place(self) -> PlacerResult:
        """Run global placement with the performance term blended in."""
        result = super().place()
        result.method = "xu-perf-gp"
        result.stats["alpha_scaled"] = self._alpha_scaled
        result.stats["final_phi"] = self.perf_model.phi(
            result.placement.x, result.placement.y
        )
        return result
