"""Circuit/netlist data model: devices, pins, nets, analog constraints."""

from .circuit import Circuit, CircuitError
from .constraints import (
    AlignmentPair,
    Axis,
    ConstraintSet,
    OrderingChain,
    SymmetryGroup,
)
from .device import NUM_DEVICE_TYPES, Device, DeviceType, Pin
from .net import Net, Terminal

__all__ = [
    "AlignmentPair",
    "Axis",
    "Circuit",
    "CircuitError",
    "ConstraintSet",
    "Device",
    "DeviceType",
    "NUM_DEVICE_TYPES",
    "Net",
    "OrderingChain",
    "Pin",
    "SymmetryGroup",
    "Terminal",
]
