"""Net model: a hyperedge over device pins.

Nets carry a ``weight`` (wirelength emphasis) and a ``critical`` flag that
the performance models use to identify signal paths whose parasitics matter
most (e.g. the OTA output node).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class Terminal:
    """One endpoint of a net: a (device, pin) pair."""

    device: str
    pin: str = "c"


class Net:
    """A hyperedge connecting two or more device pins.

    Parameters
    ----------
    name:
        Unique identifier within a circuit.
    terminals:
        Iterable of :class:`Terminal`, ``(device, pin)`` tuples, or bare
        device-name strings (which attach to that device's ``"c"`` pin).
        Single-terminal nets are permitted (dangling I/O) but contribute
        zero wirelength.
    weight:
        Multiplier applied to this net's HPWL in every objective.
    critical:
        Marks performance-critical nets for the parasitic-aware models.
    """

    __slots__ = ("name", "terminals", "weight", "critical")

    def __init__(
        self,
        name: str,
        terminals: Iterable[Terminal | tuple[str, str] | str],
        weight: float = 1.0,
        critical: bool = False,
    ) -> None:
        parsed: list[Terminal] = []
        for term in terminals:
            if isinstance(term, Terminal):
                parsed.append(term)
            elif isinstance(term, str):
                parsed.append(Terminal(term))
            else:
                device, pin = term
                parsed.append(Terminal(device, pin))
        if weight <= 0:
            raise ValueError(f"net {name!r}: weight must be positive")
        self.name = name
        self.terminals = tuple(parsed)
        self.weight = float(weight)
        self.critical = bool(critical)

    @property
    def degree(self) -> int:
        """Number of terminals."""
        return len(self.terminals)

    @property
    def devices(self) -> tuple[str, ...]:
        """Names of the devices touched by this net (with repeats removed)."""
        seen: dict[str, None] = {}
        for term in self.terminals:
            seen.setdefault(term.device, None)
        return tuple(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Net):
            return NotImplemented
        return (
            self.name == other.name
            and self.terminals == other.terminals
            and self.weight == other.weight
            and self.critical == other.critical
        )

    def __hash__(self) -> int:
        return hash((self.name, self.terminals))

    def __repr__(self) -> str:
        return (
            f"Net({self.name!r}, degree={self.degree}, "
            f"weight={self.weight}, critical={self.critical})"
        )
