"""Device model for analog placement.

A device is a rectangular layout object (transistor, capacitor, resistor,
pre-merged module) with named pins at fixed offsets from its lower-left
corner.  Electrical parameters (``gm``, ``ro``, capacitances, ...) ride along
in :attr:`Device.electrical` so the performance models in
:mod:`repro.simulate` can evaluate placements without a separate database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DeviceType(enum.Enum):
    """Coarse device classes used for GNN features and symmetry checks."""

    NMOS = "nmos"
    PMOS = "pmos"
    CAPACITOR = "cap"
    RESISTOR = "res"
    INDUCTOR = "ind"
    SWITCH = "switch"
    MODULE = "module"

    @property
    def index(self) -> int:
        """Stable integer index for one-hot feature encoding."""
        return _TYPE_ORDER.index(self)


_TYPE_ORDER = [
    DeviceType.NMOS,
    DeviceType.PMOS,
    DeviceType.CAPACITOR,
    DeviceType.RESISTOR,
    DeviceType.INDUCTOR,
    DeviceType.SWITCH,
    DeviceType.MODULE,
]

NUM_DEVICE_TYPES = len(_TYPE_ORDER)


@dataclass(frozen=True)
class Pin:
    """A named pin with an offset from the device's lower-left corner.

    Offsets must lie inside (or on the border of) the device rectangle.
    """

    name: str
    offset_x: float
    offset_y: float


@dataclass
class Device:
    """A rectangular placeable device.

    Parameters
    ----------
    name:
        Unique identifier within a circuit.
    dtype:
        Coarse device class; see :class:`DeviceType`.
    width, height:
        Rectangle dimensions in micrometres.
    pins:
        Pins by name.  Every device gets a default centre pin named ``"c"``
        if none is supplied, so nets can always attach.
    electrical:
        Free-form electrical parameters for the performance models.
    """

    name: str
    dtype: DeviceType
    width: float
    height: float
    pins: dict[str, Pin] = field(default_factory=dict)
    electrical: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"device {self.name!r}: dimensions must be positive, "
                f"got {self.width} x {self.height}"
            )
        if not self.pins:
            self.pins = {"c": Pin("c", self.width / 2.0, self.height / 2.0)}
        for pin in self.pins.values():
            if not (0.0 <= pin.offset_x <= self.width):
                raise ValueError(
                    f"device {self.name!r}: pin {pin.name!r} x-offset "
                    f"{pin.offset_x} outside [0, {self.width}]"
                )
            if not (0.0 <= pin.offset_y <= self.height):
                raise ValueError(
                    f"device {self.name!r}: pin {pin.name!r} y-offset "
                    f"{pin.offset_y} outside [0, {self.height}]"
                )

    @property
    def area(self) -> float:
        """Rectangle area in square micrometres."""
        return self.width * self.height

    def pin(self, name: str) -> Pin:
        """Return the pin called ``name``; raise ``KeyError`` with context."""
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(
                f"device {self.name!r} has no pin {name!r}; "
                f"available: {sorted(self.pins)}"
            ) from None

    def pin_offset(
        self, pin_name: str, flip_x: bool = False, flip_y: bool = False
    ) -> tuple[float, float]:
        """Pin offset from the lower-left corner, honouring flips.

        Horizontal flipping mirrors the offset about the vertical centre
        line (``w - ox``), matching constraint (4d) of the paper; vertical
        flipping mirrors about the horizontal centre line.
        """
        pin = self.pin(pin_name)
        ox = self.width - pin.offset_x if flip_x else pin.offset_x
        oy = self.height - pin.offset_y if flip_y else pin.offset_y
        return ox, oy
