"""Analog placement constraints.

The paper handles four classes of geometric constraints (Section IV):

* **Symmetry groups** — pairs of devices mirrored about a shared vertical
  axis plus self-symmetric devices centred on that axis (constraint 4f).
* **Bottom alignment** — devices whose bottom edges must coincide (4g).
* **Vertical-centre alignment** — devices sharing an x-centre line (4h).
* **Ordering chains** — devices that must appear in a fixed left-to-right
  (or bottom-to-top) order, used for monotone current paths (4i).

All constraints reference devices by name; :meth:`repro.netlist.Circuit
.validate` checks referential integrity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Axis(enum.Enum):
    """Orientation of a symmetry axis or ordering direction."""

    VERTICAL = "vertical"  # axis x = const; pairs mirror left/right
    HORIZONTAL = "horizontal"  # axis y = const; pairs mirror up/down


@dataclass(frozen=True)
class SymmetryGroup:
    """A symmetry group: mirrored pairs plus self-symmetric devices.

    For a ``VERTICAL`` axis at :math:`x_m`, each pair ``(a, b)`` satisfies
    :math:`(x_a + x_b)/2 = x_m` and :math:`y_a = y_b`, and each
    self-symmetric device ``r`` satisfies :math:`x_r = x_m` (centre
    coordinates).  The axis position itself is a free variable chosen by
    the placer.
    """

    name: str
    pairs: tuple[tuple[str, str], ...] = ()
    self_symmetric: tuple[str, ...] = ()
    axis: Axis = Axis.VERTICAL

    def __post_init__(self) -> None:
        if not self.pairs and not self.self_symmetric:
            raise ValueError(f"symmetry group {self.name!r} is empty")
        for a, b in self.pairs:
            if a == b:
                raise ValueError(
                    f"symmetry group {self.name!r}: pair ({a!r}, {b!r}) "
                    "must reference two distinct devices"
                )
        names = list(self.devices)
        if len(names) != len(set(names)):
            raise ValueError(
                f"symmetry group {self.name!r}: a device appears twice"
            )

    @property
    def devices(self) -> tuple[str, ...]:
        """All device names in the group (pairs flattened, then selfs)."""
        flat = [name for pair in self.pairs for name in pair]
        flat.extend(self.self_symmetric)
        return tuple(flat)


@dataclass(frozen=True)
class AlignmentPair:
    """Two devices aligned on an edge or centre line.

    ``kind='bottom'`` equates bottom edges (paper constraint 4g);
    ``kind='vcenter'`` equates x-centres (4h); ``kind='hcenter'`` equates
    y-centres (the symmetric counterpart, supported for completeness).
    """

    a: str
    b: str
    kind: str = "bottom"

    _KINDS = ("bottom", "vcenter", "hcenter")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"alignment kind must be one of {self._KINDS}, "
                f"got {self.kind!r}"
            )
        if self.a == self.b:
            raise ValueError("alignment pair must reference distinct devices")


@dataclass(frozen=True)
class OrderingChain:
    """Devices constrained to a strict spatial order.

    For ``axis=Axis.VERTICAL`` (a *horizontal* ordering, paper set
    :math:`O^H`), consecutive devices must not overlap horizontally and
    must appear left to right in the listed order:
    :math:`x_j + w_j/2 \\le x_k - w_k/2`.
    """

    devices: tuple[str, ...]
    axis: Axis = Axis.VERTICAL
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.devices) < 2:
            raise ValueError("ordering chain needs at least two devices")
        if len(set(self.devices)) != len(self.devices):
            raise ValueError("ordering chain repeats a device")

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        """Consecutive (left, right) pairs implied by the chain."""
        return tuple(zip(self.devices, self.devices[1:]))


@dataclass
class ConstraintSet:
    """All geometric constraints of a circuit, bundled."""

    symmetry_groups: list[SymmetryGroup] = field(default_factory=list)
    alignments: list[AlignmentPair] = field(default_factory=list)
    orderings: list[OrderingChain] = field(default_factory=list)

    def constrained_devices(self) -> set[str]:
        """Names of all devices touched by any constraint."""
        names: set[str] = set()
        for group in self.symmetry_groups:
            names.update(group.devices)
        for pair in self.alignments:
            names.update((pair.a, pair.b))
        for chain in self.orderings:
            names.update(chain.devices)
        return names

    def is_empty(self) -> bool:
        """True when no constraint of any class is present."""
        return not (self.symmetry_groups or self.alignments or self.orderings)
