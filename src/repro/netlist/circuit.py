"""Circuit container: devices, nets, constraints and derived indices."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .constraints import ConstraintSet
from .device import Device
from .net import Net


class CircuitError(ValueError):
    """Raised when a circuit fails validation."""


@dataclass
class Circuit:
    """A placement problem instance.

    Holds the devices (by insertion order, which fixes the index used by
    all vectorised placement code), the nets, the analog geometric
    constraints and optional metadata (performance specs live in
    :mod:`repro.perf`).
    """

    name: str
    devices: dict[str, Device] = field(default_factory=dict)
    nets: list[Net] = field(default_factory=list)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_device(self, device: Device) -> Device:
        """Register a device; names must be unique."""
        if device.name in self.devices:
            raise CircuitError(
                f"circuit {self.name!r}: duplicate device {device.name!r}"
            )
        self.devices[device.name] = device
        return device

    def add_net(self, net: Net) -> Net:
        """Register a net; names must be unique."""
        if any(existing.name == net.name for existing in self.nets):
            raise CircuitError(
                f"circuit {self.name!r}: duplicate net {net.name!r}"
            )
        self.nets.append(net)
        return net

    # ------------------------------------------------------------------
    # indices and views
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def device_names(self) -> list[str]:
        """Device names in index order."""
        return list(self.devices)

    def index_of(self, device_name: str) -> int:
        """Index of a device in the canonical ordering."""
        try:
            return self.device_names.index(device_name)
        except ValueError:
            raise CircuitError(
                f"circuit {self.name!r} has no device {device_name!r}"
            ) from None

    def device_index(self) -> dict[str, int]:
        """Mapping from device name to canonical index."""
        return {name: i for i, name in enumerate(self.devices)}

    def sizes(self) -> tuple[np.ndarray, np.ndarray]:
        """Width and height vectors in index order."""
        widths = np.array([d.width for d in self.devices.values()])
        heights = np.array([d.height for d in self.devices.values()])
        return widths, heights

    def total_device_area(self) -> float:
        """Sum of device rectangle areas."""
        return float(sum(d.area for d in self.devices.values()))

    def net_pin_arrays(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-net arrays ``(device_indices, pin_off_x, pin_off_y)``.

        Pin offsets are measured from the device *centre* (not the
        lower-left corner) so pin positions are ``centre + offset``;
        unflipped orientation is assumed.  Vectorised wirelength code in
        :mod:`repro.placement.metrics` and the analytic smoothers consume
        this layout.
        """
        index = self.device_index()
        out = []
        for net in self.nets:
            idx = np.array([index[t.device] for t in net.terminals], dtype=int)
            offx = np.array(
                [
                    self.devices[t.device].pin(t.pin).offset_x
                    - self.devices[t.device].width / 2.0
                    for t in net.terminals
                ]
            )
            offy = np.array(
                [
                    self.devices[t.device].pin(t.pin).offset_y
                    - self.devices[t.device].height / 2.0
                    for t in net.terminals
                ]
            )
            out.append((idx, offx, offy))
        return out

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity; raise :class:`CircuitError`."""
        if not self.devices:
            raise CircuitError(f"circuit {self.name!r} has no devices")
        for net in self.nets:
            for term in net.terminals:
                if term.device not in self.devices:
                    raise CircuitError(
                        f"net {net.name!r} references unknown device "
                        f"{term.device!r}"
                    )
                self.devices[term.device].pin(term.pin)  # raises KeyError
        unknown = self.constraints.constrained_devices() - set(self.devices)
        if unknown:
            raise CircuitError(
                f"constraints reference unknown devices: {sorted(unknown)}"
            )
        for group in self.constraints.symmetry_groups:
            for a, b in group.pairs:
                da, db = self.devices[a], self.devices[b]
                if (da.width, da.height) != (db.width, db.height):
                    raise CircuitError(
                        f"symmetry pair ({a!r}, {b!r}) has mismatched "
                        f"dimensions {da.width}x{da.height} vs "
                        f"{db.width}x{db.height}"
                    )
        seen: set[str] = set()
        for group in self.constraints.symmetry_groups:
            overlap = seen & set(group.devices)
            if overlap:
                raise CircuitError(
                    f"device(s) {sorted(overlap)} appear in more than one "
                    "symmetry group"
                )
            seen.update(group.devices)

    # ------------------------------------------------------------------
    # graph view
    # ------------------------------------------------------------------
    def to_graph(self) -> nx.Graph:
        """Clique-expanded connectivity graph for GNN features.

        Each net of degree :math:`d` contributes edges among all its
        device pairs with weight :math:`w_e \\cdot 2/d` (the standard
        clique net model), accumulated over parallel nets.
        """
        graph = nx.Graph()
        for name, device in self.devices.items():
            graph.add_node(name, dtype=device.dtype, width=device.width,
                           height=device.height)
        for net in self.nets:
            devs = net.devices
            if len(devs) < 2:
                continue
            edge_weight = net.weight * 2.0 / len(devs)
            for i, a in enumerate(devs):
                for b in devs[i + 1:]:
                    if graph.has_edge(a, b):
                        graph[a][b]["weight"] += edge_weight
                    else:
                        graph.add_edge(a, b, weight=edge_weight)
        return graph

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, devices={self.num_devices}, "
            f"nets={self.num_nets}, "
            f"symmetry_groups={len(self.constraints.symmetry_groups)})"
        )
