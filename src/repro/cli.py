"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list`` — the available paper testcases;
* ``place`` — run one placement method on a testcase, print metrics,
  optionally save the layout as JSON and/or SVG;
* ``simulate`` — evaluate a saved (or freshly placed) layout's circuit
  performance and FOM;
* ``table`` — regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys

from .annealing import SAParams
from .api import METHODS, place
from .circuits import PAPER_TESTCASES, make
from .placement import audit_constraints
from .placement.io import load_placement, save_placement, save_svg
from .simulate import fom, simulate


def _cmd_list(_args) -> int:
    for name in PAPER_TESTCASES:
        circuit = make(name)
        print(f"{name:8s} devices={circuit.num_devices:3d} "
              f"nets={circuit.num_nets:3d} "
              f"symmetry_groups="
              f"{len(circuit.constraints.symmetry_groups)}")
    return 0


def _cmd_place(args) -> int:
    circuit = make(args.circuit)
    kwargs = {}
    if args.method == "annealing":
        kwargs["params"] = SAParams(iterations=args.sa_iterations,
                                    seed=args.seed)
    result = place(circuit, args.method, **kwargs)
    metrics = result.metrics()
    audit = audit_constraints(result.placement)
    print(f"method   : {result.method}")
    print(f"area     : {metrics['area']:.2f} um^2")
    print(f"hpwl     : {metrics['hpwl']:.2f} um")
    print(f"overlap  : {metrics['overlap']:.4f} um^2")
    print(f"runtime  : {metrics['runtime_s']:.2f} s")
    print(f"audit    : {'OK' if audit.ok else audit.violations}")
    if args.out:
        save_placement(result.placement, args.out)
        print(f"saved    : {args.out}")
    if args.svg:
        save_svg(result.placement, args.svg)
        print(f"svg      : {args.svg}")
    return 0


def _cmd_simulate(args) -> int:
    circuit = make(args.circuit)
    if args.layout:
        placement = load_placement(circuit, args.layout)
    else:
        placement = place(circuit, args.method).placement
    metrics = simulate(placement)
    for name, value in metrics.items():
        print(f"{name:20s} {value:10.2f}")
    print(f"{'FOM':20s} {fom(placement):10.3f}")
    return 0


def _cmd_table(args) -> int:
    from . import experiments as exp

    drivers = {
        "table1": (exp.run_table1, exp.format_table1),
        "fig2": (exp.run_fig2, exp.format_fig2),
        "table3": (exp.run_table3, exp.format_table3),
        "table4": (exp.run_table4, exp.format_table4),
        "fig5": (exp.run_fig5, exp.format_fig5),
    }
    if args.name not in drivers:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{sorted(drivers)} (performance tables need trained "
              "models; use the benchmark suite)", file=sys.stderr)
        return 2
    run, fmt = drivers[args.name]
    print(fmt(run(quick=args.quick)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog placement study reproduction (DATE 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's testcases")

    p_place = sub.add_parser("place", help="place one testcase")
    p_place.add_argument("circuit", choices=PAPER_TESTCASES)
    p_place.add_argument("--method", choices=METHODS,
                         default="eplace-a")
    p_place.add_argument("--sa-iterations", type=int, default=20000)
    p_place.add_argument("--seed", type=int, default=3)
    p_place.add_argument("--out", help="save layout JSON here")
    p_place.add_argument("--svg", help="save layout SVG here")

    p_sim = sub.add_parser("simulate",
                           help="simulate a layout's performance")
    p_sim.add_argument("circuit", choices=PAPER_TESTCASES)
    p_sim.add_argument("--layout", help="layout JSON (else place fresh)")
    p_sim.add_argument("--method", choices=METHODS, default="eplace-a")

    p_table = sub.add_parser("table",
                             help="regenerate a paper table/figure")
    p_table.add_argument("name")
    p_table.add_argument("--quick", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "place": _cmd_place,
        "simulate": _cmd_simulate,
        "table": _cmd_table,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
