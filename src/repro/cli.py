"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list`` — the available paper testcases;
* ``place`` — run one placement method on a testcase, print metrics,
  optionally save the layout as JSON and/or SVG, a convergence/span
  trace as JSONL (``--trace-out``), or a per-phase time table
  (``--profile``);
* ``simulate`` — evaluate a saved (or freshly placed) layout's circuit
  performance and FOM;
* ``table`` — regenerate one of the paper's tables/figures;
* ``runs`` — inspect the persistent run registry
  (:mod:`repro.obs.registry`): ``list``/``show``/``compare``/``gc``
  over the run directories that ``place --save-run`` and ``table
  --save-run`` record;
* ``serve`` — run the placement service (:mod:`repro.service`): an
  HTTP/JSON job API with queueing, dedupe caching, admission control
  and NDJSON event streaming; see docs/SERVICE.md.

Global ``-v``/``-vv`` raises the ``repro.*`` logging level (INFO /
DEBUG) for solver diagnostics.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack

from . import obs
from .annealing import SAParams
from .api import METHODS, place, place_multiseed
from .obs import live
from .obs.registry import RegistryError
from .circuits import PAPER_TESTCASES, make
from .placement import audit_constraints
from .placement.io import load_placement, save_placement, save_svg
from .simulate import fom, simulate


def _echo(message: str = "", err: bool = False) -> None:
    """CLI output channel (stdout is data; diagnostics go to logging)."""
    stream = sys.stderr if err else sys.stdout
    stream.write(message + "\n")


def _normalize(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


#: forgiving lookup: "cmota1", "CM-OTA1" and "cm_ota1" all resolve
CIRCUIT_ALIASES = {_normalize(name): name for name in PAPER_TESTCASES}


def _parse_seeds(spec: "str | None") -> "list[int] | None":
    """Parse a ``--seeds`` list like ``1,2,3`` (None when absent)."""
    if not spec:
        return None
    try:
        seeds = [int(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"--seeds expects a comma-separated integer list, "
            f"got {spec!r}"
        )
    if not seeds:
        raise SystemExit("--seeds expects at least one seed")
    return seeds


def resolve_circuit(name: str) -> str:
    """Map a user-supplied circuit name to its canonical testcase name."""
    canonical = CIRCUIT_ALIASES.get(_normalize(name))
    if canonical is None:
        raise SystemExit(
            f"unknown circuit {name!r}; choose from "
            f"{', '.join(PAPER_TESTCASES)}"
        )
    return canonical


def _cmd_list(_args) -> int:
    for name in PAPER_TESTCASES:
        circuit = make(name)
        _echo(f"{name:8s} devices={circuit.num_devices:3d} "
              f"nets={circuit.num_nets:3d} "
              f"symmetry_groups="
              f"{len(circuit.constraints.symmetry_groups)}")
    return 0


def _cmd_place(args) -> int:
    name = args.circuit_opt or args.circuit
    if not name:
        raise SystemExit(
            "place: a circuit is required (positional or --circuit)"
        )
    circuit = make(resolve_circuit(name))
    kwargs = {}
    if args.method == "annealing":
        kwargs["params"] = SAParams(iterations=args.sa_iterations,
                                    seed=args.seed)
    seeds = _parse_seeds(args.seeds)
    if args.racing and seeds is None:
        raise SystemExit("--racing requires --seeds")
    want_trace = bool(args.trace_out or args.profile or args.save_run)

    def _run():
        if seeds is None:
            return place(circuit, args.method, **kwargs)
        racing = obs.RacingParams() if args.racing else None
        out = place_multiseed(
            circuit, args.method, seeds=seeds, jobs=args.jobs,
            racing=racing, **kwargs,
        )
        results = out if racing is None else out.results
        for seed, res in zip(seeds, results):
            if res is None:
                _echo(f"seed {seed:4d}: cancelled (racing)")
                continue
            m = res.metrics()
            _echo(f"seed {seed:4d}: hpwl {m['hpwl']:.2f} "
                  f"area {m['area']:.2f} "
                  f"runtime {m['runtime_s']:.2f}s")
        if racing is None:
            return min(results, key=lambda r: r.metrics()["hpwl"])
        for kill in out.kills:
            _echo(f"race     : seed {kill.seed} dominated at "
                  f"iteration {kill.iteration} ({out.metric} "
                  f"{kill.value:.4g} vs best {kill.best:.4g}"
                  f"{'' if kill.landed else ', already finished'})")
        return out.winner

    writer = None
    tracer = None
    with ExitStack() as stack:
        if want_trace:
            tracer = stack.enter_context(obs.tracing())
        if args.save_run:
            writer = obs.RunRegistry().create(
                "place", f"{circuit.name}:{args.method}",
                config={
                    "circuit": circuit.name, "method": args.method,
                    "seed": args.seed, "seeds": seeds,
                    "jobs": args.jobs, "racing": bool(args.racing),
                    "sa_iterations": args.sa_iterations,
                },
            )
            bus = obs.EventBus()
            bus.subscribe(writer.event_subscriber())
            stack.enter_context(live.session(bus))
            stack.enter_context(obs.ResourceSampler(bus))
        result = _run()
    if tracer is not None and not result.trace:
        result.trace = tracer.to_trace()
    metrics = result.metrics()
    audit = audit_constraints(result.placement)
    _echo(f"method   : {result.method}")
    _echo(f"area     : {metrics['area']:.2f} um^2")
    _echo(f"hpwl     : {metrics['hpwl']:.2f} um")
    _echo(f"overlap  : {metrics['overlap']:.4f} um^2")
    _echo(f"runtime  : {metrics['runtime_s']:.2f} s")
    _echo(f"audit    : {'OK' if audit.ok else audit.violations}")
    if args.out:
        save_placement(result.placement, args.out)
        _echo(f"saved    : {args.out}")
    if args.svg:
        save_svg(result.placement, args.svg)
        _echo(f"svg      : {args.svg}")
    if args.trace_out:
        count = obs.write_jsonl(
            result.trace, args.trace_out,
            method=result.method, circuit=circuit.name,
            runtime_s=result.runtime_s,
        )
        _echo(f"trace    : {args.trace_out} ({count} records)")
    if args.metrics_out:
        doc = {
            "schema": "repro.obs.metrics/1",
            "method": result.method,
            "circuit": circuit.name,
            "runtime_s": result.runtime_s,
            "quality": metrics,
            "registry": obs.snapshot(),
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True,
                      default=float)
            handle.write("\n")
        _echo(f"metrics  : {args.metrics_out}")
    if args.profile:
        _echo()
        _echo(obs.format_profile(result.trace, result.runtime_s))
    if writer is not None:
        writer.write_trace(
            result.trace, method=result.method, circuit=circuit.name,
            runtime_s=result.runtime_s,
        )
        path = writer.finalize(metrics=dict(metrics))
        _echo(f"run      : {path}")
    return 0


def _cmd_simulate(args) -> int:
    circuit = make(resolve_circuit(args.circuit))
    if args.layout:
        placement = load_placement(circuit, args.layout)
    else:
        placement = place(circuit, args.method).placement
    metrics = simulate(placement)
    for name, value in metrics.items():
        _echo(f"{name:20s} {value:10.2f}")
    _echo(f"{'FOM':20s} {fom(placement):10.3f}")
    return 0


def _cmd_table(args) -> int:
    from . import experiments as exp

    drivers = {
        "table1": (exp.run_table1, exp.format_table1),
        "fig2": (exp.run_fig2, exp.format_fig2),
        "table3": (exp.run_table3, exp.format_table3),
        "table4": (exp.run_table4, exp.format_table4),
        "fig5": (exp.run_fig5, exp.format_fig5),
        "table5": (exp.run_table5, exp.format_table5),
        "table7": (exp.run_table7, exp.format_table7),
    }
    if args.name not in drivers:
        _echo(f"unknown experiment {args.name!r}; choose from "
              f"{sorted(drivers)}", err=True)
        return 2
    run, fmt = drivers[args.name]
    writer = None
    if args.save_run:
        writer = obs.RunRegistry().create(
            "table", args.name,
            config={"name": args.name, "quick": bool(args.quick),
                    "jobs": args.jobs},
        )
    if args.name in ("table3", "table5", "table7"):
        rows = run(quick=args.quick, jobs=args.jobs)
    else:
        rows = run(quick=args.quick)
    rendered = fmt(rows)
    _echo(rendered)
    if writer is not None:
        with open(writer.path / "table.txt", "w") as handle:
            handle.write(rendered + "\n")
        path = writer.finalize()
        _echo(f"run      : {path}")
    return 0


def _cmd_runs(args) -> int:
    registry = obs.RunRegistry(args.root)
    try:
        return _dispatch_runs(registry, args)
    except RegistryError as exc:
        _echo(f"error: {exc}", err=True)
        return 2


def _run_diagnosis(run):
    """Best-available Diagnosis for a registry run, or ``None``.

    Prefers the manifest's stored verdicts (schema ``repro.run/2``);
    older runs fall back to recomputing from ``events.jsonl`` and then
    ``trace.jsonl``, so ``doctor``/``--health`` work on ``repro.run/1``
    directories too.
    """
    from .obs import diagnose
    from .obs.report import load_events

    doc = run.manifest.get("diagnosis")
    if isinstance(doc, dict):
        return diagnose.Diagnosis.from_dict(doc)
    events = load_events(run.path / "events.jsonl")
    if events:
        diagnosis = diagnose.diagnose_events(events)
        if diagnosis.phases:
            return diagnosis
    trace_path = run.path / "trace.jsonl"
    if trace_path.is_file():
        try:
            _, trace = obs.read_jsonl(trace_path)
        except (OSError, ValueError, KeyError):
            return None
        if trace.convergence:
            return diagnose.diagnose_trace(trace)
    return None


def _echo_diagnosis(diagnosis) -> None:
    _echo(f"verdict  : {diagnosis.verdict}")
    for name in sorted(diagnosis.phases):
        phase = diagnosis.phases[name]
        fired = sorted(
            check for check, hit in phase.checks.items() if hit
        )
        detail = f" [{', '.join(fired)}]" if fired else ""
        metric = f" metric={phase.metric}" if phase.metric else ""
        _echo(f"  {name:24s} {phase.verdict:17s} "
              f"({phase.points} points{metric}){detail}")


def _dispatch_runs(registry, args) -> int:
    if args.runs_command == "list":
        runs = registry.list_runs()
        if not runs:
            _echo(f"(no runs under {registry.root})")
            return 0
        for run in runs:
            summary = " ".join(
                f"{key}={value:.5g}"
                for key, value in sorted(run.metrics.items())
                if isinstance(value, (int, float))
            )
            _echo(f"{run.run_id}  {run.kind:6s} {run.label:20s} "
                  f"{run.status:9s} {summary}".rstrip())
        return 0
    if args.runs_command == "show":
        run = registry.resolve(args.run)
        manifest = run.manifest
        _echo(f"run      : {run.run_id}")
        _echo(f"kind     : {run.kind}")
        _echo(f"label    : {run.label}")
        _echo(f"status   : {run.status}")
        _echo(f"created  : {manifest.get('created_utc', '?')}")
        git_sha = (manifest.get("fingerprint") or {}).get("git_sha")
        if git_sha:
            _echo(f"git      : {git_sha}")
        config = manifest.get("config") or {}
        if config:
            _echo("config   : "
                  + json.dumps(config, sort_keys=True, default=str))
        for key, value in sorted(run.metrics.items()):
            _echo(f"  {key:20s} {value:12.6g}")
        conv_path = run.path / "convergence.json"
        if conv_path.is_file():
            with open(conv_path) as handle:
                doc = json.load(handle)
            for phase, series in sorted(doc.get("phases", {}).items()):
                _echo(f"phase    : {phase} "
                      f"({len(series.get('iterations', []))} "
                      "iterations)")
        events_path = run.path / "events.jsonl"
        if events_path.is_file():
            with open(events_path) as handle:
                count = sum(1 for _ in handle)
            _echo(f"events   : {count}")
        for entry in sorted(run.path.iterdir()):
            _echo(f"file     : {entry.name} "
                  f"({entry.stat().st_size} B)")
        return 0
    if args.runs_command == "doctor":
        from .obs import diagnose

        run = registry.resolve(args.run)
        _echo(f"run      : {run.run_id}")
        diagnosis = _run_diagnosis(run)
        if diagnosis is None:
            _echo("verdict  : insufficient-data "
                  "(no convergence records)")
            return 0
        _echo_diagnosis(diagnosis)
        return 0 if diagnosis.verdict in diagnose.HEALTHY_VERDICTS \
            else 1
    if args.runs_command == "report":
        from .obs.report import render_run_html

        run = registry.resolve(args.run)
        html = render_run_html(run.path, run.manifest)
        out = args.out or str(run.path / "report.html")
        with open(out, "w") as handle:
            handle.write(html)
        _echo(f"report   : {out}")
        return 0
    if args.runs_command == "compare":
        base = registry.resolve(args.base)
        head = registry.resolve(args.head)
        _echo(f"BASE {base.run_id} ({base.kind}: {base.label})")
        _echo(f"HEAD {head.run_id} ({head.kind}: {head.label})")
        keys = sorted(set(base.metrics) & set(head.metrics))
        if not keys and not args.health:
            _echo("(no shared metric summary keys to compare)")
            return 0
        if keys:
            _echo(f"{'metric':20s} {'base':>12s} {'head':>12s} "
                  f"{'delta':>8s}")
            for key in keys:
                a, b = base.metrics[key], head.metrics[key]
                delta = (f"{100.0 * (b - a) / abs(a):+.1f}%"
                         if a else "n/a")
                _echo(f"{key:20s} {a:>12.5g} {b:>12.5g} {delta:>8s}")
        if args.health:
            diag_a = _run_diagnosis(base)
            diag_b = _run_diagnosis(head)
            verdict_a = diag_a.verdict if diag_a else "(none)"
            verdict_b = diag_b.verdict if diag_b else "(none)"
            marker = "" if verdict_a == verdict_b else "  *"
            _echo(f"{'health':20s} {verdict_a:>17s} "
                  f"{verdict_b:>17s}{marker}")
            phases = sorted(
                set(diag_a.phases if diag_a else {})
                | set(diag_b.phases if diag_b else {})
            )
            for name in phases:
                pa = diag_a.phases.get(name) if diag_a else None
                pb = diag_b.phases.get(name) if diag_b else None
                va = pa.verdict if pa else "(none)"
                vb = pb.verdict if pb else "(none)"
                marker = "" if va == vb else "  *"
                _echo(f"  {name:18s} {va:>17s} {vb:>17s}{marker}")
        return 0
    if args.runs_command == "gc":
        victims = registry.gc(keep=args.keep, dry_run=args.dry_run)
        verb = "would delete" if args.dry_run else "deleted"
        for run in victims:
            _echo(f"{verb}: {run.run_id}")
        _echo(f"{verb} {len(victims)} run(s), keeping newest "
              f"{args.keep}")
        return 0
    raise AssertionError(f"unhandled runs command {args.runs_command}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog placement study reproduction (DATE 2022)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise repro.* log level (-v INFO, -vv DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's testcases")

    p_place = sub.add_parser("place", help="place one testcase")
    p_place.add_argument("circuit", nargs="?",
                         help=f"testcase ({', '.join(PAPER_TESTCASES)})")
    p_place.add_argument("--circuit", dest="circuit_opt",
                         help="testcase (alternative to the positional)")
    p_place.add_argument("--method", choices=METHODS,
                         default="eplace-a",
                         help="placement engine (default: eplace-a)")
    p_place.add_argument("--sa-iterations", type=int, default=20000,
                         help="annealing move budget "
                              "(--method annealing only)")
    p_place.add_argument("--seed", type=int, default=3,
                         help="annealing RNG seed "
                              "(ignored when --seeds is given)")
    p_place.add_argument(
        "--seeds", metavar="S1,S2,...",
        help="run once per seed (process-parallel with --jobs), "
             "print a per-seed summary and keep the best-HPWL result",
    )
    p_place.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --seeds fan-out (0 = all cores)",
    )
    p_place.add_argument("--out", help="save layout JSON here")
    p_place.add_argument("--svg", help="save layout SVG here")
    p_place.add_argument("--trace-out", metavar="FILE.jsonl",
                         help="write the span/convergence trace as JSONL")
    p_place.add_argument(
        "--metrics-out", metavar="FILE.json",
        help="write quality metrics plus the repro.obs metrics "
             "registry snapshot as JSON (works without --trace-out)",
    )
    p_place.add_argument("--profile", action="store_true",
                         help="print a per-phase time table")
    p_place.add_argument(
        "--racing", action="store_true",
        help="race the --seeds fan-out: cancel convergence-dominated "
             "seeds after warmup (repro.obs.racing)",
    )
    p_place.add_argument(
        "--save-run", action="store_true",
        help="record this invocation in the run registry "
             "($REPRO_RUNS_DIR or ./runs; inspect with 'repro runs')",
    )

    p_sim = sub.add_parser("simulate",
                           help="simulate a layout's performance")
    p_sim.add_argument("circuit",
                       help=f"testcase ({', '.join(PAPER_TESTCASES)})")
    p_sim.add_argument("--layout", help="layout JSON (else place fresh)")
    p_sim.add_argument("--method", choices=METHODS, default="eplace-a",
                       help="engine used when placing fresh "
                            "(default: eplace-a)")

    p_table = sub.add_parser("table",
                             help="regenerate a paper table/figure")
    p_table.add_argument(
        "name",
        help="experiment driver: table1, fig2, table3, table4, fig5, "
             "table5 or table7 (table5/table7 train the per-design "
             "GNN models first — budget minutes, or use --quick)",
    )
    p_table.add_argument("--quick", action="store_true",
                         help="reduced budgets (same as REPRO_QUICK=1)")
    p_table.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for per-circuit fan-out "
             "(table3/table5/table7; 0 = all cores)",
    )
    p_table.add_argument(
        "--save-run", action="store_true",
        help="record the rendered table in the run registry",
    )

    p_runs = sub.add_parser(
        "runs", help="inspect the persistent run registry"
    )
    p_runs.add_argument(
        "--root", default=None,
        help="registry root (default: $REPRO_RUNS_DIR or ./runs)",
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command",
                                     required=True)
    runs_sub.add_parser("list",
                        help="list recorded runs, oldest first")
    p_show = runs_sub.add_parser(
        "show", help="print one run's manifest and artifacts"
    )
    p_show.add_argument(
        "run", help="run id, unique prefix, or 'latest'"
    )
    p_rcmp = runs_sub.add_parser(
        "compare", help="diff two runs' metric summaries"
    )
    p_rcmp.add_argument("base",
                        help="baseline run id/prefix/'latest'")
    p_rcmp.add_argument("head",
                        help="candidate run id/prefix/'latest'")
    p_rcmp.add_argument(
        "--health", action="store_true",
        help="also diff the convergence-health verdicts per phase",
    )
    p_doc = runs_sub.add_parser(
        "doctor",
        help="print a run's convergence-health diagnosis "
             "(exit 1 when unhealthy)",
    )
    p_doc.add_argument(
        "run", help="run id, unique prefix, or 'latest'"
    )
    p_rep = runs_sub.add_parser(
        "report",
        help="render one run as a self-contained HTML report",
    )
    p_rep.add_argument(
        "run", help="run id, unique prefix, or 'latest'"
    )
    p_rep.add_argument(
        "--out", default=None,
        help="output path (default: <run dir>/report.html)",
    )
    p_gc = runs_sub.add_parser(
        "gc", help="delete all but the newest runs"
    )
    p_gc.add_argument("--keep", type=int, default=20,
                      help="runs to keep (default: 20)")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report deletions without touching disk")

    p_serve = sub.add_parser(
        "serve",
        help="run the placement service (HTTP/JSON job API)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8357,
        help="TCP port (default: 8357; 0 = ephemeral)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="placement worker threads, one forked child each "
             "(default: 2)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="bounded job queue depth; full -> HTTP 503 "
             "(default: 16)",
    )
    p_serve.add_argument(
        "--max-cost", type=float, default=None,
        help="admission budget in cost points; over-budget jobs get "
             "HTTP 429 (default: unlimited; see docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="persist the result cache here (default: memory only)",
    )
    p_serve.add_argument(
        "--cache-policy", choices=("fifo", "lru"), default="lru",
        help="disk-cache eviction policy: lru renews entries on every "
             "hit, fifo evicts oldest writes (default: lru)",
    )
    p_serve.add_argument(
        "--runs-root", default=None,
        help="run registry root for finished jobs "
             "(default: $REPRO_RUNS_DIR or ./runs)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, dest="timeout_s",
        metavar="SECONDS",
        help="default per-job wall-time budget "
             "(default: none; requests may set timeout_s)",
    )
    return parser


def _cmd_serve(args) -> int:
    # imported lazily: the service pulls in http.server and the full
    # engine stack, which the other subcommands never need
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_cost=args.max_cost,
        cache_dir=args.cache_dir,
        cache_policy=args.cache_policy,
        runs_root=args.runs_root,
        timeout_s=args.timeout_s,
    )
    if args.verbose == 0:
        # a server with silent logs is unusable; default to INFO
        obs.configure_logging(1)
    return serve(config)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure_logging(args.verbose)
    handlers = {
        "list": _cmd_list,
        "place": _cmd_place,
        "simulate": _cmd_simulate,
        "table": _cmd_table,
        "runs": _cmd_runs,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
