"""Placement container: device centre coordinates plus flip states."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Circuit, Net


@dataclass
class Placement:
    """Positions for every device of a circuit.

    ``x``/``y`` hold device *centre* coordinates in micrometres, indexed by
    the circuit's canonical device order.  ``flip_x``/``flip_y`` record
    mirroring about the device's own vertical/horizontal centre line, which
    moves pins but not the rectangle outline.
    """

    circuit: Circuit
    x: np.ndarray
    y: np.ndarray
    flip_x: np.ndarray = field(default=None)  # type: ignore[assignment]
    flip_y: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = self.circuit.num_devices
        self.x = np.asarray(self.x, dtype=float).copy()
        self.y = np.asarray(self.y, dtype=float).copy()
        if self.x.shape != (n,) or self.y.shape != (n,):
            raise ValueError(
                f"placement for {self.circuit.name!r} needs {n} coordinates, "
                f"got x{self.x.shape} y{self.y.shape}"
            )
        if self.flip_x is None:
            self.flip_x = np.zeros(n, dtype=bool)
        else:
            self.flip_x = np.asarray(self.flip_x, dtype=bool).copy()
        if self.flip_y is None:
            self.flip_y = np.zeros(n, dtype=bool)
        else:
            self.flip_y = np.asarray(self.flip_y, dtype=bool).copy()
        if self.flip_x.shape != (n,) or self.flip_y.shape != (n,):
            raise ValueError("flip vectors must have one entry per device")

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, circuit: Circuit) -> "Placement":
        """All devices at the origin (useful as an optimisation start)."""
        n = circuit.num_devices
        return cls(circuit, np.zeros(n), np.zeros(n))

    @classmethod
    def from_mapping(
        cls, circuit: Circuit, positions: dict[str, tuple[float, float]]
    ) -> "Placement":
        """Build from a ``{device_name: (x, y)}`` mapping of centres."""
        names = circuit.device_names
        missing = set(names) - set(positions)
        if missing:
            raise ValueError(f"positions missing for {sorted(missing)}")
        x = np.array([positions[n][0] for n in names], dtype=float)
        y = np.array([positions[n][1] for n in names], dtype=float)
        return cls(circuit, x, y)

    def copy(self) -> "Placement":
        """Fresh placement sharing the circuit, with copied arrays."""
        return Placement(
            self.circuit, self.x, self.y, self.flip_x, self.flip_y
        )

    # ------------------------------------------------------------------
    def position_of(self, device_name: str) -> tuple[float, float]:
        """Centre coordinates of one device."""
        i = self.circuit.index_of(device_name)
        return float(self.x[i]), float(self.y[i])

    def rectangles(self) -> np.ndarray:
        """``(n, 4)`` array of ``(xlo, ylo, xhi, yhi)`` device outlines."""
        w, h = self.circuit.sizes()
        return np.column_stack(
            (self.x - w / 2, self.y - h / 2, self.x + w / 2, self.y + h / 2)
        )

    def pin_position(self, device_name: str, pin_name: str) -> tuple[float, float]:
        """Absolute coordinates of a pin, honouring the device's flips."""
        i = self.circuit.index_of(device_name)
        device = self.circuit.devices[device_name]
        ox, oy = device.pin_offset(
            pin_name, flip_x=bool(self.flip_x[i]), flip_y=bool(self.flip_y[i])
        )
        xlo = self.x[i] - device.width / 2.0
        ylo = self.y[i] - device.height / 2.0
        return float(xlo + ox), float(ylo + oy)

    def net_pin_positions(self, net: Net) -> np.ndarray:
        """``(degree, 2)`` array of absolute pin coordinates for a net."""
        pts = [self.pin_position(t.device, t.pin) for t in net.terminals]
        return np.asarray(pts, dtype=float)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(xlo, ylo, xhi, yhi)`` of the union of device outlines."""
        rects = self.rectangles()
        return (
            float(rects[:, 0].min()),
            float(rects[:, 1].min()),
            float(rects[:, 2].max()),
            float(rects[:, 3].max()),
        )

    def translate(self, dx: float, dy: float) -> "Placement":
        """Return a copy shifted by ``(dx, dy)``."""
        moved = self.copy()
        moved.x += dx
        moved.y += dy
        return moved

    def normalized(self) -> "Placement":
        """Return a copy translated so the bounding box corner is (0, 0)."""
        xlo, ylo, _, _ = self.bounding_box()
        return self.translate(-xlo, -ylo)

    def __repr__(self) -> str:
        xlo, ylo, xhi, yhi = self.bounding_box()
        return (
            f"Placement({self.circuit.name!r}, n={self.circuit.num_devices}, "
            f"bbox=({xlo:.2f},{ylo:.2f})-({xhi:.2f},{yhi:.2f}))"
        )
