"""Constraint-violation audits for placements.

Used by tests and by the experiment harness to certify that detailed
placements honour symmetry, alignment and ordering constraints exactly
(the paper enforces them as hard ILP constraints, eq. 4f-4i).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Axis, SymmetryGroup
from .placement import Placement


@dataclass
class ConstraintAudit:
    """Worst-case residuals per constraint class, in µm.

    A residual of 0 means the constraint is satisfied exactly; the
    ``violations`` list holds human-readable descriptions of every
    residual above ``tolerance``.
    """

    symmetry: float = 0.0
    alignment: float = 0.0
    ordering: float = 0.0
    tolerance: float = 1e-6
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no residual exceeds ``tolerance``."""
        return not self.violations

    @property
    def worst(self) -> float:
        """Largest residual across all constraint classes, in µm."""
        return max(self.symmetry, self.alignment, self.ordering)


def audit_constraints(
    placement: Placement, tolerance: float = 1e-6
) -> ConstraintAudit:
    """Measure how far a placement is from satisfying its constraints."""
    audit = ConstraintAudit(tolerance=tolerance)
    circuit = placement.circuit
    index = circuit.device_index()
    x, y = placement.x, placement.y
    widths, heights = circuit.sizes()

    for group in circuit.constraints.symmetry_groups:
        residuals = _symmetry_residuals(group, index, x, y)
        for label, value in residuals:
            audit.symmetry = max(audit.symmetry, value)
            if value > tolerance:
                audit.violations.append(
                    f"symmetry {group.name!r}: {label} off by {value:.4g}"
                )

    for pair in circuit.constraints.alignments:
        ia, ib = index[pair.a], index[pair.b]
        if pair.kind == "bottom":
            value = abs(
                (y[ia] - heights[ia] / 2) - (y[ib] - heights[ib] / 2)
            )
        elif pair.kind == "vcenter":
            value = abs(x[ia] - x[ib])
        else:  # hcenter
            value = abs(y[ia] - y[ib])
        audit.alignment = max(audit.alignment, value)
        if value > tolerance:
            audit.violations.append(
                f"alignment {pair.kind} ({pair.a}, {pair.b}) off by "
                f"{value:.4g}"
            )

    for chain in circuit.constraints.orderings:
        for left, right in chain.pairs:
            il, ir = index[left], index[right]
            if chain.axis is Axis.VERTICAL:
                gap = (x[ir] - widths[ir] / 2) - (x[il] + widths[il] / 2)
            else:
                gap = (y[ir] - heights[ir] / 2) - (y[il] + heights[il] / 2)
            value = max(0.0, -float(gap))
            audit.ordering = max(audit.ordering, value)
            if value > tolerance:
                audit.violations.append(
                    f"ordering ({left} before {right}) violated by "
                    f"{value:.4g}"
                )
    return audit


def _symmetry_residuals(
    group: SymmetryGroup,
    index: dict[str, int],
    x: np.ndarray,
    y: np.ndarray,
) -> list[tuple[str, float]]:
    """Residuals for one symmetry group given a fitted axis position.

    The axis position is free, so we fit it as the value minimising the
    maximum residual: the mean of all implied axis positions.
    """
    if group.axis is Axis.VERTICAL:
        along, across = x, y
    else:
        along, across = y, x

    implied = [
        (along[index[a]] + along[index[b]]) / 2.0 for a, b in group.pairs
    ]
    implied.extend(along[index[s]] for s in group.self_symmetric)
    axis_pos = float(np.mean(implied))

    residuals = []
    for a, b in group.pairs:
        ia, ib = index[a], index[b]
        mid = (along[ia] + along[ib]) / 2.0
        residuals.append((f"pair ({a}, {b}) axis", abs(mid - axis_pos)))
        residuals.append(
            (f"pair ({a}, {b}) cross-coord", abs(across[ia] - across[ib]))
        )
    for s in group.self_symmetric:
        residuals.append(
            (f"self {s} on axis", abs(along[index[s]] - axis_pos))
        )
    return residuals
