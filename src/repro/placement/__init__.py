"""Placement containers, exact metrics and constraint audits."""

from .audit import ConstraintAudit, audit_constraints
from .metrics import (
    bounding_area,
    hpwl,
    net_hpwl,
    overlapping_pairs,
    pair_overlap,
    summarize,
    total_overlap,
    utilization,
)
from .io import (
    load_placement,
    placement_from_dict,
    placement_to_dict,
    placement_to_svg,
    save_placement,
    save_svg,
)
from .placement import Placement
from .result import PlacerResult

__all__ = [
    "ConstraintAudit",
    "PlacerResult",
    "Placement",
    "audit_constraints",
    "bounding_area",
    "hpwl",
    "load_placement",
    "placement_from_dict",
    "placement_to_dict",
    "placement_to_svg",
    "save_placement",
    "save_svg",
    "net_hpwl",
    "overlapping_pairs",
    "pair_overlap",
    "summarize",
    "total_overlap",
    "utilization",
]
