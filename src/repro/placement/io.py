"""Placement persistence and export.

JSON round-tripping for placements (coordinates + flips, keyed by
device name so files survive netlist reordering) and a dependency-free
SVG renderer for visual inspection of layouts, symmetry axes and
critical nets.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..netlist import Axis, Circuit
from .placement import Placement


def placement_to_dict(placement: Placement) -> dict:
    """JSON-serialisable representation of a placement."""
    names = placement.circuit.device_names
    return {
        "circuit": placement.circuit.name,
        "devices": {
            name: {
                "x": float(placement.x[i]),
                "y": float(placement.y[i]),
                "flip_x": bool(placement.flip_x[i]),
                "flip_y": bool(placement.flip_y[i]),
            }
            for i, name in enumerate(names)
        },
    }


def placement_from_dict(circuit: Circuit, data: dict) -> Placement:
    """Rebuild a placement; validates circuit name and device cover."""
    if data.get("circuit") != circuit.name:
        raise ValueError(
            f"placement file is for circuit {data.get('circuit')!r}, "
            f"not {circuit.name!r}"
        )
    devices = data["devices"]
    missing = set(circuit.device_names) - set(devices)
    if missing:
        raise ValueError(f"placement file missing devices: "
                         f"{sorted(missing)}")
    n = circuit.num_devices
    x = np.zeros(n)
    y = np.zeros(n)
    fx = np.zeros(n, dtype=bool)
    fy = np.zeros(n, dtype=bool)
    for i, name in enumerate(circuit.device_names):
        entry = devices[name]
        x[i] = entry["x"]
        y[i] = entry["y"]
        fx[i] = entry.get("flip_x", False)
        fy[i] = entry.get("flip_y", False)
    return Placement(circuit, x, y, fx, fy)


def save_placement(placement: Placement,
                   path: str | pathlib.Path) -> None:
    """Write a placement to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(placement_to_dict(placement), indent=2))


def load_placement(circuit: Circuit,
                   path: str | pathlib.Path) -> Placement:
    """Read a placement from a JSON file for the given circuit."""
    return placement_from_dict(
        circuit, json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# SVG rendering
# ----------------------------------------------------------------------

_FAMILY_FILL = {
    "nmos": "#7fb3d5",
    "pmos": "#f5b7b1",
    "cap": "#a9dfbf",
    "res": "#f9e79b",
    "ind": "#d7bde2",
    "switch": "#aeb6bf",
    "module": "#e5e7e9",
}


def placement_to_svg(
    placement: Placement,
    scale: float = 40.0,
    show_critical_nets: bool = True,
    show_symmetry_axes: bool = True,
) -> str:
    """Render a placement as an SVG string (no external dependencies).

    Devices are coloured by type and labelled; critical nets are drawn
    as pin-to-pin polylines; each symmetry group's fitted axis is drawn
    dashed.
    """
    circuit = placement.circuit
    norm = placement.normalized()
    xlo, ylo, xhi, yhi = norm.bounding_box()
    margin = 0.06 * max(xhi - xlo, yhi - ylo, 1.0)
    width = (xhi - xlo + 2 * margin) * scale
    height = (yhi - ylo + 2 * margin) * scale

    def sx(v: float) -> float:
        return (v - xlo + margin) * scale

    def sy(v: float) -> float:
        # SVG y grows downward
        return height - (v - ylo + margin) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" '
        f'fill="white"/>',
    ]

    rects = norm.rectangles()
    font = max(scale * 0.22, 6.0)
    for i, name in enumerate(circuit.device_names):
        device = circuit.devices[name]
        fill = _FAMILY_FILL.get(device.dtype.value, "#dddddd")
        rxlo, rylo, rxhi, ryhi = rects[i]
        parts.append(
            f'<rect x="{sx(rxlo):.1f}" y="{sy(ryhi):.1f}" '
            f'width="{(rxhi - rxlo) * scale:.1f}" '
            f'height="{(ryhi - rylo) * scale:.1f}" fill="{fill}" '
            f'stroke="#555" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{sx(norm.x[i]):.1f}" y="{sy(norm.y[i]):.1f}" '
            f'font-size="{font:.1f}" text-anchor="middle" '
            f'dominant-baseline="middle" fill="#222">{name}</text>'
        )

    if show_critical_nets:
        for net in circuit.nets:
            if not net.critical or net.degree < 2:
                continue
            pts = norm.net_pin_positions(net)
            path = " ".join(
                f"{sx(px):.1f},{sy(py):.1f}" for px, py in pts)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="#c0392b" stroke-width="1.5" opacity="0.8"/>'
            )

    if show_symmetry_axes:
        index = circuit.device_index()
        for group in circuit.constraints.symmetry_groups:
            coords = norm.x if group.axis is Axis.VERTICAL else norm.y
            members = [index[d] for d in group.devices]
            pairs = [(index[a], index[b]) for a, b in group.pairs]
            implied = [
                (coords[a] + coords[b]) / 2.0 for a, b in pairs
            ] + [coords[index[s]] for s in group.self_symmetric]
            axis_pos = float(np.mean(implied))
            if group.axis is Axis.VERTICAL:
                line = (f'x1="{sx(axis_pos):.1f}" y1="0" '
                        f'x2="{sx(axis_pos):.1f}" y2="{height:.0f}"')
            else:
                line = (f'x1="0" y1="{sy(axis_pos):.1f}" '
                        f'x2="{width:.0f}" y2="{sy(axis_pos):.1f}"')
            parts.append(
                f'<line {line} stroke="#2471a3" stroke-width="1" '
                f'stroke-dasharray="6,4" opacity="0.7"/>'
            )
            del members
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(placement: Placement, path: str | pathlib.Path,
             **kwargs: object) -> None:
    """Write the SVG rendering of a placement to a file.

    ``kwargs`` forward to :func:`placement_to_svg`.
    """
    pathlib.Path(path).write_text(
        placement_to_svg(placement, **kwargs))  # type: ignore[arg-type]
