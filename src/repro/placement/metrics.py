"""Exact placement quality metrics: HPWL, area, overlap.

These are the *evaluation* metrics (non-smoothed); the differentiable
surrogates used inside the analytical placers live in
:mod:`repro.analytic`.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Net
from .placement import Placement


def net_hpwl(placement: Placement, net: Net) -> float:
    """Half-perimeter wirelength of one net (unweighted), in µm."""
    if net.degree < 2:
        return 0.0
    pts = placement.net_pin_positions(net)
    return float(
        (pts[:, 0].max() - pts[:, 0].min())
        + (pts[:, 1].max() - pts[:, 1].min())
    )


def hpwl(placement: Placement, weighted: bool = True) -> float:
    """Total half-perimeter wirelength over all nets, in µm.

    With ``weighted=True`` each net's HPWL is scaled by its weight, which
    matches the objective the placers optimise; the paper's tables report
    unit-weight HPWL, which our testcases use anyway.
    """
    total = 0.0
    for net in placement.circuit.nets:
        scale = net.weight if weighted else 1.0
        total += scale * net_hpwl(placement, net)
    return total


def bounding_area(placement: Placement) -> float:
    """Area of the bounding box of all device outlines, in µm²."""
    xlo, ylo, xhi, yhi = placement.bounding_box()
    return (xhi - xlo) * (yhi - ylo)


def pair_overlap(rect_a: np.ndarray, rect_b: np.ndarray) -> float:
    """Overlap area of two ``(xlo, ylo, xhi, yhi)`` rectangles."""
    dx = min(rect_a[2], rect_b[2]) - max(rect_a[0], rect_b[0])
    dy = min(rect_a[3], rect_b[3]) - max(rect_a[1], rect_b[1])
    if dx <= 0.0 or dy <= 0.0:
        return 0.0
    return float(dx * dy)


def total_overlap(placement: Placement, tolerance: float = 1e-9) -> float:
    """Sum of pairwise overlap areas among all devices, in µm².

    Overlaps at or below ``tolerance`` in either axis are treated as
    touching (zero overlap), so abutted legalised layouts report 0.
    """
    rects = placement.rectangles()
    n = len(rects)
    total = 0.0
    for i in range(n):
        # vectorised sweep over j > i
        dx = (
            np.minimum(rects[i, 2], rects[i + 1:, 2])
            - np.maximum(rects[i, 0], rects[i + 1:, 0])
        )
        dy = (
            np.minimum(rects[i, 3], rects[i + 1:, 3])
            - np.maximum(rects[i, 1], rects[i + 1:, 1])
        )
        mask = (dx > tolerance) & (dy > tolerance)
        total += float((dx[mask] * dy[mask]).sum())
    return total


def overlapping_pairs(
    placement: Placement, tolerance: float = 1e-9
) -> list[tuple[int, int, float, float]]:
    """All overlapping device pairs as ``(i, j, dx, dy)`` penetration depths.

    ``dx``/``dy`` are the widths of the overlap region along x and y, the
    quantities the ILP detailed placer inspects to choose a separation
    direction (paper Fig. 4a).
    """
    rects = placement.rectangles()
    n = len(rects)
    pairs = []
    for i in range(n):
        for j in range(i + 1, n):
            dx = min(rects[i, 2], rects[j, 2]) - max(rects[i, 0], rects[j, 0])
            dy = min(rects[i, 3], rects[j, 3]) - max(rects[i, 1], rects[j, 1])
            if dx > tolerance and dy > tolerance:
                pairs.append((i, j, float(dx), float(dy)))
    return pairs


def utilization(placement: Placement) -> float:
    """Total device area divided by bounding-box area (0..1 for legal)."""
    area = bounding_area(placement)
    if area <= 0:
        return float("inf")
    return placement.circuit.total_device_area() / area


def summarize(
    placement: Placement, runtime_s: float | None = None
) -> dict[str, float]:
    """One-call metric bundle used by the experiment harness.

    Keys (all floats; µm-based units match the paper's tables):

    ``hpwl``
        Weighted total half-perimeter wirelength, in µm
        (:func:`hpwl` with ``weighted=True``).
    ``area``
        Bounding-box area of all device outlines, in µm²
        (:func:`bounding_area`).
    ``overlap``
        Summed pairwise device overlap area, in µm²; 0 for a legal
        placement (:func:`total_overlap`).
    ``utilization``
        Total device area over bounding-box area, in (0, 1] for legal
        placements (:func:`utilization`).
    ``runtime_s``
        Wall-clock runtime of the run that produced the placement, in
        seconds.  Part of the schema so downstream benchmark JSON is
        self-describing; present only when the caller supplies it
        (a bare placement has no runtime).
    """
    out = {
        "hpwl": hpwl(placement),
        "area": bounding_area(placement),
        "overlap": total_overlap(placement),
        "utilization": utilization(placement),
    }
    if runtime_s is not None:
        out["runtime_s"] = float(runtime_s)
    return out
