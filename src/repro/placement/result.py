"""Common result container shared by all placers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.trace import Trace
from .metrics import summarize
from .placement import Placement

if TYPE_CHECKING:  # avoid a hard import edge placement -> diagnose
    from ..obs.diagnose import Diagnosis


@dataclass
class PlacerResult:
    """Outcome of a placement run (global, detailed, or end-to-end).

    ``trace`` is the typed observability record of the run — per-phase
    spans, aggregated hot-path timers and the per-iteration convergence
    trajectory (see :mod:`repro.obs`).  It is empty (falsy) when the
    run was executed without an active tracer.

    ``stats`` holds method-specific summary telemetry (iteration
    counts, final objective terms, ILP status, annealing schedule
    data, ...) and is kept as the backward-compatible untyped view;
    phase-attributable timing now lives in ``trace``
    (:meth:`phase_times` / :meth:`repro.obs.Trace.stats_view`).

    ``diagnosis`` is the streaming convergence verdict
    (:class:`repro.obs.diagnose.Diagnosis`), attached by
    :func:`repro.obs.diagnose.attach` when the run was traced; ``None``
    for untraced runs.
    """

    placement: Placement
    runtime_s: float
    method: str
    stats: dict = field(default_factory=dict)
    trace: Trace = field(default_factory=Trace)
    diagnosis: "Diagnosis | None" = None

    def metrics(self) -> dict[str, float]:
        """Exact quality metrics of the resulting placement.

        Delegates to :func:`repro.placement.metrics.summarize` with
        this run's ``runtime_s``; see that docstring for the key
        schema.
        """
        return summarize(self.placement, runtime_s=self.runtime_s)

    def phase_times(self) -> dict[str, dict[str, float]]:
        """Per-phase span timing aggregated by name (empty untraced)."""
        return self.trace.phase_times()
