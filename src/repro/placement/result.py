"""Common result container shared by all placers."""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import summarize
from .placement import Placement


@dataclass
class PlacerResult:
    """Outcome of a placement run (global, detailed, or end-to-end).

    ``stats`` holds method-specific telemetry (iteration counts, final
    objective terms, ILP status, annealing schedule data, ...).
    """

    placement: Placement
    runtime_s: float
    method: str
    stats: dict = field(default_factory=dict)

    def metrics(self) -> dict[str, float]:
        """Exact quality metrics of the resulting placement."""
        out = summarize(self.placement)
        out["runtime_s"] = self.runtime_s
        return out
