"""Reproduction of "Are Analytical Techniques Worthwhile for Analog IC
Placement?" (Lin et al., DATE 2022).

Public surface:

* :mod:`repro.netlist` — circuit data model;
* :mod:`repro.circuits` — the paper's ten parametric testcases;
* :func:`repro.api.place` — one-call conventional placement
  (``eplace-a`` / ``xu-ispd19`` / ``annealing``), plus
  :func:`repro.api.place_multiseed` for process-parallel seed fan-out;
* :mod:`repro.perf_driven` — performance-driven flows (ePlace-AP,
  Perf*, perf-SA) and GNN model training;
* :mod:`repro.simulate` — closed-form performance models + FOM;
* :mod:`repro.experiments` — drivers regenerating every paper table
  and figure;
* :mod:`repro.obs` — tracing, convergence recording, metrics and
  logging (``with obs.tracing(): ...``).
"""

from . import obs
from .api import METHODS, place, place_annealing, place_eplace_a, \
    place_multiseed, place_xu_ispd19
from .placement import Placement, PlacerResult

__all__ = [
    "METHODS",
    "Placement",
    "PlacerResult",
    "obs",
    "place",
    "place_annealing",
    "place_eplace_a",
    "place_multiseed",
    "place_xu_ispd19",
]
__version__ = "0.1.0"
