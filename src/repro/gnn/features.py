"""Graph features for the GNN performance model (paper Sec. V-A).

The circuit graph :math:`\\mathcal{G}` "covers device types, locations,
connections, etc." [19].  Per device node we encode:

* one-hot device type,
* normalised width/height, connectivity degree, and a critical-net
  membership flag (static),
* normalised centre coordinates (dynamic),
* two *interaction* features — the adjacency-weighted smooth-Manhattan
  distance to connected neighbours, over (a) the full connectivity
  graph and (b) the subgraph of performance-critical nets.

The interaction features are the analog of [19]'s customised
message-passing: they hand the network the quantity performance
actually depends on (how far apart connected — especially critically
connected — devices sit) instead of asking two GCN layers to
rediscover geometry from raw coordinates.  Both are differentiable, and
:meth:`FeatureEncoder.position_grad` backpropagates through them
exactly, so ePlace-AP's :math:`\\partial \\Phi / \\partial v` includes
their pull.
"""

from __future__ import annotations

import numpy as np

from ..analytic.netarrays import NetArrays
from ..analytic.wa import _wa_axis
from ..netlist import NUM_DEVICE_TYPES, Circuit
from ..placement import Placement

#: feature-vector width per node
NUM_FEATURES = NUM_DEVICE_TYPES + 12

#: column indices of the dynamic features
POS_X_COL = NUM_DEVICE_TYPES + 2
POS_Y_COL = NUM_DEVICE_TYPES + 3
NBR_DIST_COL = NUM_DEVICE_TYPES + 6
CRIT_DIST_COL = NUM_DEVICE_TYPES + 7
NET_SPAN_COL = NUM_DEVICE_TYPES + 8
CRIT_SPAN_COL = NUM_DEVICE_TYPES + 9
PAIR_SEP_COL = NUM_DEVICE_TYPES + 10
COUPLING_COL = NUM_DEVICE_TYPES + 11

#: smoothing of |d| ~ sqrt(d^2 + eps^2), in µm
_SMOOTH_EPS = 0.05

#: WA smoothing parameter for the net-span features, in µm
_SPAN_GAMMA = 0.4


def _clique_adjacency(circuit: Circuit, critical_only: bool) -> np.ndarray:
    """Net-weighted clique-model adjacency (optionally critical nets)."""
    n = circuit.num_devices
    index = circuit.device_index()
    adjacency = np.zeros((n, n))
    for net in circuit.nets:
        if critical_only and not net.critical:
            continue
        devs = [index[d] for d in net.devices]
        if len(devs) < 2:
            continue
        weight = net.weight * 2.0 / len(devs)
        for a_pos, a in enumerate(devs):
            for b in devs[a_pos + 1:]:
                adjacency[a, b] += weight
                adjacency[b, a] += weight
    return adjacency


def _smooth_abs(d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Smooth |d| and its derivative."""
    value = np.sqrt(d * d + _SMOOTH_EPS * _SMOOTH_EPS)
    return value, d / value


class FeatureEncoder:
    """Precompiled static features + adjacency for one circuit.

    Position and interaction features change per placement; everything
    else is fixed.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        n = circuit.num_devices
        self.scale = float(np.sqrt(circuit.total_device_area()))

        adjacency = _clique_adjacency(circuit, critical_only=False)
        self.adj_all = adjacency
        self.adj_crit = _clique_adjacency(circuit, critical_only=True)

        static = np.zeros((n, NUM_FEATURES))
        for i, device in enumerate(circuit.devices.values()):
            static[i, device.dtype.index] = 1.0
            static[i, NUM_DEVICE_TYPES] = device.width / self.scale
            static[i, NUM_DEVICE_TYPES + 1] = device.height / self.scale
        degree = adjacency.sum(axis=1)
        static[:, NUM_DEVICE_TYPES + 4] = degree / max(degree.max(), 1e-9)
        static[:, NUM_DEVICE_TYPES + 5] = (
            self.adj_crit.sum(axis=1) > 0
        ).astype(float)
        self.static = static

        with_self = adjacency + np.eye(n)
        d_inv_sqrt = 1.0 / np.sqrt(with_self.sum(axis=1))
        self.a_hat = with_self * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]

        # symmetry partner per device (-1 when unpaired); matched-pair
        # distance drives offset/matching metrics in every family
        index = circuit.device_index()
        partner = np.full(n, -1, dtype=int)
        for group in circuit.constraints.symmetry_groups:
            for a, b in group.pairs:
                partner[index[a]] = index[b]
                partner[index[b]] = index[a]
        self.partner = partner

        from ..simulate.helpers import coupling_pairs

        self.victims, self.aggressors = coupling_pairs(circuit)

        model = circuit.metadata.get("model", {})
        crit_names = set(model.get(
            "critical_nets",
            tuple(net.name for net in circuit.nets if net.critical),
        ))
        self.nets_all = NetArrays(circuit)
        self.nets_crit = NetArrays(
            circuit, include=lambda net: net.name in crit_names
        )

    # ------------------------------------------------------------------
    def _interaction(
        self, adjacency: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Adjacency-weighted smooth-Manhattan distance per node."""
        ax, _ = _smooth_abs(x[:, None] - x[None, :])
        ay, _ = _smooth_abs(y[:, None] - y[None, :])
        return (adjacency * (ax + ay)).sum(axis=1) / self.scale

    def _pin_coords(
        self, arrays: NetArrays, x: np.ndarray, y: np.ndarray,
        sign_x: np.ndarray, sign_y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pin coordinates honouring per-device flip signs."""
        dev = arrays.pin_dev
        return (
            x[dev] + arrays.pin_offx * sign_x[dev],
            y[dev] + arrays.pin_offy * sign_y[dev],
        )

    def _net_span_feature(
        self, arrays: NetArrays, x: np.ndarray, y: np.ndarray,
        sign_x: np.ndarray, sign_y: np.ndarray,
    ) -> np.ndarray:
        """Per-device sum of WA-smoothed spans of its incident nets.

        This is the quantity circuit performance physically tracks (a
        differentiable stand-in for routed net length); exposing it as
        a feature lets a small network calibrate *how much* each net
        matters instead of having to rediscover geometry.
        """
        n = len(x)
        feat = np.zeros(n)
        if arrays.num_nets == 0:
            return feat
        px, py = self._pin_coords(arrays, x, y, sign_x, sign_y)
        span_x, _ = _wa_axis(arrays, px, _SPAN_GAMMA)
        span_y, _ = _wa_axis(arrays, py, _SPAN_GAMMA)
        spans = span_x + span_y
        np.add.at(feat, arrays.pin_dev, spans[arrays.pin_net])
        return feat / self.scale

    def _net_span_grad(
        self,
        arrays: NetArrays,
        g_col: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        sign_x: np.ndarray,
        sign_y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chain rule through the net-span feature column.

        The flip signs affect pin offsets (constants), so the gradient
        w.r.t. device centres is unchanged in form.
        """
        n = len(x)
        if arrays.num_nets == 0:
            return np.zeros(n), np.zeros(n)
        px, py = self._pin_coords(arrays, x, y, sign_x, sign_y)
        _, pin_gx = _wa_axis(arrays, px, _SPAN_GAMMA)
        _, pin_gy = _wa_axis(arrays, py, _SPAN_GAMMA)
        # cotangent of net e's span: sum of g over devices of its pins
        m_net = arrays.segment_sum(g_col[arrays.pin_dev])
        gx = arrays.scatter_to_devices(
            pin_gx * m_net[arrays.pin_net], n) / self.scale
        gy = arrays.scatter_to_devices(
            pin_gy * m_net[arrays.pin_net], n) / self.scale
        return gx, gy

    def _signs(
        self, n: int, flip_x: np.ndarray | None, flip_y: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        sign_x = np.where(flip_x, -1.0, 1.0) if flip_x is not None \
            else np.ones(n)
        sign_y = np.where(flip_y, -1.0, 1.0) if flip_y is not None \
            else np.ones(n)
        return sign_x, sign_y

    def encode_xy(
        self, x: np.ndarray, y: np.ndarray,
        flip_x: np.ndarray | None = None,
        flip_y: np.ndarray | None = None,
    ) -> np.ndarray:
        """Node-feature matrix for centre coordinates (+optional flips).

        Flips mirror pin offsets, which changes net spans — the FOM is
        flip-sensitive, so the features must be too, or flip-heavy
        layouts carry irreducible label noise.
        """
        sign_x, sign_y = self._signs(len(x), flip_x, flip_y)
        feats = self.static.copy()
        feats[:, POS_X_COL] = x / self.scale
        feats[:, POS_Y_COL] = y / self.scale
        feats[:, NBR_DIST_COL] = self._interaction(self.adj_all, x, y)
        feats[:, CRIT_DIST_COL] = self._interaction(self.adj_crit, x, y)
        feats[:, NET_SPAN_COL] = self._net_span_feature(
            self.nets_all, x, y, sign_x, sign_y)
        feats[:, CRIT_SPAN_COL] = self._net_span_feature(
            self.nets_crit, x, y, sign_x, sign_y)
        feats[:, PAIR_SEP_COL] = self._pair_separation(x, y)
        feats[:, COUPLING_COL] = self._coupling_feature(x, y)
        return feats

    def _coupling_feature(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-device victim-aggressor proximity, 1/(1 + d^2) summed.

        Victims see their total exposure to aggressors and vice versa,
        matching the coupling term in the performance models; devices
        in neither group read 0.
        """
        out = np.zeros(len(x))
        v, a = self.victims, self.aggressors
        if len(v) == 0 or len(a) == 0:
            return out
        dx = x[v][:, None] - x[a][None, :]
        dy = y[v][:, None] - y[a][None, :]
        prox = 1.0 / (1.0 + dx * dx + dy * dy)
        np.add.at(out, v, prox.sum(axis=1))
        np.add.at(out, a, prox.sum(axis=0))
        return out

    def _pair_separation(
        self, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Smooth distance to each device's symmetry partner (0 if none)."""
        paired = self.partner >= 0
        out = np.zeros(len(x))
        if not paired.any():
            return out
        p = self.partner[paired]
        dx = x[paired] - x[p]
        dy = y[paired] - y[p]
        out[paired] = np.sqrt(
            dx * dx + dy * dy + _SMOOTH_EPS ** 2) / self.scale
        return out

    def encode(self, placement: Placement) -> np.ndarray:
        """Node-feature matrix for a placement (flip-aware)."""
        return self.encode_xy(placement.x, placement.y,
                              placement.flip_x, placement.flip_y)

    # ------------------------------------------------------------------
    def position_grad(
        self,
        grad_features: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        flip_x: np.ndarray | None = None,
        flip_y: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chain-rule a feature-space gradient back to (x, y) in µm.

        Includes the direct position columns and the interaction
        columns' dependence on every coordinate.
        """
        gx = grad_features[:, POS_X_COL] / self.scale
        gy = grad_features[:, POS_Y_COL] / self.scale
        for col, adjacency in (
            (NBR_DIST_COL, self.adj_all),
            (CRIT_DIST_COL, self.adj_crit),
        ):
            g_col = grad_features[:, col]  # dPhi/d feat_k
            _, sx = _smooth_abs(x[:, None] - x[None, :])
            _, sy = _smooth_abs(y[:, None] - y[None, :])
            # feat_k = sum_j adjacency[k, j] (|dx_kj| + |dy_kj|) / scale
            # d feat_k / d x_k = sum_j a_kj sx_kj / scale
            # d feat_k / d x_j = -a_kj sx_kj / scale
            w = adjacency * sx
            gx += (g_col * w.sum(axis=1)
                   - w.T @ g_col) / self.scale
            w = adjacency * sy
            gy += (g_col * w.sum(axis=1)
                   - w.T @ g_col) / self.scale
        sign_x, sign_y = self._signs(len(x), flip_x, flip_y)
        for col, arrays in (
            (NET_SPAN_COL, self.nets_all),
            (CRIT_SPAN_COL, self.nets_crit),
        ):
            dgx, dgy = self._net_span_grad(
                arrays, grad_features[:, col], x, y, sign_x, sign_y)
            gx += dgx
            gy += dgy
        v, a = self.victims, self.aggressors
        if len(v) and len(a):
            g_col = grad_features[:, COUPLING_COL]
            dx = x[v][:, None] - x[a][None, :]
            dy = y[v][:, None] - y[a][None, :]
            denom = (1.0 + dx * dx + dy * dy) ** 2
            # d prox / d x_v = -2 dx / denom ; feature appears on both
            # the victim's and the aggressor's row
            weight = (g_col[v][:, None] + g_col[a][None, :])
            wx = -2.0 * dx / denom * weight
            wy = -2.0 * dy / denom * weight
            np.add.at(gx, v, wx.sum(axis=1))
            np.add.at(gx, a, -wx.sum(axis=0))
            np.add.at(gy, v, wy.sum(axis=1))
            np.add.at(gy, a, -wy.sum(axis=0))

        paired = self.partner >= 0
        if paired.any():
            g_col = grad_features[:, PAIR_SEP_COL]
            p = self.partner[paired]
            dx = x[paired] - x[p]
            dy = y[paired] - y[p]
            dist = np.sqrt(dx * dx + dy * dy + _SMOOTH_EPS ** 2)
            coeff = g_col[paired] / (dist * self.scale)
            np.add.at(gx, np.where(paired)[0], coeff * dx)
            np.add.at(gx, p, -coeff * dx)
            np.add.at(gy, np.where(paired)[0], coeff * dy)
            np.add.at(gy, p, -coeff * dy)
        return gx, gy
