"""Numpy GNN classifier with manual forward/backward passes.

The paper uses a TensorFlow GNN [19] whose built-in autodiff supplies
:math:`-\\partial \\Phi / \\partial v` to the placer.  TensorFlow is not
available offline, so the same functional role is filled by a compact
message-passing network implemented directly in numpy: two GCN layers
(:math:`H' = \\mathrm{ReLU}(\\hat A H W + b)`), mean-pool readout and a
sigmoid head producing the probability :math:`\\Phi` that the
placement's FOM misses its threshold.  Backprop is hand-derived, which
gives both parameter gradients (training) and the input-position
gradient (placement), exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


@dataclass
class ForwardCache:
    """Intermediate activations kept for the backward passes."""

    a_hat: np.ndarray
    x: np.ndarray
    z1: np.ndarray
    h1: np.ndarray
    z2: np.ndarray
    h2: np.ndarray
    pooled: np.ndarray
    logit: float
    phi: float


class GNNModel:
    """Two-layer GCN + mean-pool + logistic head."""

    def __init__(
        self, num_features: int, hidden: int = 16, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / num_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.w1 = rng.normal(0.0, scale1, size=(num_features, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, scale2, size=(hidden, hidden))
        self.b2 = np.zeros(hidden)
        self.w3 = rng.normal(0.0, scale2, size=hidden)
        self.b3 = 0.0

    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, np.ndarray]:
        """Current parameter arrays keyed by name (``b3`` as (1,))."""
        return {
            "w1": self.w1, "b1": self.b1,
            "w2": self.w2, "b2": self.b2,
            "w3": self.w3, "b3": np.array([self.b3]),
        }

    def set_parameters(self, params: dict[str, np.ndarray]) -> None:
        """Replace all parameters with copies of ``params``."""
        self.w1 = params["w1"].copy()
        self.b1 = params["b1"].copy()
        self.w2 = params["w2"].copy()
        self.b2 = params["b2"].copy()
        self.w3 = params["w3"].copy()
        self.b3 = float(np.asarray(params["b3"]).reshape(-1)[0])

    # ------------------------------------------------------------------
    def forward(
        self, a_hat: np.ndarray, x: np.ndarray
    ) -> ForwardCache:
        """Forward pass; returns the full activation cache.

        Both GCN layers project features first — ``a_hat @ (x @ w)``
        rather than numpy's left-to-right ``(a_hat @ x) @ w`` — which
        is the cheaper association whenever the device count exceeds
        the layer width, and matches :mod:`repro.gnn.batched`.
        """
        z1 = a_hat @ (x @ self.w1) + self.b1
        h1 = _relu(z1)
        z2 = a_hat @ (h1 @ self.w2) + self.b2
        h2 = _relu(z2)
        pooled = h2.mean(axis=0)
        logit = float(pooled @ self.w3 + self.b3)
        phi = float(1.0 / (1.0 + np.exp(-logit)))
        return ForwardCache(a_hat, x, z1, h1, z2, h2, pooled, logit, phi)

    def predict(self, a_hat: np.ndarray, x: np.ndarray) -> float:
        """Failure probability :math:`\\Phi` in (0, 1)."""
        return self.forward(a_hat, x).phi

    # ------------------------------------------------------------------
    def _backward(
        self, cache: ForwardCache, dlogit: float
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Shared backward pass from a logit cotangent.

        Returns parameter gradients and the input-feature gradient.
        """
        n = cache.x.shape[0]
        d_pooled = dlogit * self.w3
        grad_w3 = dlogit * cache.pooled
        grad_b3 = dlogit

        d_h2 = np.broadcast_to(d_pooled / n, cache.h2.shape)
        d_z2 = d_h2 * (cache.z2 > 0.0)
        ah1 = cache.a_hat @ cache.h1
        grad_w2 = ah1.T @ d_z2
        grad_b2 = d_z2.sum(axis=0)
        d_h1 = cache.a_hat.T @ (d_z2 @ self.w2.T)

        d_z1 = d_h1 * (cache.z1 > 0.0)
        ax = cache.a_hat @ cache.x
        grad_w1 = ax.T @ d_z1
        grad_b1 = d_z1.sum(axis=0)
        d_x = cache.a_hat.T @ (d_z1 @ self.w1.T)

        grads = {
            "w1": grad_w1, "b1": grad_b1,
            "w2": grad_w2, "b2": grad_b2,
            "w3": grad_w3, "b3": np.array([grad_b3]),
        }
        return grads, d_x

    def input_gradient(self, cache: ForwardCache) -> np.ndarray:
        """:math:`\\partial \\Phi / \\partial X` for a forward cache."""
        dlogit = cache.phi * (1.0 - cache.phi)  # sigmoid'
        _, d_x = self._backward(cache, dlogit)
        return d_x

    def loss_gradients(
        self, cache: ForwardCache, label: float
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Cross-entropy loss and parameter gradients for one sample.

        ``label`` may be a soft target in [0, 1]; the gradient
        ``phi - label`` covers both hard and soft cases.
        """
        phi = min(max(cache.phi, 1e-9), 1.0 - 1e-9)
        loss = -(label * np.log(phi) + (1 - label) * np.log(1.0 - phi))
        dlogit = phi - label  # d(CE)/d(logit) through the sigmoid
        grads, _ = self._backward(cache, dlogit)
        return float(loss), grads
