"""Adam trainer and the trained performance-model wrapper."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Circuit
from ..obs import trace
from ..placement import Placement
from .batched import (
    EnsembleKernels,
    FeatureCache,
    batch_loss_grads,
    encode_dataset,
)
from .dataset import PlacementDataset, generate_dataset
from .features import NUM_FEATURES, FeatureEncoder
from .model import GNNModel

#: accepted kernel selectors for training and ensemble inference
KERNELS = ("batched", "loop")


def _check_kernel(kernel: str) -> None:
    """Reject kernel selectors outside :data:`KERNELS`."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )


class Adam:
    """Plain Adam over a dict of parameter arrays."""

    def __init__(self, params: dict[str, np.ndarray], lr: float = 3e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One bias-corrected Adam update; returns the new params."""
        self.t += 1
        out = {}
        for key, value in params.items():
            g = grads[key]
            self.m[key] = self.beta1 * self.m[key] + (1 - self.beta1) * g
            self.v[key] = (
                self.beta2 * self.v[key] + (1 - self.beta2) * g * g
            )
            m_hat = self.m[key] / (1 - self.beta1 ** self.t)
            v_hat = self.v[key] / (1 - self.beta2 ** self.t)
            out[key] = value - self.lr * m_hat / (
                np.sqrt(v_hat) + self.eps
            )
        return out


@dataclass
class TrainReport:
    """Telemetry from one training run.

    ``history`` is the per-epoch *ensemble-mean* training loss and
    ``final_loss`` its last entry; ``member_histories`` keeps each
    member's own epoch curve (``ensemble x epochs``) for anyone who
    needs to see the members diverge.
    """

    epochs: int
    final_loss: float
    train_accuracy: float
    validation_corr: float = 0.0
    history: list[float] = field(default_factory=list)
    member_histories: list[list[float]] = field(default_factory=list)


class PerformanceModel:
    """A trained GNN ensemble bound to one circuit.

    This is the object the performance-driven placers consume:
    ``phi(x, y)`` is the (ensemble-mean) failure probability and
    ``phi_and_grad`` adds :math:`\\partial \\Phi / \\partial (x, y)`
    for the Nesterov loop.  Individual members vary noticeably with
    their initialisation seed; averaging a small ensemble stabilises
    both the ranking and the gradient direction.

    Inference runs through :class:`repro.gnn.batched.EnsembleKernels`
    (all members in one pass) unless ``inference_kernel`` is set to
    ``"loop"``, which selects the retained per-member reference
    implementation; agreement between the two is held to 1e-10.
    """

    def __init__(self, circuit: Circuit, hidden: int = 16,
                 seed: int = 0, ensemble: int = 3) -> None:
        if ensemble < 1:
            raise ValueError("ensemble size must be >= 1")
        self.circuit = circuit
        self.encoder = FeatureEncoder(circuit)
        self.members = [
            GNNModel(NUM_FEATURES, hidden=hidden, seed=seed + 101 * k)
            for k in range(ensemble)
        ]
        self.threshold: float | None = None
        #: Pearson correlation of phi vs FOM on held-out samples,
        #: set by train_performance_model; 0 means "never validated".
        self.validation_corr: float = 0.0
        #: "batched" (stacked one-pass ensemble) or "loop" (reference)
        self.inference_kernel: str = "batched"
        self._kernels: EnsembleKernels | None = None
        self._feature_cache = FeatureCache()

    @property
    def model(self) -> GNNModel:
        """First ensemble member (kept for single-model access)."""
        return self.members[0]

    # ------------------------------------------------------------------
    def _ensemble_kernels(self) -> EnsembleKernels:
        """Stacked-weight kernels, rebuilt whenever members changed."""
        if self._kernels is None or not self._kernels.matches(
                self.members):
            self._kernels = EnsembleKernels(self.members)
        return self._kernels

    def _phi_from_feats(self, feats: np.ndarray) -> float:
        """Ensemble-mean phi for one encoded feature matrix."""
        if self.inference_kernel == "loop":
            return self._phi_from_feats_loop(feats)
        kernels = self._ensemble_kernels()
        return float(kernels.phi(self.encoder.a_hat, feats).mean())

    def _phi_from_feats_loop(self, feats: np.ndarray) -> float:
        """Per-member reference for :meth:`_phi_from_feats`."""
        return float(np.mean([
            member.predict(self.encoder.a_hat, feats)
            for member in self.members
        ]))

    def phi(self, x: np.ndarray, y: np.ndarray) -> float:
        """Ensemble-mean failure probability at coordinates (µm)."""
        return self._phi_from_feats(self.encoder.encode_xy(x, y))

    def phi_placement(self, placement: Placement) -> float:
        """Ensemble-mean failure probability of a placement."""
        return self._phi_from_feats(self.encoder.encode(placement))

    @property
    def trust(self) -> float:
        """How much optimisation weight the model has earned, in [0, 1].

        Scales linearly from 0 at a validation correlation of -0.6 to
        1 at -0.9: a surrogate that cannot rank held-out placements has
        no business steering a placer, and every consumer of this model
        multiplies its influence by this factor.
        """
        return float(np.clip((-self.validation_corr - 0.6) / 0.3,
                             0.0, 1.0))

    def phi_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Ensemble-mean failure probability and gradient (µm)."""
        if self.inference_kernel == "loop":
            return self.phi_and_grad_loop(x, y)
        feats = self.encoder.encode_xy(x, y)
        kernels = self._ensemble_kernels()
        phis, d_feats = kernels.phi_and_input_grad(
            self.encoder.a_hat, feats
        )
        k = len(self.members)
        gx, gy = self.encoder.position_grad(d_feats / k, x, y)
        return float(phis.mean()), gx, gy

    def phi_and_grad_loop(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Per-member reference for :meth:`phi_and_grad`."""
        feats = self.encoder.encode_xy(x, y)
        phi_sum = 0.0
        d_feats = np.zeros_like(feats)
        for member in self.members:
            cache = member.forward(self.encoder.a_hat, feats)
            phi_sum += cache.phi
            d_feats += member.input_gradient(cache)
        k = len(self.members)
        gx, gy = self.encoder.position_grad(d_feats / k, x, y)
        return phi_sum / k, gx, gy

    # ------------------------------------------------------------------
    def train(
        self,
        dataset: PlacementDataset,
        epochs: int = 60,
        batch: int = 32,
        lr: float = 3e-3,
        seed: int = 0,
        kernel: str = "batched",
    ) -> TrainReport:
        """Minibatch cross-entropy training with Adam.

        ``kernel="batched"`` runs each minibatch as one stacked
        forward/backward over the ``(B, N, F)`` feature tensor
        (:func:`repro.gnn.batched.batch_loss_grads`); ``kernel="loop"``
        is the retained per-sample reference.  Both consume the same
        RNG stream (one permutation per member per epoch), so they
        follow the same trajectory up to floating-point summation
        order.  Encoded features are cached across calls, so the
        adversarial-hardening rounds of
        :func:`train_performance_model` only encode the appended
        samples.
        """
        _check_kernel(kernel)
        if dataset.circuit is not self.circuit and \
                dataset.circuit.name != self.circuit.name:
            raise ValueError("dataset belongs to a different circuit")
        self.threshold = dataset.threshold
        a_hat = self.encoder.a_hat
        m = len(dataset)
        with trace.span("gnn.train", samples=m, epochs=epochs,
                        ensemble=len(self.members), kernel=kernel):
            feats_all = encode_dataset(
                self.encoder, dataset, self._feature_cache
            )
            labels = np.asarray(dataset.labels, dtype=float)
            member_histories: list[list[float]] = []
            for member_id, member in enumerate(self.members):
                rng = np.random.default_rng(seed + 31 * member_id)
                optimizer = Adam(member.parameters(), lr=lr)
                history_m: list[float] = []
                for _ in range(epochs):
                    order = rng.permutation(m)
                    epoch_loss = 0.0
                    for lo in range(0, m, batch):
                        idx = order[lo:lo + batch]
                        if kernel == "batched":
                            losses, grads_sum = batch_loss_grads(
                                member, a_hat, feats_all[idx],
                                labels[idx],
                            )
                            epoch_loss += float(losses.sum())
                        else:
                            epoch_loss, grads_sum = self._loop_batch(
                                member, a_hat, feats_all, labels,
                                idx, epoch_loss,
                            )
                        scale = 1.0 / len(idx)
                        grads_avg = {
                            k: v * scale for k, v in grads_sum.items()
                        }
                        member.set_parameters(optimizer.step(
                            member.parameters(), grads_avg
                        ))
                    history_m.append(epoch_loss / m)
                member_histories.append(history_m)
            self._kernels = None  # weights changed; rebuild lazily

            history = [
                float(np.mean(col))
                for col in zip(*member_histories)
            ] if member_histories and member_histories[0] else []
            accuracy = self._train_accuracy(
                feats_all, dataset, kernel
            )
        return TrainReport(
            epochs=epochs,
            final_loss=history[-1] if history else float("nan"),
            train_accuracy=accuracy,
            history=history,
            member_histories=member_histories,
        )

    @staticmethod
    def _loop_batch(
        member: GNNModel,
        a_hat: np.ndarray,
        feats_all: np.ndarray,
        labels: np.ndarray,
        idx: np.ndarray,
        epoch_loss: float,
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Reference minibatch: per-sample forward/backward, summed."""
        grads_sum: dict[str, np.ndarray] | None = None
        for k in idx:
            cache = member.forward(a_hat, feats_all[k])
            loss, grads = member.loss_gradients(
                cache, float(labels[k])
            )
            epoch_loss += loss
            if grads_sum is None:
                grads_sum = grads
            else:
                for key in grads_sum:
                    grads_sum[key] = grads_sum[key] + grads[key]
        assert grads_sum is not None
        return epoch_loss, grads_sum

    def _train_accuracy(
        self,
        feats_all: np.ndarray,
        dataset: PlacementDataset,
        kernel: str,
    ) -> float:
        """Fraction of samples whose hard label phi>=0.5 reproduces."""
        m = len(dataset)
        if kernel == "batched":
            phis = self._ensemble_kernels().phi_batch(
                self.encoder.a_hat, feats_all
            )
        else:
            phis = np.array([
                self._phi_from_feats_loop(feats_all[k])
                for k in range(m)
            ])
        hard = np.asarray(dataset.labels_hard, dtype=bool)
        return float(np.mean((phis >= 0.5) == hard))


def train_performance_model(
    seed_placement: Placement,
    samples: int = 600,
    epochs: int = 60,
    hidden: int = 16,
    seed: int = 0,
    sa_sweep_runs: int = 16,
    adversarial_rounds: int = 2,
    jobs: int = 1,
    kernel: str = "batched",
) -> tuple[PerformanceModel, TrainReport]:
    """Dataset generation + training + adversarial hardening.

    Three data sources, mirroring how the paper's >1000 samples come
    from the placement flow itself:

    1. the synthetic regimes of :func:`generate_dataset`;
    2. ``sa_sweep_runs`` short SA runs with randomised parameters (the
       optimiser's own output distribution);
    3. ``adversarial_rounds`` hardening passes — a quick SA guided by
       the *current* model hunts placements it scores well, their true
       FOMs join the dataset, and training continues.  Without this, a
       downstream optimiser reliably walks into the surrogate's blind
       spots (excellent :math:`\\Phi`, poor true FOM).

    ``jobs`` fans the embarrassingly parallel stages (synthetic
    regimes, SA sweep runs, augmentation labelling) across processes
    via :mod:`repro.parallel`; results are bit-identical to ``jobs=1``
    at any job count because every sample owns a seeded RNG stream.
    """
    from ..annealing import SAParams, SimulatedAnnealingPlacer
    from .dataset import augment_dataset, sa_parameter_sweep_samples

    circuit = seed_placement.circuit
    rng = np.random.default_rng(seed + 1)
    with trace.span("gnn.dataset", samples=samples, jobs=jobs):
        dataset = generate_dataset(
            seed_placement, samples=samples, seed=seed, jobs=jobs
        )
        if sa_sweep_runs > 0:
            dataset = augment_dataset(
                dataset,
                sa_parameter_sweep_samples(
                    circuit, rng, runs=sa_sweep_runs, jobs=jobs
                ),
                jobs=jobs,
            )
    model = PerformanceModel(circuit, hidden=hidden, seed=seed)
    report = model.train(dataset, epochs=epochs, seed=seed,
                         kernel=kernel)

    side = float(np.sqrt(circuit.total_device_area()))
    for round_id in range(adversarial_rounds):
        with trace.span("gnn.adversarial", round=round_id):
            probe = SimulatedAnnealingPlacer(
                circuit,
                SAParams(
                    iterations=3000,
                    seed=int(rng.integers(0, 2 ** 31 - 1)),
                    perf_weight=3.0,
                ),
                cost_hook=model.phi_placement,
            ).place().placement
            extras = [probe]
            for _ in range(7):
                jitter = probe.copy()
                sigma = rng.uniform(0.05, 0.5) * side / 12.0
                jitter.x = jitter.x + rng.normal(
                    0.0, sigma, len(jitter.x))
                jitter.y = jitter.y + rng.normal(
                    0.0, sigma, len(jitter.y))
                extras.append(jitter)
            dataset = augment_dataset(dataset, extras, jobs=jobs)
            report = model.train(dataset, epochs=max(epochs // 2, 10),
                                 seed=seed, kernel=kernel)

    # validation: rank fresh held-out placements (packings + local
    # perturbations of the seed), exactly the candidates downstream
    # optimisers will ask the model to compare
    from ..simulate import fom as true_fom
    from .dataset import _perturb, _random_packing

    val_rng = np.random.default_rng(seed + 9999)
    phis = []
    foms = []
    with trace.span("gnn.validate"):
        for k in range(60):
            if k % 2:
                p = _random_packing(circuit, val_rng)
            else:
                p = _perturb(seed_placement,
                             val_rng.uniform(0.2, 2.0) * side / 12.0,
                             val_rng)
            phis.append(model.phi_placement(p))
            foms.append(true_fom(p))
    spread = float(np.std(foms))
    if spread > 1e-6 and float(np.std(phis)) > 1e-9:
        model.validation_corr = float(np.corrcoef(phis, foms)[0, 1])
    report.validation_corr = model.validation_corr
    return model, report
