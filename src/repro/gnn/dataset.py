"""Labelled placement datasets for training the GNN performance model.

The paper varies placement parameters to generate over 1000 training
samples per design, labelling each 0/1 by whether SPICE-simulated
performance satisfies the spec.  We mirror the process with our
closed-form simulator: starting from a legal seed placement, samples
are drawn from three regimes (perturbed-good, spread, random), their
FOM evaluated, and binary labels assigned against a threshold.  The
threshold defaults to the dataset's median FOM so the classes are
balanced, matching the "user-specified performance threshold" the
paper trains against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..legalize.presym import presymmetrize
from ..netlist import Circuit
from ..parallel import parallel_map
from ..placement import Placement
from ..simulate import fom


@dataclass
class PlacementDataset:
    """Training samples for one circuit: positions, FOMs, labels.

    ``labels`` are *soft* failure probabilities
    :math:`\\sigma((\\tau - FOM)/T)` — a sample far below the threshold
    :math:`\\tau` approaches 1, far above approaches 0, and samples near
    the bar carry graded signal.  Hard 0/1 labels (``labels_hard``) are
    kept for accuracy reporting.  Soft targets calibrate :math:`\\Phi`
    as a monotone surrogate of FOM, which is what gradient-based
    placement needs; hard labels alone make every clearly-good sample
    identical and flatten the model exactly where the optimiser works.
    """

    circuit: Circuit
    positions: np.ndarray  # (m, n, 2) device centres
    flips: np.ndarray  # (m, n, 2) bool device flip states
    foms: np.ndarray  # (m,)
    threshold: float
    labels: np.ndarray  # (m,) soft failure probabilities in [0, 1]
    labels_hard: np.ndarray  # (m,) 1 = unsatisfactory (FOM < threshold)

    def __len__(self) -> int:
        return len(self.foms)


def _perturb(
    base: Placement, sigma: float, rng: np.random.Generator,
    symmetric: bool = True,
) -> Placement:
    """Gaussian jitter of all device centres.

    With ``symmetric=True`` (the default) the jittered placement is
    snapped back onto exact symmetry/alignment geometry.  Every
    placement the flows actually compare is exactly symmetric (hard
    constraints in detailed placement, islands in SA), and the
    closed-form FOM punishes asymmetry so hard that raw jitter samples
    would teach the model nothing except "perturbed = bad" — drowning
    out the net-length signal that distinguishes real candidates.
    """
    moved = base.copy()
    n = base.circuit.num_devices
    moved.x += rng.normal(0.0, sigma, n)
    moved.y += rng.normal(0.0, sigma, n)
    if symmetric:
        moved = presymmetrize(moved)
    return moved


def _random_layout(
    circuit: Circuit, side: float, rng: np.random.Generator
) -> Placement:
    """Uniform random placement inside a square region."""
    n = circuit.num_devices
    return Placement(
        circuit,
        rng.uniform(0.0, side, n),
        rng.uniform(0.0, side, n),
    )


def _random_packing(
    circuit: Circuit, rng: np.random.Generator
) -> Placement:
    """A random legal floorplan from the sequence-pair machinery.

    Every placement method in the study ultimately produces compact
    legal packings (abutted rectangles honouring the symmetry islands),
    which look nothing like Gaussian clouds.  Sampling this space keeps
    the classifier in-distribution for the candidates the placers and
    the SA cost function actually evaluate.
    """
    from ..annealing import (
        SequencePair,
        build_blocks,
        fuse_alignment_blocks,
    )

    blocks = fuse_alignment_blocks(circuit, build_blocks(circuit))
    pair = SequencePair.random(len(blocks), rng)
    widths = np.array([b.width for b in blocks])
    heights = np.array([b.height for b in blocks])
    bx, by = pair.pack(widths, heights)
    n = circuit.num_devices
    x = np.zeros(n)
    y = np.zeros(n)
    fx = np.zeros(n, dtype=bool)
    fy = np.zeros(n, dtype=bool)
    for k, block in enumerate(blocks):
        for m, dev in enumerate(block.device_indices):
            x[dev] = bx[k] + block.rel_x[m]
            y[dev] = by[k] + block.rel_y[m]
            fx[dev] = bool(block.flip_x[m])
            fy[dev] = bool(block.flip_y[m])
    return Placement(circuit, x, y, fx, fy)


def _sweep_run(
    payload: tuple[Circuit, int, int, int, int],
) -> list[Placement]:
    """One seed-sharded SA sweep run (module-level for fork workers).

    ``payload`` is ``(circuit, base_seed, k, iterations,
    perturbations)``; the run owns the RNG stream
    ``default_rng((base_seed, k))``, so the returned placements do not
    depend on which process (or how many) executed the run.
    """
    from ..annealing import SAParams, anneal_place

    circuit, base_seed, k, iterations, perturbations = payload
    rng = np.random.default_rng((base_seed, k))
    side = float(np.sqrt(circuit.total_device_area() / 0.5))
    scale = side / 12.0
    params = SAParams(
        iterations=iterations,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
        area_weight=float(rng.uniform(0.3, 2.0)),
    )
    final = anneal_place(circuit, params).placement
    out = [final]
    for _ in range(perturbations):
        out.append(_perturb(
            final, rng.uniform(0.1, 0.8) * scale, rng))
    return out


def sa_parameter_sweep_samples(
    circuit: Circuit,
    rng: np.random.Generator,
    runs: int = 24,
    iterations: int = 600,
    perturbations: int = 6,
    jobs: int = 1,
) -> list[Placement]:
    """Placements from short SA runs with randomised parameters.

    The paper generates its >1000 training samples "by varying
    parameters" of the placement flow — i.e. the labelled layouts come
    from the optimiser's own output distribution.  Sampling that
    distribution is what keeps the model honest exactly where the
    performance-driven search will later operate; perturbed copies of
    each run pad the local neighbourhood.

    One draw from ``rng`` seeds all runs; each run then owns the
    stream ``default_rng((base_seed, k))``, so fanning the runs across
    ``jobs`` processes is bit-identical to the sequential sweep.
    """
    base_seed = int(rng.integers(0, 2 ** 31 - 1))
    chunks = parallel_map(
        _sweep_run,
        [(circuit, base_seed, k, iterations, perturbations)
         for k in range(runs)],
        jobs=jobs,
    )
    return [p for chunk in chunks for p in chunk]


def augment_dataset(
    dataset: PlacementDataset,
    placements: list[Placement],
    label_temperature: float = 0.025,
    jobs: int = 1,
) -> PlacementDataset:
    """Extend a dataset with new placements, labelled at its threshold.

    FOM labelling fans out over ``jobs`` processes (one placement per
    task, input-ordered), identical to the sequential labels.
    """
    if not placements:
        return dataset
    positions = np.stack([
        np.column_stack([p.x, p.y]) for p in placements
    ])
    flips = np.stack([
        np.column_stack([p.flip_x, p.flip_y]) for p in placements
    ])
    foms = np.array(parallel_map(fom, placements, jobs=jobs))
    soft = 1.0 / (1.0 + np.exp(
        -(dataset.threshold - foms) / label_temperature))
    hard = (foms < dataset.threshold).astype(int)
    return PlacementDataset(
        circuit=dataset.circuit,
        positions=np.concatenate([dataset.positions, positions]),
        flips=np.concatenate([dataset.flips, flips]),
        foms=np.concatenate([dataset.foms, foms]),
        threshold=dataset.threshold,
        labels=np.concatenate([dataset.labels, soft]),
        labels_hard=np.concatenate([dataset.labels_hard, hard]),
    )


def _critical_device_mask(circuit: Circuit) -> np.ndarray:
    """Boolean mask of devices touching a model-critical net."""
    model = circuit.metadata.get("model", {})
    names = set(model.get(
        "critical_nets",
        tuple(n.name for n in circuit.nets if n.critical),
    ))
    index = circuit.device_index()
    mask = np.zeros(circuit.num_devices, dtype=bool)
    for net in circuit.nets:
        if net.name in names:
            for dev in net.devices:
                mask[index[dev]] = True
    return mask


def _scale_critical(
    base: Placement,
    mask: np.ndarray,
    factor: float,
    sigma: float,
    rng: np.random.Generator,
) -> Placement:
    """Contract/expand critical-net devices about their centroid.

    Isotropic jitter alone leaves critical and non-critical net lengths
    perfectly correlated, and a model trained on such data only learns
    "compact is good" — no better than the wirelength objective the
    placer already has.  These samples decorrelate the two: the
    critical cluster scales by ``factor`` while everything (including
    the others) receives ordinary jitter, so the label signal isolates
    the performance-relevant geometry.
    """
    moved = base.copy()
    n = base.circuit.num_devices
    cx = float(moved.x[mask].mean())
    cy = float(moved.y[mask].mean())
    moved.x[mask] = cx + factor * (moved.x[mask] - cx)
    moved.y[mask] = cy + factor * (moved.y[mask] - cy)
    moved.x += rng.normal(0.0, sigma, n)
    moved.y += rng.normal(0.0, sigma, n)
    return presymmetrize(moved)


def _sample_placement(
    seed_placement: Placement,
    k: int,
    seed: int,
    side: float,
    scale: float,
    crit_mask: np.ndarray,
    can_scale: bool,
) -> Placement:
    """Draw sample ``k`` of a dataset from its own RNG stream.

    The stream ``default_rng((seed, k))`` is a function of the sample
    index alone, which is what makes the fan-out seed-sharded: any
    partition of the index range over any number of workers produces
    the identical dataset.
    """
    rng = np.random.default_rng((seed, k))
    circuit = seed_placement.circuit
    regime = k % 8
    if regime in (0, 1):
        return _perturb(
            seed_placement, rng.uniform(0.2, 1.2) * scale, rng)
    if regime == 2 and can_scale:
        return _scale_critical(
            seed_placement, crit_mask,
            factor=rng.uniform(0.3, 0.9),
            sigma=rng.uniform(0.1, 0.6) * scale, rng=rng)
    if regime == 3 and can_scale:
        return _scale_critical(
            seed_placement, crit_mask,
            factor=rng.uniform(1.2, 2.5),
            sigma=rng.uniform(0.1, 0.6) * scale, rng=rng)
    if regime in (4, 5, 6):
        return _random_packing(circuit, rng)
    if regime == 7 and k % 2:
        return _perturb(
            seed_placement, rng.uniform(1.5, 4.0) * scale, rng,
            symmetric=bool(rng.random() < 0.5))
    return _random_layout(circuit, side, rng)


def _generate_chunk(
    payload: tuple[Placement, int, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Samples ``[lo, hi)`` of a dataset (module-level fork worker).

    ``payload`` is ``(seed_placement, seed, lo, hi)``.  Returns the
    chunk's ``(positions, flips, foms)`` arrays; because every sample
    owns its RNG stream, the concatenation over chunks equals the
    sequential dataset regardless of the chunking.
    """
    seed_placement, seed, lo, hi = payload
    circuit = seed_placement.circuit
    side = float(np.sqrt(circuit.total_device_area() / 0.5))
    scale = side / 12.0
    crit_mask = _critical_device_mask(circuit)
    can_scale = bool(crit_mask.any()) and not bool(crit_mask.all())
    placements = [
        _sample_placement(seed_placement, k, seed, side, scale,
                          crit_mask, can_scale)
        for k in range(lo, hi)
    ]
    positions = np.stack([
        np.column_stack([p.x, p.y]) for p in placements
    ])
    flips = np.stack([
        np.column_stack([p.flip_x, p.flip_y]) for p in placements
    ])
    foms = np.array([fom(p) for p in placements])
    return positions, flips, foms


def generate_dataset(
    seed_placement: Placement,
    samples: int = 1000,
    threshold: float | None = None,
    threshold_quantile: float = 0.65,
    label_temperature: float = 0.025,
    seed: int = 0,
    jobs: int = 1,
) -> PlacementDataset:
    """Build a labelled dataset around one legal seed placement.

    The sample mix covers three axes the classifier must learn:

    * small-to-medium isotropic perturbations of the seed (the good
      region the placer traverses),
    * critical-cluster contractions/expansions that *decorrelate*
      critical-net geometry from overall compactness (without them the
      model degenerates into a wirelength detector and its gradient
      adds nothing over the placer's own objective),
    * large perturbations and uniformly random layouts (the junk tail).

    The label threshold defaults to the ``threshold_quantile`` of the
    sampled FOMs: a demanding bar (above the median) gives the
    classifier signal *inside* the good region instead of merely
    separating good from garbage.

    Every sample draws from its own stream
    ``default_rng((seed, k))``, so generation (and FOM labelling)
    shards over ``jobs`` worker processes bit-identically to the
    sequential path.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    # ~4 chunks per worker amortise fork/pickle overhead while keeping
    # the pool busy if chunk runtimes vary; chunking never affects the
    # result because each sample owns its RNG stream
    from ..parallel import normalize_jobs

    n_chunks = min(samples, max(1, normalize_jobs(jobs) * 4))
    bounds = np.linspace(0, samples, n_chunks + 1).astype(int)
    chunks = parallel_map(
        _generate_chunk,
        [(seed_placement, seed, int(lo), int(hi))
         for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo],
        jobs=jobs,
    )
    positions = np.concatenate([c[0] for c in chunks])
    flips = np.concatenate([c[1] for c in chunks])
    foms = np.concatenate([c[2] for c in chunks])
    circuit = seed_placement.circuit
    if threshold is None:
        threshold = float(np.quantile(foms, threshold_quantile))
    labels_hard = (foms < threshold).astype(int)
    soft = 1.0 / (1.0 + np.exp(-(threshold - foms) / label_temperature))
    return PlacementDataset(
        circuit=circuit,
        positions=positions,
        flips=flips,
        foms=foms,
        threshold=threshold,
        labels=soft,
        labels_hard=labels_hard,
    )
