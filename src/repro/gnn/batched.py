"""Batched GNN kernels: minibatch training and stacked-ensemble inference.

The GNN sits on two hot paths of the performance-driven half of the
paper (Tables V-VII, Fig. 6):

* **training** — ``PerformanceModel.train`` runs ``epochs x batches``
  minibatches; the original implementation dispatched one numpy
  forward+backward *per sample*, so a 600-sample dataset cost tens of
  thousands of tiny matmuls dominated by Python/numpy call overhead;
* **inference** — every ePlace-AP Nesterov iteration and every perf-SA
  move evaluates the ensemble, and the original implementation looped
  over the ``K`` members one forward (plus one backward for the
  gradient) at a time.

Because every sample of one circuit shares the same normalised
adjacency ``a_hat``, the per-sample feature matrices stack into a
``(B, N, F)`` tensor and both passes become a handful of batched
matmuls:

* :func:`batch_forward` / :func:`batch_loss_grads` /
  :func:`batch_input_grads` — one call per *minibatch* with parameter
  gradients summed over the batch in one flattened GEMM;
* :class:`EnsembleKernels` — the ``K`` members' weights stacked into
  ``(K, F, H)`` tensors so one call evaluates (and differentiates) the
  whole ensemble.

The per-sample / per-member loop implementations in
:mod:`repro.gnn.model` and :mod:`repro.gnn.train` are **retained as
the reference spec** (exactly as ``density.rasterize_loop`` anchors
the vectorised density kernels): the agreement tests hold the batched
kernels to the loop results within 1e-10 on forward values, parameter
gradients and input-position gradients.

:class:`FeatureCache` completes the batch pipeline: adversarial
hardening rounds grow the dataset by appending samples, so re-encoding
the whole prefix every round is pure waste — the cache fingerprints
the encoded prefix and only encodes the new rows.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # import cycle: train imports this module
    from .dataset import PlacementDataset
    from .features import FeatureEncoder
    from .model import GNNModel

#: numeric floor/ceiling keeping the cross-entropy away from log(0);
#: must match the clipping of the loop reference in model.loss_gradients
_PHI_EPS = 1e-9


def _flat2d(t: np.ndarray) -> np.ndarray:
    """Collapse all leading axes of ``t`` into one (``(..., M) -> (-1, M)``)."""
    return np.ascontiguousarray(t).reshape(-1, t.shape[-1])


def _sigmoid(logits: np.ndarray) -> np.ndarray:
    """Numerically plain sigmoid (logits here are O(1) by design)."""
    return 1.0 / (1.0 + np.exp(-logits))


class BatchForward:
    """Activations of one batched forward pass (kept for backward).

    All tensors are batched along axis 0: ``x`` is ``(B, N, F)``,
    ``z1``/``h1``/``z2``/``h2`` are ``(B, N, H)``, ``pooled`` is
    ``(B, H)`` and ``logits``/``phis`` are ``(B,)``.
    """

    __slots__ = ("a_hat", "x", "z1", "h1", "z2", "h2", "pooled",
                 "logits", "phis")

    def __init__(self, a_hat: np.ndarray, x: np.ndarray,
                 z1: np.ndarray, h1: np.ndarray, z2: np.ndarray,
                 h2: np.ndarray, pooled: np.ndarray,
                 logits: np.ndarray, phis: np.ndarray) -> None:
        self.a_hat = a_hat
        self.x = x
        self.z1 = z1
        self.h1 = h1
        self.z2 = z2
        self.h2 = h2
        self.pooled = pooled
        self.logits = logits
        self.phis = phis


def batch_forward(
    model: "GNNModel", a_hat: np.ndarray, x: np.ndarray
) -> BatchForward:
    """Forward pass of one model over a ``(B, N, F)`` feature tensor.

    Row ``b`` of every output equals the loop reference
    ``model.forward(a_hat, x[b])`` within 1e-10; the shared ``a_hat``
    broadcasts over the batch axis, so the two GCN layers are plain
    batched matmuls.  The matmul association is
    ``a_hat @ (x @ w1)`` — feature-projection first — which is the
    cheaper order whenever the device count exceeds the feature width.
    """
    z1 = a_hat @ (x @ model.w1) + model.b1
    h1 = np.maximum(z1, 0.0)
    z2 = a_hat @ (h1 @ model.w2) + model.b2
    h2 = np.maximum(z2, 0.0)
    pooled = h2.mean(axis=1)
    logits = pooled @ model.w3 + model.b3
    phis = _sigmoid(logits)
    return BatchForward(a_hat, x, z1, h1, z2, h2, pooled, logits, phis)


def _batch_backward(
    model: "GNNModel", cache: BatchForward, dlogits: np.ndarray,
    need_dx: bool = False,
) -> tuple[dict[str, np.ndarray], "np.ndarray | None"]:
    """Backward pass from per-sample logit cotangents ``(B,)``.

    Parameter gradients are *summed* over the batch inside flattened
    GEMM contractions (one pass, no per-sample accumulation loop); the
    optional input gradient keeps its batch axis.
    """
    n = cache.x.shape[1]
    grad_w3 = dlogits @ cache.pooled
    grad_b3 = float(dlogits.sum())
    d_pooled = dlogits[:, None] * model.w3

    d_z2 = (d_pooled[:, None, :] / n) * (cache.z2 > 0.0)
    ah1 = cache.a_hat @ cache.h1
    # contract the (batch, node) axes in one 2-D GEMM — np.einsum
    # would run the same reduction through its non-BLAS inner loops
    grad_w2 = _flat2d(ah1).T @ _flat2d(d_z2)
    grad_b2 = d_z2.sum(axis=(0, 1))
    d_h1 = cache.a_hat.T @ (d_z2 @ model.w2.T)

    d_z1 = d_h1 * (cache.z1 > 0.0)
    ax = cache.a_hat @ cache.x
    grad_w1 = _flat2d(ax).T @ _flat2d(d_z1)
    grad_b1 = d_z1.sum(axis=(0, 1))
    d_x = None
    if need_dx:
        d_x = cache.a_hat.T @ (d_z1 @ model.w1.T)

    grads = {
        "w1": grad_w1, "b1": grad_b1,
        "w2": grad_w2, "b2": grad_b2,
        "w3": grad_w3, "b3": np.array([grad_b3]),
    }
    return grads, d_x


def batch_loss_grads(
    model: "GNNModel", a_hat: np.ndarray, x: np.ndarray,
    labels: np.ndarray,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Cross-entropy losses ``(B,)`` and batch-summed parameter grads.

    Equals the loop reference ``model.loss_gradients`` evaluated per
    sample with the gradients added up — within 1e-10, for any batch
    size including ``B=1`` and ragged final minibatches.
    """
    cache = batch_forward(model, a_hat, x)
    phis = np.clip(cache.phis, _PHI_EPS, 1.0 - _PHI_EPS)
    losses = -(labels * np.log(phis)
               + (1.0 - labels) * np.log(1.0 - phis))
    grads, _ = _batch_backward(model, cache, phis - labels)
    return losses, grads


def batch_input_grads(
    model: "GNNModel", a_hat: np.ndarray, x: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample ``phi`` values and input gradients.

    Returns ``(phis (B,), d_x (B, N, F))`` where ``d_x[b]`` equals the
    loop reference ``model.input_gradient(model.forward(a_hat, x[b]))``
    within 1e-10.
    """
    cache = batch_forward(model, a_hat, x)
    dlogits = cache.phis * (1.0 - cache.phis)
    # dlogits scale per-sample cotangents; d_x keeps its batch axis
    n = cache.x.shape[1]
    d_pooled = dlogits[:, None] * model.w3
    d_z2 = (d_pooled[:, None, :] / n) * (cache.z2 > 0.0)
    d_h1 = cache.a_hat.T @ (d_z2 @ model.w2.T)
    d_z1 = d_h1 * (cache.z1 > 0.0)
    d_x = cache.a_hat.T @ (d_z1 @ model.w1.T)
    return cache.phis, d_x


class EnsembleKernels:
    """The ``K`` ensemble members' weights stacked for one-pass calls.

    ``w1`` is ``(K, F, H)``, ``w2`` ``(K, H, H)``, ``w3`` ``(K, H)``
    and the biases follow; :meth:`phi` and :meth:`phi_and_input_grad`
    then evaluate the whole ensemble on one ``(N, F)`` feature matrix
    with broadcast matmuls instead of a Python loop over members — the
    per-iteration cost of ePlace-AP's Nesterov loop and of every
    perf-SA move.

    A kernel stack is a *snapshot*: :meth:`matches` checks (by array
    identity) that no member has had parameters replaced since the
    stack was built, so consumers rebuild lazily after training.
    """

    def __init__(self, members: "Sequence[GNNModel]") -> None:
        self._sources = tuple(
            (m.w1, m.b1, m.w2, m.b2, m.w3, m.b3) for m in members
        )
        self.w1 = np.stack([m.w1 for m in members])
        self.b1 = np.stack([m.b1 for m in members])
        self.w2 = np.stack([m.w2 for m in members])
        self.b2 = np.stack([m.b2 for m in members])
        self.w3 = np.stack([m.w3 for m in members])
        self.b3 = np.array([m.b3 for m in members])

    def matches(self, members: "Sequence[GNNModel]") -> bool:
        """True while the stack mirrors the members' current arrays."""
        if len(members) != len(self._sources):
            return False
        return all(
            src[0] is m.w1 and src[1] is m.b1 and src[2] is m.w2
            and src[3] is m.b2 and src[4] is m.w3 and src[5] is m.b3
            for src, m in zip(self._sources, members)
        )

    # ------------------------------------------------------------------
    def _forward(
        self, a_hat: np.ndarray, feats: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Shared ensemble forward; returns ``(z1, h1, z2, phis)``."""
        # (N, F) @ (K, F, H) broadcasts to K BLAS GEMMs -> (K, N, H);
        # einsum would run the contraction outside BLAS (~6x slower
        # per call, and this sits inside the Nesterov iteration loop)
        z1 = a_hat @ (feats @ self.w1) + self.b1[:, None, :]
        h1 = np.maximum(z1, 0.0)
        z2 = a_hat @ (h1 @ self.w2) + self.b2[:, None, :]
        h2 = np.maximum(z2, 0.0)
        pooled = h2.mean(axis=1)
        logits = (pooled * self.w3).sum(axis=1) + self.b3
        return z1, h1, z2, _sigmoid(logits)

    def phi(self, a_hat: np.ndarray, feats: np.ndarray) -> np.ndarray:
        """Per-member failure probabilities ``(K,)`` for one sample."""
        return self._forward(a_hat, feats)[3]

    def phi_and_input_grad(
        self, a_hat: np.ndarray, feats: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-member ``phi`` plus the summed input-feature gradient.

        Returns ``(phis (K,), d_feats (N, F))`` where ``d_feats`` is
        :math:`\\sum_k \\partial \\Phi_k / \\partial X` — the caller
        divides by ``K`` for the ensemble mean, matching the loop
        reference in ``PerformanceModel.phi_and_grad``.
        """
        n = feats.shape[0]
        z1, h1, z2, phis = self._forward(a_hat, feats)
        dlogits = phis * (1.0 - phis)
        d_pooled = dlogits[:, None] * self.w3
        d_z2 = (d_pooled[:, None, :] / n) * (z2 > 0.0)
        d_h1 = a_hat.T @ (d_z2 @ self.w2.transpose(0, 2, 1))
        d_z1 = d_h1 * (z1 > 0.0)
        d_x = a_hat.T @ (d_z1 @ self.w1.transpose(0, 2, 1))
        return phis, d_x.sum(axis=0)

    def phi_batch(
        self, a_hat: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Ensemble-mean ``phi`` for a whole ``(B, N, F)`` tensor.

        One matmul chain over both the batch and the member axes; used
        by training-accuracy reporting, where the original code paid
        ``B x K`` separate forward passes.
        """
        z1 = a_hat @ (x[None] @ self.w1[:, None]) \
            + self.b1[:, None, None, :]
        h1 = np.maximum(z1, 0.0)
        z2 = a_hat @ (h1 @ self.w2[:, None]) \
            + self.b2[:, None, None, :]
        h2 = np.maximum(z2, 0.0)
        pooled = h2.mean(axis=2)  # (K, B, H)
        logits = (pooled * self.w3[:, None, :]).sum(axis=2) \
            + self.b3[:, None]
        return _sigmoid(logits).mean(axis=0)


class FeatureCache:
    """Incremental encoder for a dataset's ``(B, N, F)`` feature tensor.

    Adversarial hardening repeatedly calls ``train`` on a dataset that
    *grows by appending* (``augment_dataset`` concatenates new samples
    after the old ones), so the encoded prefix never changes.  The
    cache stores the encoded tensor together with a digest of the raw
    positions/flips it encoded; when asked again it verifies the
    prefix digest and encodes only the new rows, falling back to a
    full re-encode whenever the prefix bytes differ (invalidation is
    by content, not by object identity, because augmentation builds
    fresh arrays every round).
    """

    def __init__(self) -> None:
        self._feats: "np.ndarray | None" = None
        self._count = 0
        self._digest = b""

    @staticmethod
    def _fingerprint(dataset: "PlacementDataset", count: int) -> bytes:
        """Digest of the first ``count`` samples' raw inputs."""
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(
            dataset.positions[:count]).tobytes())
        h.update(np.ascontiguousarray(dataset.flips[:count]).tobytes())
        return h.digest()

    @staticmethod
    def _encode_rows(
        encoder: "FeatureEncoder", dataset: "PlacementDataset",
        lo: int, hi: int,
    ) -> np.ndarray:
        from .features import NUM_FEATURES

        n = dataset.positions.shape[1]
        if hi <= lo:
            return np.zeros((0, n, NUM_FEATURES))
        return np.stack([
            encoder.encode_xy(
                dataset.positions[k, :, 0], dataset.positions[k, :, 1],
                dataset.flips[k, :, 0], dataset.flips[k, :, 1],
            )
            for k in range(lo, hi)
        ])

    def features(
        self, encoder: "FeatureEncoder", dataset: "PlacementDataset"
    ) -> np.ndarray:
        """The dataset's encoded feature tensor, incrementally built."""
        m = len(dataset)
        if (
            self._feats is not None
            and 0 < self._count <= m
            and self._fingerprint(dataset, self._count) == self._digest
        ):
            fresh = self._encode_rows(encoder, dataset, self._count, m)
            feats = (
                np.concatenate([self._feats, fresh])
                if len(fresh) else self._feats
            )
        else:
            feats = self._encode_rows(encoder, dataset, 0, m)
        self._feats = feats
        self._count = m
        self._digest = self._fingerprint(dataset, m)
        return feats


def encode_dataset(
    encoder: "FeatureEncoder",
    dataset: "PlacementDataset",
    cache: "FeatureCache | None" = None,
) -> np.ndarray:
    """Encode a whole dataset into one ``(B, N, F)`` tensor.

    With a :class:`FeatureCache`, rows already encoded for a previous
    (prefix-identical) version of the dataset are reused.
    """
    if cache is not None:
        return cache.features(encoder, dataset)
    return FeatureCache._encode_rows(encoder, dataset, 0, len(dataset))
