"""Numpy GNN performance model: features, model, dataset, training."""

from .dataset import PlacementDataset, generate_dataset
from .features import NUM_FEATURES, POS_X_COL, POS_Y_COL, FeatureEncoder
from .model import ForwardCache, GNNModel
from .train import (
    Adam,
    PerformanceModel,
    TrainReport,
    train_performance_model,
)

__all__ = [
    "Adam",
    "FeatureEncoder",
    "ForwardCache",
    "GNNModel",
    "NUM_FEATURES",
    "POS_X_COL",
    "POS_Y_COL",
    "PerformanceModel",
    "PlacementDataset",
    "TrainReport",
    "generate_dataset",
    "train_performance_model",
]
