"""Performance specifications and the FOM composite metric (paper Sec. V-B).

Each circuit publishes a set of metrics :math:`z_1..z_M` with
specifications :math:`\\psi_i`.  Metrics in :math:`\\Pi^+` (gain,
bandwidth, ...) should exceed their spec; metrics in :math:`\\Pi^-`
(delay, offset, ...) should stay below it.  Each metric is normalised to
:math:`\\tilde z_i \\in [0, 1]` by eq. (6) and combined into the Figure of
Merit :math:`FOM = \\sum_i \\beta_i \\tilde z_i` with
:math:`\\sum \\beta_i = 1`.
"""

from __future__ import annotations

from dataclasses import dataclass


HIGHER_IS_BETTER = "+"
LOWER_IS_BETTER = "-"


@dataclass(frozen=True)
class MetricSpec:
    """One performance metric's specification.

    ``sense`` is ``"+"`` for metrics preferred above the spec
    (:math:`\\Pi^+`) and ``"-"`` for metrics preferred below it
    (:math:`\\Pi^-`).  ``weight`` is the raw :math:`\\beta_i`; the
    containing :class:`PerformanceSpec` normalises weights to sum to 1.
    """

    name: str
    target: float
    sense: str = HIGHER_IS_BETTER
    weight: float = 1.0
    unit: str = ""

    def __post_init__(self) -> None:
        if self.sense not in (HIGHER_IS_BETTER, LOWER_IS_BETTER):
            raise ValueError(f"sense must be '+' or '-', got {self.sense!r}")
        if self.target <= 0:
            raise ValueError(
                f"metric {self.name!r}: spec target must be positive "
                "(eq. 6 divides by it)"
            )
        if self.weight < 0:
            raise ValueError(f"metric {self.name!r}: weight must be >= 0")

    def normalize(self, value: float) -> float:
        """Eq. (6): map a raw metric value to [0, 1], 1 meaning spec met."""
        if self.sense == HIGHER_IS_BETTER:
            if value <= 0.0:
                return 0.0
            return min(value / self.target, 1.0)
        # lower-is-better: psi/z, capped at 1
        if value <= 0.0:
            return 1.0
        return min(self.target / value, 1.0)


@dataclass(frozen=True)
class PerformanceSpec:
    """A circuit's full specification: metrics plus FOM weighting."""

    metrics: tuple[MetricSpec, ...]

    def __post_init__(self) -> None:
        if not self.metrics:
            raise ValueError("performance spec needs at least one metric")
        names = [m.name for m in self.metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in spec: {names}")
        if sum(m.weight for m in self.metrics) <= 0:
            raise ValueError("at least one metric must have positive weight")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metrics)

    def weights(self) -> dict[str, float]:
        """Normalised :math:`\\beta_i` summing to 1."""
        total = sum(m.weight for m in self.metrics)
        return {m.name: m.weight / total for m in self.metrics}

    def normalize(self, values: dict[str, float]) -> dict[str, float]:
        """Per-metric :math:`\\tilde z_i` for a raw measurement dict."""
        missing = set(self.names) - set(values)
        if missing:
            raise KeyError(f"measurement missing metrics: {sorted(missing)}")
        return {m.name: m.normalize(values[m.name]) for m in self.metrics}

    def fom(self, values: dict[str, float]) -> float:
        """Figure of Merit in [0, 1] for a raw measurement dict."""
        normalized = self.normalize(values)
        weights = self.weights()
        return sum(weights[k] * normalized[k] for k in normalized)

    def satisfied(self, values: dict[str, float]) -> dict[str, bool]:
        """Per-metric pass/fail against the raw specification."""
        out = {}
        for m in self.metrics:
            if m.sense == HIGHER_IS_BETTER:
                out[m.name] = values[m.name] >= m.target
            else:
                out[m.name] = values[m.name] <= m.target
        return out
