"""Performance specifications, metric normalisation and FOM (paper Sec. V-B)."""

from .spec import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    MetricSpec,
    PerformanceSpec,
)

__all__ = [
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "MetricSpec",
    "PerformanceSpec",
]
