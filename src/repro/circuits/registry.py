"""Registry of the paper's ten testcases.

``make(name)`` builds a fresh circuit each call (circuits are mutable);
``PAPER_TESTCASES`` lists names in the paper's Table III row order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from ..netlist import Circuit
from .adder import adder
from .comparator import comp1, comp2
from .ota import cc_ota, cm_ota1, cm_ota2
from .scf import scf
from .vco import vco1, vco2
from .vga import vga

_FACTORIES: dict[str, Callable[[], Circuit]] = {
    "Adder": adder,
    "CC-OTA": cc_ota,
    "Comp1": comp1,
    "Comp2": comp2,
    "CM-OTA1": cm_ota1,
    "CM-OTA2": cm_ota2,
    "SCF": scf,
    "VGA": vga,
    "VCO1": vco1,
    "VCO2": vco2,
}

#: Table III row order.
PAPER_TESTCASES: tuple[str, ...] = tuple(_FACTORIES)


def make(name: str) -> Circuit:
    """Build a fresh instance of a named paper testcase."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown testcase {name!r}; available: {list(_FACTORIES)}"
        ) from None
    return factory()


def iter_testcases() -> Iterator[Circuit]:
    """Yield a fresh instance of every paper testcase, in table order."""
    for name in PAPER_TESTCASES:
        yield make(name)
