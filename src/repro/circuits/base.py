"""Builder utilities for the parametric testcase generators.

The paper evaluates on ten GF-12nm circuits we cannot redistribute; these
builders create synthetic netlists of the same circuit families with the
same structural features the placers consume: device rectangles on a
0.1 µm grid, named pins with realistic offsets, hyperedge nets, symmetry
groups, alignment pairs and ordering chains.

All dimensions are snapped to an *even* number of grid steps so that the
ILP detailed placer (which works on integer grid coordinates of device
centres) keeps ``w/2`` and ``h/2`` integral.
"""

from __future__ import annotations

from ..netlist import (
    AlignmentPair,
    Axis,
    Circuit,
    Device,
    DeviceType,
    Net,
    OrderingChain,
    Pin,
    SymmetryGroup,
)

#: Placement grid pitch in µm.  ILP coordinates are integers in this unit.
GRID = 0.1


def snap_even(value: float) -> float:
    """Snap a dimension to the nearest positive even multiple of GRID."""
    steps = max(2, round(value / GRID / 2.0) * 2)
    return steps * GRID


class CircuitBuilder:
    """Fluent construction of testcase circuits.

    Device helpers create family-appropriate pin sets with off-centre
    offsets (so device flipping genuinely changes pin positions) and
    attach the electrical parameters the performance models read.
    """

    def __init__(self, name: str) -> None:
        self.circuit = Circuit(name=name)

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------
    def mos(
        self,
        name: str,
        kind: str = "n",
        width: float = 2.0,
        height: float = 1.6,
        gm_ms: float = 1.0,
        ro_kohm: float = 50.0,
        cgs_ff: float = 5.0,
        cgd_ff: float = 1.5,
    ) -> Device:
        """Add a MOS transistor with gate/drain/source/bulk pins."""
        w, h = snap_even(width), snap_even(height)
        pins = {
            "g": Pin("g", 0.2 * w, 0.5 * h),
            "d": Pin("d", 0.8 * w, 0.8 * h),
            "s": Pin("s", 0.8 * w, 0.2 * h),
            "b": Pin("b", 0.5 * w, 0.1 * h),
        }
        dtype = DeviceType.NMOS if kind == "n" else DeviceType.PMOS
        device = Device(
            name=name, dtype=dtype, width=w, height=h, pins=pins,
            electrical={
                "gm_ms": gm_ms,
                "ro_kohm": ro_kohm,
                "cgs_ff": cgs_ff,
                "cgd_ff": cgd_ff,
            },
        )
        return self.circuit.add_device(device)

    def cap(
        self, name: str, width: float = 4.0, height: float = 4.0,
        c_ff: float = 100.0,
    ) -> Device:
        """Add a MOM/MIM capacitor with plate pins on opposite edges."""
        w, h = snap_even(width), snap_even(height)
        pins = {
            "p": Pin("p", 0.1 * w, 0.5 * h),
            "n": Pin("n", 0.9 * w, 0.5 * h),
        }
        device = Device(
            name=name, dtype=DeviceType.CAPACITOR, width=w, height=h,
            pins=pins, electrical={"c_ff": c_ff},
        )
        return self.circuit.add_device(device)

    def res(
        self, name: str, width: float = 1.2, height: float = 3.0,
        r_kohm: float = 10.0,
    ) -> Device:
        """Add a poly resistor with terminal pins top and bottom."""
        w, h = snap_even(width), snap_even(height)
        pins = {
            "p": Pin("p", 0.5 * w, 0.9 * h),
            "n": Pin("n", 0.5 * w, 0.1 * h),
        }
        device = Device(
            name=name, dtype=DeviceType.RESISTOR, width=w, height=h,
            pins=pins, electrical={"r_kohm": r_kohm},
        )
        return self.circuit.add_device(device)

    def switch(
        self, name: str, width: float = 1.2, height: float = 1.0,
        ron_kohm: float = 2.0,
    ) -> Device:
        """Add a transmission-gate switch with a/b/clk pins."""
        w, h = snap_even(width), snap_even(height)
        pins = {
            "a": Pin("a", 0.1 * w, 0.5 * h),
            "b": Pin("b", 0.9 * w, 0.5 * h),
            "clk": Pin("clk", 0.5 * w, 0.9 * h),
        }
        device = Device(
            name=name, dtype=DeviceType.SWITCH, width=w, height=h,
            pins=pins, electrical={"ron_kohm": ron_kohm},
        )
        return self.circuit.add_device(device)

    # ------------------------------------------------------------------
    # nets and constraints
    # ------------------------------------------------------------------
    def net(
        self, name: str, terminals, weight: float = 1.0,
        critical: bool = False,
    ) -> Net:
        return self.circuit.add_net(
            Net(name, terminals, weight=weight, critical=critical)
        )

    def symmetry(
        self,
        name: str,
        pairs=(),
        self_symmetric=(),
        axis: Axis = Axis.VERTICAL,
    ) -> SymmetryGroup:
        group = SymmetryGroup(
            name=name,
            pairs=tuple(tuple(p) for p in pairs),
            self_symmetric=tuple(self_symmetric),
            axis=axis,
        )
        self.circuit.constraints.symmetry_groups.append(group)
        return group

    def align(self, a: str, b: str, kind: str = "bottom") -> AlignmentPair:
        pair = AlignmentPair(a, b, kind)
        self.circuit.constraints.alignments.append(pair)
        return pair

    def order(
        self, devices, axis: Axis = Axis.VERTICAL, name: str = ""
    ) -> OrderingChain:
        chain = OrderingChain(tuple(devices), axis=axis, name=name)
        self.circuit.constraints.orderings.append(chain)
        return chain

    # ------------------------------------------------------------------
    def build(self, **metadata) -> Circuit:
        """Validate and return the finished circuit."""
        self.circuit.metadata.update(metadata)
        self.circuit.validate()
        return self.circuit
