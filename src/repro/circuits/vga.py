"""Variable gain amplifier testcase (paper's VGA).

A two-stage VGA: a degenerated differential pair whose gain is switched
by shorting segments of the degeneration resistor string, followed by a
fixed-gain differential stage.  Gain-step accuracy depends on matching
(symmetry) and the bandwidth on the parasitics of the inter-stage nets.

Metrics: maximum gain, gain-step accuracy, bandwidth (all
higher-is-better after normalisation).
"""

from __future__ import annotations

from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def vga():
    """Switched-degeneration two-stage variable gain amplifier."""
    b = CircuitBuilder("VGA")
    # stage 1: degenerated diff pair with switchable resistor string
    b.mos("M1", "n", 2.4, 1.8, gm_ms=2.4, ro_kohm=40.0)
    b.mos("M2", "n", 2.4, 1.8, gm_ms=2.4, ro_kohm=40.0)
    b.mos("MT1", "n", 2.8, 1.6, gm_ms=1.1, ro_kohm=60.0)
    b.mos("MT2", "n", 2.8, 1.6, gm_ms=1.1, ro_kohm=60.0)
    b.res("RL1", 1.2, 2.8, r_kohm=8.0)
    b.res("RL2", 1.2, 2.8, r_kohm=8.0)
    for k in range(3):
        b.res(f"RD{k}a", 1.2, 2.2, r_kohm=2.0)
        b.res(f"RD{k}b", 1.2, 2.2, r_kohm=2.0)
        b.switch(f"SG{k}", 1.4, 1.0, ron_kohm=0.5)
    # stage 2: fixed-gain diff pair
    b.mos("M3", "n", 2.2, 1.6, gm_ms=2.0, ro_kohm=42.0)
    b.mos("M4", "n", 2.2, 1.6, gm_ms=2.0, ro_kohm=42.0)
    b.mos("MT3", "n", 2.8, 1.6, gm_ms=1.0, ro_kohm=60.0)
    b.res("RL3", 1.2, 2.8, r_kohm=6.0)
    b.res("RL4", 1.2, 2.8, r_kohm=6.0)

    b.net("vinp", [("M1", "g")])
    b.net("vinn", [("M2", "g")])
    # degeneration string between the two sources with switch taps
    b.net("sa", [("M1", "s"), ("RD0a", "p"), ("MT1", "d")])
    b.net("sb", [("M2", "s"), ("RD0b", "p"), ("MT2", "d")])
    b.net("da0", [("RD0a", "n"), ("RD1a", "p"), ("SG0", "a")])
    b.net("db0", [("RD0b", "n"), ("RD1b", "p"), ("SG0", "b")])
    b.net("da1", [("RD1a", "n"), ("RD2a", "p"), ("SG1", "a")])
    b.net("db1", [("RD1b", "n"), ("RD2b", "p"), ("SG1", "b")])
    b.net("da2", [("RD2a", "n"), ("SG2", "a")])
    b.net("db2", [("RD2b", "n"), ("SG2", "b")])
    b.net("o1p", [("M1", "d"), ("RL1", "n"), ("M3", "g")],
          critical=True)
    b.net("o1n", [("M2", "d"), ("RL2", "n"), ("M4", "g")],
          critical=True)
    b.net("tail2", [("M3", "s"), ("M4", "s"), ("MT3", "d")])
    b.net("voutp", [("M3", "d"), ("RL3", "n")], critical=True)
    b.net("voutn", [("M4", "d"), ("RL4", "n")], critical=True)
    b.net("gctl", [(f"SG{k}", "clk") for k in range(3)], weight=0.5)
    b.net("vbias", [("MT1", "g"), ("MT2", "g"), ("MT3", "g")])
    b.net("vdd", [("RL1", "p"), ("RL2", "p"), ("RL3", "p"), ("RL4", "p")],
          weight=0.2)
    b.net("vss", [("MT1", "s"), ("MT2", "s"), ("MT3", "s")], weight=0.2)

    b.symmetry("stage1",
               pairs=[("M1", "M2"), ("MT1", "MT2"), ("RL1", "RL2"),
                      ("RD0a", "RD0b"), ("RD1a", "RD1b"),
                      ("RD2a", "RD2b")])
    b.symmetry("stage2",
               pairs=[("M3", "M4"), ("RL3", "RL4")],
               self_symmetric=["MT3"])
    b.align("RL1", "RL2", kind="bottom")
    b.align("RL3", "RL4", kind="bottom")
    return b.build(
        family="vga",
        spec=PerformanceSpec(metrics=(
            MetricSpec("gain_db", 27.76, "+", 1.0, "dB"),
            MetricSpec("step_acc_pct", 98.9, "+", 1.0, "%"),
            MetricSpec("bw_mhz", 821.8, "+", 1.0, "MHz"),
        )),
        model={
            "gain0_db": 20.86,
            "step_acc0_pct": 102.74,
            "bw0_mhz": 767.87,
            "load_cap_ff": 30.0,
            "critical_nets": ("o1p", "o1n", "voutp", "voutn"),
            "coupling": {"victims": ("M3", "M4", "RL3", "RL4"),
                         "aggressors": ("SG0", "SG1", "SG2")},
            "coupling_k": 11.939,
        },
    )
