"""Parametric generators for the paper's ten analog testcases."""

from .adder import adder
from .base import GRID, CircuitBuilder, snap_even
from .comparator import comp1, comp2
from .ota import cc_ota, cm_ota1, cm_ota2
from .random_circuit import random_circuit
from .registry import PAPER_TESTCASES, iter_testcases, make
from .scf import scf
from .vco import vco1, vco2
from .vga import vga

__all__ = [
    "CircuitBuilder",
    "GRID",
    "PAPER_TESTCASES",
    "adder",
    "cc_ota",
    "cm_ota1",
    "cm_ota2",
    "comp1",
    "comp2",
    "iter_testcases",
    "make",
    "random_circuit",
    "scf",
    "snap_even",
    "vco1",
    "vco2",
    "vga",
]
