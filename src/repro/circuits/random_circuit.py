"""Random constrained-circuit generator for fuzzing and benchmarks.

Produces structurally valid circuits with randomised device counts,
dimensions (always even grid multiples), net topologies, symmetry
groups, alignments and ordering chains — the full constraint surface
the placers must honour.  Used by the property-based tests to fuzz the
end-to-end flows beyond the ten hand-built paper testcases.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Axis, Circuit
from .base import GRID, CircuitBuilder


def random_circuit(
    seed: int,
    min_devices: int = 6,
    max_devices: int = 24,
    symmetry_fraction: float = 0.5,
    with_alignment: bool = True,
    with_ordering: bool = True,
) -> Circuit:
    """Build a random, valid, constrained circuit.

    Determinism: the same ``seed`` always yields the same circuit.
    Devices are MOS-like rectangles with even-grid dimensions;
    symmetric pairs share dimensions by construction.  Roughly
    ``symmetry_fraction`` of the devices land in symmetry groups.
    """
    rng = np.random.default_rng(seed)
    b = CircuitBuilder(f"random-{seed}")
    n = int(rng.integers(min_devices, max_devices + 1))

    def dims() -> tuple[float, float]:
        # even multiples of the grid in [0.8, 3.6] um
        w = 2 * GRID * int(rng.integers(4, 19))
        h = 2 * GRID * int(rng.integers(4, 19))
        return w, h

    # symmetry groups first so pairs share dimensions
    names: list[str] = []
    pair_budget = int(n * symmetry_fraction) // 2
    group_id = 0
    while pair_budget > 0:
        group_pairs = int(rng.integers(1, min(pair_budget, 3) + 1))
        pairs = []
        for k in range(group_pairs):
            w, h = dims()
            a = f"G{group_id}A{k}"
            bdev = f"G{group_id}B{k}"
            b.mos(a, "n", w, h)
            b.mos(bdev, "n", w, h)
            pairs.append((a, bdev))
            names.extend((a, bdev))
        selfs = []
        if rng.random() < 0.5:
            w, h = dims()
            s = f"G{group_id}S"
            b.mos(s, "p", w, h)
            selfs.append(s)
            names.append(s)
        axis = Axis.VERTICAL if rng.random() < 0.8 else Axis.HORIZONTAL
        b.symmetry(f"g{group_id}", pairs=pairs, self_symmetric=selfs,
                   axis=axis)
        pair_budget -= group_pairs
        group_id += 1

    while len(names) < n:
        w, h = dims()
        name = f"F{len(names)}"
        b.mos(name, "p" if rng.random() < 0.5 else "n", w, h)
        names.append(name)

    # alignment between two free devices (outside symmetry groups)
    free = [x for x in names if x.startswith("F")]
    aligned: set[str] = set()
    if with_alignment and len(free) >= 2:
        a, c = rng.choice(free, size=2, replace=False)
        kind = str(rng.choice(["bottom", "vcenter", "hcenter"]))
        b.align(str(a), str(c), kind=kind)
        aligned = {str(a), str(c)}

    # an ordering chain over free devices *not* in the aligned pair —
    # an aligned pair fuses into one rigid block in the SA placer, and
    # a chain visiting both its members would be cyclic at block level
    chain_pool = [x for x in free if x not in aligned]
    if with_ordering and len(chain_pool) >= 3:
        chain = [str(x)
                 for x in rng.choice(chain_pool, size=3, replace=False)]
        b.order(chain, axis=Axis.VERTICAL, name="rand-order")

    # nets: mostly 2-4 pin, a couple of larger fanouts
    num_nets = max(3, int(n * rng.uniform(0.6, 1.2)))
    pins = ("g", "d", "s")
    for e in range(num_nets):
        degree = int(rng.integers(2, min(5, n) + 1))
        devs = rng.choice(names, size=degree, replace=False)
        terminals = [(str(d), str(rng.choice(pins))) for d in devs]
        b.net(f"n{e}", terminals,
              critical=bool(rng.random() < 0.25))
    # one supply-style wide net
    wide = rng.choice(names, size=min(n, 6), replace=False)
    b.net("vss", [(str(d), "s") for d in wide], weight=0.2)

    return b.build(family="random", model={"critical_nets": tuple(
        net.name for net in b.circuit.nets if net.critical)})
