"""Dynamic comparator testcases (paper's Comp1 and Comp2).

* **Comp1** — a StrongARM latch: input pair, cross-coupled NMOS/PMOS
  latch, precharge switches, tail clock device.
* **Comp2** — a double-tail comparator: a StrongARM-like first stage
  followed by a latch stage with its own tail, roughly 1.5x the devices.

Comparator metrics are regeneration delay and input-referred offset, both
lower-is-better; layout asymmetry and long internal nets degrade them.
"""

from __future__ import annotations

from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def _comp_spec(delay_ps: float, offset_mv: float,
               power_uw: float) -> PerformanceSpec:
    return PerformanceSpec(metrics=(
        MetricSpec("delay_ps", delay_ps, "-", 1.5, "ps"),
        MetricSpec("offset_mv", offset_mv, "-", 1.0, "mV"),
        MetricSpec("power_uw", power_uw, "-", 0.5, "uW"),
    ))


def _strongarm(
    b: CircuitBuilder,
    prefix: str = "",
    extra_outp=(),
    extra_outn=(),
) -> None:
    """Add a StrongARM core (input pair + latch + precharge) to ``b``.

    ``extra_outp``/``extra_outn`` are additional ``(device, pin)``
    terminals appended to the latch output nets, letting callers hang a
    following stage on the core without creating parallel nets.  The
    referenced devices must be added to the builder *before* this call.
    """
    p = prefix
    b.mos(f"{p}MIN1", "n", 2.4, 1.8, gm_ms=2.5, ro_kohm=40.0)
    b.mos(f"{p}MIN2", "n", 2.4, 1.8, gm_ms=2.5, ro_kohm=40.0)
    b.mos(f"{p}MTAIL", "n", 3.0, 1.6, gm_ms=1.5, ro_kohm=50.0)
    b.mos(f"{p}MN1", "n", 2.0, 1.6, gm_ms=2.0, ro_kohm=45.0)
    b.mos(f"{p}MN2", "n", 2.0, 1.6, gm_ms=2.0, ro_kohm=45.0)
    b.mos(f"{p}MP1", "p", 2.2, 1.6, gm_ms=1.6, ro_kohm=50.0)
    b.mos(f"{p}MP2", "p", 2.2, 1.6, gm_ms=1.6, ro_kohm=50.0)
    b.switch(f"{p}SW1", 1.2, 1.0)
    b.switch(f"{p}SW2", 1.2, 1.0)

    b.net(f"{p}vinp", [(f"{p}MIN1", "g")])
    b.net(f"{p}vinn", [(f"{p}MIN2", "g")])
    b.net(f"{p}tail", [(f"{p}MIN1", "s"), (f"{p}MIN2", "s"),
                       (f"{p}MTAIL", "d")])
    b.net(f"{p}di1", [(f"{p}MIN1", "d"), (f"{p}MN1", "s"),
                      (f"{p}SW1", "a")], critical=True)
    b.net(f"{p}di2", [(f"{p}MIN2", "d"), (f"{p}MN2", "s"),
                      (f"{p}SW2", "a")], critical=True)
    b.net(f"{p}outp", [(f"{p}MN1", "d"), (f"{p}MP1", "d"),
                       (f"{p}MN2", "g"), (f"{p}MP2", "g"),
                       *extra_outp],
          critical=True)
    b.net(f"{p}outn", [(f"{p}MN2", "d"), (f"{p}MP2", "d"),
                       (f"{p}MN1", "g"), (f"{p}MP1", "g"),
                       *extra_outn],
          critical=True)
    b.net(f"{p}clk", [(f"{p}MTAIL", "g"), (f"{p}SW1", "clk"),
                      (f"{p}SW2", "clk")], weight=0.5)
    b.net(f"{p}vdd", [(f"{p}MP1", "s"), (f"{p}MP2", "s"),
                      (f"{p}SW1", "b"), (f"{p}SW2", "b")], weight=0.2)
    b.net(f"{p}vss", [(f"{p}MTAIL", "s")], weight=0.2)

    b.symmetry(f"{p}latch",
               pairs=[(f"{p}MIN1", f"{p}MIN2"), (f"{p}MN1", f"{p}MN2"),
                      (f"{p}MP1", f"{p}MP2"), (f"{p}SW1", f"{p}SW2")],
               self_symmetric=[f"{p}MTAIL"])


def comp1():
    """StrongARM latch comparator (paper's Comp1)."""
    b = CircuitBuilder("Comp1")
    # output SR buffers (created first so the core's output nets can
    # include their gate terminals)
    b.mos("MB1", "n", 1.6, 1.2, gm_ms=1.0, ro_kohm=60.0)
    b.mos("MB2", "n", 1.6, 1.2, gm_ms=1.0, ro_kohm=60.0)
    b.mos("MB3", "p", 1.8, 1.2, gm_ms=0.9, ro_kohm=60.0)
    b.mos("MB4", "p", 1.8, 1.2, gm_ms=0.9, ro_kohm=60.0)
    _strongarm(b,
               extra_outp=[("MB1", "g"), ("MB3", "g")],
               extra_outn=[("MB2", "g"), ("MB4", "g")])
    b.net("q", [("MB1", "d"), ("MB3", "d")])
    b.net("qb", [("MB2", "d"), ("MB4", "d")])
    b.net("bufvss", [("MB1", "s"), ("MB2", "s")], weight=0.2)
    b.net("bufvdd", [("MB3", "s"), ("MB4", "s")], weight=0.2)
    b.symmetry("buf", pairs=[("MB1", "MB2"), ("MB3", "MB4")])
    b.align("MB1", "MB2", kind="bottom")
    return b.build(
        family="comparator",
        spec=_comp_spec(delay_ps=120.6, offset_mv=3.07, power_uw=37.6),
        model={
            "delay0_ps": 63.99,
            "offset0_mv": 1.975,
            "power0_uw": 24.17,
            "critical_nets": ("di1", "di2", "outp", "outn"),
            "coupling": {"victims": ("MIN1", "MIN2"),
                         "aggressors": ("MTAIL",)},
            "coupling_k": 2.864,
        },
    )


def comp2():
    """Double-tail comparator (paper's Comp2)."""
    b = CircuitBuilder("Comp2")
    # second (latch) stage with its own tail; coupling caps CO1/CO2 hang
    # between the core outputs and the latch inputs
    b.mos("ML1", "n", 2.0, 1.6, gm_ms=2.2, ro_kohm=45.0)
    b.mos("ML2", "n", 2.0, 1.6, gm_ms=2.2, ro_kohm=45.0)
    b.mos("MLP1", "p", 2.2, 1.6, gm_ms=1.7, ro_kohm=48.0)
    b.mos("MLP2", "p", 2.2, 1.6, gm_ms=1.7, ro_kohm=48.0)
    b.mos("MLT", "p", 2.8, 1.6, gm_ms=1.2, ro_kohm=55.0)
    b.switch("LSW1", 1.2, 1.0)
    b.switch("LSW2", 1.2, 1.0)
    b.cap("CO1", 2.4, 2.4, c_ff=60.0)
    b.cap("CO2", 2.4, 2.4, c_ff=60.0)
    _strongarm(b,
               extra_outp=[("CO1", "p")],
               extra_outn=[("CO2", "p")])

    b.net("lin1", [("ML1", "g"), ("CO1", "n")], critical=True)
    b.net("lin2", [("ML2", "g"), ("CO2", "n")], critical=True)
    b.net("ltail", [("MLP1", "s"), ("MLP2", "s"), ("MLT", "d")])
    b.net("lq", [("ML1", "d"), ("MLP1", "d"), ("ML2", "g"),
                 ("LSW1", "a")], critical=True)
    b.net("lqb", [("ML2", "d"), ("MLP2", "d"), ("ML1", "g"),
                  ("LSW2", "a")], critical=True)
    b.net("lclk", [("MLT", "g"), ("LSW1", "clk"), ("LSW2", "clk")],
          weight=0.5)
    b.net("lvss", [("ML1", "s"), ("ML2", "s"),
                   ("LSW1", "b"), ("LSW2", "b")], weight=0.2)
    b.net("lvdd", [("MLT", "s")], weight=0.2)

    b.symmetry("latch2",
               pairs=[("ML1", "ML2"), ("MLP1", "MLP2"),
                      ("LSW1", "LSW2"), ("CO1", "CO2")],
               self_symmetric=["MLT"])
    b.align("CO1", "CO2", kind="bottom")
    return b.build(
        family="comparator",
        spec=_comp_spec(delay_ps=137.5, offset_mv=3.56, power_uw=53.3),
        model={
            "delay0_ps": 82.3,
            "offset0_mv": 2.451,
            "power0_uw": 36.8,
            "critical_nets": ("di1", "di2", "outp", "outn", "lq", "lqb"),
            "coupling": {"victims": ("MIN1", "MIN2"),
                         "aggressors": ("MTAIL", "MLT")},
            "coupling_k": 2.690,
        },
    )
