"""Voltage-controlled oscillator testcases (paper's VCO1 and VCO2).

Both are current-starved ring oscillators; VCO2 adds more stages plus an
output buffer chain.  Each delay stage is an inverter (NMOS + PMOS) with
starving current sources top and bottom.  The ring's signal path is a
natural application of the paper's *ordering* constraint (monotone signal
path, constraint 4i): the stages must appear left-to-right in ring order.

VCO metrics: oscillation frequency and tuning range (higher is better),
phase-noise proxy (lower is better).  Inter-stage net parasitics slow the
ring and worsen the noise proxy.
"""

from __future__ import annotations

from ..netlist import Axis
from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def _vco_spec(freq_ghz: float, tune_pct: float,
              pnoise: float) -> PerformanceSpec:
    return PerformanceSpec(metrics=(
        MetricSpec("freq_ghz", freq_ghz, "+", 1.5, "GHz"),
        MetricSpec("tune_pct", tune_pct, "+", 1.0, "%"),
        MetricSpec("pnoise_au", pnoise, "-", 1.0, "a.u."),
    ))


def _ring_vco(name: str, stages: int, buffers: int,
              spec: PerformanceSpec, model: dict):
    b = CircuitBuilder(name)
    stage_nmos, stage_pmos = [], []
    for k in range(stages):
        b.mos(f"MP{k}", "p", 2.4, 1.8, gm_ms=1.8, ro_kohm=40.0)
        b.mos(f"MN{k}", "n", 2.2, 1.8, gm_ms=2.2, ro_kohm=38.0)
        b.mos(f"MSP{k}", "p", 2.0, 1.4, gm_ms=1.0, ro_kohm=60.0)
        b.mos(f"MSN{k}", "n", 2.0, 1.4, gm_ms=1.0, ro_kohm=60.0)
        stage_pmos.append(f"MP{k}")
        stage_nmos.append(f"MN{k}")

    # buffer chain devices are created before the nets so the ring-tap
    # resistor's input terminal can join the ring0 net directly
    for j in range(buffers):
        b.mos(f"BUFP{j}", "p", 2.0, 1.4, gm_ms=1.2, ro_kohm=45.0)
        b.mos(f"BUFN{j}", "n", 1.8, 1.4, gm_ms=1.5, ro_kohm=42.0)
        b.res(f"RT{j}", 1.2, 2.0, r_kohm=0.2)

    # ring connectivity: stage k output feeds stage (k+1) % stages input
    for k in range(stages):
        nxt = (k + 1) % stages
        terms = [(f"MP{k}", "d"), (f"MN{k}", "d"),
                 (f"MP{nxt}", "g"), (f"MN{nxt}", "g")]
        if k == 0 and buffers:
            terms.append(("RT0", "p"))
        b.net(f"ring{k}", terms, critical=True)
        b.net(f"vsrcp{k}", [(f"MSP{k}", "d"), (f"MP{k}", "s")], weight=0.5)
        b.net(f"vsrcn{k}", [(f"MSN{k}", "d"), (f"MN{k}", "s")], weight=0.5)

    # control/bias distribution
    b.mos("MBIAS", "n", 2.6, 1.6, gm_ms=1.0, ro_kohm=70.0)
    b.net("vctrl", [("MBIAS", "g")]
          + [(m, "g") for m in (f"MSN{k}" for k in range(stages))])
    b.net("vctrlp", [("MBIAS", "d")]
          + [(f"MSP{k}", "g") for k in range(stages)])
    b.net("vdd", [(f"MSP{k}", "s") for k in range(stages)], weight=0.2)
    b.net("vss", [("MBIAS", "s")]
          + [(f"MSN{k}", "s") for k in range(stages)], weight=0.2)

    # output buffer chain hanging off stage 0's output via tap resistors
    for j in range(buffers):
        b.net(f"buftap{j}",
              [(f"RT{j}", "n"), (f"BUFP{j}", "g"), (f"BUFN{j}", "g")])
        out_terms = [(f"BUFP{j}", "d"), (f"BUFN{j}", "d")]
        if j + 1 < buffers:
            out_terms.append((f"RT{j + 1}", "p"))
        b.net(f"bufout{j}", out_terms)
        b.net(f"bufvdd{j}", [(f"BUFP{j}", "s")], weight=0.2)
        b.net(f"bufvss{j}", [(f"BUFN{j}", "s")], weight=0.2)

    # stage inverters keep a horizontal monotone order around the ring
    b.order(stage_nmos, axis=Axis.VERTICAL, name="ring_order")
    # each stage's P/N inverter halves centre-aligned vertically
    for k in range(stages):
        b.align(f"MP{k}", f"MN{k}", kind="vcenter")
    # starving sources symmetric around the ring midline
    half = stages // 2
    pairs = [(f"MSP{k}", f"MSP{stages - 1 - k}") for k in range(half)]
    pairs += [(f"MSN{k}", f"MSN{stages - 1 - k}") for k in range(half)]
    selfs = []
    if stages % 2 == 1:
        selfs = [f"MSP{half}", f"MSN{half}"]
    b.symmetry("starve", pairs=pairs, self_symmetric=selfs)
    return b.build(family="vco", spec=spec, model=model)


def vco1():
    """3-stage current-starved ring VCO (paper's VCO1)."""
    return _ring_vco(
        "VCO1", stages=3, buffers=2,
        spec=_vco_spec(2.51, 27.2, 1.15),
        model={
            "freq0_ghz": 4.4245,
            "tune0_pct": 28.4,
            "pnoise0_au": 0.3353,
            "stage_cap_ff": 18.0,
            "critical_nets": ("ring0", "ring1", "ring2"),
            "coupling": {"victims": ("MP0", "MN0", "MP1", "MN1",
                                     "MP2", "MN2"),
                         "aggressors": ("BUFP0", "BUFN0",
                                        "BUFP1", "BUFN1")},
            "coupling_k": 0.331,
        },
    )


def vco2():
    """5-stage ring VCO with a longer buffer chain (paper's VCO2)."""
    return _ring_vco(
        "VCO2", stages=5, buffers=3,
        spec=_vco_spec(1.89, 33.0, 1.46),
        model={
            "freq0_ghz": 3.251,
            "tune0_pct": 34.95,
            "pnoise0_au": 0.3551,
            "stage_cap_ff": 22.0,
            "critical_nets": ("ring0", "ring1", "ring2", "ring3",
                              "ring4"),
            "coupling": {"victims": ("MP0", "MN0", "MP2", "MN2",
                                     "MP4", "MN4"),
                         "aggressors": ("BUFP0", "BUFN0", "BUFP1",
                                        "BUFN1", "BUFP2", "BUFN2")},
            "coupling_k": 0.196,
        },
    )
