"""Operational transconductance amplifier testcases.

Three OTAs matching the paper's testcase list:

* **CC-OTA** — a cascode-compensated two-stage OTA (the circuit whose
  detailed metrics the paper reports in Table VI: gain, unity-gain
  frequency, bandwidth, phase margin).
* **CM-OTA1** — a single-stage current-mirror OTA.
* **CM-OTA2** — a larger current-mirror OTA with interdigitated mirror
  banks (roughly 1.5x the device count of CM-OTA1).

The electrical parameters put the zero-parasitic performance comfortably
near the specifications so that layout parasitics (which grow with the
critical nets' wirelength) decide how much of the spec survives — the
same role layout plays in the paper's GF12 flows.
"""

from __future__ import annotations

from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def _ota_spec(gain_db: float, ugf_mhz: float, bw_mhz: float,
              pm_deg: float) -> PerformanceSpec:
    return PerformanceSpec(metrics=(
        MetricSpec("gain_db", gain_db, "+", 1.0, "dB"),
        MetricSpec("ugf_mhz", ugf_mhz, "+", 1.0, "MHz"),
        MetricSpec("bw_mhz", bw_mhz, "+", 1.0, "MHz"),
        MetricSpec("pm_deg", pm_deg, "+", 1.0, "deg"),
    ))


def cc_ota():
    """Cascode-compensated two-stage OTA (paper's CC-OTA, Table VI)."""
    b = CircuitBuilder("CC-OTA")
    # input differential pair and tail source
    b.mos("M1", "n", 2.4, 1.8, gm_ms=2.2, ro_kohm=40.0)
    b.mos("M2", "n", 2.4, 1.8, gm_ms=2.2, ro_kohm=40.0)
    b.mos("M0", "n", 3.2, 1.6, gm_ms=1.2, ro_kohm=60.0)
    # first-stage PMOS mirror load
    b.mos("M3", "p", 2.8, 1.8, gm_ms=1.4, ro_kohm=55.0)
    b.mos("M4", "p", 2.8, 1.8, gm_ms=1.4, ro_kohm=55.0)
    # cascode compensation devices
    b.mos("MC1", "n", 1.6, 1.4, gm_ms=1.8, ro_kohm=70.0)
    b.mos("MC2", "n", 1.6, 1.4, gm_ms=1.8, ro_kohm=70.0)
    # second stage: common-source + current source
    b.mos("M5", "n", 3.0, 2.0, gm_ms=4.5, ro_kohm=30.0)
    b.mos("M6", "p", 3.0, 2.0, gm_ms=1.6, ro_kohm=45.0)
    # bias branch
    b.mos("MB1", "n", 1.6, 1.4, gm_ms=0.8, ro_kohm=80.0)
    b.mos("MB2", "p", 1.6, 1.4, gm_ms=0.8, ro_kohm=80.0)
    # compensation capacitor
    b.cap("CC", 3.2, 3.2, c_ff=250.0)

    b.net("vinp", [("M1", "g")])
    b.net("vinn", [("M2", "g")])
    b.net("tail", [("M1", "s"), ("M2", "s"), ("M0", "d")])
    b.net("n1", [("M1", "d"), ("M3", "d"), ("M3", "g"), ("M4", "g"),
                 ("MC1", "s")], critical=True)
    b.net("n2", [("M2", "d"), ("M4", "d"), ("MC2", "s"), ("M5", "g")],
          critical=True)
    b.net("casc", [("MC1", "d"), ("MC2", "d"), ("CC", "p")])
    b.net("vout", [("M5", "d"), ("M6", "d"), ("CC", "n")],
          critical=True)
    b.net("vbias", [("M0", "g"), ("MB1", "g"), ("MB1", "d"), ("MB2", "d")])
    b.net("vbp", [("M6", "g"), ("MB2", "g")])
    b.net("vcasc", [("MC1", "g"), ("MC2", "g")])
    b.net("vss", [("M0", "s"), ("M5", "s"), ("MB1", "s")], weight=0.2)
    b.net("vdd", [("M3", "s"), ("M4", "s"), ("M6", "s"), ("MB2", "s")],
          weight=0.2)

    b.symmetry("inpair", pairs=[("M1", "M2"), ("M3", "M4"),
                                ("MC1", "MC2")],
               self_symmetric=["M0"])
    b.align("M5", "M6", kind="vcenter")
    return b.build(
        family="ota",
        spec=_ota_spec(25.0, 1200.0, 70.0, 90.0),
        model={
            # zero-parasitic baselines calibrated so a conventional
            # ePlace-A placement reproduces the paper's Table VI row
            "load_cap_ff": 20.0,
            "cap_sens_ff_per_um": 5.0,
            "gain0_db": 29.82,
            "ugf0_mhz": 2125.9,
            "bw0_mhz": 245.2,
            "pm0_deg": 100.89,
            "p2_ratio": 1.55,
            "critical_nets": ("n1", "n2", "vout"),
            "mismatch_gain_db_per_um": 0.8,
            "coupling": {"victims": ("M1", "M2"),
                         "aggressors": ("MB1", "MB2")},
            "coupling_k": 6.371,
        },
    )


def _cm_ota(name: str, mirror_banks: int, spec: PerformanceSpec,
            model: dict):
    """Shared current-mirror OTA topology with parametric mirror banks."""
    b = CircuitBuilder(name)
    b.mos("M1", "n", 2.4, 1.8, gm_ms=2.0, ro_kohm=45.0)
    b.mos("M2", "n", 2.4, 1.8, gm_ms=2.0, ro_kohm=45.0)
    b.mos("M0", "n", 3.2, 1.6, gm_ms=1.0, ro_kohm=65.0)
    # diode-connected first-stage loads
    b.mos("M3", "p", 2.6, 1.8, gm_ms=1.2, ro_kohm=60.0)
    b.mos("M4", "p", 2.6, 1.8, gm_ms=1.2, ro_kohm=60.0)

    left_units, right_units = [], []
    for k in range(mirror_banks):
        lu = b.mos(f"M5_{k}", "p", 2.6, 1.8, gm_ms=1.2, ro_kohm=60.0)
        ru = b.mos(f"M6_{k}", "p", 2.6, 1.8, gm_ms=1.2, ro_kohm=60.0)
        left_units.append(lu.name)
        right_units.append(ru.name)
    # NMOS mirror routing the left branch to the output
    b.mos("M7", "n", 2.4, 1.6, gm_ms=1.4, ro_kohm=55.0)
    b.mos("M8", "n", 2.4, 1.6, gm_ms=1.4, ro_kohm=55.0)
    b.mos("MB1", "n", 1.6, 1.4, gm_ms=0.8, ro_kohm=80.0)
    b.cap("CL", 3.6, 3.6, c_ff=200.0)

    b.net("vinp", [("M1", "g")])
    b.net("vinn", [("M2", "g")])
    b.net("tail", [("M1", "s"), ("M2", "s"), ("M0", "d")])
    b.net("n1", [("M1", "d"), ("M3", "d"), ("M3", "g")]
          + [(m, "g") for m in left_units], critical=True)
    b.net("n2", [("M2", "d"), ("M4", "d"), ("M4", "g")]
          + [(m, "g") for m in right_units], critical=True)
    b.net("n3", [(m, "d") for m in left_units]
          + [("M7", "d"), ("M7", "g"), ("M8", "g")], critical=True)
    b.net("vout", [(m, "d") for m in right_units]
          + [("M8", "d"), ("CL", "p")], critical=True)
    b.net("vbias", [("M0", "g"), ("MB1", "g"), ("MB1", "d")])
    b.net("vss", [("M0", "s"), ("M7", "s"), ("M8", "s"), ("MB1", "s"),
                  ("CL", "n")], weight=0.2)
    b.net("vdd", [("M3", "s"), ("M4", "s")]
          + [(m, "s") for m in left_units + right_units], weight=0.2)

    b.symmetry("inpair", pairs=[("M1", "M2"), ("M3", "M4"), ("M7", "M8")],
               self_symmetric=["M0"])
    b.symmetry("mirror", pairs=list(zip(left_units, right_units)))
    b.align("M3", "M4", kind="bottom")
    return b.build(family="ota", spec=spec, model=model)


def cm_ota1():
    """Single-stage current-mirror OTA (paper's CM-OTA1)."""
    return _cm_ota(
        "CM-OTA1", mirror_banks=2,
        spec=_ota_spec(22.0, 1154.0, 66.4, 77.7),
        model={
            "load_cap_ff": 18.0,
            "cap_sens_ff_per_um": 5.0,
            "gain0_db": 27.2,
            "ugf0_mhz": 1849.1,
            "bw0_mhz": 278.9,
            "pm0_deg": 90.32,
            "p2_ratio": 1.55,
            "critical_nets": ("n1", "n2", "n3", "vout"),
            "mismatch_gain_db_per_um": 0.7,
            "coupling": {"victims": ("M1", "M2"),
                         "aggressors": ("MB1",)},
            "coupling_k": 11.714,
        },
    )


def cm_ota2():
    """Larger interdigitated current-mirror OTA (paper's CM-OTA2)."""
    return _cm_ota(
        "CM-OTA2", mirror_banks=4,
        spec=_ota_spec(24.0, 1006.0, 54.7, 72.7),
        model={
            "load_cap_ff": 25.0,
            "cap_sens_ff_per_um": 5.0,
            "gain0_db": 29.73,
            "ugf0_mhz": 1954.3,
            "bw0_mhz": 415.9,
            "pm0_deg": 82.48,
            "p2_ratio": 1.55,
            "critical_nets": ("n1", "n2", "n3", "vout"),
            "mismatch_gain_db_per_um": 0.7,
            "coupling": {"victims": ("M1", "M2"),
                         "aggressors": ("MB1",)},
            "coupling_k": 12.557,
        },
    )
