"""Analog adder testcase (paper's smallest circuit).

A resistive summing amplifier: two input resistors, a feedback resistor
and a small five-transistor opamp.  In the paper every placer reaches the
same solution on this circuit (Table III), which is the expected behaviour
for a near-trivial instance — our tests assert that the three methods land
within a whisker of each other here too.

Metrics: summing gain accuracy (higher normalised value is better) and
-3 dB bandwidth.
"""

from __future__ import annotations

from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def adder():
    """Two-input summing amplifier around a 5T opamp."""
    b = CircuitBuilder("Adder")
    b.res("R1", 1.2, 2.6, r_kohm=20.0)
    b.res("R2", 1.2, 2.6, r_kohm=20.0)
    b.res("RF", 1.2, 3.0, r_kohm=40.0)
    # five-transistor opamp
    b.mos("M1", "n", 2.2, 1.6, gm_ms=1.8, ro_kohm=45.0)
    b.mos("M2", "n", 2.2, 1.6, gm_ms=1.8, ro_kohm=45.0)
    b.mos("M3", "p", 2.4, 1.6, gm_ms=1.2, ro_kohm=55.0)
    b.mos("M4", "p", 2.4, 1.6, gm_ms=1.2, ro_kohm=55.0)
    b.mos("M0", "n", 2.8, 1.4, gm_ms=0.9, ro_kohm=70.0)
    b.cap("CL", 2.8, 2.8, c_ff=120.0)

    b.net("vsum", [("R1", "n"), ("R2", "n"), ("RF", "n"), ("M1", "g")],
          critical=True)
    b.net("in1", [("R1", "p")])
    b.net("in2", [("R2", "p")])
    b.net("vref", [("M2", "g")])
    b.net("tail", [("M1", "s"), ("M2", "s"), ("M0", "d")])
    b.net("n1", [("M1", "d"), ("M3", "d"), ("M3", "g"), ("M4", "g")],
          critical=True)
    b.net("vout", [("M2", "d"), ("M4", "d"), ("RF", "p"), ("CL", "p")],
          critical=True)
    b.net("vbias", [("M0", "g")])
    b.net("vss", [("M0", "s"), ("CL", "n")], weight=0.2)
    b.net("vdd", [("M3", "s"), ("M4", "s")], weight=0.2)

    b.symmetry("inpair", pairs=[("M1", "M2"), ("M3", "M4")],
               self_symmetric=["M0"])
    b.align("R1", "R2", kind="bottom")
    return b.build(
        family="adder",
        spec=PerformanceSpec(metrics=(
            MetricSpec("gain_acc_pct", 99.27, "+", 1.0, "%"),
            MetricSpec("bw_mhz", 63.7, "+", 1.0, "MHz"),
        )),
        model={
            "gain_acc0_pct": 100.61,
            "bw0_mhz": 54.77,
            "load_cap_ff": 120.0,
            "critical_nets": ("vsum", "n1", "vout"),
        },
    )
