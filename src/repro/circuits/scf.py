"""Switched-capacitor filter testcase (paper's SCF, the largest circuit).

A biquad switched-capacitor filter: two 5T opamps, two banks of unit
sampling/integration capacitors (the dominant area, matching the paper's
SCF being ~20x larger than the other circuits), and the switch matrix.
Capacitor ratio accuracy sets the filter's cutoff accuracy, so the unit
caps of each bank form symmetry pairs; the integrator summing nodes are
the critical nets.

Metrics: cutoff-frequency accuracy and settling margin (both
higher-is-better after normalisation), output swing.
"""

from __future__ import annotations

from ..perf import MetricSpec, PerformanceSpec
from .base import CircuitBuilder


def _opamp(b: CircuitBuilder, p: str) -> None:
    """Five-transistor opamp named with prefix ``p``; nets wired later."""
    b.mos(f"{p}M1", "n", 2.2, 1.6, gm_ms=2.0, ro_kohm=45.0)
    b.mos(f"{p}M2", "n", 2.2, 1.6, gm_ms=2.0, ro_kohm=45.0)
    b.mos(f"{p}M3", "p", 2.4, 1.6, gm_ms=1.3, ro_kohm=55.0)
    b.mos(f"{p}M4", "p", 2.4, 1.6, gm_ms=1.3, ro_kohm=55.0)
    b.mos(f"{p}M0", "n", 2.8, 1.4, gm_ms=0.9, ro_kohm=70.0)


def scf():
    """Biquad switched-capacitor filter with unit-capacitor banks."""
    b = CircuitBuilder("SCF")
    _opamp(b, "A")
    _opamp(b, "B")

    # two banks of unit capacitors; 6 units each, 8 µm squares dominate area
    bank_a = [b.cap(f"CUA{k}", 8.0, 8.0, c_ff=500.0).name for k in range(6)]
    bank_b = [b.cap(f"CUB{k}", 8.0, 8.0, c_ff=500.0).name for k in range(6)]
    # feedback/integration caps
    b.cap("CFA", 9.0, 9.0, c_ff=800.0)
    b.cap("CFB", 9.0, 9.0, c_ff=800.0)
    # switch matrix (two phases x two integrators x in/out)
    switches = [b.switch(f"S{k}", 1.4, 1.2, ron_kohm=1.0).name
                for k in range(8)]

    # integrator A: sampling units dump onto virtual ground vga_n
    b.net("vin", [("S0", "a")])
    b.net("samp_a", [("S0", "b"), ("S1", "a")]
          + [(c, "p") for c in bank_a[:3]])
    b.net("vg_a", [("S1", "b"), ("AM1", "g"), ("CFA", "p")]
          + [(c, "n") for c in bank_a[:3]], critical=True)
    b.net("ref_a", [("AM2", "g")] + [(c, "p") for c in bank_a[3:]])
    b.net("gnd_a", [(c, "n") for c in bank_a[3:]], weight=0.5)
    b.net("taila", [("AM1", "s"), ("AM2", "s"), ("AM0", "d")])
    b.net("n1a", [("AM1", "d"), ("AM3", "d"), ("AM3", "g"), ("AM4", "g")],
          critical=True)
    b.net("vout_a", [("AM2", "d"), ("AM4", "d"), ("CFA", "n"),
                     ("S2", "a")], critical=True)

    # integrator B fed from integrator A through the phase-2 switches
    b.net("samp_b", [("S2", "b"), ("S3", "a")]
          + [(c, "p") for c in bank_b[:3]])
    b.net("vg_b", [("S3", "b"), ("BM1", "g"), ("CFB", "p")]
          + [(c, "n") for c in bank_b[:3]], critical=True)
    b.net("ref_b", [("BM2", "g")] + [(c, "p") for c in bank_b[3:]])
    b.net("gnd_b", [(c, "n") for c in bank_b[3:]], weight=0.5)
    b.net("tailb", [("BM1", "s"), ("BM2", "s"), ("BM0", "d")])
    b.net("n1b", [("BM1", "d"), ("BM3", "d"), ("BM3", "g"), ("BM4", "g")],
          critical=True)
    b.net("vout_b", [("BM2", "d"), ("BM4", "d"), ("CFB", "n"),
                     ("S4", "a")], critical=True)
    # global feedback to the first summing node
    b.net("fb", [("S4", "b"), ("S5", "a")])
    b.net("fb2", [("S5", "b"), ("S6", "a")])
    b.net("out", [("S6", "b"), ("S7", "a")])
    b.net("outbuf", [("S7", "b")])

    b.net("ph1", [("S0", "clk"), ("S3", "clk"), ("S5", "clk"),
                  ("S7", "clk")], weight=0.3)
    b.net("ph2", [("S1", "clk"), ("S2", "clk"), ("S4", "clk"),
                  ("S6", "clk")], weight=0.3)
    b.net("vbias", [("AM0", "g"), ("BM0", "g")])
    b.net("vss", [("AM0", "s"), ("BM0", "s")], weight=0.2)
    b.net("vdd", [("AM3", "s"), ("AM4", "s"), ("BM3", "s"), ("BM4", "s")],
          weight=0.2)

    # matching: unit caps pair up across each bank; opamp pairs symmetric
    b.symmetry("bank_a", pairs=list(zip(bank_a[:3], bank_a[3:])))
    b.symmetry("bank_b", pairs=list(zip(bank_b[:3], bank_b[3:])))
    b.symmetry("opa", pairs=[("AM1", "AM2"), ("AM3", "AM4")],
               self_symmetric=["AM0"])
    b.symmetry("opb", pairs=[("BM1", "BM2"), ("BM3", "BM4")],
               self_symmetric=["BM0"])
    b.align("CFA", "CFB", kind="bottom")
    __ = switches  # switch names only needed during construction
    return b.build(
        family="scf",
        spec=PerformanceSpec(metrics=(
            MetricSpec("cutoff_acc_pct", 97.77, "+", 1.0, "%"),
            MetricSpec("settle_margin_pct", 76.0, "+", 1.0, "%"),
            MetricSpec("swing_v", 0.9, "+", 0.5, "V"),
        )),
        model={
            "cutoff_acc0_pct": 107.88,
            "settle_margin0_pct": 146.38,
            "swing0_v": 1.0873,
            "load_cap_ff": 500.0,
            "critical_nets": ("vg_a", "vg_b", "vout_a", "vout_b"),
            "coupling": {"victims": ("AM1", "AM2", "BM1", "BM2"),
                         "aggressors": ("S0", "S5", "S6", "S7")},
            "coupling_k": 3.584,
        },
    )
