"""Simulated-annealing analog placer (the paper's comparison baseline).

Sequence-pair floorplanning over symmetry islands and free devices with
a classic Metropolis schedule.  The cost is the same area + wirelength
mix the analytical flows optimise (optionally plus a performance model
term, the ``Perf`` arm of Table V); symmetry and alignment come out
exact by construction — islands pin mirrored pairs to a common axis, and
alignment pairs are fused into rigid blocks.

Moves: swap two blocks in one or both sequences, toggle a free device's
flip, permute an island's row order, and mirror an entire island.

Cost evaluation is incremental (:mod:`repro.annealing.incremental`):
per-net bounding-box spans and per-block geometry are cached between
moves and only the nets touched by a move are re-evaluated, with a
periodic full-recompute audit guarding the cache.  The incremental
arithmetic uses the same expressions as the from-scratch audit, so the
cache stays bitwise-consistent; runs are deterministic per seed (all
randomness comes from one batched ``numpy`` Generator stream, drawn a
temperature stage at a time).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..analytic import NetArrays
from ..netlist import Axis, Circuit
from ..obs import diagnose, health, live, memory, metrics, trace
from ..obs.log import get_logger
from ..placement import Placement, PlacerResult

logger = get_logger("annealing")
from .incremental import IncrementalCostEvaluator, realize_placement
from .islands import (
    Block,
    build_blocks,
    fuse_alignment_blocks,
    reorder_island,
)
from .seqpair import SequencePair

#: solver internals published on the health channel each stage
HEALTH_FIELDS = (
    "accept_rate", "temperature", "dirty_nets", "evaluated",
    "full_evals",
)

#: optional extra cost hook: maps a candidate Placement to a scalar
CostHook = Callable[[Placement], float]


@dataclass
class SAParams:
    """Annealing schedule and cost weighting.

    ``area_weight`` mixes normalised area into the normalised-HPWL cost
    (the knob swept for the paper's Fig. 5 trade-off curve); ``perf_weight``
    scales the optional performance hook (Table V's ``Perf`` arm).
    ``audit_interval`` is the number of *accepted* moves between full
    cost recomputes that assert the incremental cache has not drifted
    (0 disables the audit; see docs/PERFORMANCE.md).  ``polish_evals``
    bounds the deterministic greedy-descent refinement run on the best
    state after the Metropolis schedule ends (0 disables it).
    """

    iterations: int = 20000
    seed: int = 1
    area_weight: float = 1.0
    perf_weight: float = 0.0
    t_start_factor: float = 1.0
    t_end_ratio: float = 1e-3
    moves_per_temp: int = 40
    audit_interval: int = 1000
    polish_evals: int = 2000

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.area_weight < 0 or self.perf_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.audit_interval < 0:
            raise ValueError("audit_interval must be non-negative")
        if self.polish_evals < 0:
            raise ValueError("polish_evals must be non-negative")


class _State:
    """Lightweight annealing state: sequence pair + block configuration.

    Geometry caches (packed origins, device coordinates, net spans)
    live in the :class:`IncrementalCostEvaluator`, not here, so copying
    a state is two small list copies and a dict copy.
    """

    __slots__ = ("circuit", "blocks", "pair", "free_flips")

    def __init__(self, circuit: Circuit, blocks: list[Block],
                 pair: SequencePair):
        self.circuit = circuit
        self.blocks = blocks
        self.pair = pair
        self.free_flips: dict[int, tuple[bool, bool]] = {}

    def copy(self) -> "_State":
        out = _State(self.circuit, list(self.blocks), self.pair.copy())
        out.free_flips = dict(self.free_flips)
        return out

    def realize(self) -> Placement:
        """Pack the sequence pair and emit absolute device placement."""
        return realize_placement(
            self.circuit, self.blocks, self.pair, self.free_flips
        )


class SimulatedAnnealingPlacer:
    """End-to-end SA placement for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        params: SAParams | None = None,
        cost_hook: CostHook | None = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.params = params or SAParams()
        self.cost_hook = cost_hook
        self.arrays = NetArrays(circuit)
        self.widths, self.heights = circuit.sizes()
        # normalisers so HPWL and area enter the cost at similar scales
        side = float(np.sqrt(circuit.total_device_area()))
        self._area_norm = side * side
        self._hpwl_norm = max(side * self.arrays.num_nets, 1e-9)

    def _evaluator(self) -> IncrementalCostEvaluator:
        return IncrementalCostEvaluator(
            self.circuit,
            self.arrays,
            self.widths,
            self.heights,
            area_weight=self.params.area_weight,
            hpwl_norm=self._hpwl_norm,
            area_norm=self._area_norm,
            perf_weight=self.params.perf_weight,
            cost_hook=self.cost_hook,
        )

    # ------------------------------------------------------------------
    def _cost(self, placement: Placement) -> float:
        """From-scratch reference cost of an arbitrary placement.

        The hot path goes through :class:`IncrementalCostEvaluator`;
        this remains for tests and external callers evaluating
        placements that did not come from the move loop.
        """
        x, y = placement.x, placement.y
        sign_x = np.where(placement.flip_x, -1.0, 1.0)
        sign_y = np.where(placement.flip_y, -1.0, 1.0)
        arrays = self.arrays
        px = x[arrays.pin_dev] + arrays.pin_offx * sign_x[arrays.pin_dev]
        py = y[arrays.pin_dev] + arrays.pin_offy * sign_y[arrays.pin_dev]
        spans = (
            arrays.segment_max(px) - arrays.segment_min(px)
            + arrays.segment_max(py) - arrays.segment_min(py)
        )
        hpwl = float(np.dot(arrays.weights, spans))
        w = (x + self.widths / 2).max() - (x - self.widths / 2).min()
        h = (y + self.heights / 2).max() - (y - self.heights / 2).min()
        cost = (
            hpwl / self._hpwl_norm
            + self.params.area_weight * (w * h) / self._area_norm
        )
        if self.cost_hook is not None and self.params.perf_weight > 0:
            cost += self.params.perf_weight * self.cost_hook(placement)
        return cost

    # ------------------------------------------------------------------
    def _propose(
        self, state: _State, u: "list[float]"
    ) -> tuple[_State, "int | None"]:
        """One random move driven by a pre-drawn uniform 5-tuple.

        Uniforms are batched per temperature stage (one Generator call)
        rather than drawn per move — Generator call overhead dominates
        the move loop otherwise.  Returns the candidate state plus the
        index of the block whose internal geometry changed (``None``
        for pure sequence moves).
        """
        nb = len(state.blocks)
        new = state.copy()
        touched: "int | None" = None
        move = min(int(u[0] * 5.0), 4)
        if move <= 2 and nb >= 2:
            i = min(int(u[1] * nb), nb - 1)
            j = min(int(u[2] * (nb - 1)), nb - 2)
            if j >= i:
                j += 1
            seqs = (
                (new.pair.plus, new.pair.minus)
                if move == 2
                else (new.pair.plus if move == 0 else new.pair.minus,)
            )
            for seq in seqs:
                pi, pj = seq.index(i), seq.index(j)
                seq[pi], seq[pj] = seq[pj], seq[pi]
        elif move == 3:
            k = min(int(u[1] * nb), nb - 1)
            block = state.blocks[k]
            fx, fy = new.free_flips.get(k, (False, False))
            if u[2] < 0.5 and block.allow_flip_x:
                fx = not fx
            elif block.allow_flip_y:
                fy = not fy
            new.free_flips[k] = (fx, fy)
            touched = k
        elif move == 4 and self._islands:
            islands = self._islands
            k = islands[min(int(u[1] * len(islands)), len(islands) - 1)]
            order = list(state.blocks[k].row_order)
            m = len(order)
            a = min(int(u[2] * m), m - 1)
            b = min(int(u[3] * (m - 1)), m - 2)
            if b >= a:
                b += 1
            order[a], order[b] = order[b], order[a]
            # island layout is a pure function of (group, row order)
            # and orders recur constantly at SA scale — memoize
            key = (k, tuple(order))
            block = self._reorder_cache.get(key)
            if block is None:
                block = reorder_island(
                    self.circuit, state.blocks[k], order
                )
                self._reorder_cache[key] = block
            new.blocks[k] = block
            touched = k
        return new, touched

    # ------------------------------------------------------------------
    def _enumerate_moves(self, state: _State):
        """Deterministic move neighbourhood of ``state`` (for polish).

        Yields ``(candidate, touched)`` pairs: every whole-block flip,
        every island row transposition, then every pairwise swap in one
        or both sequences — cheap geometry-only moves first.
        """
        nb = len(state.blocks)
        for k, block in enumerate(state.blocks):
            for flip_x in (True, False):
                if flip_x and not block.allow_flip_x:
                    continue
                if not flip_x and not block.allow_flip_y:
                    continue
                new = state.copy()
                fx, fy = new.free_flips.get(k, (False, False))
                new.free_flips[k] = (
                    (not fx, fy) if flip_x else (fx, not fy)
                )
                yield new, k
        for k in self._islands:
            order0 = state.blocks[k].row_order
            m = len(order0)
            for a in range(m):
                for b in range(a + 1, m):
                    order = list(order0)
                    order[a], order[b] = order[b], order[a]
                    key = (k, tuple(order))
                    block = self._reorder_cache.get(key)
                    if block is None:
                        block = reorder_island(
                            self.circuit, state.blocks[k], order
                        )
                        self._reorder_cache[key] = block
                    new = state.copy()
                    new.blocks[k] = block
                    yield new, k
        for i in range(nb):
            for j in range(i + 1, nb):
                for which in (0, 1, 2):
                    new = state.copy()
                    seqs = (
                        (new.pair.plus, new.pair.minus) if which == 2
                        else (new.pair.plus,) if which == 0
                        else (new.pair.minus,)
                    )
                    for seq in seqs:
                        pi, pj = seq.index(i), seq.index(j)
                        seq[pi], seq[pj] = seq[pj], seq[pi]
                    yield new, None

    def _descend(
        self,
        state: _State,
        cost: float,
        evaluator: IncrementalCostEvaluator,
        budget: int,
    ) -> tuple[_State, float, int]:
        """First-improvement greedy descent to a local optimum.

        Rescans the move neighbourhood after every accepted move;
        stops at a local optimum or when ``budget`` runs out.  The
        evaluator must currently track ``state``.
        """
        evals = 0
        improved = True
        while improved and evals < budget:
            improved = False
            for cand, touched in self._enumerate_moves(state):
                if touched is None and self._chains and \
                        not self._chains_ok(cand.pair, self._chains):
                    continue
                cand_cost = evaluator.propose(
                    cand.blocks, cand.pair, cand.free_flips, touched
                )
                evals += 1
                if cand_cost < cost:
                    evaluator.commit()
                    state, cost = cand, cand_cost
                    improved = True
                    break
                if evals >= budget:
                    break
        return state, cost, evals

    #: random perturbation moves applied between polish descents
    _KICK_MOVES = 3

    def _polish(
        self,
        state: _State,
        cost: float,
        evaluator: IncrementalCostEvaluator,
        max_evals: int,
        rng: np.random.Generator,
    ) -> tuple[_State, float, int]:
        """Iterated local search from the annealed best state.

        Greedy descent to a local optimum, then repeated kick-and-
        descend rounds (a few random moves off the best state, then
        descent again), keeping the best state seen.  Deterministic
        per seed — the kicks draw from the same batched Generator
        stream as the Metropolis schedule — and bounded by
        ``max_evals`` cost evaluations in total.
        """
        evaluator.reset(state.blocks, state.pair, state.free_flips)
        used = 0
        state, cost, evals = self._descend(
            state, cost, evaluator, max_evals
        )
        used += evals
        best_state, best_cost = state, cost
        while used < max_evals:
            # kick: a few unconditional random moves off the best state
            state, cost = best_state, best_cost
            evaluator.reset(state.blocks, state.pair, state.free_flips)
            for u in rng.random((self._KICK_MOVES, 5)).tolist():
                used += 1  # count attempts so filtered kicks still
                cand, touched = self._propose(state, u)  # make progress
                if touched is None and self._chains and \
                        not self._chains_ok(cand.pair, self._chains):
                    continue
                cost = evaluator.propose(
                    cand.blocks, cand.pair, cand.free_flips, touched
                )
                evaluator.commit()
                state = cand
            state, cost, evals = self._descend(
                state, cost, evaluator, max_evals - used
            )
            used += evals
            if cost < best_cost:
                best_state, best_cost = state, cost
        # leave the evaluator tracking the returned state so the
        # caller's closing audit matches
        evaluator.reset(
            best_state.blocks, best_state.pair, best_state.free_flips
        )
        return best_state, best_cost, used

    # ------------------------------------------------------------------
    def _compile_chains(self, blocks: list[Block]) -> list[tuple]:
        """Ordering chains mapped to block-index sequences."""
        index = self.circuit.device_index()
        by_device = {}
        for k, block in enumerate(blocks):
            for dev in block.device_indices:
                by_device[dev] = k
        chains = []
        for chain in self.circuit.constraints.orderings:
            block_seq: list[int] = []
            for name in chain.devices:
                k = by_device[index[name]]
                if not block_seq or block_seq[-1] != k:
                    block_seq.append(k)
            if len(block_seq) >= 2:
                chains.append((tuple(block_seq), chain.axis))
        return chains

    def _chains_ok(self, pair: SequencePair, chains) -> bool:
        """True when every chain's blocks keep their mandated relation.

        For a horizontal chain (``Axis.VERTICAL`` ordering) consecutive
        blocks must be left-of each other, i.e. ordered in both
        sequences; a vertical chain needs below-of: reversed in ``s+``,
        ordered in ``s-``.
        """
        nb = len(pair.plus)
        pos_plus = [0] * nb
        pos_minus = [0] * nb
        for i, b in enumerate(pair.plus):
            pos_plus[b] = i
        for i, b in enumerate(pair.minus):
            pos_minus[b] = i
        for block_seq, axis in chains:
            for a, b in zip(block_seq, block_seq[1:]):
                if pos_minus[a] >= pos_minus[b]:
                    return False
                if axis is Axis.VERTICAL:
                    if pos_plus[a] >= pos_plus[b]:
                        return False
                else:
                    if pos_plus[a] <= pos_plus[b]:
                        return False
        return True

    def _initial_pair(self, nb: int) -> SequencePair:
        """Chain-feasible starting sequences via topological sort."""
        g_plus = nx.DiGraph()
        g_minus = nx.DiGraph()
        g_plus.add_nodes_from(range(nb))
        g_minus.add_nodes_from(range(nb))
        for block_seq, axis in self._chains:
            for a, b in zip(block_seq, block_seq[1:]):
                g_minus.add_edge(a, b)
                if axis is Axis.VERTICAL:
                    g_plus.add_edge(a, b)
                else:
                    g_plus.add_edge(b, a)
        try:
            plus = list(nx.lexicographical_topological_sort(g_plus))
            minus = list(nx.lexicographical_topological_sort(g_minus))
        except nx.NetworkXUnfeasible as exc:
            raise RuntimeError(
                "ordering chains are cyclic at block level"
            ) from exc
        return SequencePair(plus, minus)

    def place(self) -> PlacerResult:
        tracer = trace.current()
        clock = trace.Stopwatch()
        with tracer.span("sa.place", circuit=self.circuit.name), \
                memory.phase_peak("sa.place"):
            result = self._place(tracer, clock)
        metrics.counter("repro.sa_placements").inc()
        result.trace = tracer.to_trace()  # now includes the root span
        diagnose.attach(result)
        return result

    def _place(
        self, tracer: trace.Tracer, clock: trace.Stopwatch
    ) -> PlacerResult:
        p = self.params
        rng = np.random.default_rng(p.seed)
        with tracer.span("sa.islands"):
            blocks = fuse_alignment_blocks(
                self.circuit, build_blocks(self.circuit)
            )
            self._chains = self._compile_chains(blocks)
            pair0 = self._initial_pair(len(blocks))
        # island membership and row_order length are invariant under
        # reorder moves, so the eligible-island set is static
        self._islands = [k for k, b in enumerate(blocks)
                         if b.group is not None and len(b.row_order) >= 2]
        self._reorder_cache: dict[tuple[int, tuple[int, ...]], Block] = {}
        state = _State(self.circuit, blocks, pair0)
        evaluator = self._evaluator()
        cost = evaluator.reset(state.blocks, state.pair, state.free_flips)

        # initial temperature from the spread of random-walk deltas
        with tracer.span("sa.probe"):
            deltas = []
            probe = state
            for u in rng.random((30, 5)).tolist():
                cand, touched = self._propose(probe, u)
                cand_cost = evaluator.propose(
                    cand.blocks, cand.pair, cand.free_flips, touched
                )
                evaluator.commit()
                deltas.append(abs(cand_cost - cost))
                probe = cand
            evaluator.reset(state.blocks, state.pair, state.free_flips)
        t0 = max(float(np.mean(deltas)), 1e-6) * p.t_start_factor
        t_end = t0 * p.t_end_ratio
        n_temps = max(p.iterations // p.moves_per_temp, 1)
        decay = (t_end / t0) ** (1.0 / n_temps)
        logger.debug(
            "SA %s: t0 %.4g over %d temperature stages",
            self.circuit.name, t0, n_temps,
        )

        best_state, best_cost = state.copy(), cost
        temperature = t0
        accepted = 0
        evaluated = 0
        last_dirty = evaluator.dirty_nets
        # the iteration budget is consumed in temperature stages of
        # ``moves_per_temp`` moves; the trailing partial stage (when
        # ``iterations`` is not a multiple) does not decay, matching
        # the pre-stage-loop behaviour
        it = 0
        stage = 0
        while it < p.iterations:
            stage_moves = min(p.moves_per_temp, p.iterations - it)
            stage_accepted = 0
            stage_evaluated = 0
            stage_u = rng.random((stage_moves, 5)).tolist()
            with tracer.span("sa.stage", stage=stage):
                for u in stage_u:
                    it += 1
                    candidate, touched = self._propose(state, u)
                    if self._chains and not self._chains_ok(
                            candidate.pair, self._chains):
                        continue
                    with trace.timer("sa.cost"):
                        cand_cost = evaluator.propose(
                            candidate.blocks, candidate.pair,
                            candidate.free_flips, touched,
                        )
                    evaluated += 1
                    stage_evaluated += 1
                    delta = cand_cost - cost
                    if delta <= 0 or u[4] < math.exp(
                            -delta / temperature):
                        state, cost = candidate, cand_cost
                        evaluator.commit()
                        accepted += 1
                        stage_accepted += 1
                        if p.audit_interval and \
                                accepted % p.audit_interval == 0:
                            evaluator.audit(
                                state.blocks, state.pair,
                                state.free_flips,
                            )
                        if cost < best_cost:
                            best_state, best_cost = state.copy(), cost
            if tracer.enabled or live.active():
                values = dict(
                    temperature=temperature,
                    cost=cost,
                    best_cost=best_cost,
                    accepted=stage_accepted,
                    evaluated=stage_evaluated,
                )
                tracer.record("sa.stage", stage, **values)
                live.progress("sa.stage", stage, **values)
                hvalues = dict(
                    accept_rate=(
                        stage_accepted / max(stage_evaluated, 1)
                    ),
                    temperature=temperature,
                    dirty_nets=float(
                        evaluator.dirty_nets - last_dirty
                    ),
                    evaluated=float(stage_evaluated),
                    full_evals=float(evaluator.full_evals),
                )
                last_dirty = evaluator.dirty_nets
                tracer.record(
                    "sa.stage" + health.HEALTH_SUFFIX,
                    stage, **hvalues,
                )
                health.sample("sa.stage", stage, **hvalues)
            if stage_moves == p.moves_per_temp:
                temperature *= decay
            stage += 1

        polish_evals = 0
        if p.polish_evals:
            with tracer.span("sa.polish"):
                best_state, best_cost, polish_evals = self._polish(
                    best_state, best_cost, evaluator, p.polish_evals, rng
                )
        if p.audit_interval:
            # closing audit against whichever state the evaluator
            # currently tracks: the whole run ends cache-consistent
            final = best_state if p.polish_evals else state
            evaluator.audit(final.blocks, final.pair, final.free_flips)
        placement = best_state.realize().normalized()
        logger.debug(
            "SA %s: accept rate %.3f, best cost %.4g",
            self.circuit.name, accepted / max(evaluated, 1), best_cost,
        )
        return PlacerResult(
            placement=placement,
            runtime_s=clock.elapsed(),
            method="annealing",
            stats={
                "iterations": p.iterations,
                "accept_rate": accepted / max(evaluated, 1),
                "best_cost": best_cost,
                "t0": t0,
                "blocks": len(blocks),
                "incremental_evals": evaluator.incremental_evals,
                "full_evals": evaluator.full_evals,
                "audits": evaluator.audits,
                "polish_evals": polish_evals,
            },
        )


def anneal_place(
    circuit: Circuit,
    params: SAParams | None = None,
    cost_hook: CostHook | None = None,
) -> PlacerResult:
    """Convenience wrapper: run the SA placer once."""
    return SimulatedAnnealingPlacer(circuit, params, cost_hook).place()
