"""Simulated-annealing analog placer (the paper's comparison baseline).

Sequence-pair floorplanning over symmetry islands and free devices with
a classic Metropolis schedule.  The cost is the same area + wirelength
mix the analytical flows optimise (optionally plus a performance model
term, the ``Perf`` arm of Table V); symmetry and alignment come out
exact by construction — islands pin mirrored pairs to a common axis, and
alignment pairs are fused into rigid blocks.

Moves: swap two blocks in one or both sequences, toggle a free device's
flip, permute an island's row order, and mirror an entire island.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..analytic import NetArrays
from ..netlist import Axis, Circuit
from ..obs import memory, metrics, trace
from ..obs.log import get_logger
from ..placement import Placement, PlacerResult

logger = get_logger("annealing")
from .islands import (
    Block,
    build_blocks,
    fuse_alignment_blocks,
    reorder_island,
)
from .seqpair import SequencePair

#: optional extra cost hook: maps a candidate Placement to a scalar
CostHook = Callable[[Placement], float]


@dataclass
class SAParams:
    """Annealing schedule and cost weighting.

    ``area_weight`` mixes normalised area into the normalised-HPWL cost
    (the knob swept for the paper's Fig. 5 trade-off curve); ``perf_weight``
    scales the optional performance hook (Table V's ``Perf`` arm).
    """

    iterations: int = 20000
    seed: int = 1
    area_weight: float = 1.0
    perf_weight: float = 0.0
    t_start_factor: float = 1.0
    t_end_ratio: float = 1e-3
    moves_per_temp: int = 40

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.area_weight < 0 or self.perf_weight < 0:
            raise ValueError("weights must be non-negative")


class _State:
    """Mutable annealing state: sequence pair + block geometry."""

    def __init__(self, circuit: Circuit, blocks: list[Block],
                 pair: SequencePair):
        self.circuit = circuit
        self.blocks = blocks
        self.pair = pair
        self.free_flips = {}  # block index -> (flip_x, flip_y)

    def copy(self) -> "_State":
        out = _State(self.circuit, list(self.blocks), self.pair.copy())
        out.free_flips = dict(self.free_flips)
        return out

    def realize(self) -> Placement:
        """Pack the sequence pair and emit absolute device placement."""
        widths = np.array([b.width for b in self.blocks])
        heights = np.array([b.height for b in self.blocks])
        bx, by = self.pair.pack(widths, heights)

        n = self.circuit.num_devices
        x = np.zeros(n)
        y = np.zeros(n)
        fx = np.zeros(n, dtype=bool)
        fy = np.zeros(n, dtype=bool)
        for k, block in enumerate(self.blocks):
            extra_fx, extra_fy = self.free_flips.get(k, (False, False))
            for m, dev in enumerate(block.device_indices):
                rel_x = block.rel_x[m]
                if extra_fx:
                    rel_x = block.width - rel_x
                rel_y = block.rel_y[m]
                if extra_fy:
                    rel_y = block.height - rel_y
                x[dev] = bx[k] + rel_x
                y[dev] = by[k] + rel_y
                fx[dev] = bool(block.flip_x[m]) ^ extra_fx
                fy[dev] = bool(block.flip_y[m]) ^ extra_fy
        return Placement(self.circuit, x, y, fx, fy)


class SimulatedAnnealingPlacer:
    """End-to-end SA placement for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        params: SAParams | None = None,
        cost_hook: CostHook | None = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.params = params or SAParams()
        self.cost_hook = cost_hook
        self.arrays = NetArrays(circuit)
        self.widths, self.heights = circuit.sizes()
        # normalisers so HPWL and area enter the cost at similar scales
        side = float(np.sqrt(circuit.total_device_area()))
        self._area_norm = side * side
        self._hpwl_norm = max(side * self.arrays.num_nets, 1e-9)

    # ------------------------------------------------------------------
    def _cost(self, placement: Placement) -> float:
        x, y = placement.x, placement.y
        sign_x = np.where(placement.flip_x, -1.0, 1.0)
        sign_y = np.where(placement.flip_y, -1.0, 1.0)
        arrays = self.arrays
        px = x[arrays.pin_dev] + arrays.pin_offx * sign_x[arrays.pin_dev]
        py = y[arrays.pin_dev] + arrays.pin_offy * sign_y[arrays.pin_dev]
        spans = (
            arrays.segment_max(px) - arrays.segment_min(px)
            + arrays.segment_max(py) - arrays.segment_min(py)
        )
        hpwl = float(np.dot(arrays.weights, spans))
        w = (x + self.widths / 2).max() - (x - self.widths / 2).min()
        h = (y + self.heights / 2).max() - (y - self.heights / 2).min()
        cost = (
            hpwl / self._hpwl_norm
            + self.params.area_weight * (w * h) / self._area_norm
        )
        if self.cost_hook is not None and self.params.perf_weight > 0:
            cost += self.params.perf_weight * self.cost_hook(placement)
        return cost

    # ------------------------------------------------------------------
    def _propose(self, state: _State, rng: np.random.Generator) -> _State:
        nb = len(state.blocks)
        new = state.copy()
        move = rng.integers(0, 5)
        if move <= 1 and nb >= 2:
            i, j = rng.choice(nb, size=2, replace=False)
            seq = new.pair.plus if move == 0 else new.pair.minus
            pi, pj = seq.index(i), seq.index(j)
            seq[pi], seq[pj] = seq[pj], seq[pi]
        elif move == 2 and nb >= 2:
            i, j = rng.choice(nb, size=2, replace=False)
            for seq in (new.pair.plus, new.pair.minus):
                pi, pj = seq.index(i), seq.index(j)
                seq[pi], seq[pj] = seq[pj], seq[pi]
        elif move == 3:
            k = int(rng.integers(0, nb))
            block = state.blocks[k]
            fx, fy = new.free_flips.get(k, (False, False))
            if rng.random() < 0.5 and block.allow_flip_x:
                fx = not fx
            elif block.allow_flip_y:
                fy = not fy
            new.free_flips[k] = (fx, fy)
        else:
            islands = [k for k, b in enumerate(state.blocks)
                       if b.group is not None
                       and len(b.row_order) >= 2]
            if islands:
                k = int(rng.choice(islands))
                order = list(state.blocks[k].row_order)
                a, b = rng.choice(len(order), size=2, replace=False)
                order[a], order[b] = order[b], order[a]
                new.blocks[k] = reorder_island(
                    self.circuit, state.blocks[k], order
                )
        return new

    # ------------------------------------------------------------------
    def _compile_chains(self, blocks: list[Block]) -> list[tuple]:
        """Ordering chains mapped to block-index sequences."""
        index = self.circuit.device_index()
        by_device = {}
        for k, block in enumerate(blocks):
            for dev in block.device_indices:
                by_device[dev] = k
        chains = []
        for chain in self.circuit.constraints.orderings:
            block_seq: list[int] = []
            for name in chain.devices:
                k = by_device[index[name]]
                if not block_seq or block_seq[-1] != k:
                    block_seq.append(k)
            if len(block_seq) >= 2:
                chains.append((tuple(block_seq), chain.axis))
        return chains

    def _chains_ok(self, pair: SequencePair, chains) -> bool:
        """True when every chain's blocks keep their mandated relation.

        For a horizontal chain (``Axis.VERTICAL`` ordering) consecutive
        blocks must be left-of each other, i.e. ordered in both
        sequences; a vertical chain needs below-of: reversed in ``s+``,
        ordered in ``s-``.
        """
        nb = len(pair.plus)
        pos_plus = [0] * nb
        pos_minus = [0] * nb
        for i, b in enumerate(pair.plus):
            pos_plus[b] = i
        for i, b in enumerate(pair.minus):
            pos_minus[b] = i
        for block_seq, axis in chains:
            for a, b in zip(block_seq, block_seq[1:]):
                if pos_minus[a] >= pos_minus[b]:
                    return False
                if axis is Axis.VERTICAL:
                    if pos_plus[a] >= pos_plus[b]:
                        return False
                else:
                    if pos_plus[a] <= pos_plus[b]:
                        return False
        return True

    def _initial_pair(self, nb: int) -> SequencePair:
        """Chain-feasible starting sequences via topological sort."""
        g_plus = nx.DiGraph()
        g_minus = nx.DiGraph()
        g_plus.add_nodes_from(range(nb))
        g_minus.add_nodes_from(range(nb))
        for block_seq, axis in self._chains:
            for a, b in zip(block_seq, block_seq[1:]):
                g_minus.add_edge(a, b)
                if axis is Axis.VERTICAL:
                    g_plus.add_edge(a, b)
                else:
                    g_plus.add_edge(b, a)
        try:
            plus = list(nx.lexicographical_topological_sort(g_plus))
            minus = list(nx.lexicographical_topological_sort(g_minus))
        except nx.NetworkXUnfeasible as exc:
            raise RuntimeError(
                "ordering chains are cyclic at block level"
            ) from exc
        return SequencePair(plus, minus)

    def place(self) -> PlacerResult:
        tracer = trace.current()
        clock = trace.Stopwatch()
        with tracer.span("sa.place", circuit=self.circuit.name), \
                memory.phase_peak("sa.place"):
            result = self._place(tracer, clock)
        metrics.counter("repro.sa_placements").inc()
        result.trace = tracer.to_trace()  # now includes the root span
        return result

    def _place(
        self, tracer: trace.Tracer, clock: trace.Stopwatch
    ) -> PlacerResult:
        p = self.params
        rng = np.random.default_rng(p.seed)
        with tracer.span("sa.islands"):
            blocks = fuse_alignment_blocks(
                self.circuit, build_blocks(self.circuit)
            )
            self._chains = self._compile_chains(blocks)
            pair0 = self._initial_pair(len(blocks))
        state = _State(self.circuit, blocks, pair0)
        cost = self._cost(state.realize())

        # initial temperature from the spread of random-walk deltas
        with tracer.span("sa.probe"):
            deltas = []
            probe = state
            for _ in range(30):
                cand = self._propose(probe, rng)
                deltas.append(abs(self._cost(cand.realize()) - cost))
                probe = cand
        t0 = max(float(np.mean(deltas)), 1e-6) * p.t_start_factor
        t_end = t0 * p.t_end_ratio
        n_temps = max(p.iterations // p.moves_per_temp, 1)
        decay = (t_end / t0) ** (1.0 / n_temps)
        logger.debug(
            "SA %s: t0 %.4g over %d temperature stages",
            self.circuit.name, t0, n_temps,
        )

        best_state, best_cost = state.copy(), cost
        temperature = t0
        accepted = 0
        evaluated = 0
        # the iteration budget is consumed in temperature stages of
        # ``moves_per_temp`` moves; the trailing partial stage (when
        # ``iterations`` is not a multiple) does not decay, matching
        # the pre-stage-loop behaviour
        it = 0
        stage = 0
        while it < p.iterations:
            stage_moves = min(p.moves_per_temp, p.iterations - it)
            stage_accepted = 0
            stage_evaluated = 0
            with tracer.span("sa.stage", stage=stage):
                for _ in range(stage_moves):
                    it += 1
                    candidate = self._propose(state, rng)
                    if self._chains and not self._chains_ok(
                            candidate.pair, self._chains):
                        continue
                    with trace.timer("sa.cost"):
                        cand_cost = self._cost(candidate.realize())
                    evaluated += 1
                    stage_evaluated += 1
                    delta = cand_cost - cost
                    if delta <= 0 or rng.random() < np.exp(
                            -delta / temperature):
                        state, cost = candidate, cand_cost
                        accepted += 1
                        stage_accepted += 1
                        if cost < best_cost:
                            best_state, best_cost = state.copy(), cost
            if tracer.enabled:
                tracer.record(
                    "sa.stage", stage,
                    temperature=temperature,
                    cost=cost,
                    best_cost=best_cost,
                    accepted=stage_accepted,
                    evaluated=stage_evaluated,
                )
            if stage_moves == p.moves_per_temp:
                temperature *= decay
            stage += 1

        placement = best_state.realize().normalized()
        logger.debug(
            "SA %s: accept rate %.3f, best cost %.4g",
            self.circuit.name, accepted / max(evaluated, 1), best_cost,
        )
        return PlacerResult(
            placement=placement,
            runtime_s=clock.elapsed(),
            method="annealing",
            stats={
                "iterations": p.iterations,
                "accept_rate": accepted / max(evaluated, 1),
                "best_cost": best_cost,
                "t0": t0,
                "blocks": len(blocks),
            },
        )


def anneal_place(
    circuit: Circuit,
    params: SAParams | None = None,
    cost_hook: CostHook | None = None,
) -> PlacerResult:
    """Convenience wrapper: run the SA placer once."""
    return SimulatedAnnealingPlacer(circuit, params, cost_hook).place()
