"""Sequence-pair floorplan representation and packing.

A sequence pair ``(s+, s-)`` encodes pairwise relations between blocks:
``a`` is left of ``b`` when ``a`` precedes ``b`` in both sequences, and
below ``b`` when ``a`` follows ``b`` in ``s+`` but precedes it in
``s-``.  Packing evaluates the minimal-area realisation via longest
paths over the implied horizontal/vertical constraint graphs — the
classic O(n^2) dynamic program, ample for analog block counts.
"""

from __future__ import annotations

import numpy as np


def pack_lists(
    plus: list[int],
    minus: list[int],
    widths,
    heights,
) -> tuple[list[float], list[float]]:
    """Longest-path packing over plain Python lists.

    Same dynamic program as :meth:`SequencePair.pack` but operating on
    (and returning) Python lists — per-element indexing of numpy arrays
    is the dominant cost at analog block counts, and the SA move loop
    calls this for every sequence move.  Results are bitwise identical
    to the array version (same additions, same comparisons).
    """
    n = len(plus)
    pos_plus = [0] * n
    for i, b in enumerate(plus):
        pos_plus[b] = i
    x = [0.0] * n
    y = [0.0] * n
    for k, b in enumerate(minus):
        best_x = 0.0
        best_y = 0.0
        pb = pos_plus[b]
        for i in range(k):
            a = minus[i]
            if pos_plus[a] < pb:  # a left of b
                v = x[a] + widths[a]
                if v > best_x:
                    best_x = v
            else:  # a after b in s+, before in s-: a below b
                v = y[a] + heights[a]
                if v > best_y:
                    best_y = v
        x[b] = best_x
        y[b] = best_y
    return x, y


class SequencePair:
    """A pair of permutations over ``n`` blocks."""

    def __init__(self, seq_plus, seq_minus) -> None:
        self.plus = list(seq_plus)
        self.minus = list(seq_minus)
        n = len(self.plus)
        if sorted(self.plus) != list(range(n)) or \
                sorted(self.minus) != list(range(n)):
            raise ValueError("sequences must be permutations of 0..n-1")

    @classmethod
    def identity(cls, n: int) -> "SequencePair":
        return cls(range(n), range(n))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "SequencePair":
        return cls(rng.permutation(n), rng.permutation(n))

    def copy(self) -> "SequencePair":
        # bypass __init__: copying a valid pair cannot invalidate it,
        # and the permutation check is measurable in the SA move loop
        out = SequencePair.__new__(SequencePair)
        out.plus = list(self.plus)
        out.minus = list(self.minus)
        return out

    # ------------------------------------------------------------------
    def pack(
        self, widths: np.ndarray, heights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower-left block coordinates of the packed floorplan.

        ``x[b]`` is the longest path of widths over blocks left of
        ``b``; ``y[b]`` the longest path of heights over blocks below.
        """
        x, y = pack_lists(
            self.plus, self.minus, widths.tolist(), heights.tolist()
        )
        return np.asarray(x), np.asarray(y)

    def bounding_box(
        self, widths: np.ndarray, heights: np.ndarray
    ) -> tuple[float, float]:
        """Packed floorplan extents ``(W, H)``."""
        x, y = self.pack(widths, heights)
        return (
            float((x + widths).max()),
            float((y + heights).max()),
        )
