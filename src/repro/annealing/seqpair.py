"""Sequence-pair floorplan representation and packing.

A sequence pair ``(s+, s-)`` encodes pairwise relations between blocks:
``a`` is left of ``b`` when ``a`` precedes ``b`` in both sequences, and
below ``b`` when ``a`` follows ``b`` in ``s+`` but precedes it in
``s-``.  Packing evaluates the minimal-area realisation via longest
paths over the implied horizontal/vertical constraint graphs — the
classic O(n^2) dynamic program, ample for analog block counts.
"""

from __future__ import annotations

import numpy as np


class SequencePair:
    """A pair of permutations over ``n`` blocks."""

    def __init__(self, seq_plus, seq_minus) -> None:
        self.plus = list(seq_plus)
        self.minus = list(seq_minus)
        n = len(self.plus)
        if sorted(self.plus) != list(range(n)) or \
                sorted(self.minus) != list(range(n)):
            raise ValueError("sequences must be permutations of 0..n-1")

    @classmethod
    def identity(cls, n: int) -> "SequencePair":
        return cls(range(n), range(n))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "SequencePair":
        return cls(rng.permutation(n), rng.permutation(n))

    def copy(self) -> "SequencePair":
        return SequencePair(self.plus, self.minus)

    # ------------------------------------------------------------------
    def pack(
        self, widths: np.ndarray, heights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower-left block coordinates of the packed floorplan.

        ``x[b]`` is the longest path of widths over blocks left of
        ``b``; ``y[b]`` the longest path of heights over blocks below.
        """
        n = len(self.plus)
        pos_plus = np.empty(n, dtype=int)
        pos_plus[self.plus] = np.arange(n)

        x = np.zeros(n)
        y = np.zeros(n)
        # process in s- order: every predecessor relation (left-of and
        # below) pairs a block with one earlier in s-
        for k, b in enumerate(self.minus):
            best_x = 0.0
            best_y = 0.0
            pb = pos_plus[b]
            for a in self.minus[:k]:
                if pos_plus[a] < pb:  # a left of b
                    best_x = max(best_x, x[a] + widths[a])
                else:  # a after b in s+, before in s-: a below b
                    best_y = max(best_y, y[a] + heights[a])
            x[b] = best_x
            y[b] = best_y
        return x, y

    def bounding_box(
        self, widths: np.ndarray, heights: np.ndarray
    ) -> tuple[float, float]:
        """Packed floorplan extents ``(W, H)``."""
        x, y = self.pack(widths, heights)
        return (
            float((x + widths).max()),
            float((y + heights).max()),
        )
