"""Simulated-annealing analog placement baseline (sequence pair + islands)."""

from .annealer import SAParams, SimulatedAnnealingPlacer, anneal_place
from .incremental import CostDriftError, IncrementalCostEvaluator
from .islands import Block, build_blocks, fuse_alignment_blocks, reorder_island
from .seqpair import SequencePair

__all__ = [
    "Block",
    "CostDriftError",
    "IncrementalCostEvaluator",
    "SAParams",
    "SequencePair",
    "SimulatedAnnealingPlacer",
    "anneal_place",
    "build_blocks",
    "fuse_alignment_blocks",
    "reorder_island",
]
