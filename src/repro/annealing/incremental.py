"""Incremental SA cost evaluation (the hot path of the Metropolis loop).

The annealer historically rebuilt a full :class:`~repro.placement.Placement`
and recomputed the complete HPWL + area cost from scratch for every
proposed move — two per-device Python loops per Metropolis step.  This
module replaces that with an evaluator that maintains, between moves:

* per-device geometry (centre offsets inside the owning block and
  pin-mirroring signs) plus a flattened per-*pin* offset cache, which
  change only on flip / island-reorder moves;
* per-block packed extents (block dims and member bounding boxes, as
  plain Python lists — numpy call overhead dominates at analog block
  counts);
* a per-net bounding-box **span cache**: a move only re-evaluates the
  nets touched by blocks that actually moved.  For geometry-only moves
  (flip, island reorder) the dirty-net set, its pin gather indices and
  its ``reduceat`` boundaries are all static per block and precomputed,
  and the sequence-pair packing is skipped entirely (block dims are
  invariant under those moves).

Correctness invariant: per-net spans are always *recomputed from pin
coordinates* for dirty nets — never accumulated as deltas — and per-net
max/min reductions are order-insensitive, so a clean net's cached span
is bitwise what a from-scratch evaluation would produce.  There is
therefore no floating-point drift channel; the periodic
:meth:`IncrementalCostEvaluator.audit` full recompute exists to catch
*logic* bugs (stale dirty tracking after a new move type, say) and
raises :class:`CostDriftError` when the cache disagrees beyond
``audit_tol``.

See ``docs/PERFORMANCE.md`` ("Incremental SA cost") for the invariant
table and the audit policy.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..analytic import NetArrays
from ..netlist import Circuit
from ..placement import Placement
from .islands import Block
from .seqpair import SequencePair, pack_lists

#: above this fraction of dirty nets the evaluator recomputes all spans
#: in one vectorised pass instead of gathering per-net subsets
FULL_RECOMPUTE_FRACTION = 0.5


class CostDriftError(RuntimeError):
    """The incremental cost cache disagreed with a full recompute."""


def block_geometry(
    block: Block, extra_fx: bool, extra_fy: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Member-device offsets and flips of one block under extra mirrors.

    Vectorised form of the per-device transform the annealer's
    ``realize`` loop used to apply; returns ``(rel_x, rel_y, fx, fy)``
    over the block's member devices (in ``block.device_indices`` order).
    """
    rel_x = block.width - block.rel_x if extra_fx else block.rel_x
    rel_y = block.height - block.rel_y if extra_fy else block.rel_y
    fx = block.flip_x ^ extra_fx
    fy = block.flip_y ^ extra_fy
    return rel_x, rel_y, fx, fy


def realize_placement(
    circuit: Circuit,
    blocks: list[Block],
    pair: SequencePair,
    free_flips: dict[int, tuple[bool, bool]],
) -> Placement:
    """Pack a sequence pair and emit the absolute device placement.

    Shared by the annealer's final-result path and the evaluator's
    cost-hook path so both produce identical coordinates.
    """
    widths = np.array([b.width for b in blocks])
    heights = np.array([b.height for b in blocks])
    bx, by = pair.pack(widths, heights)

    n = circuit.num_devices
    x = np.zeros(n)
    y = np.zeros(n)
    fx = np.zeros(n, dtype=bool)
    fy = np.zeros(n, dtype=bool)
    for k, block in enumerate(blocks):
        extra_fx, extra_fy = free_flips.get(k, (False, False))
        idx = np.asarray(block.device_indices, dtype=int)
        rel_x, rel_y, bfx, bfy = block_geometry(block, extra_fx, extra_fy)
        x[idx] = bx[k] + rel_x
        y[idx] = by[k] + rel_y
        fx[idx] = bfx
        fy[idx] = bfy
    return Placement(circuit, x, y, fx, fy)


class _Cache:
    """One fully evaluated SA state (committed or pending).

    Device/pin fields are numpy (fancy-indexed by the span kernels);
    per-block fields are plain lists (only ever indexed one element at
    a time, where list access beats numpy scalar access severalfold).
    """

    __slots__ = (
        "rel_x", "rel_y", "sign_x", "sign_y", "fx", "fy",
        "pin_rel_x", "pin_rel_y",
        "block_w", "block_h",
        "ext_lo_x", "ext_hi_x", "ext_lo_y", "ext_hi_y",
        "bx_l", "by_l", "bx", "by", "spans", "hpwl", "cost",
    )

    def shallow(self) -> "_Cache":
        out = _Cache()
        out.rel_x = self.rel_x
        out.rel_y = self.rel_y
        out.sign_x = self.sign_x
        out.sign_y = self.sign_y
        out.fx = self.fx
        out.fy = self.fy
        out.pin_rel_x = self.pin_rel_x
        out.pin_rel_y = self.pin_rel_y
        out.block_w = self.block_w
        out.block_h = self.block_h
        out.ext_lo_x = self.ext_lo_x
        out.ext_hi_x = self.ext_hi_x
        out.ext_lo_y = self.ext_lo_y
        out.ext_hi_y = self.ext_hi_y
        out.bx_l = self.bx_l
        out.by_l = self.by_l
        out.bx = self.bx
        out.by = self.by
        out.spans = self.spans
        return out


class IncrementalCostEvaluator:
    """Maintains the SA cost of a block configuration across moves.

    Usage protocol (one instance per annealer)::

        cost = ev.reset(blocks, pair, free_flips)             # full eval
        cand_cost = ev.propose(blocks, pair, flips, touched)  # one move
        ev.commit()     # accept: the candidate becomes current
        # (not committing rejects the candidate)
        ev.audit(blocks, pair, free_flips)  # full recompute, drift check

    ``touched`` names the single block whose *internal* geometry changed
    (flip or island-reorder move) and asserts that the sequence pair is
    unchanged from the current state; pass ``None`` for sequence moves.
    """

    def __init__(
        self,
        circuit: Circuit,
        arrays: NetArrays,
        widths: np.ndarray,
        heights: np.ndarray,
        area_weight: float,
        hpwl_norm: float,
        area_norm: float,
        perf_weight: float = 0.0,
        cost_hook: "Callable[[Placement], float] | None" = None,
        audit_tol: float = 1e-9,
    ) -> None:
        self.circuit = circuit
        self.arrays = arrays
        self.widths = widths
        self.heights = heights
        self.half_w = widths / 2.0
        self.half_h = heights / 2.0
        self.area_weight = float(area_weight)
        self.hpwl_norm = float(hpwl_norm)
        self.area_norm = float(area_norm)
        self.perf_weight = float(perf_weight)
        self.cost_hook = cost_hook
        self.audit_tol = float(audit_tol)
        self.audits = 0
        self.incremental_evals = 0
        self.full_evals = 0
        self.dirty_nets = 0  # cumulative nets re-spanned incrementally

        n = circuit.num_devices
        self._dev_block = np.zeros(n, dtype=int)
        self._pin_block: "np.ndarray | None" = None  # set on first reset
        # static per-block structures, built on first reset (device →
        # block membership is invariant: reorder moves permute devices
        # *inside* a block, never across blocks)
        self._block_pins: list[np.ndarray] = []
        self._block_net_mask: list[np.ndarray] = []
        self._block_net_count: list[int] = []
        self._block_dirty_pins: list[np.ndarray] = []
        self._block_dirty_pb: list[np.ndarray] = []
        self._block_sub_starts: list[np.ndarray] = []
        # per-net pin counts, for carving dirty-net segment boundaries
        self._pin_counts = np.diff(
            np.append(arrays.starts, arrays.num_pins)
        )
        # block geometry is a pure function of (block index, row order,
        # extra flips); SA revisits the same handful of geometries per
        # block thousands of times, so pin offsets and extents memoize
        self._geom_cache: dict[
            tuple[int, tuple[int, ...], bool, bool],
            tuple[np.ndarray, np.ndarray, float, float, float, float],
        ] = {}
        self._cur: "_Cache | None" = None
        self._pending: "_Cache | None" = None

    # -- full evaluation ----------------------------------------------
    def reset(
        self,
        blocks: list[Block],
        pair: SequencePair,
        free_flips: dict[int, tuple[bool, bool]],
    ) -> float:
        """Evaluate a state from scratch and make it current."""
        self._cur = self._full(blocks, pair, free_flips)
        self._pending = None
        return self._cur.cost

    def _full(
        self,
        blocks: list[Block],
        pair: SequencePair,
        free_flips: dict[int, tuple[bool, bool]],
    ) -> _Cache:
        self.full_evals += 1
        n = self.circuit.num_devices
        nb = len(blocks)
        cache = _Cache()
        cache.rel_x = np.zeros(n)
        cache.rel_y = np.zeros(n)
        cache.fx = np.zeros(n, dtype=bool)
        cache.fy = np.zeros(n, dtype=bool)
        cache.block_w = [0.0] * nb
        cache.block_h = [0.0] * nb
        cache.ext_lo_x = [0.0] * nb
        cache.ext_hi_x = [0.0] * nb
        cache.ext_lo_y = [0.0] * nb
        cache.ext_hi_y = [0.0] * nb
        for k, block in enumerate(blocks):
            efx, efy = free_flips.get(k, (False, False))
            idx = np.asarray(block.device_indices, dtype=int)
            rel_x, rel_y, bfx, bfy = block_geometry(block, efx, efy)
            cache.rel_x[idx] = rel_x
            cache.rel_y[idx] = rel_y
            cache.fx[idx] = bfx
            cache.fy[idx] = bfy
            self._dev_block[idx] = k
            cache.block_w[k] = block.width
            cache.block_h[k] = block.height
            cache.ext_lo_x[k] = float((rel_x - self.half_w[idx]).min())
            cache.ext_hi_x[k] = float((rel_x + self.half_w[idx]).max())
            cache.ext_lo_y[k] = float((rel_y - self.half_h[idx]).min())
            cache.ext_hi_y[k] = float((rel_y + self.half_h[idx]).max())
        cache.sign_x = np.where(cache.fx, -1.0, 1.0)
        cache.sign_y = np.where(cache.fy, -1.0, 1.0)

        a = self.arrays
        if self._pin_block is None:
            self._pin_block = self._dev_block[a.pin_dev]
            self._build_static(nb)
        cache.pin_rel_x = (
            cache.rel_x[a.pin_dev]
            + a.pin_offx * cache.sign_x[a.pin_dev]
        )
        cache.pin_rel_y = (
            cache.rel_y[a.pin_dev]
            + a.pin_offy * cache.sign_y[a.pin_dev]
        )
        cache.bx_l, cache.by_l = pack_lists(
            pair.plus, pair.minus, cache.block_w, cache.block_h
        )
        cache.bx = np.asarray(cache.bx_l)
        cache.by = np.asarray(cache.by_l)
        cache.spans = self._spans_all(cache)
        self._finish(cache, blocks, pair, free_flips)
        return cache

    def _build_static(self, nb: int) -> None:
        """Precompute per-block dirty-net structures.

        For a geometry-only move of block ``k`` the dirty nets are
        exactly the nets with a pin on ``k`` — a static set, so the
        net mask, the gather indices of *all* pins on those nets and
        the ``reduceat`` segment boundaries are computed once.
        """
        a = self.arrays
        pin_block = self._pin_block
        assert pin_block is not None
        for k in range(nb):
            pins_k = np.flatnonzero(pin_block == k)
            self._block_pins.append(pins_k)
            if a.num_nets:
                on_block = np.zeros(a.num_nets, dtype=bool)
                on_block[np.unique(a.pin_net[pins_k])] = True
            else:
                on_block = np.zeros(0, dtype=bool)
            self._block_net_mask.append(on_block)
            self._block_net_count.append(int(np.count_nonzero(on_block)))
            # all pins of those nets; pin order is net-major, so
            # flatnonzero keeps reduceat segments contiguous
            dirty_pins = np.flatnonzero(on_block[a.pin_net])
            self._block_dirty_pins.append(dirty_pins)
            self._block_dirty_pb.append(pin_block[dirty_pins])
            counts = self._pin_counts[on_block]
            self._block_sub_starts.append(
                np.concatenate(([0], np.cumsum(counts)[:-1])).astype(int)
            )

    # -- incremental evaluation ---------------------------------------
    def propose(
        self,
        blocks: list[Block],
        pair: SequencePair,
        free_flips: dict[int, tuple[bool, bool]],
        touched_block: "int | None",
    ) -> float:
        """Cost of a candidate differing from the current state by one
        move; cached as *pending* until :meth:`commit`."""
        cur = self._cur
        if cur is None:
            raise RuntimeError("evaluator has no current state; call reset")
        cand = cur.shallow()
        k = touched_block
        if k is not None:
            self._update_geometry(cand, blocks, free_flips, k)
        if (
            k is not None
            and cand.block_w[k] == cur.block_w[k]
            and cand.block_h[k] == cur.block_h[k]
        ):
            # geometry-only move: dims and pair unchanged, so the
            # packing (bx/by, shared via the shallow copy) is still
            # valid and the dirty-net set is the precomputed one
            n_dirty = self._block_net_count[k]
            self.dirty_nets += int(n_dirty)
            if n_dirty == 0:
                pass  # spans shared via the shallow copy
            elif n_dirty >= self.arrays.num_nets * \
                    FULL_RECOMPUTE_FRACTION:
                cand.spans = self._spans_all(cand)
            else:
                cand.spans = self._spans_subset(cand, cur, k)
        else:
            cand.bx_l, cand.by_l = pack_lists(
                pair.plus, pair.minus, cand.block_w, cand.block_h
            )
            if k is None and cand.bx_l == cur.bx_l \
                    and cand.by_l == cur.by_l:
                pass  # no block moved: bx/by/spans shared as-is
            else:
                cand.bx = np.asarray(cand.bx_l)
                cand.by = np.asarray(cand.by_l)
                moved = (cand.bx != cur.bx) | (cand.by != cur.by)
                if k is not None:
                    moved[k] = True
                cand.spans = self._spans_update(cand, cur, moved)
        self._finish(cand, blocks, pair, free_flips)
        self._pending = cand
        self.incremental_evals += 1
        return cand.cost

    def _block_geom(
        self, blocks: list[Block], k: int, efx: bool, efy: bool
    ) -> tuple[np.ndarray, np.ndarray, float, float, float, float]:
        """Memoized per-block pin offsets and extents.

        Returns ``(pin_rel_x, pin_rel_y, lo_x, hi_x, lo_y, hi_y)`` for
        block ``k``'s pins under its current row order and the given
        extra flips.  Keyed by row order (not object identity) so
        memoized reorder blocks share entries.
        """
        block = blocks[k]
        key = (k, tuple(block.row_order), efx, efy)
        vals = self._geom_cache.get(key)
        if vals is None:
            a = self.arrays
            rel_x, rel_y, bfx, bfy = block_geometry(block, efx, efy)
            idx = np.asarray(block.device_indices, dtype=int)
            psel = self._block_pins[k]
            # pin → member-position map under this row order
            pos = {d: i for i, d in enumerate(block.device_indices)}
            mem = np.array(
                [pos[d] for d in a.pin_dev[psel]], dtype=int
            )
            sign_x = np.where(np.atleast_1d(bfx), -1.0, 1.0)
            sign_y = np.where(np.atleast_1d(bfy), -1.0, 1.0)
            rel_x = np.atleast_1d(rel_x)
            rel_y = np.atleast_1d(rel_y)
            prx = rel_x[mem] + a.pin_offx[psel] * sign_x[mem]
            pry = rel_y[mem] + a.pin_offy[psel] * sign_y[mem]
            vals = (
                prx, pry,
                float((rel_x - self.half_w[idx]).min()),
                float((rel_x + self.half_w[idx]).max()),
                float((rel_y - self.half_h[idx]).min()),
                float((rel_y + self.half_h[idx]).max()),
            )
            self._geom_cache[key] = vals
        return vals

    def _update_geometry(
        self,
        cand: _Cache,
        blocks: list[Block],
        free_flips: dict[int, tuple[bool, bool]],
        k: int,
    ) -> None:
        """Refresh pin/extent caches for one re-shaped block.

        The candidate's *device*-level arrays (``rel_x`` … ``sign_y``)
        are left untouched — they are full-evaluation artifacts; the
        span and area kernels only read the pin offsets and extents
        maintained here.
        """
        block = blocks[k]
        efx, efy = free_flips.get(k, (False, False))
        prx, pry, lo_x, hi_x, lo_y, hi_y = self._block_geom(
            blocks, k, efx, efy
        )
        if block.width != cand.block_w[k] or \
                block.height != cand.block_h[k]:
            cand.block_w = list(cand.block_w)
            cand.block_h = list(cand.block_h)
            cand.block_w[k] = block.width
            cand.block_h[k] = block.height
        cand.ext_lo_x = list(cand.ext_lo_x)
        cand.ext_hi_x = list(cand.ext_hi_x)
        cand.ext_lo_y = list(cand.ext_lo_y)
        cand.ext_hi_y = list(cand.ext_hi_y)
        cand.ext_lo_x[k] = lo_x
        cand.ext_hi_x[k] = hi_x
        cand.ext_lo_y[k] = lo_y
        cand.ext_hi_y[k] = hi_y
        psel = self._block_pins[k]
        if len(psel):
            cand.pin_rel_x = cand.pin_rel_x.copy()
            cand.pin_rel_y = cand.pin_rel_y.copy()
            cand.pin_rel_x[psel] = prx
            cand.pin_rel_y[psel] = pry

    def commit(self) -> None:
        """Promote the last :meth:`propose` result to current state."""
        if self._pending is None:
            raise RuntimeError("no pending candidate to commit")
        self._cur = self._pending
        self._pending = None

    @property
    def cost(self) -> float:
        """Cost of the current (committed) state."""
        if self._cur is None:
            raise RuntimeError("evaluator has no current state")
        return self._cur.cost

    # -- span computation ---------------------------------------------
    def _spans_all(self, cache: _Cache) -> np.ndarray:
        a = self.arrays
        px = cache.bx[self._pin_block] + cache.pin_rel_x
        py = cache.by[self._pin_block] + cache.pin_rel_y
        return (
            np.maximum.reduceat(px, a.starts)
            - np.minimum.reduceat(px, a.starts)
            + np.maximum.reduceat(py, a.starts)
            - np.minimum.reduceat(py, a.starts)
        )

    def _spans_subset(
        self, cand: _Cache, cur: _Cache, k: int
    ) -> np.ndarray:
        """Candidate spans after a geometry-only move of block ``k``,
        recomputing exactly the nets with a pin on that block."""
        pins = self._block_dirty_pins[k]
        px = cand.bx[self._block_dirty_pb[k]] + cand.pin_rel_x[pins]
        py = cand.by[self._block_dirty_pb[k]] + cand.pin_rel_y[pins]
        ss = self._block_sub_starts[k]
        sub = (
            np.maximum.reduceat(px, ss)
            - np.minimum.reduceat(px, ss)
            + np.maximum.reduceat(py, ss)
            - np.minimum.reduceat(py, ss)
        )
        spans = cur.spans.copy()
        spans[self._block_net_mask[k]] = sub
        return spans

    def _spans_update(
        self, cand: _Cache, cur: _Cache, moved: np.ndarray
    ) -> np.ndarray:
        """Candidate span vector, recomputing only dirty nets.

        A net is dirty when any of its pins sits on a block that moved
        or changed geometry.  Clean nets keep their cached span — valid
        because per-net max/min reductions are order-insensitive, so a
        cached span is bitwise what a full recompute would produce.
        """
        a = self.arrays
        if a.num_nets == 0:
            return cur.spans
        net_dirty = np.logical_or.reduceat(
            moved[self._pin_block], a.starts
        )
        n_dirty = int(np.count_nonzero(net_dirty))
        self.dirty_nets += n_dirty
        if n_dirty == 0:
            return cur.spans
        if n_dirty >= a.num_nets * FULL_RECOMPUTE_FRACTION:
            return self._spans_all(cand)
        pins = net_dirty[a.pin_net]
        pb = self._pin_block[pins]
        px = cand.bx[pb] + cand.pin_rel_x[pins]
        py = cand.by[pb] + cand.pin_rel_y[pins]
        counts = self._pin_counts[net_dirty]
        sub_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        sub = (
            np.maximum.reduceat(px, sub_starts)
            - np.minimum.reduceat(px, sub_starts)
            + np.maximum.reduceat(py, sub_starts)
            - np.minimum.reduceat(py, sub_starts)
        )
        spans = cur.spans.copy()
        spans[net_dirty] = sub
        return spans

    # -- cost assembly -------------------------------------------------
    def _finish(
        self,
        cache: _Cache,
        blocks: list[Block],
        pair: SequencePair,
        free_flips: dict[int, tuple[bool, bool]],
    ) -> None:
        """HPWL + area (+ optional performance hook) from the caches."""
        cache.hpwl = float(np.dot(self.arrays.weights, cache.spans))
        bx_l, by_l = cache.bx_l, cache.by_l
        w = max(b + e for b, e in zip(bx_l, cache.ext_hi_x)) \
            - min(b + e for b, e in zip(bx_l, cache.ext_lo_x))
        h = max(b + e for b, e in zip(by_l, cache.ext_hi_y)) \
            - min(b + e for b, e in zip(by_l, cache.ext_lo_y))
        cost = (
            cache.hpwl / self.hpwl_norm
            + self.area_weight * (w * h) / self.area_norm
        )
        if self.cost_hook is not None and self.perf_weight > 0:
            placement = realize_placement(
                self.circuit, blocks, pair, free_flips
            )
            cost += self.perf_weight * self.cost_hook(placement)
        cache.cost = cost

    # -- drift audit ---------------------------------------------------
    def audit(
        self,
        blocks: list[Block],
        pair: SequencePair,
        free_flips: dict[int, tuple[bool, bool]],
    ) -> float:
        """Full recompute of the current state; raise on cache drift.

        Returns the absolute cost deviation (0.0 in a healthy run) and
        resynchronises the cache, so even a tolerated sub-threshold
        deviation cannot accumulate.
        """
        if self._cur is None:
            raise RuntimeError("evaluator has no current state")
        cached = self._cur
        fresh = self._full(blocks, pair, free_flips)
        self.audits += 1
        deviation = abs(fresh.cost - cached.cost)
        span_dev = (
            float(np.abs(fresh.spans - cached.spans).max())
            if len(fresh.spans) else 0.0
        )
        scale = max(abs(fresh.cost), 1.0)
        if deviation > self.audit_tol * scale or \
                span_dev > self.audit_tol * max(self.hpwl_norm, 1.0):
            raise CostDriftError(
                "incremental SA cost drifted from full recompute: "
                f"cost {cached.cost!r} vs {fresh.cost!r} "
                f"(|delta| {deviation:.3e}), max span delta "
                f"{span_dev:.3e}"
            )
        self._cur = fresh
        self._pending = None
        return deviation
